#!/usr/bin/env python
"""Quickstart: solve the nonlocal heat equation and validate it.

Reproduces the paper's Sec. 3 setup in a few lines: the 2-D nonlocal
diffusion equation on the unit square with horizon eps = 8h, integrated
with forward Euler and validated against the manufactured exact solution
(Sec. 3.2).  Then does the same run on the SD-distributed solver over a
simulated 4-node cluster and confirms the temperatures agree to machine
precision while reporting the virtual-time schedule.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (DistributedSolver, ManufacturedProblem, NonlocalHeatModel,
                   SerialSolver, SubdomainGrid, UniformGrid,
                   partition_sd_grid)

def main() -> None:
    # -- problem setup: 64x64 mesh, eps = 8h (the paper's ratio) ---------
    grid = UniformGrid(64, 64)
    model = NonlocalHeatModel(epsilon=8 * grid.h)
    problem = ManufacturedProblem(model, grid)  # continuum source, eq. (6)

    print(f"mesh: {grid.nx}x{grid.ny}, h = {grid.h:.4f}, "
          f"eps = {model.epsilon:.4f}, c = {model.c:.4g}")

    # -- serial reference (Sec. 6, first implementation) -----------------
    serial = SerialSolver(model, grid, source=problem.source)
    print(f"stable dt = {serial.dt:.3e}")
    ref = serial.run(problem.initial_condition(), num_steps=20,
                     exact=problem.exact)
    print(f"serial total error vs exact solution (eq. 7): "
          f"{ref.total_error:.3e}")

    # -- distributed run on a simulated 4-node cluster -------------------
    sd_grid = SubdomainGrid(64, 64, 4, 4)          # 16 SDs of 16x16 DPs
    parts = partition_sd_grid(4, 4, 4, seed=0)     # METIS-style 4-way
    dist = DistributedSolver(model, grid, sd_grid, parts, num_nodes=4,
                             source=problem.source, dt=serial.dt)
    res = dist.run(problem.initial_condition(), num_steps=20,
                   exact=problem.exact)

    diff = float(np.abs(res.u - ref.u).max())
    print(f"distributed vs serial max |Δu|: {diff:.2e} "
          f"({'OK' if diff < 1e-10 else 'MISMATCH'})")
    print(f"virtual makespan on 4 nodes: {res.makespan * 1e3:.3f} ms "
          f"({len(res.step_durations)} steps)")
    print(f"ghost bytes exchanged: {res.ghost_bytes:,}")

    busy = res.busy_total
    print("per-node busy time (core-s):",
          ", ".join(f"n{i}={b * 1e3:.3f}ms" for i, b in enumerate(busy)))


if __name__ == "__main__":
    main()
