#!/usr/bin/env python
"""Load balancing under crack-induced work heterogeneity.

The scenario that motivates the paper's Sec. 7: in fracture models, SDs
containing the crack do less work per timestep (bonds across the crack
are severed), so a geometrically balanced partition is *work*-imbalanced.
The ``crack_hetero`` registry scenario places a crack network through
the middle of the domain, assigns the SD rows to 4 equal-speed nodes,
and we compare:

* baseline: the static row partition, no balancing;
* balanced: Algorithm 1 running every step on busy-time counters.

The balancer should hand extra SDs to the nodes owning the cheap
(cracked) rows and cut the virtual makespan.

Run:  python examples/crack_load_balancing.py
"""

import numpy as np

from repro.experiments import build, build_problem, build_work_factors, \
    run_scenario
from repro.reporting import ownership_counts, render_ownership_sequence

NODES = 4
STEPS = 20


def main() -> None:
    spec = build("crack_hetero", nodes=NODES, steps=STEPS, balanced=True)
    wf = build_work_factors(spec)
    print(f"crack network lightens {(wf < 1.0).sum()} of {len(wf)} SDs "
          f"(min factor {wf.min():.2f})")

    base = run_scenario(build("crack_hetero", nodes=NODES, steps=STEPS,
                              balanced=False))
    bal = run_scenario(spec)

    print(f"\nmakespan without balancing: {base.makespan * 1e3:.3f} ms")
    print(f"makespan with balancing:    {bal.makespan * 1e3:.3f} ms")
    print(f"improvement: {base.makespan / bal.makespan:.2f}x")
    print(f"balancing moved {bal.sds_moved} SDs over "
          f"{len(bal.parts_events)} redistribution events")

    _, _, _, sd_grid = build_problem(spec)
    base_parts = np.asarray(base.final_parts, dtype=np.int64)
    bal_parts = np.asarray(bal.final_parts, dtype=np.int64)
    print("\nSD ownership (one symbol per node, crack along the middle):")
    print(render_ownership_sequence(
        sd_grid, [base_parts, bal_parts],
        labels=["static", "balanced"]))

    print("\nSDs per node:")
    print("  static:  ", ownership_counts(base_parts, NODES))
    print("  balanced:", ownership_counts(bal_parts, NODES))


if __name__ == "__main__":
    main()
