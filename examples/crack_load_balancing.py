#!/usr/bin/env python
"""Load balancing under crack-induced work heterogeneity.

The scenario that motivates the paper's Sec. 7: in fracture models, SDs
containing the crack do less work per timestep (bonds across the crack
are severed), so a geometrically balanced partition is *work*-imbalanced.
We place a horizontal crack through the middle of the domain, assign the
SD rows to 4 equal-speed nodes, and compare:

* baseline: static METIS-style partition, no balancing;
* balanced: Algorithm 1 running every step on busy-time counters.

The balancer should hand extra SDs to the nodes owning the cheap
(cracked) rows and cut the virtual makespan.

Run:  python examples/crack_load_balancing.py
"""

import numpy as np

from repro import (Crack, DistributedSolver, IntervalPolicy, LoadBalancer,
                   NonlocalHeatModel, SubdomainGrid, UniformGrid,
                   crack_work_factors)
from repro.reporting import ownership_counts, render_ownership_sequence


def run(balanced: bool, sd_grid, parts, model, grid, work_factors):
    solver = DistributedSolver(
        model, grid, sd_grid, parts, num_nodes=4,
        work_factors=work_factors, compute_numerics=False,
        balancer=LoadBalancer(sd_grid) if balanced else None,
        policy=IntervalPolicy(1) if balanced else None)
    result = solver.run(None, num_steps=20)
    return result, solver.parts


def main() -> None:
    grid = UniformGrid(128, 128)
    model = NonlocalHeatModel(epsilon=8 * grid.h)
    sd_grid = SubdomainGrid(128, 128, 8, 8)

    # a crack network through the lower-middle of the domain: SDs it
    # crosses lose most of their bond work (floor 0.25)
    cracks = [Crack.horizontal(0.4375, x0=0.05, x1=0.95),
              Crack.horizontal(0.5625, x0=0.05, x1=0.95),
              Crack([(0.3, 0.35), (0.7, 0.65)])]
    wf = crack_work_factors(sd_grid, cracks, horizon=2 * model.epsilon,
                            floor=0.25)
    print(f"crack network lightens {(wf < 1.0).sum()} of {len(wf)} SDs "
          f"(min factor {wf.min():.2f})")

    # 4 nodes, 2 SD rows each: rows 3-4 contain the crack
    parts = np.repeat([0, 0, 1, 1, 2, 2, 3, 3], 8)

    base, base_parts = run(False, sd_grid, parts, model, grid, wf)
    bal, bal_parts = run(True, sd_grid, parts, model, grid, wf)

    print(f"\nmakespan without balancing: {base.makespan * 1e3:.3f} ms")
    print(f"makespan with balancing:    {bal.makespan * 1e3:.3f} ms")
    print(f"improvement: {base.makespan / bal.makespan:.2f}x")
    print(f"balancing moved {sum(b.sds_moved for b in bal.balance_results)} "
          f"SDs over {sum(1 for b in bal.balance_results if b.triggered)} "
          f"triggered steps")

    print("\nSD ownership (one symbol per node, crack along the middle):")
    print(render_ownership_sequence(
        sd_grid, [base_parts, bal_parts],
        labels=["static", "balanced"]))

    print("\nSDs per node:")
    print("  static:  ", ownership_counts(base_parts, 4))
    print("  balanced:", ownership_counts(bal_parts, 4))


if __name__ == "__main__":
    main()
