#!/usr/bin/env python
"""Surviving cluster churn: failures, joiners, and stragglers mid-run.

Real AMT deployments do not run on a fixed node set.  This example runs
the ``hetero_churn`` scenario — node 1 straggles early, node 0 *fails*
near the middle of the run, and a faster replacement joins for the tail
— and shows what the elastic-cluster machinery (DESIGN.md substitution
4) does about it:

* the failed node's SDs are evacuated through the active balancing
  strategy and its in-flight tasks are requeued at ``1 + penalty``
  times their work, gated on the checkpoint re-fetch;
* the joiner is seeded with a frontier SD and absorbed to its
  power-proportional share at the next balance step;
* with balancing *disabled* the run still evacuates (correctness), but
  pays for every SD stranded on the wrong survivor — the gap between
  the two runs is what adaptive balancing buys under churn.

Run:  python examples/elastic_churn.py
"""

import numpy as np

from repro.experiments import build, run_scenario
from repro.reporting import format_balance_events, format_recovery_events

STEPS = 16


def main() -> None:
    adaptive = run_scenario(build("hetero_churn", steps=STEPS))
    never = run_scenario(build("hetero_churn", steps=STEPS, balanced=False))

    print("hetero_churn: 4 nodes, one straggle window, one failure, "
          "one join")
    print(f"  adaptive ({adaptive.balancer_resolved}): "
          f"makespan {adaptive.makespan * 1e3:.2f} ms")
    print(f"  never balancing: makespan {never.makespan * 1e3:.2f} ms")
    print(f"  churn gain: {never.makespan / adaptive.makespan:.2f}x")

    print()
    print(format_recovery_events(
        adaptive.recovery_events,
        title="Recovery events (virtual time, evacuations, requeues):"))

    recovery_rows = [e for e in adaptive.balance_events if e["recovery"]]
    print()
    print(format_balance_events(
        recovery_rows,
        title="Recovery-tagged balance steps (evacuation + absorption):"))

    final = np.asarray(adaptive.final_parts)
    counts = np.bincount(final, minlength=5)
    print()
    print(f"final SDs per node: {[int(c) for c in counts]} "
          f"(node 0 failed; node 4 joined at 1.25x speed)")
    assert counts[0] == 0, "dead node still owns SDs"
    assert counts[4] > 0, "joiner was never absorbed"
    print("OK: dead node empty, joiner absorbed, run recovered")


if __name__ == "__main__":
    main()
