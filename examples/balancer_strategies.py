#!/usr/bin/env python
"""Comparing the pluggable balancing strategies under drifting load.

The balancing layer is a strategy subsystem (``repro.core.strategies``):
the paper's Algorithm 1 (``tree``) plus diffusion, greedy settlement,
and scratch-remap repartitioning behind one registry.  This example runs
all of them on the ``hetero_drift`` workload — node speeds ramp linearly
to the *reversed* assignment mid-run, so a fixed SD distribution is
wrong for most of the run — and prints the makespan each strategy
achieves next to the migration bytes it paid, plus the per-event
telemetry for the paper's algorithm.

Run:  python examples/balancer_strategies.py
"""

from repro.core.strategies import strategy_names
from repro.experiments import build, run_scenario
from repro.reporting import format_balance_events, print_table

STEPS = 16


def main() -> None:
    never = run_scenario(build("hetero_drift", steps=STEPS, balanced=False))
    rows = [["never", f"{never.makespan * 1e3:.2f}", "1.00x", 0, 0]]
    tree_rec = None
    for name in strategy_names():
        rec = run_scenario(build("hetero_drift", steps=STEPS,
                                 balancer=name))
        rows.append([name, f"{rec.makespan * 1e3:.2f}",
                     f"{never.makespan / rec.makespan:.2f}x",
                     rec.sds_moved, rec.migration_bytes])
        if name == "tree":
            tree_rec = rec

    print_table(["strategy", "makespan (ms)", "gain", "SDs moved",
                 "migration bytes"], rows,
                title="Balancing strategies on hetero_drift "
                      f"({STEPS} steps, speeds reverse mid-run)")

    print()
    print(format_balance_events(
        tree_rec.balance_events[:6],
        title="First balance events of the tree strategy (imbalance "
              "ratio measured -> predicted):"))


if __name__ == "__main__":
    main()
