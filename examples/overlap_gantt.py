#!/usr/bin/env python
"""Visualize communication/computation overlap as a text Gantt chart.

Reproduces the paper's Fig. 4 narrative as a picture: with the
Case-1/Case-2 split, each node starts its interior (Case-2) work
immediately while ghost messages fly; without the split, lanes show idle
time at the start of each step.  One SD per node on a deliberately slow
network makes the difference visible.

Run:  python examples/overlap_gantt.py
"""

from repro import (DistributedSolver, Network, NonlocalHeatModel,
                   SubdomainGrid, UniformGrid, block_partition)
from repro.reporting import TraceRecorder, render_gantt


def run(overlap: bool):
    grid = UniformGrid(128, 128)
    model = NonlocalHeatModel(epsilon=8 * grid.h)
    sd_grid = SubdomainGrid(128, 128, 2, 2)      # one SD per node
    net = Network(latency=2e-4, bandwidth=5e6)   # slow interconnect
    solver = DistributedSolver(model, grid, sd_grid,
                               block_partition(2, 2, 4), num_nodes=4,
                               network=net, compute_numerics=False,
                               overlap=overlap)
    trace = TraceRecorder(solver.cluster)
    res = solver.run(None, num_steps=3)
    return trace, res


def main() -> None:
    for overlap in (True, False):
        trace, res = run(overlap)
        title = ("WITH Case-1/Case-2 overlap (Sec. 6.3)" if overlap
                 else "WITHOUT overlap (every SD waits for its ghosts)")
        print(f"\n=== {title} ===")
        print(f"makespan: {res.makespan * 1e3:.3f} ms "
              f"(3 steps; '2' = Case-2/interior task, 's' = Case-1 or "
              f"whole-SD task, '.' = idle)")
        # relabel intervals for a readable legend
        for iv in trace.intervals:
            iv.label = "2" if iv.label.endswith("-c2") else "s"
        print(render_gantt(trace.intervals, res.makespan, width=68))


if __name__ == "__main__":
    main()
