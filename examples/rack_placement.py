#!/usr/bin/env python
"""Rack-aware placement on an oversubscribed two-rack cluster.

On a flat network every node pair is equidistant, so it does not matter
which node a part lands on.  On a rack hierarchy it matters a lot: this
example runs the ``oversubscribed_uplink`` scenario — eight nodes in
two racks of four, each rack's uplink carrying only a quarter of a
NIC's bandwidth — under the three placement policies (DESIGN.md
substitution 5):

* ``rack``    — adjacent parts packed into the same rack, so the heavy
                ghost boundaries stay on intra-rack NIC links;
* ``none``    — the partitioner's own labels;
* ``scatter`` — parts dealt round-robin across racks, the
                placement-oblivious baseline: most boundaries cross the
                oversubscribed uplinks and queue on them.

The partition (which SDs share a part) is identical in all three runs;
only the part → node map changes — yet the makespan more than doubles
when placement ignores the topology.

Run:  python examples/rack_placement.py
"""

from repro.experiments import build, run_scenario
from repro.reporting import format_bytes_by_class, format_table

STEPS = 5


def main() -> None:
    records = {placement: run_scenario(
                   build("oversubscribed_uplink", steps=STEPS,
                         placement=placement))
               for placement in ("rack", "none", "scatter")}
    rack = records["rack"]

    spec = rack.spec["cluster"]["topology"]
    print(f"oversubscribed_uplink: 8 nodes, 2 racks of "
          f"{spec['rack_size']}, {spec['oversubscription']:g}x "
          f"oversubscribed uplinks, {STEPS} steps")
    print()
    print(format_table(
        ["placement", "makespan (ms)", "inter-rack B", "vs rack"],
        [[name, rec.makespan * 1e3,
          f"{rec.bytes_by_class.get('inter_rack', 0):,}",
          f"{rec.makespan / rack.makespan:.2f}x"]
         for name, rec in records.items()],
        title="Placement ablation (identical partition, permuted "
              "part -> node map):"))

    print()
    for name, rec in records.items():
        print(f"  {name:<8} {format_bytes_by_class(rec.bytes_by_class)}")

    gain = records["scatter"].makespan / rack.makespan
    print()
    print(f"rack-aware placement beats scattered placement "
          f"{gain:.2f}x on simulated makespan")
    assert gain > 1.0, "rack placement failed to beat scatter"
    total = sum(rack.bytes_by_class.values())
    assert all(sum(r.bytes_by_class.values()) == total
               for r in records.values()), "placement changed total bytes"
    print("OK: same traffic, different links, very different makespan")


if __name__ == "__main__":
    main()
