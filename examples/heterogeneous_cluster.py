#!/usr/bin/env python
"""Dynamic balancing on a cluster whose node speeds change over time.

Models the paper's Sec. 4 challenge 4 ("compute capacity of the
individual computational nodes may vary with time, e.g. due to scheduling
of some other task"): node 0 suffers a competing job halfway through the
run that halves its speed.  The threshold policy notices the busy-time
spread and Algorithm 1 re-distributes SDs mid-run — both when the
interference starts and again when it stops.

Run:  python examples/heterogeneous_cluster.py
"""

import numpy as np

from repro import (ConstantSpeed, DistributedSolver, LoadBalancer,
                   NonlocalHeatModel, SubdomainGrid, ThresholdPolicy,
                   UniformGrid, partition_sd_grid)
from repro.models import step_interference
from repro.reporting import ownership_counts, print_table


def make_solver(balanced: bool):
    grid = UniformGrid(128, 128)
    model = NonlocalHeatModel(epsilon=8 * grid.h)
    sd_grid = SubdomainGrid(128, 128, 8, 8)
    parts = partition_sd_grid(8, 8, 4, seed=0)

    # estimate one step's duration to place the interference window:
    # 64 SDs x 16x16 DPs x ~2*197 flops at 1e9 flop/s over 4 nodes
    step_time_guess = 64 * 256 * 400 / 1e9 / 4
    window = (5 * step_time_guess, 12 * step_time_guess)
    speeds = [step_interference(1e9, *window, slowdown=0.4),
              ConstantSpeed(1e9), ConstantSpeed(1e9), ConstantSpeed(1e9)]
    solver = DistributedSolver(
        model, grid, sd_grid, parts, num_nodes=4, speeds=speeds,
        compute_numerics=False,
        balancer=LoadBalancer(sd_grid) if balanced else None,
        policy=ThresholdPolicy(ratio=1.15) if balanced else None)
    return solver


def main() -> None:
    base = make_solver(balanced=False)
    rb = base.run(None, num_steps=20)
    bal = make_solver(balanced=True)
    rs = bal.run(None, num_steps=20)

    print(f"makespan, static partition:   {rb.makespan * 1e3:.3f} ms")
    print(f"makespan, threshold balancer: {rs.makespan * 1e3:.3f} ms")
    print(f"improvement: {rb.makespan / rs.makespan:.2f}x\n")

    events = [(step, ownership_counts(parts, 4))
              for step, parts in rs.parts_history]
    if events:
        print_table(["after step", "n0 SDs", "n1 SDs", "n2 SDs", "n3 SDs"],
                    [[s] + c for s, c in events],
                    title="SD redistribution events (node 0 slows down "
                          "mid-run, then recovers)")
    else:
        print("no redistribution events (unexpected)")

    rows = [[i, f"{d * 1e3:.3f}"] for i, d in enumerate(rs.step_durations)]
    print_table(["step", "duration (ms)"], rows,
                title="\nper-step virtual durations (balanced run)")


if __name__ == "__main__":
    main()
