#!/usr/bin/env python
"""Dynamic balancing on a cluster whose node speeds change over time.

Models the paper's Sec. 4 challenge 4 ("compute capacity of the
individual computational nodes may vary with time, e.g. due to scheduling
of some other task"): node 0 suffers a competing job halfway through the
run that halves its speed.  The threshold policy notices the busy-time
spread and Algorithm 1 re-distributes SDs mid-run — both when the
interference starts and again when it stops.

The whole configuration is the ``hetero_interference`` scenario from the
experiment registry: the interference window, the threshold policy, and
the METIS-style initial partition are all data in the spec, and the run
itself goes through :func:`repro.experiments.run_scenario`.

Run:  python examples/heterogeneous_cluster.py
"""

from repro.experiments import build, run_scenario
from repro.reporting import ownership_counts, print_table

NODES = 4
STEPS = 20


def main() -> None:
    base = run_scenario(build("hetero_interference", nodes=NODES,
                              steps=STEPS, balanced=False))
    bal = run_scenario(build("hetero_interference", nodes=NODES,
                             steps=STEPS, balanced=True))

    print(f"makespan, static partition:   {base.makespan * 1e3:.3f} ms")
    print(f"makespan, threshold balancer: {bal.makespan * 1e3:.3f} ms")
    print(f"improvement: {base.makespan / bal.makespan:.2f}x\n")

    events = [(step, ownership_counts(parts, NODES))
              for step, parts in bal.parts_events]
    if events:
        print_table(["after step", "n0 SDs", "n1 SDs", "n2 SDs", "n3 SDs"],
                    [[s] + c for s, c in events],
                    title="SD redistribution events (node 0 slows down "
                          "mid-run, then recovers)")
    else:
        print("no redistribution events (unexpected)")

    rows = [[i, f"{d * 1e3:.3f}"] for i, d in enumerate(bal.step_durations)]
    print_table(["step", "duration (ms)"], rows,
                title="\nper-step virtual durations (balanced run)")


if __name__ == "__main__":
    main()
