#!/usr/bin/env python
"""Mesh partitioning study: multilevel (METIS-style) vs geometric.

The paper uses METIS_PartMeshDual to distribute SDs "for minimum data
exchange" (Sec. 6.2).  This example partitions the Fig. 13 SD grid
(16x16 SDs) across 2..16 nodes with four partitioners and compares the
edge cut (proportional to ghost bytes per timestep), balance, and
contiguity — then verifies the cut translates into ghost traffic via the
decomposition's byte accounting.

Run:  python examples/partitioning_study.py
"""

import numpy as np

from repro import Decomposition, SubdomainGrid
from repro.partition import (block_partition, evaluate_partition,
                             grid_dual_graph, partition_graph,
                             recursive_coordinate_bisection, strip_partition)
from repro.reporting import print_table


def main() -> None:
    nx = ny = 16
    graph = grid_dual_graph(nx, ny)
    sd_grid = SubdomainGrid(800, 800, nx, ny)  # the paper's Fig. 13 mesh
    radius = 8  # eps = 8h ghost layer

    rows = []
    for k in (2, 4, 8, 16):
        candidates = {
            "multilevel": partition_graph(graph, k, seed=0),
            "blocks": block_partition(nx, ny, k),
            "strips": strip_partition(nx, ny, k),
            "rcb": recursive_coordinate_bisection(graph, k),
        }
        for name, parts in candidates.items():
            rep = evaluate_partition(graph, parts, k)
            decomp = Decomposition(sd_grid, parts, k)
            ghost = decomp.total_exchange_bytes(radius)
            rows.append([k, name, rep.cut, f"{rep.imbalance:.3f}",
                         rep.contiguous, f"{ghost:,}"])

    print_table(
        ["k", "partitioner", "edge cut", "imbalance", "contiguous",
         "ghost bytes/step"],
        rows,
        title="Partitioner comparison on the 16x16 SD dual graph "
              "(800x800 mesh, eps = 8h)")

    print("\nedge cut tracks ghost bytes: lower cut = less exchange, "
          "which is why the paper uses METIS over naive strips.")


if __name__ == "__main__":
    main()
