#!/usr/bin/env python
"""Physics checks: the nonlocal -> local limit and an L-shaped domain.

Part 1 verifies the calibration of eq. (2): as the horizon eps shrinks,
the nonlocal solution converges to the classical heat equation's (both
solved on the same grid with the same zero boundary condition).

Part 2 exercises the future-work extension: a distributed solve on an
L-shaped domain (the notch is carved out with a DomainMask), with the
active region partitioned by the multilevel partitioner.

Run:  python examples/nonlocal_limits.py
"""

import numpy as np

from repro import NonlocalHeatModel, SubdomainGrid, UniformGrid
from repro.mesh import DomainMask
from repro.partition import partition_graph
from repro.reporting import print_table, render_ownership
from repro.solver import DistributedSolver, LocalHeatSolver, SerialSolver


def nonlocal_to_local() -> None:
    from repro.solver import NonlocalOperator
    rows = []
    # shrink eps while keeping eps/h = 32 fixed: both error sources
    # (continuum O(eps^2) + ball quadrature O((h/eps)^2)) then vanish
    for n in (128, 256, 512):
        grid = UniformGrid(n, n)
        u = grid.field_from_function(
            lambda x, y: np.sin(2 * np.pi * x) * np.sin(2 * np.pi * y))
        # Laplacian of sin(2 pi x) sin(2 pi y) is -8 pi^2 u; k = 1
        exact_lap = -2.0 * (2 * np.pi) ** 2 * u
        model = NonlocalHeatModel(epsilon=32 * grid.h)
        op = NonlocalOperator(model, grid)
        applied = op.apply(u)
        m = n // 6  # compare away from the eps-wide boundary layer
        diff = np.abs(applied[m:-m, m:-m] - exact_lap[m:-m, m:-m]).max()
        rel = diff / np.abs(exact_lap).max()
        rows.append([f"{n}x{n}", f"{model.epsilon:.4f}", f"{rel:.4f}"])
    print_table(["mesh", "eps (= 32h)", "rel. error vs k*Laplacian"],
                rows,
                title="Part 1 — the nonlocal operator converges to "
                      "k*Laplacian as eps -> 0 (eq. 2 calibration); "
                      "error drops ~ eps^2")


def l_shape_solve() -> None:
    grid = UniformGrid(64, 64)
    model = NonlocalHeatModel(epsilon=4 * grid.h)
    sd_grid = SubdomainGrid(64, 64, 8, 8)
    mask = DomainMask.l_shape(sd_grid, notch=0.5)
    graph, _ = mask.active_dual_graph()
    parts = mask.scatter_parts(partition_graph(graph, 3, seed=0))

    print("\nPart 2 — L-shaped domain: active-region partition over "
          "3 nodes\n(notch in the upper-right; inactive SDs shown as "
          "their nominal owner 0):")
    print(render_ownership(sd_grid, parts))

    u0 = grid.field_from_function(
        lambda x, y: np.sin(np.pi * x) * np.sin(np.pi * y))
    solver = DistributedSolver(model, grid, sd_grid, parts, num_nodes=3,
                               work_factors=mask.work_factors(),
                               domain_mask=mask)
    res = solver.run(u0, 10)
    dp = mask.dp_mask()
    print(f"\nafter 10 steps: max |u| in L = {np.abs(res.u[dp]).max():.4f}, "
          f"max |u| in notch = {np.abs(res.u[~dp]).max():.1f} "
          f"(pinned to zero)")
    print(f"virtual makespan on 3 nodes: {res.makespan * 1e3:.3f} ms")


def main() -> None:
    nonlocal_to_local()
    l_shape_solve()


if __name__ == "__main__":
    main()
