"""Ablation C: direction-uniform SD transfer vs naive frontier peeling.

The paper argues borrowing SDs "uniformly in all the spatial directions"
preserves the contiguous METIS shape and hence the low edge cut.  This
bench moves the same number of SDs between two nodes with both policies
and compares the resulting edge cut (ghost traffic) and SP contiguity.
"""

from functools import lru_cache

import numpy as np

from repro.core.transfer import (apply_transfers, naive_select_transfers,
                                 select_transfers)
from repro.mesh.subdomain import SubdomainGrid
from repro.partition.graph import grid_dual_graph
from repro.partition.metrics import edge_cut, parts_are_contiguous
from repro.reporting.tables import format_table

SD_AXIS = 12


def surrounded_setup():
    """Receiver (node 0) holds a centre blob; donor (node 1) the rest —
    the geometry where direction choice matters most."""
    sg = SubdomainGrid(4 * SD_AXIS, 4 * SD_AXIS, SD_AXIS, SD_AXIS)
    parts = np.ones(SD_AXIS * SD_AXIS, dtype=np.int64)
    for iy in (5, 6):
        for ix in (5, 6):
            parts[sg.sd_id(ix, iy)] = 0
    return sg, parts


@lru_cache(maxsize=1)
def transfer_rows():
    graph = grid_dual_graph(SD_AXIS, SD_AXIS)
    rows = []
    for count in (4, 12, 24, 40):
        sg, parts = surrounded_setup()
        uniform = apply_transfers(parts, [select_transfers(
            sg, parts, donor=1, receiver=0, count=count)])
        naive = apply_transfers(parts, [naive_select_transfers(
            sg, parts, donor=1, receiver=0, count=count)])
        rows.append([count,
                     edge_cut(graph, uniform), parts_are_contiguous(graph, uniform),
                     edge_cut(graph, naive), parts_are_contiguous(graph, naive)])
    return rows


def test_abl_transfer_policy(benchmark):
    rows = transfer_rows()
    print("\n" + format_table(
        ["SDs moved", "uniform cut", "uniform contig",
         "naive cut", "naive contig"],
        rows,
        title="Ablation C — direction-uniform vs naive SD transfer "
              "(receiver blob surrounded by donor, 12x12 SDs)"))
    for row in rows:
        count, ucut, ucontig, ncut, ncontig = row
        assert ucontig, "uniform policy must keep SPs contiguous"
        # the disc-growth policy never does much worse than naive
        # peeling (naive can luck into hugging the domain boundary at
        # large counts, which pays no cut along the wall)
        assert ucut <= 1.5 * ncut + 1e-9
    # at moderate counts (region away from the walls) uniform wins
    mid = rows[1]  # 12 SDs moved
    assert mid[1] <= mid[3]

    sg, parts = surrounded_setup()
    benchmark(lambda: select_transfers(sg, parts, donor=1, receiver=0,
                                       count=24))
