"""Kernel-backend apply-throughput benchmark (DESIGN.md, *Kernel backends*).

Measures the per-backend cost of the hot operation behind every
scenario: the nonlocal operator apply ``L(u) = c V (W ⊛ u - S u)``, at
the paper's horizon (``eps = 8h`` → 17x17 masks) on the full grid and
on a ghost-padded SD block (the distributed/async solvers' path).

Acceptance criterion (ISSUE 2): at ``eps = 8h``, ``nx = ny = 256`` the
FFT or sparse backend must beat the direct backend by >= 2x on apply
throughput.  Measured on the development container the FFT backend's
precomputed mask transform wins by an order of magnitude; the sparse
backend roughly breaks even on the full grid (its CSR matvec streams
19M non-zeros) and exists for explicit-matrix use cases.

One-time setup (stencil assembly + per-shape state: mask FFT / CSR
matrix) is reported separately — a time-stepper amortizes it over the
whole run.

Emits JSON in the harness result schema; ``REPRO_BENCH_JSON=path``
writes it to a file (``BENCH_kernel_backends.json`` at the repo root is
the committed record).
"""

import json
import os
import time

import numpy as np

from repro.experiments import SCHEMA, write_json
from repro.mesh.grid import UniformGrid
from repro.solver.backends import backend_names
from repro.solver.kernel import NonlocalOperator
from repro.solver.model import NonlocalHeatModel

from harness import peak_rss_bytes

#: the acceptance configuration: the paper's horizon on a 256^2 mesh
NX = 256
EPS_FACTOR = 8.0
#: SD block size of the paper's scaling figures (400^2 over 8x8 SDs)
BLOCK = 50

_MIN_SECONDS = 0.4
_MAX_REPS = 60
#: acceptance floor for the best non-direct speedup; shared/noisy CI
#: runners relax it via REPRO_BENCH_MIN_SPEEDUP (the committed
#: BENCH_kernel_backends.json records the full-strength 2x run)
_MIN_SPEEDUP = float(os.environ.get("REPRO_BENCH_MIN_SPEEDUP", "2.0"))


def _time_apply(fn, arg):
    """``(seconds_per_apply, reps)`` — warm, then repeat until stable."""
    fn(arg)
    fn(arg)  # warm: builds per-shape state (FFT plan / CSR matrix)
    reps = 0
    t0 = time.perf_counter()
    while True:
        fn(arg)
        reps += 1
        elapsed = time.perf_counter() - t0
        if elapsed >= _MIN_SECONDS or reps >= _MAX_REPS:
            return elapsed / reps, reps


def measure(backend: str):
    """Throughput rows for one backend at the acceptance configuration."""
    grid = UniformGrid(NX, NX)
    model = NonlocalHeatModel(epsilon=EPS_FACTOR * grid.h)
    t0 = time.perf_counter()
    op = NonlocalOperator(model, grid, backend=backend)
    R = op.radius
    rng = np.random.default_rng(0)
    u = rng.standard_normal(grid.shape)
    padded = rng.standard_normal((BLOCK + 2 * R, BLOCK + 2 * R))
    # setup includes the first full+block applies: per-shape state
    op.apply(u)
    op.apply_block(padded)
    setup_s = time.perf_counter() - t0

    full_s, full_reps = _time_apply(op.apply, u)
    block_s, block_reps = _time_apply(op.apply_block, padded)
    return {
        "backend": backend,
        "setup_seconds": setup_s,
        "full_apply_seconds": full_s,
        "full_reps": full_reps,
        "full_dp_per_second": grid.num_points / full_s,
        "block_apply_seconds": block_s,
        "block_reps": block_reps,
        "block_dp_per_second": BLOCK * BLOCK / block_s,
        "peak_rss_bytes": peak_rss_bytes(),
    }


def run_rows():
    return {row["backend"]: row for row in map(measure, backend_names())}


def test_backend_throughput(benchmark):
    rows = run_rows()
    direct = rows["direct"]
    print(f"\nKernel backend apply throughput — mesh {NX}x{NX}, "
          f"eps = {EPS_FACTOR:g}h (mask "
          f"{int(2 * EPS_FACTOR) + 1}x{int(2 * EPS_FACTOR) + 1}), "
          f"block {BLOCK}x{BLOCK}:")
    header = (f"  {'backend':8s} {'setup':>9s} {'full apply':>11s} "
              f"{'full speedup':>13s} {'block apply':>12s} "
              f"{'block speedup':>14s}")
    print(header)
    for name, row in rows.items():
        print(f"  {name:8s} {row['setup_seconds'] * 1e3:7.1f} ms "
              f"{row['full_apply_seconds'] * 1e3:8.2f} ms "
              f"{direct['full_apply_seconds'] / row['full_apply_seconds']:12.2f}x "
              f"{row['block_apply_seconds'] * 1e3:9.3f} ms "
              f"{direct['block_apply_seconds'] / row['block_apply_seconds']:13.2f}x")

    # acceptance: FFT or sparse >= 2x direct on full-grid apply throughput
    best = max(rows["fft"]["full_dp_per_second"],
               rows["sparse"]["full_dp_per_second"])
    speedup = best / direct["full_dp_per_second"]
    print(f"  best non-direct speedup: {speedup:.2f}x "
          f"(acceptance: >= {_MIN_SPEEDUP:g}x)")
    assert speedup >= _MIN_SPEEDUP

    payload = {
        "benchmark": "kernel_backends",
        "mesh": [NX, NX],
        "eps_factor": EPS_FACTOR,
        "block": BLOCK,
        "backends": rows,
        "best_full_speedup_over_direct": speedup,
    }
    out = os.environ.get("REPRO_BENCH_JSON")
    if out:
        write_json(out, payload)
    else:
        print(json.dumps({"schema": SCHEMA, **payload}, sort_keys=True))

    benchmark(lambda: rows)  # rows cached; keep pytest-benchmark happy
