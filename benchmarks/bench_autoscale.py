"""Closed-loop autoscaling benchmark: the node-hours-vs-p99 frontier.

The two autoscaled registry scenarios run end to end, each in a fresh
subprocess (clean operator cache, true per-scenario ``ru_maxrss``),
and each *three ways*:

* ``autoscale``   — the scenario as registered: the fleet starts at
  ``min_nodes`` and the target-utilization policy grows/drains it
  through the load swing;
* ``static_min``  — the same spec with autoscaling stripped: a fixed
  ``min_nodes`` fleet riding out the peak;
* ``static_peak`` — a fixed ``max_nodes`` fleet provisioned for the
  peak the whole run.

The frontier claim (all virtual-time quantities, so hard asserts):
the autoscaled run must beat the static minimum fleet on *both* the
p99 queue wait and the shed count, while provisioning fewer
node-seconds than the static peak fleet — elasticity buys most of the
peak fleet's latency at a fraction of its cost.  Node-seconds follow
cloud billing (:func:`repro.amt.autoscale.node_seconds`): a node is
paid for from the scale-out request through retirement.

Scenarios:

* ``flash_crowd`` — one on/off burst at ~3x the minimum fleet's
  capacity; the scaler must chase a step change both ways.
* ``diurnal_autoscale`` — a sinusoidal day cycle; provisioned
  capacity should track the load curve instead of the peak.

Every variant runs once cold and then best-of-3 timed; the cold and
timed autoscale records must be bit-identical (seeded determinism of
the whole control loop, poll events included).

Floors (env-tunable for noisy runners; defaults hold with margin):

* ``REPRO_BENCH_MIN_AUTOSCALE_GAIN`` (default 1.1) — p99-wait ratio
  ``static_min / autoscale`` the flash-crowd scaler must clear.

Knobs: ``REPRO_BENCH_AUTOSCALE_HORIZON`` (default 4.0) scales both
scenarios' horizons — ``flash_crowd`` repeats its burst cycle and
``diurnal_autoscale`` its day, so larger horizons add independent load
swings rather than stretching one.

Emits JSON in the harness result schema; ``REPRO_BENCH_JSON=path``
writes it to a file (``BENCH_autoscale.json`` at the repo root is the
committed record).
"""

import json
import os
import subprocess
import sys
import time
from functools import lru_cache

from repro.experiments import SCHEMA, write_json
from repro.reporting.tables import format_table

#: horizon multiplier — more load cycles per run, same per-cycle shape
HORIZON_SCALE = float(
    os.environ.get("REPRO_BENCH_AUTOSCALE_HORIZON", "4.0"))

#: flash-crowd p99-wait gain floor: static_min p99 / autoscale p99
_MIN_GAIN = float(os.environ.get("REPRO_BENCH_MIN_AUTOSCALE_GAIN", "1.1"))

SCENARIOS = ("flash_crowd", "diurnal_autoscale")


def _run_variant(spec):
    """One cold + best-of-3 timed runs; returns (record, stats dict)."""
    from repro.amt.autoscale import node_seconds
    from repro.service import run_service_detailed, summarize_record

    cold, _ = run_service_detailed(spec)
    wall = float("inf")
    for _ in range(3):
        t0 = time.perf_counter()
        record, cluster = run_service_detailed(spec)
        wall = min(wall, time.perf_counter() - t0)
    assert record.to_dict() == cold.to_dict(), \
        f"{spec.name}: seeded rerun diverged"
    summary = summarize_record(record)
    scale_events = record.scale_events
    fleet_sizes = [e["nodes"] for e in scale_events]
    return record, {
        "offered": summary["offered"],
        "shed": summary["shed"],
        "completed": summary["completed"],
        "goodput": summary["goodput"],
        "p50_wait": summary["p50_wait"],
        "p99_wait": summary["p99_wait"],
        "p99_makespan": summary["p99_makespan"],
        "fairness": summary["fairness"],
        "node_seconds": node_seconds(scale_events,
                                     spec.cluster.num_nodes, spec.horizon),
        "scale_events": len(scale_events),
        "peak_fleet": (max(fleet_sizes) if fleet_sizes
                       else spec.cluster.num_nodes),
        "physical_events": cluster.sim.events_processed,
        "wall_seconds": wall,
    }


def _worker(name: str) -> None:
    """Subprocess entry: one scenario, three provisioning variants."""
    from harness import peak_rss_bytes

    from repro.experiments import build
    from repro.experiments.spec import ClusterSpec

    base = build(name)
    spec = base.replace(horizon=base.horizon * HORIZON_SCALE)
    a = spec.autoscale
    assert a is not None, f"{name} is not an autoscaled scenario"

    _, auto = _run_variant(spec)
    _, static_min = _run_variant(spec.replace(autoscale=None))
    _, static_peak = _run_variant(spec.replace(
        autoscale=None, cluster=ClusterSpec(num_nodes=a.max_nodes)))

    row = {
        "scenario": name,
        "horizon": spec.horizon,
        "process": spec.arrival.process,
        "min_nodes": a.min_nodes,
        "max_nodes": a.max_nodes,
        "poll_interval": a.poll_interval,
        "autoscale": auto,
        "static_min": static_min,
        "static_peak": static_peak,
        "p99_gain_vs_min": static_min["p99_wait"] / auto["p99_wait"],
        "node_seconds_saved_vs_peak":
            static_peak["node_seconds"] - auto["node_seconds"],
        "peak_rss_bytes": peak_rss_bytes(),
    }
    print("RESULT " + json.dumps(row, sort_keys=True))


def _run_worker(name):
    proc = subprocess.run(
        [sys.executable, os.path.abspath(__file__), "--worker", name],
        env=dict(os.environ), capture_output=True, text=True,
        cwd=os.path.dirname(os.path.abspath(__file__)))
    if proc.returncode != 0:
        raise RuntimeError(
            f"autoscale bench worker {name!r} failed:\n{proc.stderr}")
    for line in proc.stdout.splitlines():
        if line.startswith("RESULT "):
            return json.loads(line[len("RESULT "):])
    raise RuntimeError(
        f"autoscale bench worker {name!r} produced no result:\n"
        f"{proc.stdout}")


@lru_cache(maxsize=1)
def scenario_rows():
    return [_run_worker(name) for name in SCENARIOS]


def test_autoscale_frontier(benchmark):
    rows = scenario_rows()

    table = []
    for r in rows:
        for tag in ("autoscale", "static_min", "static_peak"):
            v = r[tag]
            table.append([
                r["scenario"] if tag == "autoscale" else "",
                tag, v["peak_fleet"], f"{v['node_seconds']:.4g}",
                v["shed"], v["completed"],
                f"{v['p99_wait'] * 1e6:.0f}", f"{v['goodput']:,.0f}",
            ])
    print("\n" + format_table(
        ["scenario", "fleet", "peak", "node-s", "shed", "done",
         "p99 wait (us)", "goodput/s"],
        table, title="closed-loop autoscaling — node-hours vs p99 "
                     "frontier"))

    for r in rows:
        name = r["scenario"]
        auto, smin, speak = (r["autoscale"], r["static_min"],
                             r["static_peak"])
        # the scaler actually moved, both directions, and respected
        # the band
        assert auto["scale_events"] > 0, f"{name}: policy never fired"
        assert auto["peak_fleet"] > r["min_nodes"], \
            f"{name}: never scaled out"
        assert auto["peak_fleet"] <= r["max_nodes"], \
            f"{name}: exceeded max_nodes"
        # frontier: beat the static minimum on BOTH tail wait and shed
        # load, at lower provisioned cost than the static peak
        assert auto["p99_wait"] < smin["p99_wait"], (
            f"{name}: autoscale p99 {auto['p99_wait']:.2e}s not below "
            f"static-min {smin['p99_wait']:.2e}s")
        assert auto["shed"] <= smin["shed"], (
            f"{name}: autoscale shed {auto['shed']} above static-min "
            f"{smin['shed']}")
        assert auto["node_seconds"] < speak["node_seconds"], (
            f"{name}: autoscale node-seconds {auto['node_seconds']:.4g} "
            f"not below static-peak {speak['node_seconds']:.4g}")
        # and the capacity it did rent was put to work
        assert auto["completed"] > smin["completed"]

    flash = next(r for r in rows if r["scenario"] == "flash_crowd")
    assert flash["p99_gain_vs_min"] >= _MIN_GAIN, (
        f"flash_crowd p99 gain {flash['p99_gain_vs_min']:.2f}x below "
        f"the {_MIN_GAIN:g}x floor")

    payload = {
        "benchmark": "autoscale",
        "horizon_scale": HORIZON_SCALE,
        "min_gain": _MIN_GAIN,
        "scenarios": rows,
    }
    out = os.environ.get("REPRO_BENCH_JSON")
    if out:
        write_json(out, payload)
    else:
        print(json.dumps({"schema": SCHEMA, **payload}, sort_keys=True))

    benchmark(lambda: rows)  # rows cached; keep pytest-benchmark happy


if __name__ == "__main__" and len(sys.argv) >= 3 and sys.argv[1] == "--worker":
    sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
    _worker(sys.argv[2])
