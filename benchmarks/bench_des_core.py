"""DES fast-path throughput: queue backends x wave batching x plan cache.

Two workloads, each run once per configuration in a fresh subprocess
(so ``REPRO_DES_*`` is read cleanly and ``ru_maxrss`` gives a true
per-configuration peak):

* **core** — a cluster-level task/message stress (no solver): every
  node receives a run of small homogeneous tasks plus a spread of
  cross-node messages.  This isolates the simulator hot path the
  tentpole rebuilt — event queue, task completion, delivery — from
  decomposition and plan-building costs.  Throughput is *logical*
  events per second: the per-event-semantics count (one completion per
  task, one delivery per message) divided by the event-loop wall time,
  so wave batching is credited for retiring the same schedule with
  fewer physical events.
* **scale_extreme** — the registry's 2048x2048 / 4096-SD / 512-node
  schedule-only scenario end to end (``REPRO_BENCH_DES_*`` scale it
  down for CI smoke).

Configurations:

* ``seed-heap`` — ``REPRO_DES_QUEUE=heap``, wave batching and the
  solver step-plan cache off: the seed's per-event heap loop.
* ``heap+wave`` — heap queue with wave batching and plan cache on.
* ``bucket+wave`` — the calendar queue with wave batching and plan
  cache on (the default fast path at scale).

Every configuration must produce the *identical* virtual clock on both
workloads — the determinism contract the fast path is built under —
and the committed record must show the fast path retiring logical
events at ``>= REPRO_BENCH_MIN_DES_SPEEDUP`` (default 5) times the
seed configuration's rate on the core workload, with the end-to-end
scenario clearing ``REPRO_BENCH_MIN_EVENTS_PER_SEC``.

Emits JSON in the harness result schema; ``REPRO_BENCH_JSON=path``
writes it to a file (``BENCH_des_core.json`` at the repo root is the
committed record).
"""

import json
import os
import subprocess
import sys
import time
from functools import lru_cache

from repro.experiments import SCHEMA, write_json
from repro.reporting.tables import format_table

#: scenario scale (CI smoke shrinks these via the environment)
MESH = int(os.environ.get("REPRO_BENCH_DES_MESH", "2048"))
SD_AXIS = int(os.environ.get("REPRO_BENCH_DES_SD_AXIS", "64"))
NODES = int(os.environ.get("REPRO_BENCH_DES_NODES", "512"))
STEPS = int(os.environ.get("REPRO_BENCH_DES_STEPS", "3"))

#: core-workload shape: tasks dominate, as in the wave fast path's
#: target regime; messages keep the queue deep enough to exercise it
CORE_NODES = int(os.environ.get("REPRO_BENCH_DES_CORE_NODES", "256"))
CORE_TASKS = int(os.environ.get("REPRO_BENCH_DES_CORE_TASKS", "192"))
CORE_MSGS = int(os.environ.get("REPRO_BENCH_DES_CORE_MSGS", "4000"))
CORE_REPS = int(os.environ.get("REPRO_BENCH_DES_CORE_REPS", "3"))

#: fast path vs seed loop on the core workload (the 5x bar)
_MIN_SPEEDUP = float(os.environ.get("REPRO_BENCH_MIN_DES_SPEEDUP", "5.0"))
#: absolute end-to-end floor for the fast configuration (logical ev/s)
_MIN_EVENTS = float(os.environ.get("REPRO_BENCH_MIN_EVENTS_PER_SEC", "20000"))

CONFIGS = (
    {"name": "seed-heap", "queue": "heap", "wave": "0", "plancache": "0"},
    {"name": "heap+wave", "queue": "heap", "wave": "1", "plancache": "1"},
    {"name": "bucket+wave", "queue": "bucket", "wave": "1",
     "plancache": "1"},
)


def _run_core():
    """The core stress in-process; returns (logical, physical, wall)."""
    from repro.amt.cluster import SimCluster

    best_wall = None
    physical = 0
    logical = CORE_MSGS + CORE_NODES * CORE_TASKS
    for _ in range(CORE_REPS):
        cluster = SimCluster(CORE_NODES, cores_per_node=1)
        # deterministic pseudo-spread of sources, targets, and sizes
        cluster.send_many([
            ((i * 7919 + 13) % CORE_NODES, (i * 104729 + 7) % CORE_NODES,
             4096 + (i % 64) * 64) for i in range(CORE_MSGS)])
        for n in range(CORE_NODES):
            for k in range(CORE_TASKS):
                cluster.submit(n, work=1e-4 * (1 + (k % 7)), label="t")
        t0 = time.perf_counter()
        cluster.run()
        wall = time.perf_counter() - t0
        physical = cluster.sim.events_processed
        makespan = cluster.now
        if best_wall is None or wall < best_wall:
            best_wall = wall
    return {"logical_events": logical, "physical_events": physical,
            "wall_seconds": best_wall, "makespan": makespan,
            "events_per_second": logical / best_wall}


def _run_scenario():
    """scale_extreme end to end; returns events, wall, makespan."""
    from repro.experiments import build
    from repro.experiments.runner import build_solver

    spec = build("scale_extreme", mesh=MESH, sd_axis=SD_AXIS, nodes=NODES,
                 steps=STEPS)
    solver = build_solver(spec)
    t0 = time.perf_counter()
    result = solver.run(None, spec.num_steps)
    wall = time.perf_counter() - t0
    return {"physical_events": solver.cluster.sim.events_processed,
            "wall_seconds": wall, "makespan": result.makespan}


def _worker(config_json: str) -> None:
    """Subprocess entry: run both workloads under one configuration."""
    from harness import peak_rss_bytes

    cfg = json.loads(config_json)
    row = {
        "config": cfg["name"],
        "queue": cfg["queue"],
        "wave_batching": cfg["wave"] == "1",
        "plan_cache": cfg["plancache"] == "1",
        "core": _run_core(),
        "scenario": _run_scenario(),
        "peak_rss_bytes": peak_rss_bytes(),
    }
    print("RESULT " + json.dumps(row, sort_keys=True))


def _run_config(cfg):
    env = dict(os.environ)
    env["REPRO_DES_QUEUE"] = cfg["queue"]
    env["REPRO_DES_WAVE"] = cfg["wave"]
    env["REPRO_DES_PLANCACHE"] = cfg["plancache"]
    env.pop("REPRO_DES_PROFILE", None)
    proc = subprocess.run(
        [sys.executable, os.path.abspath(__file__), "--worker",
         json.dumps(cfg)],
        env=env, capture_output=True, text=True,
        cwd=os.path.dirname(os.path.abspath(__file__)))
    if proc.returncode != 0:
        raise RuntimeError(
            f"DES bench worker {cfg['name']!r} failed:\n{proc.stderr}")
    for line in proc.stdout.splitlines():
        if line.startswith("RESULT "):
            return json.loads(line[len("RESULT "):])
    raise RuntimeError(
        f"DES bench worker {cfg['name']!r} produced no result:\n"
        f"{proc.stdout}")


@lru_cache(maxsize=1)
def config_rows():
    return [_run_config(cfg) for cfg in CONFIGS]


def test_des_core(benchmark):
    rows = config_rows()
    by_name = {r["config"]: r for r in rows}
    seed, fast = by_name["seed-heap"], by_name["bucket+wave"]

    # determinism first: every configuration produced the identical
    # virtual schedule on both workloads
    assert len({r["core"]["makespan"] for r in rows}) == 1
    assert len({r["scenario"]["makespan"] for r in rows}) == 1

    # logical = seed-equivalent event count: the seed configuration
    # retires every event individually, so its physical count is the
    # canonical denominator for the end-to-end throughput comparison
    scenario_logical = seed["scenario"]["physical_events"]
    for r in rows:
        r["scenario"]["logical_events"] = scenario_logical
        r["scenario"]["events_per_second"] = (
            scenario_logical / r["scenario"]["wall_seconds"])

    core_speedup = (fast["core"]["events_per_second"]
                    / seed["core"]["events_per_second"])
    scenario_speedup = (fast["scenario"]["events_per_second"]
                        / seed["scenario"]["events_per_second"])

    print("\n" + format_table(
        ["config", "core ev/s", "core phys", "scenario ev/s",
         "scenario wall (s)", "peak RSS (MB)"],
        [[r["config"], f"{r['core']['events_per_second']:,.0f}",
          r["core"]["physical_events"],
          f"{r['scenario']['events_per_second']:,.0f}",
          f"{r['scenario']['wall_seconds']:.2f}",
          f"{r['peak_rss_bytes'] / 1e6:.0f}"] for r in rows],
        title=f"DES core throughput — core {CORE_NODES}n x {CORE_TASKS}t "
              f"+ {CORE_MSGS}m, scenario {MESH}^2 / {SD_AXIS}^2 SDs / "
              f"{NODES} nodes / {STEPS} steps"))
    print(f"core speedup (bucket+wave / seed-heap): {core_speedup:.2f}x; "
          f"end-to-end: {scenario_speedup:.2f}x")

    assert core_speedup >= _MIN_SPEEDUP, (
        f"fast path retired logical events only {core_speedup:.2f}x "
        f"faster than the seed heap loop (floor {_MIN_SPEEDUP:g}x)")
    assert fast["scenario"]["events_per_second"] >= _MIN_EVENTS, (
        f"end-to-end {fast['scenario']['events_per_second']:,.0f} ev/s "
        f"below the {_MIN_EVENTS:,.0f} floor")
    # wave batching must actually shrink the physical event count
    assert (fast["core"]["physical_events"]
            < seed["core"]["physical_events"])

    payload = {
        "benchmark": "des_core",
        "scenario": "scale_extreme",
        "mesh": [MESH, MESH],
        "sd_axis": SD_AXIS,
        "nodes": NODES,
        "steps": STEPS,
        "core_workload": {"nodes": CORE_NODES, "tasks_per_node": CORE_TASKS,
                          "messages": CORE_MSGS, "reps": CORE_REPS},
        "min_speedup": _MIN_SPEEDUP,
        "min_events_per_second": _MIN_EVENTS,
        "core_speedup": core_speedup,
        "scenario_speedup": scenario_speedup,
        "configs": rows,
    }
    out = os.environ.get("REPRO_BENCH_JSON")
    if out:
        write_json(out, payload)
    else:
        print(json.dumps({"schema": SCHEMA, **payload}, sort_keys=True))

    benchmark(lambda: rows)  # rows cached; keep pytest-benchmark happy


if __name__ == "__main__" and len(sys.argv) >= 3 and sys.argv[1] == "--worker":
    sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
    _worker(sys.argv[2])
