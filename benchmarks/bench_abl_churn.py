"""Ablation G: balancing strategies under elastic cluster churn.

The ``hetero_churn`` workload loses a node mid-run (its SDs evacuated,
its in-flight tasks requeued with the recovery penalty) and gains a
faster replacement later, with an early straggle window on top.  The
comparison isolates what *adaptive* balancing buys once membership
changes: the ``never`` baseline pays for every SD stranded on the
wrong survivor after the mechanical evacuation and leaves the joiner
idle, while every registered strategy re-spreads load after each churn
event and absorbs the joiner at the next balance step.

Everything measured is virtual time (deterministic, machine-
independent, DESIGN.md substitutions 1 and 4), so the makespans,
migration bytes, and recovery costs are exact schedule properties.

Acceptance criterion (ISSUE 4): every adaptive strategy must beat the
``never`` makespan under node loss by >= 15% (floor tunable via
``REPRO_BENCH_MIN_CHURN_GAIN``).

Emits JSON in the harness result schema; ``REPRO_BENCH_JSON=path``
writes it to a file (``BENCH_churn.json`` at the repo root is the
committed record).
"""

import json
import os
from functools import lru_cache

from repro.core.strategies import strategy_names
from repro.experiments import SCHEMA, build, run_scenario, write_json
from repro.reporting.tables import format_table

from harness import peak_rss_bytes

STEPS = 16

#: adaptive-vs-never acceptance floor under churn (1.15 = the 15% bar)
_MIN_GAIN = float(os.environ.get("REPRO_BENCH_MIN_CHURN_GAIN", "1.15"))

_SPEC = build("hetero_churn", steps=STEPS)
MESH = _SPEC.mesh.nx
NODES = _SPEC.cluster.num_nodes


def _row(label, rec, never_makespan):
    return {
        "strategy": label,
        "makespan_seconds": rec.makespan,
        "gain_over_never": never_makespan / rec.makespan,
        "sds_moved": rec.sds_moved,
        "migration_bytes": rec.migration_bytes,
        "recovery_bytes": rec.recovery_bytes,
        "recovery_events": len(rec.recovery_events),
        "balance_events": len(rec.balance_events),
        "final_imbalance": (rec.imbalance_history[-1]
                            if rec.imbalance_history else 1.0),
        "peak_rss_bytes": peak_rss_bytes(),
    }


@lru_cache(maxsize=1)
def strategy_rows():
    never = run_scenario(build("hetero_churn", steps=STEPS, balanced=False))
    rows = [_row("never", never, never.makespan)]
    for name in strategy_names():
        rec = run_scenario(build("hetero_churn", steps=STEPS, balancer=name))
        rows.append(_row(name, rec, never.makespan))
    return rows


def test_abl_churn(benchmark):
    rows = strategy_rows()
    print("\n" + format_table(
        ["strategy", "makespan (ms)", "gain", "SDs moved",
         "migration B", "recovery B", "final imb"],
        [[r["strategy"], r["makespan_seconds"] * 1e3,
          f"{r['gain_over_never']:.2f}x", r["sds_moved"],
          r["migration_bytes"], r["recovery_bytes"],
          f"{r['final_imbalance']:.3f}"] for r in rows],
        title=f"Ablation G — balancing strategies under cluster churn "
              f"(mesh {MESH}x{MESH}, {NODES} nodes -1 fail +1 join, "
              f"{STEPS} steps)"))

    by_name = {r["strategy"]: r for r in rows}
    adaptive = [r for r in rows if r["strategy"] != "never"]
    assert len(adaptive) == len(strategy_names())
    # every run handled the same churn: one failure, one join
    for r in rows:
        assert r["recovery_events"] == 2, r
    # acceptance: every adaptive strategy beats never by >= 15% once a
    # node is lost (the baseline keeps the evacuation dump and never
    # uses the joiner)
    for r in adaptive:
        assert r["gain_over_never"] >= _MIN_GAIN, (
            f"{r['strategy']} gained only {r['gain_over_never']:.2f}x "
            f"over never under churn (floor {_MIN_GAIN:g}x)")
    # the never baseline still paid the mandatory evacuation traffic
    assert by_name["never"]["recovery_bytes"] > 0

    payload = {
        "benchmark": "abl_churn",
        "scenario": "hetero_churn",
        "mesh": [MESH, MESH],
        "nodes": NODES,
        "steps": STEPS,
        "min_gain": _MIN_GAIN,
        "strategies": rows,
    }
    out = os.environ.get("REPRO_BENCH_JSON")
    if out:
        write_json(out, payload)
    else:
        print(json.dumps({"schema": SCHEMA, **payload}, sort_keys=True))

    benchmark(lambda: rows)  # rows cached; keep pytest-benchmark happy
