"""Figure 11: strong scaling of the distributed solver.

Paper caption: mesh 400x400, eps = 8h, 20 timesteps, SDs 1x1/2x2/4x4/8x8;
1, 2 and 4 nodes with the paper's manual layouts (halves for 2 nodes,
quadrants for 4 — Sec. 8.3).  Every point is the
``fig11_strong_distributed`` registry scenario run through the
experiment engine.  Reproduced shape: linear speedup in node count once
#SDs >= #nodes, capped at 1 for a single SD, with a small penalty from
the ghost exchange relative to the shared-memory Fig. 9.
"""

import math

from harness import distributed_spec, distributed_speedups
from repro.experiments import run_scenario
from repro.reporting.tables import format_series

MESH = 400
SD_AXES = (1, 2, 4, 8)
NODES = (1, 2, 4)


def test_fig11_strong_scaling_distributed(benchmark):
    series = distributed_speedups(MESH, SD_AXES, NODES, "blocks")
    sd_counts = [a * a for a in SD_AXES]
    print("\n" + format_series(
        "#SDs", sd_counts,
        {f"{n}Node": series[n] for n in NODES},
        title="Figure 11 — strong scaling, distributed "
              f"(mesh {MESH}x{MESH}, eps=8h, 20 steps, block layout)"))

    for n in NODES:
        vals = [v for v in series[n] if not math.isnan(v)]
        # speedup bounded by node count
        assert all(v <= n + 1e-9 for v in vals)
        # 64 SDs: within 15% of linear (ghost exchange costs a little)
        assert series[n][-1] > 0.85 * n
    # a single SD cannot be distributed
    assert series[2][0] != series[2][0] or series[2][0] == 1.0  # nan or 1

    benchmark(lambda: run_scenario(distributed_spec(MESH, 4, 4, "blocks",
                                                    num_steps=2)))
