"""Cost-model ablation: the memory hierarchy moves the optimal config.

The ``abl_costmodel`` workload sweeps a co-optimization grid —
SD granularity (``sd_axis``) x kernel backend x rack placement — on a
two-rack switched cluster with an explicit per-node cache ladder
(:class:`repro.experiments.MemorySpec`), once under each registered
task-cost model:

* ``flat`` — the seed arithmetic: every backend prices a DP update at
  the same neighbor-count flops, so the backend axis ties exactly and
  the argmin is decided by communication and granularity alone;
* ``hierarchy`` — per-(backend, block shape) reuse-distance profiles
  priced against the memory hierarchy: the dense ``direct`` kernel
  pays its full stencil-window traffic, ``fft`` trades butterfly
  passes against row-set reuse (best at a *finer* granularity than
  flat prefers), and ``sparse`` streams with no reuse at all.

Everything measured is virtual time (deterministic, machine-
independent, DESIGN.md substitutions 1 and 7), so the per-cell
makespans — and therefore the argmin cells — are exact schedule
properties, bit-reproducible across runs and machines (a repeat of one
cell is asserted equal below).

Acceptance criterion (ISSUE 10): the hierarchy model must *shift the
optimum* — the best ``(sd_axis, backend, placement)`` cell under
``hierarchy`` differs from the flat optimum on the block-size or
backend axis, and pinning flat's choice while the hierarchy prices
tasks costs >= 5% makespan (floor tunable via
``REPRO_BENCH_MIN_COSTMODEL_SHIFT``).  A tie check pins the flat
model's degeneracy: its makespans must be exactly equal across
backends within each ``(sd_axis, placement)`` cell.

Emits JSON in the harness result schema; ``REPRO_BENCH_JSON=path``
writes it to a file (``BENCH_costmodel.json`` at the repo root is the
committed record).
"""

import itertools
import json
import os
from functools import lru_cache

from repro.experiments import SCHEMA, build, run_scenario, write_json
from repro.reporting.tables import format_table

from harness import peak_rss_bytes

STEPS = int(os.environ.get("REPRO_BENCH_COSTMODEL_STEPS", "2"))
MESH = int(os.environ.get("REPRO_BENCH_COSTMODEL_MESH", "256"))
SEED = 0

#: sweep axes — backends in registry-sorted order, placements with the
#: rack-aware default first; argmin is the first strictly-minimal cell,
#: so the iteration order is part of the deterministic contract
SD_AXES = (4, 8, 16)
BACKENDS = ("direct", "fft", "sparse")
PLACEMENTS = ("rack", "scatter")

#: optimum-shift acceptance floor (1.05 = the 5% bar)
_MIN_SHIFT = float(os.environ.get("REPRO_BENCH_MIN_COSTMODEL_SHIFT", "1.05"))

_SPEC = build("abl_costmodel", steps=STEPS, mesh=MESH, seed=SEED)
NODES = _SPEC.cluster.num_nodes


def _run_cell(cost_model, sd_axis, backend, placement):
    return run_scenario(build(
        "abl_costmodel", mesh=MESH, sd_axis=sd_axis, nodes=NODES,
        steps=STEPS, seed=SEED, backend=backend, placement=placement,
        cost_model=cost_model))


@lru_cache(maxsize=2)
def sweep_rows(cost_model):
    rows = []
    for sd_axis, backend, placement in itertools.product(
            SD_AXES, BACKENDS, PLACEMENTS):
        rec = _run_cell(cost_model, sd_axis, backend, placement)
        rows.append({
            "cost_model": rec.cost_model_resolved,
            "sd_axis": sd_axis,
            "backend": backend,
            "placement": placement,
            "makespan_seconds": rec.makespan,
            "ghost_bytes": rec.ghost_bytes,
            "peak_rss_bytes": peak_rss_bytes(),
        })
    return rows


def _argmin(rows):
    """First strictly-minimal row, in sweep order (deterministic)."""
    best = rows[0]
    for row in rows[1:]:
        if row["makespan_seconds"] < best["makespan_seconds"]:
            best = row
    return best


def _cell(row):
    return (row["sd_axis"], row["backend"], row["placement"])


def test_costmodel_shifts_optimum(benchmark):
    flat_rows = sweep_rows("flat")
    hier_rows = sweep_rows("hierarchy")
    flat_best = _argmin(flat_rows)
    hier_best = _argmin(hier_rows)

    hier_by_cell = {_cell(r): r for r in hier_rows}
    # the cost of ignoring the cache model: pin flat's chosen config,
    # price it with the hierarchy, compare against the hierarchy's pick
    flat_choice_cost = hier_by_cell[_cell(flat_best)]["makespan_seconds"]
    shift = flat_choice_cost / hier_best["makespan_seconds"]

    print("\n" + format_table(
        ["model", "best sd_axis", "best backend", "best placement",
         "makespan (ms)"],
        [["flat", flat_best["sd_axis"], flat_best["backend"],
          flat_best["placement"], flat_best["makespan_seconds"] * 1e3],
         ["hierarchy", hier_best["sd_axis"], hier_best["backend"],
          hier_best["placement"], hier_best["makespan_seconds"] * 1e3]],
        title=f"Cost-model co-optimization (mesh {MESH}x{MESH}, "
              f"{NODES} nodes in 2 racks, {STEPS} steps): "
              f"flat's pick costs {shift:.2f}x under the hierarchy"))

    # flat degeneracy: the backend axis must tie *exactly* — every
    # backend prices a DP update at the same neighbor-count flops
    flat_by_cell = {_cell(r): r["makespan_seconds"] for r in flat_rows}
    for sd_axis, placement in itertools.product(SD_AXES, PLACEMENTS):
        spans = {flat_by_cell[(sd_axis, b, placement)] for b in BACKENDS}
        assert len(spans) == 1, (
            f"flat makespans differ across backends at "
            f"sd_axis={sd_axis}, placement={placement}: {spans}")

    # acceptance: the hierarchy moves the optimum on the block-size or
    # backend axis (placement alone would not demonstrate cache effects)
    assert (flat_best["sd_axis"], flat_best["backend"]) != (
        hier_best["sd_axis"], hier_best["backend"]), (
        f"hierarchy kept flat's optimum {_cell(flat_best)}")
    assert shift >= _MIN_SHIFT, (
        f"flat's choice costs only {shift:.3f}x under the hierarchy "
        f"(floor {_MIN_SHIFT:g}x)")

    # bit-reproducibility: replaying one cell gives the same float
    repeat = _run_cell("hierarchy", hier_best["sd_axis"],
                       hier_best["backend"], hier_best["placement"])
    assert repeat.makespan == hier_best["makespan_seconds"]

    payload = {
        "benchmark": "costmodel",
        "scenario": "abl_costmodel",
        "mesh": [MESH, MESH],
        "nodes": NODES,
        "steps": STEPS,
        "seed": SEED,
        "memory": _SPEC.cluster.memory.to_dict(),
        "min_shift": _MIN_SHIFT,
        "flat_best": flat_best,
        "hierarchy_best": hier_best,
        "flat_choice_cost_under_hierarchy": flat_choice_cost,
        "shift": shift,
        "cells": flat_rows + hier_rows,
    }
    out = os.environ.get("REPRO_BENCH_JSON")
    if out:
        write_json(out, payload)
    else:
        print(json.dumps({"schema": SCHEMA, **payload}, sort_keys=True))

    benchmark(lambda: hier_rows)  # rows cached; keep pytest-benchmark happy
