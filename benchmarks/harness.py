"""Shared drivers for the figure-reproduction benchmarks.

Every ``bench_fig*.py`` file regenerates one figure of the paper's
evaluation (Sec. 8).  Since the experiment-engine refactor the drivers
here no longer hand-assemble solvers: each configuration is a
:class:`repro.experiments.ScenarioSpec` built from the registry
(``fig09_strong_shared`` / ``fig11_strong_distributed`` point
factories), executed by :func:`repro.experiments.run_scenario`, and the
sweeps fan their points through :func:`repro.experiments.run_sweep`
(process-parallel when ``REPRO_SWEEP_PROCS`` is set, serial and
bit-identical otherwise).

The paper's common parameters live in the registry: eps = 8h, 20
timesteps, SD layouts as captioned, 1 GF/s simulated cores, ~5 us task
spawn overhead.  All scaling runs use ``compute_numerics=False``: the
numerics are validated bit-near against the serial solver in
``tests/``; the figures measure the *schedule* (virtual makespan),
which is what the paper plots.  Speedups are therefore deterministic
and machine-independent.
"""

from __future__ import annotations

import os
import resource
import sys
from functools import lru_cache
from typing import Dict, List, Sequence

from repro.experiments import (EPS_FACTOR, NUM_STEPS, SPAWN_OVERHEAD, build,
                               run_scenario, run_sweep)
from repro.experiments.registry import CORE_SPEED

__all__ = ["EPS_FACTOR", "NUM_STEPS", "CORE_SPEED", "SPAWN_OVERHEAD",
           "peak_rss_bytes", "shared_spec", "distributed_spec",
           "run_shared_memory", "run_distributed", "sweep",
           "shared_memory_speedups", "distributed_speedups",
           "weak_scaling_speedups"]


def peak_rss_bytes() -> int:
    """Peak resident set size of this process so far, in bytes.

    The benchmarks record this next to their timing rows so the
    committed ``BENCH_*.json`` files track memory alongside speed.
    ``ru_maxrss`` is a process-wide high-water mark (KiB on Linux,
    bytes on macOS), so per-row values are monotone within one run;
    isolate configurations in subprocesses for true per-config peaks.
    """
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - macOS units
        return int(peak)
    return int(peak) * 1024


def shared_spec(mesh: int, sd_per_axis: int, cpus: int,
                num_steps: int = NUM_STEPS):
    """Spec for a shared-memory run (Figs. 9-10): one simulated node
    with ``cpus`` cores, no ghost messages."""
    return build("fig09_strong_shared", mesh=mesh, sd_axis=sd_per_axis,
                 cpus=cpus, steps=num_steps)


def distributed_spec(mesh: int, sd_per_axis: int, nodes: int,
                     partitioner: str = "blocks",
                     num_steps: int = NUM_STEPS):
    """Spec for a distributed run (Figs. 11-13): single-core nodes,
    ghost messages, manual block layout or METIS-style partitioning."""
    return build("fig11_strong_distributed", mesh=mesh, sd_axis=sd_per_axis,
                 nodes=nodes, partitioner=partitioner, steps=num_steps)


def run_shared_memory(mesh: int, sd_per_axis: int, cpus: int,
                      num_steps: int = NUM_STEPS) -> float:
    """Virtual makespan of the shared-memory async solver (Figs. 9-10)."""
    return run_scenario(shared_spec(mesh, sd_per_axis, cpus,
                                    num_steps)).makespan


def run_distributed(mesh: int, sd_per_axis: int, nodes: int,
                    partitioner: str = "blocks",
                    num_steps: int = NUM_STEPS) -> float:
    """Virtual makespan of the distributed solver (Figs. 11-13)."""
    return run_scenario(distributed_spec(mesh, sd_per_axis, nodes,
                                         partitioner, num_steps)).makespan


def sweep(specs) -> List[float]:
    """Makespans of a list of scenario specs, in input order.

    Serial by default (the figure sweeps are seconds of work); set
    ``REPRO_SWEEP_PROCS=N`` to fan out across N worker processes — the
    results are bit-identical either way.
    """
    procs = int(os.environ.get("REPRO_SWEEP_PROCS", "0"))
    records = run_sweep(specs, serial=procs <= 1,
                        max_workers=procs if procs > 1 else None)
    return [rec.makespan for rec in records]


@lru_cache(maxsize=None)
def shared_memory_speedups(mesh: int, sd_counts: Sequence[int],
                           cpu_counts: Sequence[int]) -> Dict[int, List[float]]:
    """Speedup series keyed by CPU count (baseline: 1 CPU, same config)."""
    cpus = sorted(set((1,) + tuple(cpu_counts)))
    points = [(sd, c) for sd in sd_counts for c in cpus]
    times = dict(zip(points, sweep(
        [shared_spec(mesh, sd, c) for sd, c in points])))
    return {c: [times[(sd, 1)] / times[(sd, c)] for sd in sd_counts]
            for c in cpu_counts}


@lru_cache(maxsize=None)
def distributed_speedups(mesh: int, sd_counts: Sequence[int],
                         node_counts: Sequence[int],
                         partitioner: str = "blocks") -> Dict[int, List[float]]:
    """Speedup series keyed by node count (baseline: 1 node, same config)."""
    nodes = sorted(set((1,) + tuple(node_counts)))
    points = [(sd, n) for sd in sd_counts for n in nodes if n <= sd * sd]
    times = dict(zip(points, sweep(
        [distributed_spec(mesh, sd, n, partitioner) for sd, n in points])))
    return {n: [times[(sd, 1)] / times[(sd, n)] if n <= sd * sd
                else float("nan") for sd in sd_counts]
            for n in node_counts}


@lru_cache(maxsize=None)
def weak_scaling_speedups(sd_size: int, sd_axis_counts: Sequence[int],
                          worker_counts: Sequence[int],
                          distributed: bool,
                          partitioner: str = "blocks") -> Dict[int, List[float]]:
    """Weak-scaling series (Figs. 10 and 12): SD size fixed, mesh grows.

    Speedup of ``w`` workers over 1 worker at the same problem size.
    """
    workers = sorted(set((1,) + tuple(worker_counts)))

    def spec_for(n: int, w: int):
        if distributed:
            return build("fig12_weak_distributed", sd_size=sd_size,
                         sd_axis=n, nodes=w, partitioner=partitioner)
        return build("fig10_weak_shared", sd_size=sd_size, sd_axis=n,
                     cpus=w)

    points = [(n, w) for n in sd_axis_counts for w in workers
              if not (distributed and w > n * n)]
    times = dict(zip(points, sweep([spec_for(n, w) for n, w in points])))
    out: Dict[int, List[float]] = {w: [] for w in worker_counts}
    for n in sd_axis_counts:
        for w in worker_counts:
            if w == 1:
                out[w].append(1.0)
            elif distributed and w > n * n:
                out[w].append(float("nan"))
            else:
                out[w].append(times[(n, 1)] / times[(n, w)])
    return out
