"""Shared drivers for the figure-reproduction benchmarks.

Every ``bench_fig*.py`` file regenerates one figure of the paper's
evaluation (Sec. 8).  The drivers here build the paper's exact
configurations:

* shared-memory runs (Figs. 9-10): one simulated node with 1/2/4 cores,
  one task per SD per timestep;
* distributed runs (Figs. 11-13): 1..16 single-core nodes, ghost
  messages, Case-1/Case-2 overlap, METIS-style or manual partitioning;
* the common parameters: eps = 8h, 20 timesteps, SD layouts as captioned.

All scaling runs use ``compute_numerics=False``: the numerics are
validated bit-near against the serial solver in ``tests/``; the figures
measure the *schedule* (virtual makespan), which is what the paper
plots.  Speedups are therefore deterministic and machine-independent.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.amt.cluster import Network
from repro.mesh.grid import UniformGrid
from repro.mesh.subdomain import SubdomainGrid
from repro.partition.geometric import block_partition
from repro.partition.kway import partition_sd_grid
from repro.solver.distributed import DistributedSolver
from repro.solver.model import NonlocalHeatModel

#: The paper's horizon ratio (all scaling figures): eps = 8 h.
EPS_FACTOR = 8
#: The paper's timestep count for scaling figures.
NUM_STEPS = 20
#: Simulated per-core speed (flops / virtual second).
CORE_SPEED = 1e9
#: Serial per-task scheduling cost (HPX task overheads are ~1 us; we
#: include ghost-buffer packing in the same knob).
SPAWN_OVERHEAD = 5e-6


def _network() -> Network:
    """Fresh default network (egress state must not leak across runs)."""
    return Network()


def make_problem(mesh: int, sd_per_axis: int) -> Tuple[NonlocalHeatModel,
                                                       UniformGrid,
                                                       SubdomainGrid]:
    """The paper's configuration: ``mesh x mesh`` DPs, eps = 8h, square SDs."""
    grid = UniformGrid(mesh, mesh)
    model = NonlocalHeatModel(epsilon=EPS_FACTOR * grid.h)
    sd_grid = SubdomainGrid(mesh, mesh, sd_per_axis, sd_per_axis)
    return model, grid, sd_grid


def run_shared_memory(mesh: int, sd_per_axis: int, cpus: int,
                      num_steps: int = NUM_STEPS) -> float:
    """Virtual makespan of the shared-memory async solver (Figs. 9-10).

    Modelled as one simulated node with ``cpus`` cores — no ghost
    messages, SD tasks drained by the cores exactly as the futurized
    thread-pool drains them.
    """
    model, grid, sd_grid = make_problem(mesh, sd_per_axis)
    parts = np.zeros(sd_grid.num_subdomains, dtype=np.int64)
    solver = DistributedSolver(model, grid, sd_grid, parts, num_nodes=1,
                               cores_per_node=cpus, network=_network(),
                               compute_numerics=False,
                               spawn_overhead=SPAWN_OVERHEAD)
    return solver.run(None, num_steps).makespan


def run_distributed(mesh: int, sd_per_axis: int, nodes: int,
                    partitioner: str = "blocks",
                    num_steps: int = NUM_STEPS) -> float:
    """Virtual makespan of the distributed solver (Figs. 11-13).

    ``partitioner`` selects the paper's manual block layout (Sec. 8.3,
    1/2/4 nodes) or the METIS-style multilevel partitioner (Figs. 12-13).
    """
    model, grid, sd_grid = make_problem(mesh, sd_per_axis)
    if nodes > sd_grid.num_subdomains:
        raise ValueError(f"{nodes} nodes need >= {nodes} SDs")
    if partitioner == "blocks":
        parts = block_partition(sd_per_axis, sd_per_axis, nodes)
    elif partitioner == "metis":
        parts = partition_sd_grid(sd_per_axis, sd_per_axis, nodes, seed=0)
    else:
        raise ValueError(f"unknown partitioner {partitioner!r}")
    solver = DistributedSolver(model, grid, sd_grid, parts, num_nodes=nodes,
                               cores_per_node=1, network=_network(),
                               compute_numerics=False,
                               spawn_overhead=SPAWN_OVERHEAD)
    return solver.run(None, num_steps).makespan


@lru_cache(maxsize=None)
def shared_memory_speedups(mesh: int, sd_counts: Sequence[int],
                           cpu_counts: Sequence[int]) -> Dict[int, List[float]]:
    """Speedup series keyed by CPU count (baseline: 1 CPU, same config)."""
    out: Dict[int, List[float]] = {c: [] for c in cpu_counts}
    for sd in sd_counts:
        base = run_shared_memory(mesh, sd, 1)
        for c in cpu_counts:
            t = base if c == 1 else run_shared_memory(mesh, sd, c)
            out[c].append(base / t)
    return out


@lru_cache(maxsize=None)
def distributed_speedups(mesh: int, sd_counts: Sequence[int],
                         node_counts: Sequence[int],
                         partitioner: str = "blocks") -> Dict[int, List[float]]:
    """Speedup series keyed by node count (baseline: 1 node, same config)."""
    out: Dict[int, List[float]] = {n: [] for n in node_counts}
    for sd in sd_counts:
        base = run_distributed(mesh, sd, 1, partitioner)
        for n in node_counts:
            if n > sd * sd:
                out[n].append(float("nan"))
                continue
            t = base if n == 1 else run_distributed(mesh, sd, n, partitioner)
            out[n].append(base / t)
    return out


@lru_cache(maxsize=None)
def weak_scaling_speedups(sd_size: int, sd_axis_counts: Sequence[int],
                          worker_counts: Sequence[int],
                          distributed: bool,
                          partitioner: str = "blocks") -> Dict[int, List[float]]:
    """Weak-scaling series (Figs. 10 and 12): SD size fixed, mesh grows.

    Speedup of ``w`` workers over 1 worker at the same problem size.
    """
    out: Dict[int, List[float]] = {w: [] for w in worker_counts}
    for n in sd_axis_counts:
        mesh = sd_size * n
        if distributed:
            base = run_distributed(mesh, n, 1, partitioner)
        else:
            base = run_shared_memory(mesh, n, 1)
        for w in worker_counts:
            if w == 1:
                out[w].append(1.0)
                continue
            if distributed:
                if w > n * n:
                    out[w].append(float("nan"))
                    continue
                t = run_distributed(mesh, n, w, partitioner)
            else:
                t = run_shared_memory(mesh, n, w)
            out[w].append(base / t)
    return out
