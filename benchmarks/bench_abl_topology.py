"""Ablation H: rack-aware placement under a hierarchical network topology.

The ``oversubscribed_uplink`` workload runs eight nodes in two racks of
four behind heavily oversubscribed uplinks (each uplink carries
``rack_size / oversubscription = 1/4`` of a NIC's bandwidth), on a
communication-dominated network.  The partition is identical across
rows — only the **part → node placement** changes:

* ``rack`` — adjacent parts packed into the same rack
  (:func:`repro.partition.rack_aware_mapping`), so the heavy part
  boundaries exchange ghosts over intra-rack NIC links;
* ``none`` — the partitioner's own labels (METIS-style recursive
  bisection happens to be rack-coherent here, which is exactly what
  the identity-fallback in the rack mapping preserves);
* ``scatter`` — parts dealt round-robin across racks, the
  placement-oblivious baseline: most part boundaries cross the
  oversubscribed uplinks and queue on them.

Everything measured is virtual time (deterministic, machine-
independent, DESIGN.md substitutions 1 and 5), so the makespans and
per-route-class byte splits are exact schedule properties.

Acceptance criterion (ISSUE 5): rack-aware placement must beat
scattered placement on simulated makespan by >= 10% (floor tunable via
``REPRO_BENCH_MIN_RACK_GAIN``).  A second check pins the mechanism: the
rack placement must put strictly fewer bytes on the inter-rack uplinks
than the scattered one.

Emits JSON in the harness result schema; ``REPRO_BENCH_JSON=path``
writes it to a file (``BENCH_topology.json`` at the repo root is the
committed record).
"""

import json
import os
from functools import lru_cache

from repro.experiments import SCHEMA, build, run_scenario, write_json
from repro.reporting.tables import format_table

from harness import peak_rss_bytes

STEPS = 5
SEED = 0

#: rack-vs-scatter acceptance floor (1.10 = the 10% bar)
_MIN_GAIN = float(os.environ.get("REPRO_BENCH_MIN_RACK_GAIN", "1.10"))

_SPEC = build("oversubscribed_uplink", steps=STEPS, seed=SEED)
MESH = _SPEC.mesh.nx
NODES = _SPEC.cluster.num_nodes
OVERSUB = _SPEC.cluster.topology.oversubscription


def _row(rec):
    return {
        "placement": rec.spec["partition"]["placement"],
        "makespan_seconds": rec.makespan,
        "ghost_bytes": rec.ghost_bytes,
        "bytes_by_class": rec.bytes_by_class,
        "inter_rack_bytes": rec.bytes_by_class.get("inter_rack", 0),
        "intra_rack_bytes": rec.bytes_by_class.get("intra_rack", 0),
        "peak_rss_bytes": peak_rss_bytes(),
    }


@lru_cache(maxsize=1)
def placement_rows():
    return [_row(run_scenario(build("oversubscribed_uplink", steps=STEPS,
                                    seed=SEED, placement=placement)))
            for placement in ("rack", "none", "scatter")]


def test_abl_topology(benchmark):
    rows = placement_rows()
    by_name = {r["placement"]: r for r in rows}
    rack, scatter = by_name["rack"], by_name["scatter"]
    gain = scatter["makespan_seconds"] / rack["makespan_seconds"]

    print("\n" + format_table(
        ["placement", "makespan (ms)", "inter-rack B", "intra-rack B",
         "vs rack"],
        [[r["placement"], r["makespan_seconds"] * 1e3,
          f"{r['inter_rack_bytes']:,}", f"{r['intra_rack_bytes']:,}",
          f"{r['makespan_seconds'] / rack['makespan_seconds']:.2f}x"]
         for r in rows],
        title=f"Ablation H — placement on oversubscribed uplinks "
              f"(mesh {MESH}x{MESH}, {NODES} nodes in 2 racks, "
              f"{OVERSUB:g}:{_SPEC.cluster.topology.rack_size} "
              f"oversubscription, {STEPS} steps)"))

    # acceptance: rack-aware placement beats scattered placement
    assert gain >= _MIN_GAIN, (
        f"rack placement gained only {gain:.2f}x over scattered "
        f"(floor {_MIN_GAIN:g}x)")
    # the mechanism, not just the outcome: fewer bytes on the uplinks
    assert rack["inter_rack_bytes"] < scatter["inter_rack_bytes"]
    # placement permutes labels only — total traffic is conserved
    totals = {sum(r["bytes_by_class"].values()) for r in rows}
    assert len(totals) == 1
    # rack placement never loses to the partitioner's own labels
    assert (rack["makespan_seconds"]
            <= by_name["none"]["makespan_seconds"] * (1 + 1e-12))

    payload = {
        "benchmark": "abl_topology",
        "scenario": "oversubscribed_uplink",
        "mesh": [MESH, MESH],
        "nodes": NODES,
        "steps": STEPS,
        "seed": SEED,
        "topology": _SPEC.cluster.topology.to_dict(),
        "min_gain": _MIN_GAIN,
        "rack_over_scatter_gain": gain,
        "placements": rows,
    }
    out = os.environ.get("REPRO_BENCH_JSON")
    if out:
        write_json(out, payload)
    else:
        print(json.dumps({"schema": SCHEMA, **payload}, sort_keys=True))

    benchmark(lambda: rows)  # rows cached; keep pytest-benchmark happy
