"""Figure 8: total numerical error vs mesh size h = 1/2^n, n = 2..6.

Paper: "Plot of the total error e = sum_k e_k for different mesh sizes
h = 1/2^n, n = 2..6.  We expect the numerical error to decrease as the
mesh size decreases."  Each sweep point is the registry scenario
``fig08_convergence`` (serial manufactured solve, continuum source,
dt ~ h^2) executed through the experiment runner; the reproduced shape
is the monotone decrease of e.
"""

from functools import lru_cache

from repro.experiments import build, run_scenario, run_sweep
from repro.reporting.tables import format_series

#: the paper's mesh sizes: h = 1/2^n  ->  nx = 2^n
EXPONENTS = (2, 3, 4, 5, 6)
#: eps = 2h keeps the ball resolvable on the coarsest 4x4 mesh while the
#: scaling figures use the paper's 8h (which needs nx >= 16).
EPS_FACTOR = 2
NUM_STEPS = 10


@lru_cache(maxsize=1)
def convergence_series():
    """(h values, total errors) across the paper's mesh sweep."""
    specs = [build("fig08_convergence", exponent=n, steps=NUM_STEPS,
                   eps_factor=EPS_FACTOR) for n in EXPONENTS]
    records = run_sweep(specs, serial=True)
    hs = [1.0 / (2 ** n) for n in EXPONENTS]
    return hs, [rec.total_error for rec in records]


def test_fig08_error_decreases_with_h(benchmark):
    hs, errors = convergence_series()
    print("\n" + format_series(
        "h", hs, {"total error e": errors},
        title="Figure 8 — discretization error vs mesh size "
              f"(eps = {EPS_FACTOR}h, dt ~ h^2, {NUM_STEPS} steps)"))
    # reproduced shape: error decreases monotonically as h decreases
    for coarse, fine in zip(errors, errors[1:]):
        assert fine < coarse
    # benchmark unit: the mid-size solve the sweep is made of
    benchmark(lambda: run_scenario(
        build("fig08_convergence", exponent=4, steps=2,
              eps_factor=EPS_FACTOR)))
