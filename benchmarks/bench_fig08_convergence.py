"""Figure 8: total numerical error vs mesh size h = 1/2^n, n = 2..6.

Paper: "Plot of the total error e = sum_k e_k for different mesh sizes
h = 1/2^n, n = 2..6.  We expect the numerical error to decrease as the
mesh size decreases."  We integrate the manufactured problem (continuum
source, eq. 6) with dt tied to h^2 and report e; the reproduced shape is
the monotone decrease.
"""

from functools import lru_cache

import pytest

from repro.solver.serial import solve_manufactured
from repro.reporting.tables import format_series

#: the paper's mesh sizes: h = 1/2^n  ->  nx = 2^n
EXPONENTS = (2, 3, 4, 5, 6)
#: eps = 2h keeps the ball resolvable on the coarsest 4x4 mesh while the
#: scaling figures use the paper's 8h (which needs nx >= 16).
EPS_FACTOR = 2
NUM_STEPS = 10


@lru_cache(maxsize=1)
def convergence_series():
    """(h values, total errors) across the paper's mesh sweep."""
    hs, errors = [], []
    for n in EXPONENTS:
        nx = 2 ** n
        res = solve_manufactured(nx, eps_factor=EPS_FACTOR,
                                 num_steps=NUM_STEPS,
                                 dt=0.05 / (nx * nx),  # dt ~ h^2
                                 source_mode="continuum")
        hs.append(1.0 / nx)
        errors.append(res.total_error)
    return hs, errors


def test_fig08_error_decreases_with_h(benchmark):
    hs, errors = convergence_series()
    print("\n" + format_series(
        "h", hs, {"total error e": errors},
        title="Figure 8 — discretization error vs mesh size "
              f"(eps = {EPS_FACTOR}h, dt ~ h^2, {NUM_STEPS} steps)"))
    # reproduced shape: error decreases monotonically as h decreases
    for coarse, fine in zip(errors, errors[1:]):
        assert fine < coarse
    # benchmark unit: the mid-size solve the sweep is made of
    benchmark(lambda: solve_manufactured(16, eps_factor=EPS_FACTOR,
                                         num_steps=2,
                                         source_mode="continuum"))
