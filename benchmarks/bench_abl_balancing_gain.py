"""Ablation D: load balancing on vs off under realistic imbalance sources.

Measures the makespan gain of Algorithm 1 for the two imbalance sources
the paper motivates: (i) static node-speed heterogeneity, (ii) a crack
lightening part of the domain; plus (iii) both combined.  The "off"
baseline is the static METIS-style partition.  Every configuration is
the ``abl_balancing_gain`` registry scenario (speeds, cracks, and the
balancing policy all live in the spec).
"""

from functools import lru_cache

from repro.experiments import build, run_scenario
from repro.reporting.tables import format_table

NUM_STEPS = 15

#: geometry comes from the registry scenario — read it off the spec so
#: the printed configuration is always the one that ran
_SPEC = build("abl_balancing_gain", steps=NUM_STEPS)
MESH = _SPEC.mesh.nx
NODES = _SPEC.cluster.num_nodes


def run(source: str, balanced: bool) -> float:
    return run_scenario(build("abl_balancing_gain", source=source,
                              balanced=balanced, steps=NUM_STEPS)).makespan


@lru_cache(maxsize=1)
def gain_rows():
    rows = []
    for name in ("hetero", "crack", "both"):
        off = run(name, False)
        on = run(name, True)
        rows.append([name, off * 1e3, on * 1e3, off / on])
    return rows


def test_abl_balancing_gain(benchmark):
    rows = gain_rows()
    print("\n" + format_table(
        ["imbalance source", "LB off (ms)", "LB on (ms)", "speedup"],
        rows,
        title="Ablation D — load balancing gain "
              f"(mesh {MESH}x{MESH}, {NODES} nodes, {NUM_STEPS} steps)"))
    for name, off, on, gain in rows:
        assert gain > 1.0, f"balancing must help under '{name}' imbalance"
    # static heterogeneity (speeds 0.5..2 GF/s) leaves >= 20% on the table
    assert rows[0][3] > 1.2

    benchmark(lambda: run("hetero", True))
