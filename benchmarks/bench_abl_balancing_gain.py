"""Ablation D: load balancing on vs off under realistic imbalance sources.

Measures the makespan gain of Algorithm 1 for the two imbalance sources
the paper motivates: (i) static node-speed heterogeneity, (ii) a crack
lightening part of the domain; plus (iii) both combined.  The "off"
baseline is the static METIS-style partition.
"""

from functools import lru_cache

import numpy as np

from harness import make_problem
from repro.amt.cluster import ConstantSpeed
from repro.core.balancer import LoadBalancer
from repro.core.policy import IntervalPolicy
from repro.models.crack import Crack, crack_work_factors
from repro.partition.kway import partition_sd_grid
from repro.reporting.tables import format_table
from repro.solver.distributed import DistributedSolver

MESH = 256
SD_AXIS = 8
NODES = 4
NUM_STEPS = 15


def scenario(name):
    model, grid, sd_grid = make_problem(MESH, SD_AXIS)
    speeds = None
    wf = None
    if name in ("hetero", "both"):
        speeds = [ConstantSpeed(s) for s in (0.5e9, 1e9, 1.5e9, 2e9)]
    if name in ("crack", "both"):
        cracks = [Crack.horizontal(0.3, 0.05, 0.95),
                  Crack.horizontal(0.42, 0.05, 0.95)]
        wf = crack_work_factors(sd_grid, cracks, horizon=2 * model.epsilon,
                                floor=0.25)
    return model, grid, sd_grid, speeds, wf


def run(name: str, balanced: bool) -> float:
    model, grid, sd_grid, speeds, wf = scenario(name)
    parts = partition_sd_grid(SD_AXIS, SD_AXIS, NODES, seed=0)
    solver = DistributedSolver(
        model, grid, sd_grid, parts, num_nodes=NODES, speeds=speeds,
        work_factors=wf, compute_numerics=False,
        balancer=LoadBalancer(sd_grid) if balanced else None,
        policy=IntervalPolicy(1) if balanced else None)
    return solver.run(None, NUM_STEPS).makespan


@lru_cache(maxsize=1)
def gain_rows():
    rows = []
    for name in ("hetero", "crack", "both"):
        off = run(name, False)
        on = run(name, True)
        rows.append([name, off * 1e3, on * 1e3, off / on])
    return rows


def test_abl_balancing_gain(benchmark):
    rows = gain_rows()
    print("\n" + format_table(
        ["imbalance source", "LB off (ms)", "LB on (ms)", "speedup"],
        rows,
        title="Ablation D — load balancing gain "
              f"(mesh {MESH}x{MESH}, {NODES} nodes, {NUM_STEPS} steps)"))
    for name, off, on, gain in rows:
        assert gain > 1.0, f"balancing must help under '{name}' imbalance"
    # static heterogeneity (speeds 0.5..2 GF/s) leaves >= 20% on the table
    assert rows[0][3] > 1.2

    benchmark(lambda: run("hetero", True))
