"""Figure 9: strong scaling of the shared-memory asynchronous solver.

Paper caption: mesh 400x400, eps = 8h, 20 timesteps; the mesh is divided
into 1x1 / 2x2 / 4x4 / 8x8 equal SDs; speedup of 1/2/4 CPUs with the
single-CPU time as baseline.  Every point is the ``fig09_strong_shared``
registry scenario run through the experiment engine.  Reproduced shape:
speedup is pinned at 1 when there is a single SD (nothing to
parallelize), and approaches the CPU count once #SDs >= #CPUs.
"""

import math

from harness import shared_memory_speedups, shared_spec
from repro.experiments import run_scenario
from repro.reporting.tables import format_series

MESH = 400
SD_AXES = (1, 2, 4, 8)          # 1, 4, 16, 64 SDs
CPUS = (1, 2, 4)


def test_fig09_strong_scaling_shared(benchmark):
    series = shared_memory_speedups(MESH, SD_AXES, CPUS)
    sd_counts = [a * a for a in SD_AXES]
    print("\n" + format_series(
        "#SDs", sd_counts,
        {f"{c}CPU": series[c] for c in CPUS},
        title="Figure 9 — strong scaling, shared memory "
              f"(mesh {MESH}x{MESH}, eps=8h, 20 steps)"))

    for c in CPUS:
        # single SD cannot be split: speedup exactly 1
        assert series[c][0] == 1.0
        # speedup never exceeds the CPU count
        assert all(s <= c + 1e-9 for s in series[c])
        # with 64 SDs the speedup saturates near the CPU count
        assert series[c][-1] > 0.9 * c
    # monotone in #SDs for multi-CPU runs
    for c in (2, 4):
        assert all(b >= a - 1e-9 for a, b in zip(series[c], series[c][1:]))
    assert not any(math.isnan(s) for c in CPUS for s in series[c])

    benchmark(lambda: run_scenario(shared_spec(MESH, 4, 4, num_steps=2)))
