"""Ablation B: hiding the data-exchange time (Sec. 6.3) on vs off.

The paper's Case-1/Case-2 split lets interior computation run while
ghost messages are in flight.  This bench runs the ``abl_overlap``
registry scenario with the split enabled and disabled across
increasingly expensive networks — the gap is exactly the exchange time
the technique hides.
"""

from functools import lru_cache

from repro.experiments import build, run_scenario
from repro.reporting.tables import format_table

NUM_STEPS = 5

#: the registry scenario fixes the geometry (one SD per node: with many
#: SDs queued per core, waiting is already hidden by unrelated SD tasks,
#: so the Case-1/Case-2 split is exposed exactly in the paper's "SD
#: bigger than eps" regime of Fig. 2) — read it off the spec so the
#: printed configuration is always the one that ran
_SPEC = build("abl_overlap", steps=NUM_STEPS)
MESH = _SPEC.mesh.nx
NODES = _SPEC.cluster.num_nodes

#: (label, latency s, bandwidth B/s) — the slow tiers push the ghost
#: transfer time toward the per-SD compute time
NETWORKS = [
    ("fast", 5e-6, 1.25e9),
    ("medium", 1e-4, 1e7),
    ("slow", 1e-3, 1e6),
]


def run(overlap: bool, latency: float, bandwidth: float) -> float:
    return run_scenario(build(
        "abl_overlap", latency=latency, bandwidth=bandwidth,
        overlap=overlap, steps=NUM_STEPS)).makespan


@lru_cache(maxsize=1)
def overlap_rows():
    rows = []
    for label, lat, bw in NETWORKS:
        on = run(True, lat, bw)
        off = run(False, lat, bw)
        rows.append([label, on * 1e3, off * 1e3, off / on])
    return rows


def test_abl_overlap(benchmark):
    rows = overlap_rows()
    print("\n" + format_table(
        ["network", "overlap on (ms)", "overlap off (ms)", "off/on"],
        rows,
        title="Ablation B — hiding the data exchange (Case-1/Case-2 "
              f"split), mesh {MESH}x{MESH}, {NODES} nodes"))
    for row in rows:
        assert row[3] >= 1.0 - 1e-9, "overlap must never hurt"
    # on the slow network the hiding must yield a tangible win
    assert rows[-1][3] > 1.05

    benchmark(lambda: run(True, 1e-4, 1e7))
