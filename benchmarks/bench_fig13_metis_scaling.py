"""Figure 13: distributed scaling with METIS partitioning, 1..16 nodes.

Paper caption: mesh 800x800, 16x16 SDs of 50x50 DPs, eps = 8h, 20
timesteps, METIS distribution across a varying number of nodes, plotted
against the optimal (linear) speedup.  The node sweep is a list of
``fig13_metis_scaling`` registry scenarios fanned through the engine's
``run_sweep``.  Reproduced shape: near-linear speedup with a slight
roll-off at higher node counts as the number of boundary SDs (and hence
the data exchange) grows.
"""

from functools import lru_cache

from harness import sweep
from repro.experiments import build, run_scenario
from repro.reporting.tables import format_series

MESH = 800
SD_AXIS = 16
NODE_COUNTS = (1, 2, 4, 8, 12, 16)


@lru_cache(maxsize=1)
def fig13_series():
    times = sweep([build("fig13_metis_scaling", mesh=MESH, sd_axis=SD_AXIS,
                         nodes=n) for n in NODE_COUNTS])
    base = times[0]
    return [base / t for t in times]


def test_fig13_distributed_scaling_metis(benchmark):
    measured = fig13_series()
    optimal = [float(n) for n in NODE_COUNTS]
    print("\n" + format_series(
        "#nodes", list(NODE_COUNTS),
        {"Measured": measured, "Optimal": optimal},
        title="Figure 13 — distributed scaling with METIS-style "
              f"partitioning (mesh {MESH}x{MESH}, 16x16 SDs of 50x50)"))

    # near-linear: within 25% of optimal everywhere
    for n, s in zip(NODE_COUNTS, measured):
        assert s <= n + 1e-9
        assert s > 0.75 * n, f"{n} nodes: speedup {s:.2f} too far from linear"
    # monotone increase with node count
    assert all(b > a for a, b in zip(measured, measured[1:]))
    # the roll-off: efficiency at 16 nodes below efficiency at 2 nodes
    assert measured[-1] / 16 <= measured[1] / 2 + 1e-9

    benchmark(lambda: run_scenario(
        build("fig13_metis_scaling", mesh=MESH, sd_axis=SD_AXIS,
              nodes=16, steps=1)))
