"""Figure 14: validation of the load balancing algorithm.

Paper caption: 5x5 SDs across 4 symmetric nodes, starting from a highly
imbalanced distribution; "within 3 iterations, the load balancing
algorithm is able to redistribute the SDs among various nodes with
nearly balanced load distribution."  We reproduce the loop: measure
(busy times of one simulated sweep), run Algorithm 1, repeat — and
render the ownership grid per iteration.
"""

from functools import lru_cache

import numpy as np

from repro.core.balancer import LoadBalancer
from repro.core.power import imbalance_ratio
from repro.mesh.subdomain import SubdomainGrid
from repro.reporting.ownership import (ownership_counts,
                                       render_ownership_sequence)
from repro.reporting.tables import format_table

NUM_NODES = 4
ITERATIONS = 3


def initial_imbalanced_parts() -> np.ndarray:
    """The paper's Fig. 14 left grid: node 0 owns almost everything."""
    parts = np.zeros(25, dtype=np.int64)
    parts[4] = 1    # node 1: one corner SD
    parts[20] = 2   # node 2: one corner SD
    parts[24] = 3   # node 3: one corner SD
    return parts


@lru_cache(maxsize=1)
def balance_iterations():
    """Run the measure->balance loop; returns the ownership snapshots."""
    sd_grid = SubdomainGrid(20, 20, 5, 5)
    balancer = LoadBalancer(sd_grid)
    parts = initial_imbalanced_parts()
    snapshots = [parts.copy()]
    ratios = [imbalance_ratio(np.bincount(parts, minlength=NUM_NODES))]
    for _ in range(ITERATIONS):
        # symmetric nodes: busy time proportional to SD count
        busy = np.bincount(parts, minlength=NUM_NODES).astype(float)
        busy = np.maximum(busy, 1e-9)
        parts = balancer.balance_step(parts, NUM_NODES, busy).parts_after
        snapshots.append(parts.copy())
        ratios.append(imbalance_ratio(
            np.maximum(np.bincount(parts, minlength=NUM_NODES), 1e-9)))
    return sd_grid, snapshots, ratios


def test_fig14_balancing_within_three_iterations(benchmark):
    sd_grid, snapshots, ratios = balance_iterations()
    labels = [f"iter {i}" for i in range(len(snapshots))]
    print("\nFigure 14 — SD redistribution across balancing iterations "
          "(5x5 SDs, 4 symmetric nodes):")
    print(render_ownership_sequence(sd_grid, snapshots, labels=labels))
    rows = [[i, ownership_counts(s, NUM_NODES), f"{r:.3f}"]
            for i, (s, r) in enumerate(zip(snapshots, ratios))]
    print("\n" + format_table(["iteration", "SDs per node", "max/mean busy"],
                              rows))

    final = np.bincount(snapshots[-1], minlength=NUM_NODES)
    # 25 SDs over 4 symmetric nodes: ideal 6/6/6/7
    assert final.sum() == 25
    assert final.max() - final.min() <= 2
    assert final.min() >= 5
    # the imbalance ratio must improve dramatically from 22/ (25/4)
    assert ratios[0] > 3.0
    assert ratios[-1] < 1.15

    # benchmark unit: one Algorithm 1 step on the imbalanced grid
    sd = SubdomainGrid(20, 20, 5, 5)
    lb = LoadBalancer(sd)
    parts = initial_imbalanced_parts()
    busy = np.maximum(np.bincount(parts, minlength=NUM_NODES), 1e-9)
    benchmark(lambda: lb.balance_step(parts, NUM_NODES, busy))
