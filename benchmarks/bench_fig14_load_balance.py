"""Figure 14: validation of the load balancing algorithm.

Paper caption: 5x5 SDs across 4 symmetric nodes, starting from a highly
imbalanced distribution; "within 3 iterations, the load balancing
algorithm is able to redistribute the SDs among various nodes with
nearly balanced load distribution."  The measure → balance loop now runs
through the experiment engine: the ``fig14_load_balance`` registry
scenario puts the paper's corner-imbalanced distribution on the
simulated cluster with Algorithm 1 firing after every timestep, and the
:class:`RunRecord` carries the per-iteration ownership snapshots and the
busy-time imbalance history we assert on.
"""

from functools import lru_cache

import numpy as np

from repro.core.power import imbalance_ratio
from repro.experiments import build, ownership_timeline, run_scenario
from repro.reporting.ownership import (ownership_counts,
                                       render_ownership_sequence)
from repro.reporting.tables import format_table

NUM_NODES = 4
SD_AXIS = 5
ITERATIONS = 3


@lru_cache(maxsize=1)
def balance_run():
    """Run the Fig. 14 scenario; returns (sd_grid, snapshots, record)."""
    spec = build("fig14_load_balance", sd_axis=SD_AXIS, nodes=NUM_NODES,
                 steps=ITERATIONS)
    record = run_scenario(spec)
    return (spec.mesh.build_sd_grid(), ownership_timeline(spec, record),
            record)


def test_fig14_balancing_within_three_iterations(benchmark):
    sd_grid, snapshots, record = balance_run()
    labels = [f"iter {i}" for i in range(len(snapshots))]
    print("\nFigure 14 — SD redistribution across balancing iterations "
          "(5x5 SDs, 4 symmetric nodes):")
    print(render_ownership_sequence(sd_grid, snapshots, labels=labels))
    ratios = [imbalance_ratio(np.maximum(
        np.bincount(s, minlength=NUM_NODES), 1e-9)) for s in snapshots]
    rows = [[i, ownership_counts(s, NUM_NODES), f"{r:.3f}"]
            for i, (s, r) in enumerate(zip(snapshots, ratios))]
    print("\n" + format_table(["iteration", "SDs per node", "max/mean SDs"],
                              rows))

    final = np.bincount(record.final_parts, minlength=NUM_NODES)
    # 25 SDs over 4 symmetric nodes: ideal 6/6/6/7
    assert final.sum() == 25
    assert final.max() - final.min() <= 2
    assert final.min() >= 5
    # symmetric nodes: the measured busy-time imbalance matches the SD
    # counts — dramatic at the start (node 0 owns 22 of 25 SDs), nearly
    # flat once Algorithm 1 has run
    assert record.imbalance_history[0] > 3.0
    assert ratios[-1] < 1.15
    # "within 3 iterations": the first sweep's balance already lands
    # near-flat, and it stays there
    assert record.parts_events and record.parts_events[0][0] == 0
    assert ratios[1] < 1.2
    assert len(snapshots) == ITERATIONS + 1
    assert record.sds_moved >= 15  # node 0 must shed ~3/4 of its SDs

    # benchmark unit: the whole measure->balance loop on the engine
    benchmark(lambda: run_scenario(
        build("fig14_load_balance", sd_axis=SD_AXIS, nodes=NUM_NODES,
              steps=1)))
