"""Ablation F: balancing-strategy choice under drifting node speeds.

Compares every registered balancing strategy (``tree`` = the paper's
Algorithm 1, ``diffusion``, ``greedy``, ``repartition``) against the
``NeverBalance`` baseline and a one-shot policy on the ``hetero_drift``
workload: node speeds ramp linearly to the *reversed* assignment over
the middle of the run, so any fixed SD distribution — including one
chosen by a single early balancing step — is wrong for most of the run.

Everything measured is virtual-time (deterministic, machine-independent,
DESIGN.md substitution 1), so the printed makespans and migration costs
are exact properties of the schedules, not wall-clock noise.

Acceptance criterion (ISSUE 3): every adaptive strategy must beat the
``NeverBalance`` makespan by >= 10% (floor tunable for experimentation
via ``REPRO_BENCH_MIN_BALANCE_GAIN``).  The one-shot row is expected to
*lose* to every adaptive strategy — that is the drift ablation's point.

Emits JSON in the harness result schema; ``REPRO_BENCH_JSON=path``
writes it to a file (``BENCH_balancers.json`` at the repo root is the
committed record).
"""

import json
import os
from functools import lru_cache

from repro.experiments import (SCHEMA, PolicySpec, balancer_sweep, build,
                               run_scenario, write_json)
from repro.reporting.tables import format_table

from harness import peak_rss_bytes

STEPS = 16

#: adaptive-vs-never acceptance floor (1.1 = the ISSUE-3 10% bar)
_MIN_GAIN = float(os.environ.get("REPRO_BENCH_MIN_BALANCE_GAIN", "1.1"))

_SPEC = build("hetero_drift", steps=STEPS)
MESH = _SPEC.mesh.nx
NODES = _SPEC.cluster.num_nodes


def _row(label, rec, never_makespan):
    return {
        "strategy": label,
        "makespan_seconds": rec.makespan,
        "gain_over_never": never_makespan / rec.makespan,
        "sds_moved": rec.sds_moved,
        "migration_bytes": rec.migration_bytes,
        "balance_events": len(rec.balance_events),
        "final_imbalance": (rec.imbalance_history[-1]
                            if rec.imbalance_history else 1.0),
        "peak_rss_bytes": peak_rss_bytes(),
    }


@lru_cache(maxsize=1)
def strategy_rows():
    never = run_scenario(build("hetero_drift", steps=STEPS, balanced=False))
    rows = [_row("never", never, never.makespan)]
    oneshot_spec = build("hetero_drift", steps=STEPS).replace(
        policy=PolicySpec(kind="threshold", ratio=1.0, min_interval=10 ** 9,
                          balancer="tree"))
    rows.append(_row("one-shot (tree)", run_scenario(oneshot_spec),
                     never.makespan))
    for spec in balancer_sweep(steps=STEPS):
        rec = run_scenario(spec)
        rows.append(_row(spec.policy.balancer, rec, never.makespan))
    return rows


def test_abl_balancer_strategies(benchmark):
    rows = strategy_rows()
    print("\n" + format_table(
        ["strategy", "makespan (ms)", "gain", "SDs moved",
         "migration bytes", "events", "final imb"],
        [[r["strategy"], r["makespan_seconds"] * 1e3,
          f"{r['gain_over_never']:.2f}x", r["sds_moved"],
          r["migration_bytes"], r["balance_events"],
          f"{r['final_imbalance']:.3f}"] for r in rows],
        title=f"Ablation F — balancing strategies under drifting speeds "
              f"(mesh {MESH}x{MESH}, {NODES} nodes, {STEPS} steps)"))

    by_name = {r["strategy"]: r for r in rows}
    adaptive = [r for r in rows
                if r["strategy"] not in ("never", "one-shot (tree)")]
    assert len(adaptive) == 4
    # acceptance: every adaptive strategy beats NeverBalance by >= 10%
    for r in adaptive:
        assert r["gain_over_never"] >= _MIN_GAIN, (
            f"{r['strategy']} gained only {r['gain_over_never']:.2f}x "
            f"over never (floor {_MIN_GAIN:g}x)")
    # the drift ablation's point: one-shot balancing ages badly — every
    # adaptive strategy must beat it
    oneshot = by_name["one-shot (tree)"]
    for r in adaptive:
        assert r["makespan_seconds"] < oneshot["makespan_seconds"]
    # migration-cost telemetry sanity: repartition moves bulk data, the
    # incremental strategies move far less for comparable makespans
    assert (by_name["repartition"]["migration_bytes"]
            > 2 * by_name["tree"]["migration_bytes"])

    payload = {
        "benchmark": "abl_balancer_strategies",
        "scenario": "hetero_drift",
        "mesh": [MESH, MESH],
        "nodes": NODES,
        "steps": STEPS,
        "strategies": rows,
    }
    out = os.environ.get("REPRO_BENCH_JSON")
    if out:
        write_json(out, payload)
    else:
        print(json.dumps({"schema": SCHEMA, **payload}, sort_keys=True))

    benchmark(lambda: rows)  # rows cached; keep pytest-benchmark happy
