"""Ablation A: multilevel (METIS-style) vs geometric partitioning.

DESIGN.md calls out the partitioner as a substitution; this bench
quantifies what the multilevel scheme buys over naive strips (and how it
compares to the strong geometric baselines) in edge cut and in simulated
makespan of the distributed solver — the two quantities the paper's
Sec. 6.2 cares about.
"""

from functools import lru_cache

import numpy as np

from harness import make_problem
from repro.amt.cluster import Network
from repro.partition.geometric import (block_partition,
                                       recursive_coordinate_bisection,
                                       strip_partition)
from repro.partition.graph import grid_dual_graph
from repro.partition.kway import partition_graph
from repro.partition.metrics import edge_cut
from repro.reporting.tables import format_table
from repro.solver.distributed import DistributedSolver

SD_AXIS = 16
NODES = 8
NUM_STEPS = 5


def partitions():
    graph = grid_dual_graph(SD_AXIS, SD_AXIS)
    return graph, {
        "multilevel": partition_graph(graph, NODES, seed=0),
        "blocks": block_partition(SD_AXIS, SD_AXIS, NODES),
        "strips": strip_partition(SD_AXIS, SD_AXIS, NODES),
        "rcb": recursive_coordinate_bisection(graph, NODES),
    }


def makespan_of(parts) -> float:
    model, grid, sd_grid = make_problem(800, SD_AXIS)
    # a communication-dominated network: per-node egress time for a bad
    # cut exceeds the per-node compute time, so the cut drives makespan
    net = Network(latency=2e-5, bandwidth=1e6)
    solver = DistributedSolver(model, grid, sd_grid, parts,
                               num_nodes=NODES, network=net,
                               compute_numerics=False)
    return solver.run(None, NUM_STEPS).makespan


@lru_cache(maxsize=1)
def ablation_rows():
    graph, cands = partitions()
    rows = []
    for name, parts in cands.items():
        rows.append([name, edge_cut(graph, parts), makespan_of(parts) * 1e3])
    return rows


def test_abl_partitioners(benchmark):
    rows = ablation_rows()
    print("\n" + format_table(
        ["partitioner", "edge cut", "makespan (ms)"], rows,
        title="Ablation A — partitioner choice "
              f"(16x16 SDs, {NODES} nodes, expensive network)"))
    by_name = {r[0]: r for r in rows}
    # the multilevel partitioner must beat naive strips on both metrics
    assert by_name["multilevel"][1] < by_name["strips"][1]
    assert by_name["multilevel"][2] < by_name["strips"][2]
    # and be within 30% of the ideal block layout's cut on this grid
    assert by_name["multilevel"][1] <= 1.3 * by_name["blocks"][1]

    graph, _ = partitions()
    benchmark(lambda: partition_graph(graph, NODES, seed=1))
