"""Ablation A: multilevel (METIS-style) vs geometric partitioning.

DESIGN.md calls out the partitioner as a substitution; this bench
quantifies what the multilevel scheme buys over naive strips (and how it
compares to the strong geometric baselines) in edge cut and in simulated
makespan of the distributed solver — the two quantities the paper's
Sec. 6.2 cares about.  Each candidate is a :class:`PartitionSpec`
method; the makespan runs are the ``abl_partitioners`` registry
scenario under a communication-dominated network.
"""

from functools import lru_cache

from repro.experiments import PartitionSpec, build, run_scenario
from repro.partition.graph import grid_dual_graph
from repro.partition.kway import partition_graph
from repro.partition.metrics import edge_cut
from repro.reporting.tables import format_table

NUM_STEPS = 5

#: the SD grid and node count come from the registry scenario; the
#: edge-cut column below must describe the same configuration the
#: makespan column ran, so read both off the spec
_SPEC = build("abl_partitioners", steps=NUM_STEPS)
SD_AXIS = _SPEC.mesh.sd_nx
NODES = _SPEC.cluster.num_nodes

#: PartitionSpec method per ablation candidate (display name -> method)
CANDIDATES = {
    "multilevel": "metis",
    "blocks": "blocks",
    "strips": "strips",
    "rcb": "rcb",
}


def makespan_of(method: str) -> float:
    # a communication-dominated network: per-node egress time for a bad
    # cut exceeds the per-node compute time, so the cut drives makespan
    return run_scenario(build("abl_partitioners", method=method,
                              steps=NUM_STEPS)).makespan


@lru_cache(maxsize=1)
def ablation_rows():
    graph = grid_dual_graph(SD_AXIS, SD_AXIS)
    rows = []
    for name, method in CANDIDATES.items():
        parts = PartitionSpec(method=method, seed=0).build(
            SD_AXIS, SD_AXIS, NODES)
        rows.append([name, edge_cut(graph, parts),
                     makespan_of(method) * 1e3])
    return rows


def test_abl_partitioners(benchmark):
    rows = ablation_rows()
    print("\n" + format_table(
        ["partitioner", "edge cut", "makespan (ms)"], rows,
        title="Ablation A — partitioner choice "
              f"(16x16 SDs, {NODES} nodes, expensive network)"))
    by_name = {r[0]: r for r in rows}
    # the multilevel partitioner must beat naive strips on both metrics
    assert by_name["multilevel"][1] < by_name["strips"][1]
    assert by_name["multilevel"][2] < by_name["strips"][2]
    # and be within 30% of the ideal block layout's cut on this grid
    assert by_name["multilevel"][1] <= 1.3 * by_name["blocks"][1]

    graph = grid_dual_graph(SD_AXIS, SD_AXIS)
    benchmark(lambda: partition_graph(graph, NODES, seed=1))
