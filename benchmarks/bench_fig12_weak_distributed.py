"""Figure 12: weak scaling of the distributed solver with METIS layouts.

Paper caption: SD size 50x50, n x n SDs (total mesh 50n x 50n), eps = 8h,
20 timesteps, 1/2/4 nodes; "the distribution of SDs across the
computational nodes is done using METIS" — here our multilevel
partitioner.  Every point is a registry-built distributed scenario swept
through the experiment engine.  Reproduced shape: speedup approaches the
node count with growing SD counts, irrespective of problem size.
"""

import math

from harness import distributed_spec, weak_scaling_speedups
from repro.experiments import run_scenario
from repro.reporting.tables import format_series

SD_SIZE = 50
SD_AXES = (1, 2, 3, 4, 5, 6, 7, 8)
NODES = (1, 2, 4)


def test_fig12_weak_scaling_distributed(benchmark):
    series = weak_scaling_speedups(SD_SIZE, SD_AXES, NODES,
                                   distributed=True, partitioner="metis")
    sd_counts = [n * n for n in SD_AXES]
    print("\n" + format_series(
        "#SDs", sd_counts,
        {f"{n}Node": series[n] for n in NODES},
        title="Figure 12 — weak scaling, distributed, METIS-style "
              f"partitioning (SD {SD_SIZE}x{SD_SIZE}, mesh 50n x 50n)"))

    assert series[1] == [1.0] * len(SD_AXES)
    for n in (2, 4):
        vals = [v for v in series[n] if not math.isnan(v)]
        assert all(v <= n + 1e-9 for v in vals)
        assert series[n][-1] > 0.8 * n  # 64 SDs: near-linear

    benchmark(lambda: run_scenario(distributed_spec(SD_SIZE * 4, 4, 4,
                                                    "metis", num_steps=2)))
