"""Micro-benchmark: the experiment runner's NonlocalOperator LRU cache.

A figure sweep revisits the same ``(nx, eps_factor)`` discretization for
every worker/node count (Fig. 9 alone runs 3 CPU counts x 4 SD layouts
on one mesh), and the stencil/neighborhood assembly inside
:class:`NonlocalOperator` is the dominant repeated construction cost.
The runner memoizes it via :func:`repro.experiments.cached_operator`.

This bench measures a repeated-``(nx, eps)`` sweep with cold
constructions vs the cache, asserts the cache actually shares one
assembly per discretization, and emits the measurements as JSON in the
harness result schema (``repro.experiments``, see
:mod:`repro.experiments.results`).
"""

import json
import os
import time
from functools import lru_cache

from repro.experiments import (SCHEMA, cached_operator, clear_operator_cache,
                               operator_cache_info, write_json)
from repro.mesh.grid import UniformGrid
from repro.solver.kernel import NonlocalOperator
from repro.solver.model import NonlocalHeatModel

#: a strong-scaling-like sweep: every (nx, eps) pair revisited once per
#: simulated worker count
SWEEP_POINTS = [(nx, 8.0) for nx in (200, 400)] + [(320, 4.0)]
WORKER_COUNTS = (1, 2, 4, 8)


def build_cold(nx: int, eps_factor: float) -> NonlocalOperator:
    grid = UniformGrid(nx, nx)
    model = NonlocalHeatModel(epsilon=eps_factor * grid.h)
    return NonlocalOperator(model, grid)


def timed_sweep(use_cache: bool) -> float:
    """Wall seconds to build the operator at every sweep visit."""
    clear_operator_cache()
    t0 = time.perf_counter()
    for nx, eps in SWEEP_POINTS:
        for _workers in WORKER_COUNTS:
            if use_cache:
                cached_operator(nx, nx, eps)
            else:
                build_cold(nx, eps)
    return time.perf_counter() - t0


@lru_cache(maxsize=1)
def cache_rows():
    cold = timed_sweep(use_cache=False)
    cached = timed_sweep(use_cache=True)
    info = operator_cache_info()
    return cold, cached, info


def test_operator_cache_speedup(benchmark):
    cold, cached, info = cache_rows()
    visits = len(SWEEP_POINTS) * len(WORKER_COUNTS)
    speedup = cold / cached
    print(f"\nOperator cache — {visits} sweep visits over "
          f"{len(SWEEP_POINTS)} distinct (nx, eps) points:")
    print(f"  cold constructions: {cold * 1e3:8.2f} ms")
    print(f"  LRU cache:          {cached * 1e3:8.2f} ms")
    print(f"  speedup:            {speedup:8.2f}x")

    # the cache must collapse the sweep to one assembly per distinct point
    assert info.misses == len(SWEEP_POINTS)
    assert info.hits == visits - len(SWEEP_POINTS)
    # identity, not just equality: solvers share the assembled stencil
    assert cached_operator(200, 200, 8.0) is cached_operator(200, 200, 8.0)
    # and the repeated visits must get measurably cheaper
    assert speedup > 2.0

    out = os.environ.get("REPRO_BENCH_JSON")
    payload = {
        "benchmark": "operator_cache",
        "sweep_points": [[nx, eps] for nx, eps in SWEEP_POINTS],
        "visits": visits,
        "cold_seconds": cold,
        "cached_seconds": cached,
        "speedup": speedup,
        "cache": {"hits": info.hits, "misses": info.misses},
    }
    if out:
        write_json(out, payload)
    else:
        print(json.dumps({"schema": SCHEMA, **payload}, sort_keys=True))

    benchmark(lambda: cached_operator(400, 400, 8.0))
