"""Multi-tenant solve-service benchmark: goodput under offered load.

The three registry service scenarios run end to end, each in a fresh
subprocess (clean operator cache, true per-scenario ``ru_maxrss``):

* ``service_poisson`` — steady load below fleet capacity: nothing is
  shed and weighted fairness stays near 1.
* ``service_bursty`` — the same average rate compressed into on/off
  bursts: queue waits spike inside bursts but drain between them.
* ``service_overload`` — ~2x fleet capacity offered into depth-8
  queues: admission control sheds the excess, goodput saturates well
  below the offered rate, and the p99 queue wait of *admitted* jobs
  stays bounded by the finite queues instead of growing with the
  backlog.

Each worker runs its scenario twice and asserts the two records are
bit-identical (the seeded open-loop determinism contract), then
reports the telemetry summary plus wall-clock throughput.

Floors (env-tunable for noisy CI runners; virtual-time quantities are
exact and keep hard asserts):

* ``REPRO_BENCH_MIN_GOODPUT`` (default 25000) — completed jobs/s of
  virtual time the overload scenario must sustain while shedding.
* ``REPRO_BENCH_MAX_WAIT_FRAC`` (default 0.5) — p99 queue wait of
  admitted overload jobs as a fraction of the horizon.

Emits JSON in the harness result schema; ``REPRO_BENCH_JSON=path``
writes it to a file (``BENCH_service.json`` at the repo root is the
committed record).
"""

import json
import os
import subprocess
import sys
import time
from functools import lru_cache

from repro.experiments import SCHEMA, write_json
from repro.reporting.tables import format_table

#: horizon multiplier — CI smoke shrinks the scenarios via this
HORIZON_SCALE = float(os.environ.get("REPRO_BENCH_SERVICE_HORIZON", "1.0"))

#: overload goodput floor, in completed jobs per virtual second
_MIN_GOODPUT = float(os.environ.get("REPRO_BENCH_MIN_GOODPUT", "25000"))
#: overload p99 queue wait ceiling, as a fraction of the horizon
_MAX_WAIT_FRAC = float(os.environ.get("REPRO_BENCH_MAX_WAIT_FRAC", "0.5"))

SCENARIOS = ("service_poisson", "service_bursty", "service_overload")


def _worker(name: str) -> None:
    """Subprocess entry: run one scenario twice, summarize, report."""
    from harness import peak_rss_bytes

    from repro.experiments import build, run_scenario
    from repro.service import summarize_record

    spec = build(name)
    spec = spec.replace(horizon=spec.horizon * HORIZON_SCALE)
    t0 = time.perf_counter()
    record = run_scenario(spec)
    wall = time.perf_counter() - t0
    repeat = run_scenario(spec)
    assert record.to_dict() == repeat.to_dict(), \
        f"{name}: seeded rerun diverged"

    summary = summarize_record(record)
    horizon = spec.horizon
    utilization = sum(record.busy_total) / (len(record.busy_total) * horizon)
    row = {
        "scenario": name,
        "horizon": horizon,
        "process": spec.arrival.process,
        "offered_rate": summary["offered_rate"],
        "offered": summary["offered"],
        "shed": summary["shed"],
        "completed": summary["completed"],
        "goodput": summary["goodput"],
        "p50_wait": summary["p50_wait"],
        "p99_wait": summary["p99_wait"],
        "p99_makespan": summary["p99_makespan"],
        "fairness": summary["fairness"],
        "utilization": utilization,
        "events": len(record.service_events),
        "wall_seconds": wall,
        "events_per_second": len(record.service_events) / wall,
        "peak_rss_bytes": peak_rss_bytes(),
    }
    print("RESULT " + json.dumps(row, sort_keys=True))


def _run_scenario(name):
    proc = subprocess.run(
        [sys.executable, os.path.abspath(__file__), "--worker", name],
        env=dict(os.environ), capture_output=True, text=True,
        cwd=os.path.dirname(os.path.abspath(__file__)))
    if proc.returncode != 0:
        raise RuntimeError(
            f"service bench worker {name!r} failed:\n{proc.stderr}")
    for line in proc.stdout.splitlines():
        if line.startswith("RESULT "):
            return json.loads(line[len("RESULT "):])
    raise RuntimeError(
        f"service bench worker {name!r} produced no result:\n{proc.stdout}")


@lru_cache(maxsize=1)
def scenario_rows():
    return [_run_scenario(name) for name in SCENARIOS]


def test_service(benchmark):
    rows = scenario_rows()
    by_name = {r["scenario"]: r for r in rows}
    poisson = by_name["service_poisson"]
    overload = by_name["service_overload"]

    print("\n" + format_table(
        ["scenario", "offered/s", "goodput/s", "shed", "p99 wait (us)",
         "fairness", "util", "sim ev/s (wall)"],
        [[r["scenario"], f"{r['offered_rate']:,.0f}",
          f"{r['goodput']:,.0f}", r["shed"],
          f"{r['p99_wait'] * 1e6:.1f}", f"{r['fairness']:.3f}",
          f"{r['utilization']:.3f}", f"{r['events_per_second']:,.0f}"]
         for r in rows],
        title="multi-tenant solve service — goodput vs offered load"))

    # below capacity nothing is shed and the weighted shares stay even
    assert poisson["shed"] == 0
    assert poisson["fairness"] > 0.9
    assert poisson["goodput"] == poisson["completed"] / poisson["horizon"]

    # overload: admission control sheds, goodput saturates well below
    # the offered rate, and the admitted tail wait stays queue-bounded
    assert overload["shed"] > 0
    assert overload["goodput"] < 0.5 * overload["offered_rate"], (
        f"overload goodput {overload['goodput']:,.0f}/s did not saturate "
        f"below the offered {overload['offered_rate']:,.0f}/s")
    assert overload["goodput"] >= _MIN_GOODPUT, (
        f"overload goodput {overload['goodput']:,.0f}/s below the "
        f"{_MIN_GOODPUT:,.0f}/s floor")
    assert overload["p99_wait"] <= _MAX_WAIT_FRAC * overload["horizon"], (
        f"p99 queue wait {overload['p99_wait']:.2e}s exceeds "
        f"{_MAX_WAIT_FRAC:g} x horizon — queues are not bounding it")
    # the saturated fleet is actually busy, not idle-while-shedding
    assert overload["utilization"] > 0.9

    payload = {
        "benchmark": "service",
        "horizon_scale": HORIZON_SCALE,
        "min_goodput": _MIN_GOODPUT,
        "max_wait_frac": _MAX_WAIT_FRAC,
        "scenarios": rows,
    }
    out = os.environ.get("REPRO_BENCH_JSON")
    if out:
        write_json(out, payload)
    else:
        print(json.dumps({"schema": SCHEMA, **payload}, sort_keys=True))

    benchmark(lambda: rows)  # rows cached; keep pytest-benchmark happy


if __name__ == "__main__" and len(sys.argv) >= 3 and sys.argv[1] == "--worker":
    sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
    _worker(sys.argv[2])
