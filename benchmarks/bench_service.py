"""Multi-tenant solve-service benchmark: goodput and DES throughput.

The three registry service scenarios run end to end, each in a fresh
subprocess (clean operator cache, true per-scenario ``ru_maxrss``):

* ``service_poisson`` — steady load below fleet capacity: nothing is
  shed and weighted fairness stays near 1.
* ``service_bursty`` — the same average rate compressed into on/off
  bursts: queue waits spike inside bursts but drain between them.
* ``service_overload`` — ~2x fleet capacity offered into depth-8
  queues: admission control sheds the excess, goodput saturates well
  below the offered rate, and the p99 queue wait of *admitted* jobs
  stays bounded by the finite queues instead of growing with the
  backlog.

Each worker runs its scenario three times: once cold (warming the
shared operator cache), once timed on the fast path (wave batching on
— ``submit_group``/``send_group`` DAGs plus the chunked arrival pump),
and once timed with ``wave_batching=False`` (the strict
one-event-per-task/arrival path).  The cold and timed fast records
must be bit-identical (seeded determinism) and the fast and forced-off
records must be bit-identical (the barrier-aware batching parity
contract); the wall-clock ratio is the fast path's speedup.

Two event rates are reported per scenario — they measure different
things:

* ``events_per_second`` — *logical* DES events (the forced-off run's
  ``events_processed``, one per task/delivery/arrival) divided by the
  fast run's wall time.  Same semantics as ``bench_des_core.py``:
  simulated events retired per wall second, comparable across tiers.
* ``telemetry_events_per_second`` — rows of the service event stream
  (arrival/shed/start/finish) per wall second; a service-level rate,
  *not* comparable to the DES metric (one job is 4 telemetry rows but
  dozens of DES events).

``service_extreme`` (64 tenants, ~10^6 offered jobs, 64 nodes) is
benchmarked separately: wall-clock throughput on the fast path at full
scale, with the forced-off parity + speedup comparison at a reduced
horizon (the strict path at full scale would need ~10^6 scheduled
arrival events).

Floors (env-tunable for noisy CI runners; virtual-time quantities are
exact and keep hard asserts):

* ``REPRO_BENCH_MIN_GOODPUT`` (default 25000) — completed jobs/s of
  virtual time the overload scenario must sustain while shedding.
* ``REPRO_BENCH_MAX_WAIT_FRAC`` (default 0.5) — p99 queue wait of
  admitted overload jobs as a fraction of the horizon.
* ``REPRO_BENCH_MIN_SERVICE_SPEEDUP`` (default 3.0) — wall-clock
  speedup of the fast path over forced-off on ``service_overload``.

Knobs: ``REPRO_BENCH_SERVICE_HORIZON`` (default 20.0) scales the three
registry horizons so the DES dominates wall time — the reported rates
are horizon-invariant; ``REPRO_BENCH_SERVICE_EXTREME_HORIZON``
(default 5e-2, the registry value) sets the extreme tier's horizon and
``REPRO_BENCH_SERVICE_EXTREME_PARITY`` (default 2e-3) the horizon of
its forced-off parity run.

Emits JSON in the harness result schema; ``REPRO_BENCH_JSON=path``
writes it to a file (``BENCH_service.json`` at the repo root is the
committed record).
"""

import json
import os
import subprocess
import sys
import time
from functools import lru_cache

from repro.experiments import SCHEMA, write_json
from repro.reporting.tables import format_table

#: horizon multiplier for the three registry scenarios — large enough
#: that steady-state DES work dominates trace generation and spec
#: build; CI smoke shrinks it
HORIZON_SCALE = float(os.environ.get("REPRO_BENCH_SERVICE_HORIZON", "20.0"))

#: the extreme tier's horizon (absolute) and its parity-run horizon
EXTREME_HORIZON = float(
    os.environ.get("REPRO_BENCH_SERVICE_EXTREME_HORIZON", "5e-2"))
EXTREME_PARITY_HORIZON = float(
    os.environ.get("REPRO_BENCH_SERVICE_EXTREME_PARITY", "2e-3"))

#: overload goodput floor, in completed jobs per virtual second
_MIN_GOODPUT = float(os.environ.get("REPRO_BENCH_MIN_GOODPUT", "25000"))
#: overload p99 queue wait ceiling, as a fraction of the horizon
_MAX_WAIT_FRAC = float(os.environ.get("REPRO_BENCH_MAX_WAIT_FRAC", "0.5"))
#: fast-path wall-clock speedup floor on service_overload
_MIN_SPEEDUP = float(
    os.environ.get("REPRO_BENCH_MIN_SERVICE_SPEEDUP", "3.0"))

SCENARIOS = ("service_poisson", "service_bursty", "service_overload")


def _worker(name: str) -> None:
    """Subprocess entry: one scenario, fast + forced-off, report."""
    from harness import peak_rss_bytes

    from repro.experiments import build
    from repro.service import run_service_detailed, summarize_record

    spec = build(name)
    spec = spec.replace(horizon=spec.horizon * HORIZON_SCALE)

    cold, _ = run_service_detailed(spec, wave_batching=True)
    # best-of-3 walls for both modes: the speedup ratio is what the
    # floor guards, so suppress scheduler noise on both sides
    wall = float("inf")
    for _ in range(3):
        t0 = time.perf_counter()
        record, cluster = run_service_detailed(spec, wave_batching=True)
        wall = min(wall, time.perf_counter() - t0)
    assert record.to_dict() == cold.to_dict(), \
        f"{name}: seeded rerun diverged"

    wall_off = float("inf")
    for _ in range(3):
        t0 = time.perf_counter()
        record_off, cluster_off = run_service_detailed(
            spec, wave_batching=False)
        wall_off = min(wall_off, time.perf_counter() - t0)
    assert record.to_dict() == record_off.to_dict(), \
        f"{name}: wave batching changed the record"

    summary = summarize_record(record)
    horizon = spec.horizon
    utilization = sum(record.busy_total) / (len(record.busy_total) * horizon)
    logical = cluster_off.sim.events_processed
    row = {
        "scenario": name,
        "horizon": horizon,
        "process": spec.arrival.process,
        "offered_rate": summary["offered_rate"],
        "offered": summary["offered"],
        "shed": summary["shed"],
        "completed": summary["completed"],
        "goodput": summary["goodput"],
        "p50_wait": summary["p50_wait"],
        "p99_wait": summary["p99_wait"],
        "p99_makespan": summary["p99_makespan"],
        "fairness": summary["fairness"],
        "utilization": utilization,
        "telemetry_events": len(record.service_events),
        "telemetry_events_per_second": len(record.service_events) / wall,
        "logical_events": logical,
        "physical_events": cluster.sim.events_processed,
        "events_per_second": logical / wall,
        "wall_seconds": wall,
        "wall_seconds_waves_off": wall_off,
        "speedup": wall_off / wall,
        "peak_rss_bytes": peak_rss_bytes(),
    }
    print("RESULT " + json.dumps(row, sort_keys=True))


def _worker_extreme() -> None:
    """Subprocess entry: the service_extreme throughput tier."""
    from harness import peak_rss_bytes

    from repro.experiments import build
    from repro.service import run_service_detailed, summarize_record

    # parity + speedup at the reduced horizon (forced-off is tractable)
    small = build("service_extreme", horizon=EXTREME_PARITY_HORIZON)
    run_service_detailed(small, wave_batching=True)  # warm operator cache
    wall_small = float("inf")
    for _ in range(3):
        t0 = time.perf_counter()
        rec_small, _ = run_service_detailed(small, wave_batching=True)
        wall_small = min(wall_small, time.perf_counter() - t0)
    t0 = time.perf_counter()
    rec_small_off, cl_small_off = run_service_detailed(
        small, wave_batching=False)
    wall_small_off = time.perf_counter() - t0
    assert rec_small.service_events == rec_small_off.service_events, \
        "service_extreme: wave batching changed the event stream"
    assert rec_small.to_dict() == rec_small_off.to_dict(), \
        "service_extreme: wave batching changed the record"

    # full-scale throughput, fast path only
    spec = build("service_extreme", horizon=EXTREME_HORIZON)
    t0 = time.perf_counter()
    record, cluster = run_service_detailed(spec, wave_batching=True)
    wall = time.perf_counter() - t0
    summary = summarize_record(record)

    row = {
        "scenario": "service_extreme",
        "horizon": spec.horizon,
        "parity_horizon": EXTREME_PARITY_HORIZON,
        "offered": summary["offered"],
        "shed": summary["shed"],
        "completed": summary["completed"],
        "goodput": summary["goodput"],
        "utilization": (sum(record.busy_total)
                        / (len(record.busy_total) * spec.horizon)),
        "telemetry_events": len(record.service_events),
        "telemetry_events_per_second": len(record.service_events) / wall,
        "physical_events": cluster.sim.events_processed,
        "logical_events_parity": cl_small_off.sim.events_processed,
        "events_per_second_parity":
            cl_small_off.sim.events_processed / wall_small,
        "wall_seconds": wall,
        "wall_seconds_parity": wall_small,
        "wall_seconds_parity_waves_off": wall_small_off,
        "speedup_parity": wall_small_off / wall_small,
        "peak_rss_bytes": peak_rss_bytes(),
    }
    print("RESULT " + json.dumps(row, sort_keys=True))


def _run_worker(name):
    proc = subprocess.run(
        [sys.executable, os.path.abspath(__file__), "--worker", name],
        env=dict(os.environ), capture_output=True, text=True,
        cwd=os.path.dirname(os.path.abspath(__file__)))
    if proc.returncode != 0:
        raise RuntimeError(
            f"service bench worker {name!r} failed:\n{proc.stderr}")
    for line in proc.stdout.splitlines():
        if line.startswith("RESULT "):
            return json.loads(line[len("RESULT "):])
    raise RuntimeError(
        f"service bench worker {name!r} produced no result:\n{proc.stdout}")


@lru_cache(maxsize=1)
def scenario_rows():
    return [_run_worker(name) for name in SCENARIOS]


@lru_cache(maxsize=1)
def extreme_row():
    return _run_worker("service_extreme")


def test_service(benchmark):
    rows = scenario_rows()
    by_name = {r["scenario"]: r for r in rows}
    poisson = by_name["service_poisson"]
    overload = by_name["service_overload"]

    print("\n" + format_table(
        ["scenario", "offered/s", "goodput/s", "shed", "p99 wait (us)",
         "fairness", "util", "DES ev/s (wall)", "speedup"],
        [[r["scenario"], f"{r['offered_rate']:,.0f}",
          f"{r['goodput']:,.0f}", r["shed"],
          f"{r['p99_wait'] * 1e6:.1f}", f"{r['fairness']:.3f}",
          f"{r['utilization']:.3f}", f"{r['events_per_second']:,.0f}",
          f"{r['speedup']:.2f}x"]
         for r in rows],
        title="multi-tenant solve service — goodput vs offered load"))

    # below capacity nothing is shed and the weighted shares stay even
    assert poisson["shed"] == 0
    assert poisson["fairness"] > 0.9
    assert poisson["goodput"] == poisson["completed"] / poisson["horizon"]

    # overload: admission control sheds, goodput saturates well below
    # the offered rate, and the admitted tail wait stays queue-bounded
    assert overload["shed"] > 0
    assert overload["goodput"] < 0.5 * overload["offered_rate"], (
        f"overload goodput {overload['goodput']:,.0f}/s did not saturate "
        f"below the offered {overload['offered_rate']:,.0f}/s")
    assert overload["goodput"] >= _MIN_GOODPUT, (
        f"overload goodput {overload['goodput']:,.0f}/s below the "
        f"{_MIN_GOODPUT:,.0f}/s floor")
    assert overload["p99_wait"] <= _MAX_WAIT_FRAC * overload["horizon"], (
        f"p99 queue wait {overload['p99_wait']:.2e}s exceeds "
        f"{_MAX_WAIT_FRAC:g} x horizon — queues are not bounding it")
    # the saturated fleet is actually busy, not idle-while-shedding
    assert overload["utilization"] > 0.9

    # the wave/pump fast path must actually pay for itself
    assert overload["speedup"] >= _MIN_SPEEDUP, (
        f"service fast path speedup {overload['speedup']:.2f}x on "
        f"service_overload below the {_MIN_SPEEDUP:g}x floor")

    benchmark(lambda: rows)  # rows cached; keep pytest-benchmark happy


def test_service_extreme(benchmark):
    rows = scenario_rows()
    extreme = extreme_row()

    print("\n" + format_table(
        ["scenario", "offered", "shed", "goodput/s", "telemetry ev/s",
         "wall (s)", "speedup@parity"],
        [[extreme["scenario"], f"{extreme['offered']:,}",
          f"{extreme['shed']:,}", f"{extreme['goodput']:,.0f}",
          f"{extreme['telemetry_events_per_second']:,.0f}",
          f"{extreme['wall_seconds']:.2f}",
          f"{extreme['speedup_parity']:.2f}x"]],
        title="service_extreme — arrival-pump throughput tier"))

    # deep overload: almost everything sheds, and the fast path still
    # beats forced-off at the parity horizon
    assert extreme["shed"] > 0.5 * extreme["offered"]
    assert extreme["completed"] > 0
    assert extreme["speedup_parity"] > 1.0

    payload = {
        "benchmark": "service",
        "horizon_scale": HORIZON_SCALE,
        "min_goodput": _MIN_GOODPUT,
        "max_wait_frac": _MAX_WAIT_FRAC,
        "min_speedup": _MIN_SPEEDUP,
        "scenarios": rows,
        "extreme": extreme,
    }
    out = os.environ.get("REPRO_BENCH_JSON")
    if out:
        write_json(out, payload)
    else:
        print(json.dumps({"schema": SCHEMA, **payload}, sort_keys=True))

    benchmark(lambda: extreme)  # cached; keep pytest-benchmark happy


if __name__ == "__main__" and len(sys.argv) >= 3 and sys.argv[1] == "--worker":
    sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
    if sys.argv[2] == "service_extreme":
        _worker_extreme()
    else:
        _worker(sys.argv[2])
