"""Figure 10: weak scaling of the shared-memory asynchronous solver.

Paper caption: SD size fixed at 50x50 DPs, the number of SDs grows along
both axes (total mesh 50n x 50n, n = 1..8), eps = 8h, 20 timesteps;
series for 1/2/4 workers.  Every point is a registry-built shared-memory
scenario swept through the experiment engine.  Reproduced shape: speedup
starts at 1 for a single SD and rises to the worker count as SDs
multiply, independent of the absolute problem size.
"""

from harness import shared_spec, weak_scaling_speedups
from repro.experiments import run_scenario
from repro.reporting.tables import format_series

SD_SIZE = 50
SD_AXES = (1, 2, 3, 4, 5, 6, 7, 8)
CPUS = (1, 2, 4)


def test_fig10_weak_scaling_shared(benchmark):
    series = weak_scaling_speedups(SD_SIZE, SD_AXES, CPUS, distributed=False)
    sd_counts = [n * n for n in SD_AXES]
    print("\n" + format_series(
        "#SDs", sd_counts,
        {f"{c}CPU": series[c] for c in CPUS},
        title="Figure 10 — weak scaling, shared memory "
              f"(SD size {SD_SIZE}x{SD_SIZE}, mesh 50n x 50n, eps=8h, 20 steps)"))

    assert series[1] == [1.0] * len(SD_AXES)
    for c in (2, 4):
        assert series[c][0] == 1.0          # one SD: no parallelism
        assert series[c][-1] > 0.9 * c      # 64 SDs: near-linear
        assert all(s <= c + 1e-9 for s in series[c])

    benchmark(lambda: run_scenario(shared_spec(SD_SIZE * 4, 4, 4,
                                               num_steps=2)))
