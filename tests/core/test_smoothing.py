"""Tests for the EWMA power estimator."""

import numpy as np
import pytest

from repro.core.balancer import LoadBalancer
from repro.core.smoothing import SmoothedPowerEstimator
from repro.mesh.subdomain import SubdomainGrid
from repro.partition.geometric import block_partition


class TestSmoothedPowerEstimator:
    def test_first_update_equals_raw(self):
        est = SmoothedPowerEstimator(2, alpha=0.3)
        p = est.update([4, 4], [2.0, 1.0])
        assert list(p) == [2.0, 4.0]

    def test_ewma_blends(self):
        est = SmoothedPowerEstimator(1, alpha=0.5)
        est.update([4], [4.0])   # power 1
        p = est.update([4], [1.0])  # raw power 4
        assert p[0] == pytest.approx(0.5 * 4 + 0.5 * 1)

    def test_alpha_one_tracks_raw(self):
        est = SmoothedPowerEstimator(1, alpha=1.0)
        est.update([4], [4.0])
        p = est.update([4], [1.0])
        assert p[0] == 4.0

    def test_converges_to_true_power(self):
        est = SmoothedPowerEstimator(1, alpha=0.4)
        for _ in range(30):
            est.update([8], [2.0])  # true power 4
        assert est.power[0] == pytest.approx(4.0, rel=1e-3)

    def test_smooths_noise(self):
        """Alternating noisy readings: smoothed power varies less than raw."""
        rng = np.random.default_rng(0)
        est = SmoothedPowerEstimator(1, alpha=0.2)
        raw_vals, smooth_vals = [], []
        for _ in range(100):
            busy = 2.0 * (1 + 0.5 * rng.standard_normal())
            busy = max(busy, 0.1)
            raw_vals.append(8 / busy)
            smooth_vals.append(est.update([8], [busy])[0])
        assert np.std(smooth_vals[20:]) < 0.5 * np.std(raw_vals[20:])

    def test_effective_busy_times_roundtrip(self):
        """Feeding effective busy times to the balancer reproduces the
        smoothed power exactly."""
        from repro.core.power import compute_power
        est = SmoothedPowerEstimator(3)
        est.update([4, 4, 4], [4.0, 2.0, 1.0])
        loads = np.array([4.0, 4.0, 4.0])
        eff = est.effective_busy_times(loads)
        recovered = compute_power(loads, eff)
        assert np.allclose(recovered, est.power)

    def test_power_before_update_raises(self):
        with pytest.raises(RuntimeError):
            SmoothedPowerEstimator(2).power

    def test_reset(self):
        est = SmoothedPowerEstimator(1)
        est.update([1], [1.0])
        est.reset()
        assert est.updates == 0
        with pytest.raises(RuntimeError):
            est.power

    def test_validation(self):
        with pytest.raises(ValueError):
            SmoothedPowerEstimator(0)
        with pytest.raises(ValueError):
            SmoothedPowerEstimator(2, alpha=0.0)
        est = SmoothedPowerEstimator(2)
        with pytest.raises(ValueError):
            est.update([1], [1.0])


class TestSmoothedBalancing:
    def test_noisy_measurements_do_not_thrash(self):
        """With raw noisy busy times the balancer migrates repeatedly;
        smoothing suppresses the churn on a truly balanced cluster."""
        sg = SubdomainGrid(32, 32, 8, 8)
        rng = np.random.default_rng(3)
        lb = LoadBalancer(sg)

        def run(smoothed):
            parts = block_partition(8, 8, 4)
            est = SmoothedPowerEstimator(4, alpha=0.2)
            moves = 0
            gen = np.random.default_rng(3)
            for _ in range(15):
                counts = np.bincount(parts, minlength=4).astype(float)
                noise = 1 + 0.25 * gen.standard_normal(4)
                busy = counts * np.clip(noise, 0.5, 1.5)
                if smoothed:
                    est.update(counts, busy)
                    busy = est.effective_busy_times(counts)
                res = lb.balance_step(parts, 4, busy)
                moves += res.sds_moved
                parts = res.parts_after
            return moves

        assert run(smoothed=True) < run(smoothed=False)
