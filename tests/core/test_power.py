"""Tests for eqs. (8)-(10) and integer apportionment."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.power import (compute_power, expected_sds, imbalance_ratio,
                              integer_targets, load_imbalance)


class TestComputePower:
    def test_eq8_basic(self):
        power = compute_power([4, 8], [2.0, 2.0])
        assert list(power) == [2.0, 4.0]

    def test_equal_nodes_equal_power(self):
        power = compute_power([5, 5, 5], [1.5, 1.5, 1.5])
        assert np.allclose(power, power[0])

    def test_zero_sd_node_gets_mean_power(self):
        power = compute_power([4, 0], [2.0, 0.0])
        assert power[0] == 2.0
        assert power[1] == 2.0  # fallback: mean of measured

    def test_zero_busy_node_gets_mean_power(self):
        power = compute_power([4, 4], [2.0, 0.0])
        assert power[1] == power[0]

    def test_all_unmeasurable_fallback_one(self):
        power = compute_power([0, 0], [0.0, 0.0])
        assert list(power) == [1.0, 1.0]

    def test_work_weighted_power(self):
        # node 1's SDs are half-weight: same busy time => half the power
        power = compute_power([4, 4], [2.0, 2.0], work_per_sd=[1.0, 0.5])
        assert power[0] == 2.0
        assert power[1] == 1.0

    def test_validation(self):
        with pytest.raises(ValueError, match="shape"):
            compute_power([1, 2], [1.0])
        with pytest.raises(ValueError, match="non-negative"):
            compute_power([-1, 2], [1.0, 1.0])


class TestExpectedSds:
    def test_eq10_proportional(self):
        exp = expected_sds(12, [1.0, 2.0, 3.0])
        assert list(exp) == [2.0, 4.0, 6.0]

    def test_sums_to_total(self):
        exp = expected_sds(25, [1.3, 2.7, 0.4, 1.1])
        assert exp.sum() == pytest.approx(25.0)

    def test_nonpositive_power_rejected(self):
        with pytest.raises(ValueError):
            expected_sds(10, [1.0, 0.0])


class TestLoadImbalance:
    def test_eq9_balanced_is_zero(self):
        imb = load_imbalance([4, 4], [1.0, 1.0])
        assert np.allclose(imb, 0.0)

    def test_fast_node_positive(self):
        """Node 1 processes 4 SDs in half the time -> it should get more."""
        imb = load_imbalance([4, 4], [2.0, 1.0])
        assert imb[1] > 0 > imb[0]

    def test_sums_to_zero(self):
        imb = load_imbalance([3, 7, 6], [1.0, 2.5, 0.7])
        assert imb.sum() == pytest.approx(0.0, abs=1e-10)

    @given(st.lists(st.tuples(st.integers(1, 20),
                              st.floats(0.1, 10.0)), min_size=2, max_size=8))
    @settings(max_examples=50, deadline=None)
    def test_conservation_property(self, node_specs):
        sds = [s for s, _ in node_specs]
        busy = [b for _, b in node_specs]
        imb = load_imbalance(sds, busy)
        assert imb.sum() == pytest.approx(0.0, abs=1e-8)


class TestIntegerTargets:
    def test_exact_integers_unchanged(self):
        assert list(integer_targets([2.0, 3.0, 5.0])) == [2, 3, 5]

    def test_largest_remainder(self):
        # 10 split as (3.5, 3.3, 3.2) -> (4, 3, 3)
        assert list(integer_targets([3.5, 3.3, 3.2])) == [4, 3, 3]

    def test_sum_conserved(self):
        t = integer_targets([1.6, 1.6, 6.4, 6.4])
        assert t.sum() == 16
        assert list(t) == [2, 2, 6, 6]

    def test_tie_breaks_by_id(self):
        t = integer_targets([1.5, 1.5])
        assert list(t) == [2, 1]

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            integer_targets([-1.0, 2.0])

    @given(st.lists(st.floats(0.0, 50.0), min_size=1, max_size=10),
           st.integers(1, 200))
    @settings(max_examples=60, deadline=None)
    def test_apportionment_properties(self, raw, total):
        raw = np.asarray(raw) + 1e-9
        expected = total * raw / raw.sum()
        t = integer_targets(expected)
        assert t.sum() == total
        assert np.all(t >= 0)
        # each target within 1 of its real share
        assert np.all(np.abs(t - expected) < 1.0 + 1e-9)


class TestImbalanceRatio:
    def test_balanced_is_one(self):
        assert imbalance_ratio([2.0, 2.0, 2.0]) == 1.0

    def test_imbalanced_above_one(self):
        assert imbalance_ratio([1.0, 3.0]) == pytest.approx(1.5)

    def test_all_idle_is_one(self):
        assert imbalance_ratio([0.0, 0.0]) == 1.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            imbalance_ratio([])
