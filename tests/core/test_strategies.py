"""The pluggable balancing-strategy subsystem.

Covers the registry/env-override mechanics (mirroring the kernel-backend
registry), the frozen BalanceResult value object, the uniform-work
helper, golden agreement of the ``tree`` strategy with the pre-refactor
Algorithm 1, and hypothesis property tests asserting the strategy
invariants (conservation, validity, determinism, no-op below threshold)
for every registered strategy.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.balancer import LoadBalancer
from repro.core.strategies import (AUTO, ENV_VAR, BalanceEvent,
                                   BalanceResult, BalanceStrategy,
                                   auto_strategy_name, get_strategy_class,
                                   is_uniform_work, make_strategy,
                                   register_strategy, requested_strategy,
                                   strategy_names)
from repro.mesh.subdomain import SubdomainGrid
from repro.partition.geometric import block_partition

ALL = ("diffusion", "greedy", "repartition", "tree")


def star_parts():
    """Fig. 7 star: hub node 2 adjacent to leaves 0, 1, 3 (by column)."""
    owner_of_column = {0: 1, 1: 2, 2: 0, 3: 2, 4: 3}
    return np.array([owner_of_column[i % 5] for i in range(25)],
                    dtype=np.int64)


class TestRegistry:
    def test_all_strategies_registered(self):
        assert strategy_names() == list(ALL)

    def test_get_strategy_class(self):
        for name in ALL:
            assert get_strategy_class(name).name == name
        with pytest.raises(KeyError):
            get_strategy_class("magic")

    def test_requested_explicit_name_honored(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "diffusion")
        # explicit names win over the environment
        assert requested_strategy("tree") == "tree"

    def test_requested_auto_consults_env(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        assert requested_strategy() == AUTO
        monkeypatch.setenv(ENV_VAR, "greedy")
        assert requested_strategy() == "greedy"
        monkeypatch.setenv(ENV_VAR, "auto")  # =auto means "no override"
        assert requested_strategy() == AUTO

    def test_requested_rejects_unknown(self, monkeypatch):
        with pytest.raises(ValueError, match="unknown balancing strategy"):
            requested_strategy("magic")
        monkeypatch.setenv(ENV_VAR, "magic")
        with pytest.raises(ValueError, match=ENV_VAR):
            requested_strategy()

    def test_auto_default_is_the_papers_algorithm(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        assert auto_strategy_name() == "tree"
        sg = SubdomainGrid(16, 16, 4, 4)
        assert make_strategy("auto", sg).name == "tree"

    def test_make_strategy_env_forced(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "repartition")
        sg = SubdomainGrid(16, 16, 4, 4)
        assert make_strategy("auto", sg).name == "repartition"
        assert make_strategy("tree", sg).name == "tree"  # pin wins

    def test_duplicate_and_auto_registration_rejected(self):
        with pytest.raises(ValueError):
            register_strategy("tree")(BalanceStrategy)
        with pytest.raises(ValueError):
            register_strategy("auto")(BalanceStrategy)

    def test_loadbalancer_facade_resolves_and_reports(self):
        sg = SubdomainGrid(16, 16, 4, 4)
        lb = LoadBalancer(sg, strategy="diffusion")
        assert lb.name == "diffusion"
        assert "diffusion" in repr(lb)


class TestUniformWorkHelper:
    def test_none_is_uniform(self):
        assert is_uniform_work(None)

    def test_empty_is_uniform(self):
        assert is_uniform_work([])
        assert is_uniform_work(np.array([]))

    def test_scalar_and_single_entry_are_uniform(self):
        assert is_uniform_work(3.0)
        assert is_uniform_work([2.5])

    def test_equal_entries_are_uniform(self):
        assert is_uniform_work([2.0, 2.0, 2.0])
        assert is_uniform_work(np.full(7, 0.25))

    def test_heterogeneous_entries_are_not(self):
        assert not is_uniform_work([1.0, 2.0])
        assert not is_uniform_work([1.0, 1.0, 1.0 + 1e-3])


class TestBalanceResult:
    def run_star(self):
        sg = SubdomainGrid(20, 20, 5, 5)
        return make_strategy("tree", sg).balance_step(
            star_parts(), 4, [5.0, 2.5, 10.0, 10.0])

    def test_frozen(self):
        res = self.run_star()
        with pytest.raises(AttributeError):
            res.triggered = False
        with pytest.raises(ValueError):
            res.parts_after[0] = 3  # arrays are read-only views

    def test_imbalance_after_computed(self):
        res = self.run_star()
        # expected shares are fixed within a step: after - before must
        # equal the realized load delta
        k = 4
        load_b = np.bincount(res.parts_before, minlength=k).astype(float)
        load_a = np.bincount(res.parts_after, minlength=k).astype(float)
        np.testing.assert_allclose(
            res.imbalance_after, res.imbalance_before - (load_a - load_b))
        # the step must have settled every node to within one SD
        assert np.abs(res.imbalance_after).max() < np.abs(
            res.imbalance_before).max()

    def test_noop_imbalance_after_equals_before(self):
        sg = SubdomainGrid(16, 16, 4, 4)
        res = make_strategy("tree", sg).balance_step(
            block_partition(4, 4, 4), 4, [1.0] * 4)
        assert not res.triggered
        np.testing.assert_array_equal(res.imbalance_after,
                                      res.imbalance_before)

    def test_repr_is_stable(self):
        res = self.run_star()
        r = repr(res)
        assert r == repr(self.run_star())  # deterministic, value-based
        assert "0x" not in r               # no object addresses
        assert "strategy='tree'" in r
        assert f"sds_moved={res.sds_moved}" in r


class TestBalanceEvent:
    def test_round_trip(self):
        e = BalanceEvent(step=3, strategy="tree", sds_moved=4,
                         migration_bytes=2048, imbalance_before=1.4,
                         imbalance_after=1.05)
        assert BalanceEvent.from_dict(e.to_dict()) == e


class TestTreeGoldenAgreement:
    """``tree`` reproduces the pre-refactor Algorithm 1 bit-for-bit.

    The expected values were captured from the seed implementation
    (``LoadBalancer.balance_step`` before the strategy extraction) on
    the Fig. 7 star example and the standard 4x4 block case.
    """

    def test_fig7_star_transfers(self):
        sg = SubdomainGrid(20, 20, 5, 5)
        res = make_strategy("tree", sg).balance_step(
            star_parts(), 4, [5.0, 2.5, 10.0, 10.0])
        assert res.triggered and res.sds_moved == 7
        assert res.parts_after.tolist() == [
            1, 1, 0, 2, 2, 1, 1, 0, 2, 2, 1, 0, 0, 2, 3,
            1, 1, 0, 2, 3, 1, 1, 0, 2, 3]
        assert [(p.donor, p.receiver, p.requested, list(p.sds))
                for p in res.plans] == [
            (3, 2, 1, [4]), (3, 2, 1, [9]), (2, 0, 1, [11]),
            (2, 1, 1, [6]), (2, 1, 1, [16]), (2, 1, 1, [1]),
            (2, 1, 1, [21])]
        np.testing.assert_allclose(res.imbalance_before, [
            0.5555555555555554, 6.111111111111111,
            -4.444444444444445, -2.2222222222222223])

    def test_fig7_star_work_weighted_transfers(self):
        sg = SubdomainGrid(20, 20, 5, 5)
        wf = np.ones(25)
        wf[:10] = 0.5
        res = make_strategy("tree", sg).balance_step(
            star_parts(), 4, [5.0, 2.5, 10.0, 10.0], work_per_sd=wf)
        assert res.parts_after.tolist() == [
            1, 1, 0, 2, 2, 1, 1, 0, 2, 2, 1, 0, 0, 2, 2,
            1, 1, 0, 2, 3, 1, 1, 0, 2, 3]
        assert [(p.donor, p.receiver, list(p.sds)) for p in res.plans] == [
            (3, 2, [4]), (3, 2, [9]), (3, 2, [14]), (2, 0, [11]),
            (2, 1, [6]), (2, 1, [16]), (2, 1, [1]), (2, 1, [21])]

    def test_block_2x_speed_transfers(self):
        sg = SubdomainGrid(16, 16, 4, 4)
        res = make_strategy("tree", sg).balance_step(
            block_partition(4, 4, 4), 4, [4.0, 4.0, 1.0, 1.0])
        assert res.parts_after.tolist() == [
            0, 0, 1, 1, 2, 2, 3, 3, 2, 2, 3, 3, 2, 2, 3, 3]
        assert [(p.donor, p.receiver, list(p.sds)) for p in res.plans] == [
            (0, 2, [4]), (0, 2, [5]), (1, 3, [6]), (1, 3, [7])]

    def test_facade_delegates_to_the_same_algorithm(self):
        sg = SubdomainGrid(20, 20, 5, 5)
        direct = make_strategy("tree", sg).balance_step(
            star_parts(), 4, [5.0, 2.5, 10.0, 10.0])
        lb = LoadBalancer(sg, strategy="tree")
        facade = lb.balance_step(star_parts(), 4, [5.0, 2.5, 10.0, 10.0])
        assert facade.parts_after.tolist() == direct.parts_after.tolist()
        assert repr(lb) == "LoadBalancer(strategy='tree')"


# ---------------------------------------------------------------------------
# property tests: the invariants every registered strategy must keep
# ---------------------------------------------------------------------------

def _random_setup(draw):
    k = draw(st.integers(2, 4))
    parts = np.array(draw(st.lists(st.integers(0, k - 1), min_size=36,
                                   max_size=36)), dtype=np.int64)
    # every node must own at least one SD (the solver invariant)
    for n in range(k):
        parts[n] = n
    busy = np.array(draw(st.lists(
        st.floats(0.1, 50.0, allow_nan=False), min_size=k, max_size=k)))
    return k, parts, busy


@pytest.mark.parametrize("name", ALL)
class TestStrategyInvariants:
    SG = SubdomainGrid(24, 24, 6, 6)

    @given(data=st.data())
    @settings(max_examples=25, deadline=None)
    def test_conservation_and_validity(self, name, data):
        """Every SD stays owned by a valid node; SDs are never created,
        destroyed, or relabeled wholesale."""
        k, parts, busy = _random_setup(data.draw)
        res = make_strategy(name, self.SG).balance_step(parts, k, busy)
        assert len(res.parts_after) == 36
        assert res.parts_after.min() >= 0
        assert res.parts_after.max() < k
        # the result reports exactly the delta between before and after
        assert np.array_equal(res.parts_before, parts)

    @given(data=st.data())
    @settings(max_examples=15, deadline=None)
    def test_deterministic(self, name, data):
        k, parts, busy = _random_setup(data.draw)
        strategy = make_strategy(name, self.SG)
        first = strategy.balance_step(parts, k, busy)
        second = strategy.balance_step(parts, k, busy)
        assert np.array_equal(first.parts_after, second.parts_after)
        assert repr(first) == repr(second)

    @given(data=st.data())
    @settings(max_examples=15, deadline=None)
    def test_work_weighted_conservation(self, name, data):
        k, parts, busy = _random_setup(data.draw)
        wf = np.array(data.draw(st.lists(
            st.floats(0.25, 2.0, allow_nan=False), min_size=36,
            max_size=36)))
        res = make_strategy(name, self.SG).balance_step(
            parts, k, busy, work_per_sd=wf)
        assert len(res.parts_after) == 36
        assert set(np.unique(res.parts_after)) <= set(range(k))

    def test_noop_below_threshold(self, name):
        """A balanced cluster (equal shares, equal busy) must not move."""
        parts = block_partition(6, 6, 4)
        res = make_strategy(name, self.SG).balance_step(
            parts, 4, [9.0, 9.0, 9.0, 9.0])
        assert not res.triggered
        assert res.sds_moved == 0
        assert np.array_equal(res.parts_before, res.parts_after)

    def test_single_node_noop(self, name):
        res = make_strategy(name, self.SG).balance_step(
            np.zeros(36, dtype=np.int64), 1, [5.0])
        assert res.sds_moved == 0

    def test_imbalance_is_reduced(self, name):
        """From the 2x-speed block configuration every strategy must cut
        the predicted busy-time spread."""
        parts = block_partition(6, 6, 4)
        res = make_strategy(name, self.SG).balance_step(
            parts, 4, [9.0, 9.0, 2.25, 2.25])
        assert res.triggered
        assert res.imbalance_ratio_after < res.imbalance_ratio_before

    def test_validation_errors(self, name):
        strategy = make_strategy(name, self.SG)
        with pytest.raises(ValueError, match="busy times"):
            strategy.balance_step(block_partition(6, 6, 4), 4, [1.0, 1.0])
        with pytest.raises(ValueError, match="work_per_sd"):
            strategy.balance_step(block_partition(6, 6, 4), 4, [1.0] * 4,
                                  work_per_sd=np.ones(3))


@pytest.mark.parametrize("name", ALL)
class TestActiveMaskInvariants:
    """Elastic-cluster invariants: every strategy must tolerate a
    changing active-node set (failures evacuated, joiners seeded) while
    keeping the fixed-membership behavior bit-identical when every node
    is active."""

    SG = SubdomainGrid(24, 24, 6, 6)

    def _setup(self, draw):
        k = draw(st.integers(2, 5))
        parts = np.array(draw(st.lists(st.integers(0, k - 1), min_size=36,
                                       max_size=36)), dtype=np.int64)
        for n in range(k):
            parts[n] = n
        busy = np.array(draw(st.lists(
            st.floats(0.1, 50.0, allow_nan=False), min_size=k, max_size=k)))
        # at least one node stays active
        active = np.array(draw(st.lists(st.booleans(), min_size=k,
                                        max_size=k)))
        active[draw(st.integers(0, k - 1))] = True
        return k, parts, busy, active

    @given(data=st.data())
    @settings(max_examples=25, deadline=None)
    def test_no_sd_on_inactive_and_conserved(self, name, data):
        """After any step with an active mask: every SD owned by an
        active node, none lost or duplicated."""
        k, parts, busy, active = self._setup(data.draw)
        res = make_strategy(name, self.SG).balance_step(
            parts, k, busy, active=active)
        assert len(res.parts_after) == 36
        owners = np.unique(res.parts_after)
        assert set(owners) <= set(np.nonzero(active)[0])
        if not active[parts].all():
            assert res.recovery and res.triggered

    @given(data=st.data())
    @settings(max_examples=15, deadline=None)
    def test_integer_targets_conserved_over_active_subset(self, name, data):
        """Regression (ISSUE 4): integer-target apportionment must be
        computed over the shrunken/grown active set, so the targets sum
        to the SD count — a full-vector apportionment can hand leftover
        SDs to dead nodes and strand them."""
        k, parts, busy, active = self._setup(data.draw)
        strategy = make_strategy(name, self.SG)
        res = strategy.balance_step(parts, k, busy, active=active)
        counts = np.bincount(res.parts_after, minlength=k)
        assert counts.sum() == 36
        assert counts[~active].sum() == 0

    @given(data=st.data())
    @settings(max_examples=15, deadline=None)
    def test_all_active_mask_equals_legacy(self, name, data):
        """An all-True mask must reproduce the fixed-membership result
        bit for bit (the solver passes None only when no faults are
        configured — the two paths may never diverge)."""
        k, parts, busy, _ = self._setup(data.draw)
        strategy = make_strategy(name, self.SG)
        legacy = strategy.balance_step(parts, k, busy)
        masked = strategy.balance_step(parts, k, busy,
                                       active=np.ones(k, dtype=bool))
        assert np.array_equal(legacy.parts_after, masked.parts_after)
        assert legacy.imbalance_ratio_after == masked.imbalance_ratio_after
        assert legacy.triggered == masked.triggered
        assert not masked.recovery

    @given(data=st.data())
    @settings(max_examples=10, deadline=None)
    def test_deterministic_under_masks(self, name, data):
        k, parts, busy, active = self._setup(data.draw)
        strategy = make_strategy(name, self.SG)
        first = strategy.balance_step(parts, k, busy, active=active)
        second = strategy.balance_step(parts, k, busy, active=active)
        assert np.array_equal(first.parts_after, second.parts_after)
        assert repr(first) == repr(second)

    def test_joiner_seeded_and_absorbed(self, name):
        """A fresh joiner (active, zero SDs) must end up owning work."""
        parts = block_partition(6, 6, 4)  # node 4 owns nothing
        res = make_strategy(name, self.SG).balance_step(
            parts, 5, [9.0, 9.0, 9.0, 9.0, 0.0],
            active=np.ones(5, dtype=bool))
        counts = np.bincount(res.parts_after, minlength=5)
        assert counts[4] > 0
        assert res.recovery  # seeding is a topology reaction

    def test_evacuation_is_forced_below_threshold(self, name):
        """A dead node's SDs must leave even when the residual is below
        the trigger threshold (evacuation is correctness, not policy)."""
        parts = block_partition(6, 6, 4)
        active = np.array([True, True, True, False])
        res = make_strategy(name, self.SG).balance_step(
            parts, 4, [9.0] * 4, active=active)
        assert res.triggered and res.recovery
        assert np.all(res.parts_after != 3)

    def test_active_set_smaller_than_sds_per_node(self, name):
        """Shrinking to a single active node: it must absorb all 36
        SDs (the integer target equals the whole mesh)."""
        parts = block_partition(6, 6, 4)
        active = np.array([False, True, False, False])
        res = make_strategy(name, self.SG).balance_step(
            parts, 4, [9.0] * 4, active=active)
        assert np.all(res.parts_after == 1)


class TestEvacuateAssignments:
    SG = SubdomainGrid(24, 24, 6, 6)

    def test_splits_dead_region_between_neighbors(self):
        from repro.core.strategies import evacuate_assignments
        parts = block_partition(6, 6, 4)
        active = np.array([True, True, False, True])
        new, plans = evacuate_assignments(self.SG, parts, active)
        assert np.all(new != 2)
        assert len(plans) == 9
        counts = np.bincount(new, minlength=4)
        assert counts.sum() == 36
        # the load spreads over the survivors instead of one dump
        assert counts[counts > 0].max() <= 15

    def test_bootstrap_when_no_active_frontier(self):
        """Only survivor is an SD-less joiner: evacuation must still
        converge by bootstrapping the frontier."""
        from repro.core.strategies import evacuate_assignments
        parts = np.zeros(36, dtype=np.int64)
        active = np.array([False, True])
        new, plans = evacuate_assignments(self.SG, parts, active)
        assert np.all(new == 1)
        assert len(plans) == 36

    def test_input_not_mutated_and_deterministic(self):
        from repro.core.strategies import evacuate_assignments
        parts = block_partition(6, 6, 4)
        before = parts.copy()
        active = np.array([True, False, False, True])
        a, _ = evacuate_assignments(self.SG, parts, active)
        b, _ = evacuate_assignments(self.SG, parts, active)
        assert np.array_equal(parts, before)
        assert np.array_equal(a, b)

    def test_requires_an_active_node(self):
        from repro.core.strategies import evacuate_assignments
        with pytest.raises(ValueError, match="at least one active"):
            evacuate_assignments(self.SG, block_partition(6, 6, 4),
                                 np.zeros(4, dtype=bool))


class TestStrategySpecificBehavior:
    def test_diffusion_moves_only_between_adjacent_nodes(self):
        sg = SubdomainGrid(24, 24, 6, 6)
        parts = block_partition(6, 6, 4)
        from repro.mesh.decomposition import Decomposition
        adjacent = set(Decomposition(sg, parts, 4).node_adjacency())
        res = make_strategy("diffusion", sg).balance_step(
            parts, 4, [9.0, 6.0, 3.0, 1.5])
        assert res.triggered and res.plans
        for plan in res.plans:
            pair = (min(plan.donor, plan.receiver),
                    max(plan.donor, plan.receiver))
            assert pair in adjacent

    def test_greedy_relays_between_non_adjacent_extremes(self):
        """Hot and cold nodes separated by a near-balanced middle: the
        greedy strategy must relay load through it, not stall."""
        sg = SubdomainGrid(24, 24, 6, 6)
        # three vertical strips: node 0 | node 1 | node 2
        parts = np.repeat([0, 0, 1, 1, 2, 2], 1)
        parts = np.tile(parts, 6)
        res = make_strategy("greedy", sg).balance_step(
            parts, 3, [24.0, 12.0, 3.0])  # 0 slow & overloaded, 2 fast
        counts = np.bincount(res.parts_after, minlength=3)
        assert counts[2] > 12  # the far node must end up with more SDs
        assert counts.sum() == 36

    def test_repartition_moves_less_than_a_naive_relabel(self):
        """The max-overlap remap keeps the fresh layout anchored to the
        old owners — a mild imbalance must not shuffle most of the mesh."""
        sg = SubdomainGrid(32, 32, 8, 8)
        parts = block_partition(8, 8, 4)
        res = make_strategy("repartition", sg).balance_step(
            parts, 4, [16.0, 16.0, 12.0, 12.0])
        assert res.triggered
        assert res.sds_moved < 32  # far fewer than a wholesale relabel

    def test_repartition_settles_to_integer_targets(self):
        sg = SubdomainGrid(32, 32, 8, 8)
        parts = block_partition(8, 8, 4)
        res = make_strategy("repartition", sg).balance_step(
            parts, 4, [16.0, 16.0, 4.0, 4.0])
        counts = np.bincount(res.parts_after, minlength=4)
        # speeds (1,1,4,4): targets ~ (6,6,26,26); the greedy polish must
        # land within one SD of every target
        assert np.abs(counts - np.array([6, 6, 26, 26])).max() <= 1

    def test_strategies_accept_read_only_parts(self):
        """Results feed the next step: a read-only parts array (from a
        previous frozen result) must be accepted by every strategy."""
        sg = SubdomainGrid(24, 24, 6, 6)
        parts = block_partition(6, 6, 4)
        parts.flags.writeable = False
        for name in ALL:
            res = make_strategy(name, sg).balance_step(
                parts, 4, [9.0, 9.0, 2.25, 2.25])
            assert res.triggered
