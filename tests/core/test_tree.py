"""Tests for the dependency tree and processing order."""

import pytest

from repro.core.tree import (build_dependency_tree, topological_order)


class TestBuildTree:
    def test_path_graph(self):
        tree = build_dependency_tree(3, [(0, 1), (1, 2)], root=0)
        assert tree.root == 0
        assert tree.parent[1] == 0
        assert tree.parent[2] == 1

    def test_star_from_fig7(self):
        """The paper's Fig. 7: nodes 1,4,3 all hang off hub 2
        (0-indexed: 0,3,2 hang off 1)."""
        tree = build_dependency_tree(4, [(0, 1), (1, 2), (1, 3)], root=0)
        assert tree.parent[1] == 0
        assert tree.parent[2] == 1
        assert tree.parent[3] == 1

    def test_cycle_becomes_tree(self):
        tree = build_dependency_tree(4, [(0, 1), (1, 2), (2, 3), (3, 0)], root=0)
        # BFS from 0 visits 1 and 3 as children, 2 via the smaller parent
        assert tree.parent[1] == 0
        assert tree.parent[3] == 0
        assert tree.parent[2] in (1, 3)

    def test_neighbors_parent_and_children(self):
        tree = build_dependency_tree(3, [(0, 1), (1, 2)], root=0)
        assert tree.neighbors(1) == [0, 2]
        assert tree.neighbors(0) == [1]

    def test_contains(self):
        tree = build_dependency_tree(3, [(0, 1)], root=0)
        assert tree.contains(0) and tree.contains(1)
        assert not tree.contains(2)  # disconnected

    def test_validation(self):
        with pytest.raises(ValueError, match="root"):
            build_dependency_tree(2, [], root=5)
        with pytest.raises(ValueError, match="self-adjacency"):
            build_dependency_tree(2, [(0, 0)], root=0)
        with pytest.raises(ValueError, match="out of range"):
            build_dependency_tree(2, [(0, 7)], root=0)


class TestTopologicalOrder:
    def test_leaves_first_children_precede_parents(self):
        tree = build_dependency_tree(5, [(0, 1), (1, 2), (1, 3), (3, 4)],
                                     root=0)
        order = topological_order(tree, 5)
        pos = {n: i for i, n in enumerate(order)}
        for n in range(5):
            p = tree.parent[n]
            if p >= 0:
                assert pos[n] < pos[p], f"child {n} after parent {p}"
        assert order[-1] == 0  # root last

    def test_every_nonroot_has_unvisited_neighbor_when_processed(self):
        """The guarantee Algorithm 1 needs to settle every residual."""
        tree = build_dependency_tree(
            6, [(0, 1), (0, 2), (2, 3), (2, 4), (4, 5)], root=0)
        order = topological_order(tree, 6)
        visited = set()
        for n in order[:-1]:
            visited.add(n)
            assert any(m not in visited for m in tree.neighbors(n))

    def test_root_first_mode(self):
        tree = build_dependency_tree(3, [(0, 1), (1, 2)], root=0)
        order = topological_order(tree, 3, leaves_first=False)
        assert order[0] == 0

    def test_disconnected_nodes_appended(self):
        tree = build_dependency_tree(4, [(0, 1)], root=0)
        order = topological_order(tree, 4)
        assert set(order) == {0, 1, 2, 3}
        assert order[-2:] == [2, 3]

    def test_single_node(self):
        tree = build_dependency_tree(1, [], root=0)
        assert topological_order(tree, 1) == [0]

    def test_paper_fig7_order_shape(self):
        """Star tree: all leaves precede the hub; the hub is second-last
        (before any disconnected nodes) and the root is one of the
        leaves processed early."""
        # 0-indexed star: hub 1; leaves 0, 2, 3; root = leaf 0
        tree = build_dependency_tree(4, [(0, 1), (1, 2), (1, 3)], root=0)
        order = topological_order(tree, 4)
        assert order[-1] == 0  # root (leaf) settled last by conservation
        assert order[-2] == 1  # hub just before
        assert set(order[:2]) == {2, 3}
