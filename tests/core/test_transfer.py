"""Tests for direction-uniform SD transfer selection."""

import numpy as np
import pytest

from repro.core.transfer import (apply_transfers, naive_select_transfers,
                                 select_transfers)
from repro.mesh.subdomain import SubdomainGrid
from repro.partition.graph import grid_dual_graph
from repro.partition.metrics import parts_are_contiguous


def halves(sds=4):
    """Left half node 0, right half node 1."""
    sg = SubdomainGrid(4 * sds, 4 * sds, sds, sds)
    parts = np.zeros(sds * sds, dtype=np.int64)
    for sd in range(sds * sds):
        ix, _ = sg.sd_coords(sd)
        parts[sd] = 1 if ix >= sds // 2 else 0
    return sg, parts


class TestSelectTransfers:
    def test_moves_requested_count(self):
        sg, parts = halves()
        plan = select_transfers(sg, parts, donor=1, receiver=0, count=3)
        assert plan.moved == 3
        assert plan.requested == 3

    def test_chosen_sds_belong_to_donor(self):
        sg, parts = halves()
        plan = select_transfers(sg, parts, donor=1, receiver=0, count=4)
        assert all(parts[sd] == 1 for sd in plan.sds)

    def test_first_pick_is_adjacent_to_receiver(self):
        sg, parts = halves()
        plan = select_transfers(sg, parts, donor=1, receiver=0, count=1)
        sd = plan.sds[0]
        assert any(parts[nb] == 0 for nb in sg.face_neighbors(sd))

    def test_zero_count_empty_plan(self):
        sg, parts = halves()
        plan = select_transfers(sg, parts, donor=1, receiver=0, count=0)
        assert plan.moved == 0

    def test_non_adjacent_nodes_transfer_nothing(self):
        sg = SubdomainGrid(16, 16, 4, 4)
        parts = np.ones(16, dtype=np.int64)
        parts[0] = 0   # node 0 has one corner SD
        parts[15] = 2  # node 2 the opposite corner
        plan = select_transfers(sg, parts, donor=2, receiver=0, count=1)
        assert plan.moved == 0

    def test_receiver_stays_contiguous(self):
        sg, parts = halves(sds=6)
        plan = select_transfers(sg, parts, donor=1, receiver=0, count=6)
        new = apply_transfers(parts, [plan])
        g = grid_dual_graph(6, 6)
        assert parts_are_contiguous(g, new)

    def test_donor_stays_contiguous_when_possible(self):
        sg, parts = halves(sds=6)
        plan = select_transfers(sg, parts, donor=1, receiver=0, count=8)
        new = apply_transfers(parts, [plan])
        g = grid_dual_graph(6, 6)
        assert parts_are_contiguous(g, new)

    def test_direction_uniform_spread(self):
        """Borrowing from a surrounding donor pulls from all sides, not
        one: receiver is the center SD, donor owns the rest of a 5x5."""
        sg = SubdomainGrid(20, 20, 5, 5)
        parts = np.ones(25, dtype=np.int64)
        center = sg.sd_id(2, 2)
        parts[center] = 0
        plan = select_transfers(sg, parts, donor=1, receiver=0, count=4)
        assert plan.moved == 4
        picked = {sg.sd_coords(sd) for sd in plan.sds}
        # the four face neighbours of the center, one per direction
        assert picked == {(1, 2), (3, 2), (2, 1), (2, 3)}

    def test_whole_donor_can_be_absorbed(self):
        sg, parts = halves()
        donor_size = int((parts == 1).sum())
        plan = select_transfers(sg, parts, donor=1, receiver=0,
                                count=donor_size)
        assert plan.moved == donor_size

    def test_count_capped_by_donor_size(self):
        sg, parts = halves()
        donor_size = int((parts == 1).sum())
        plan = select_transfers(sg, parts, donor=1, receiver=0,
                                count=donor_size + 5)
        assert plan.moved == donor_size

    def test_validation(self):
        sg, parts = halves()
        with pytest.raises(ValueError, match="count"):
            select_transfers(sg, parts, donor=1, receiver=0, count=-1)
        with pytest.raises(ValueError, match="differ"):
            select_transfers(sg, parts, donor=1, receiver=1, count=1)

    def test_input_parts_not_mutated(self):
        sg, parts = halves()
        keep = parts.copy()
        select_transfers(sg, parts, donor=1, receiver=0, count=3)
        assert np.array_equal(parts, keep)


class TestNaiveBaseline:
    def test_moves_count(self):
        sg, parts = halves()
        plan = naive_select_transfers(sg, parts, donor=1, receiver=0, count=3)
        assert plan.moved == 3

    def test_naive_picks_lowest_ids(self):
        sg, parts = halves()
        plan = naive_select_transfers(sg, parts, donor=1, receiver=0, count=1)
        frontier_min = min(sd for sd in range(16)
                           if parts[sd] == 1 and
                           any(parts[nb] == 0 for nb in sg.face_neighbors(sd)))
        assert plan.sds[0] == frontier_min


class TestApplyTransfers:
    def test_applies_ownership_changes(self):
        sg, parts = halves()
        plan = select_transfers(sg, parts, donor=1, receiver=0, count=2)
        new = apply_transfers(parts, [plan])
        assert (new == 0).sum() == (parts == 0).sum() + 2

    def test_stale_plan_rejected(self):
        sg, parts = halves()
        plan = select_transfers(sg, parts, donor=1, receiver=0, count=1)
        parts2 = parts.copy()
        parts2[plan.sds[0]] = 0  # already moved
        with pytest.raises(ValueError, match="no longer owned"):
            apply_transfers(parts2, [plan])
