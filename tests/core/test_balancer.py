"""Tests for the Algorithm 1 driver."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.balancer import LoadBalancer
from repro.core.policy import IntervalPolicy, NeverBalance, ThresholdPolicy
from repro.mesh.subdomain import SubdomainGrid
from repro.partition.graph import grid_dual_graph
from repro.partition.metrics import parts_are_contiguous


def make(sds=4):
    # pin the paper's algorithm: these tests assert Algorithm-1-specific
    # outcomes and must not be rewritten by a forced REPRO_BALANCER
    sg = SubdomainGrid(4 * sds, 4 * sds, sds, sds)
    return sg, LoadBalancer(sg, strategy="tree")


def block_parts(sds, nodes):
    from repro.partition.geometric import block_partition
    return block_partition(sds, sds, nodes)


class TestBalanceStep:
    def test_balanced_cluster_is_noop(self):
        sg, lb = make()
        parts = block_parts(4, 4)
        res = lb.balance_step(parts, 4, busy_times=[1.0, 1.0, 1.0, 1.0])
        assert not res.triggered
        assert res.sds_moved == 0
        assert np.array_equal(res.parts_before, res.parts_after)

    def test_fast_node_receives_sds(self):
        """Node 3 finishing its 4 SDs in 1/4 the time must gain SDs."""
        sg, lb = make()
        parts = block_parts(4, 4)
        res = lb.balance_step(parts, 4, busy_times=[4.0, 4.0, 4.0, 1.0])
        assert res.triggered
        counts = np.bincount(res.parts_after, minlength=4)
        assert counts[3] > 4

    def test_sd_count_conserved(self):
        sg, lb = make()
        parts = block_parts(4, 4)
        res = lb.balance_step(parts, 4, busy_times=[4.0, 2.0, 1.0, 0.5])
        assert len(res.parts_after) == 16
        assert set(np.unique(res.parts_after)) <= {0, 1, 2, 3}

    def test_reaches_integer_targets_for_2x_speed(self):
        """Speeds (1,1,4,4) on 16 SDs -> targets (2,2,6,6)."""
        sg, lb = make()
        parts = block_parts(4, 4)
        # busy = sds/speed: 4/1, 4/1, 4/4, 4/4
        res = lb.balance_step(parts, 4, busy_times=[4.0, 4.0, 1.0, 1.0])
        counts = np.bincount(res.parts_after, minlength=4)
        assert sorted(counts) == [2, 2, 6, 6]

    def test_second_step_after_balance_is_noop(self):
        """Once at the integer targets, the balancer must go quiet."""
        sg, lb = make()
        parts = block_parts(4, 4)
        res1 = lb.balance_step(parts, 4, busy_times=[4.0, 4.0, 1.0, 1.0])
        counts = np.bincount(res1.parts_after, minlength=4).astype(float)
        # new busy times proportional to new load / speed
        speeds = np.array([1.0, 1.0, 4.0, 4.0])
        busy2 = counts / speeds
        res2 = lb.balance_step(res1.parts_after, 4, busy_times=busy2)
        assert res2.sds_moved == 0

    def test_contiguity_preserved(self):
        sg, lb = make(sds=6)
        parts = block_parts(6, 4)
        res = lb.balance_step(parts, 4, busy_times=[4.0, 4.0, 1.0, 1.0])
        g = grid_dual_graph(6, 6)
        assert parts_are_contiguous(g, res.parts_after)

    def test_two_nodes_simple_lend(self):
        sg, lb = make()
        parts = np.array([0] * 8 + [1] * 8)
        res = lb.balance_step(parts, 2, busy_times=[1.0, 3.0])
        counts = np.bincount(res.parts_after, minlength=2)
        assert counts[0] > counts[1]
        assert counts.sum() == 16

    def test_work_weighted_balancing(self):
        """Cheap (cracked) SDs on node 0: equal busy times but node 0's
        SDs are cheap; work-aware balancing should still be a no-op when
        *work* is balanced."""
        sg, lb = make()
        parts = np.array([0] * 8 + [1] * 8)
        wf = np.ones(16)
        wf[:8] = 0.5  # node 0 holds 4.0 work, node 1 holds 8.0
        # both nodes same speed: busy proportional to work
        res = lb.balance_step(parts, 2, busy_times=[4.0, 8.0],
                              work_per_sd=wf)
        assert res.triggered
        new_work = np.zeros(2)
        np.add.at(new_work, res.parts_after, wf)
        before = np.zeros(2)
        np.add.at(before, parts, wf)
        assert abs(new_work[0] - new_work[1]) < abs(before[0] - before[1])

    def test_validation(self):
        sg, lb = make()
        parts = block_parts(4, 4)
        with pytest.raises(ValueError, match="busy times"):
            lb.balance_step(parts, 4, busy_times=[1.0, 1.0])
        with pytest.raises(ValueError, match="work_per_sd"):
            lb.balance_step(parts, 4, busy_times=[1.0] * 4,
                            work_per_sd=np.ones(3))

    def test_single_node_noop(self):
        sg, lb = make()
        res = lb.balance_step(np.zeros(16, dtype=int), 1, busy_times=[5.0])
        assert res.sds_moved == 0

    @given(speeds=st.lists(st.floats(0.5, 8.0), min_size=2, max_size=4))
    @settings(max_examples=30, deadline=None)
    def test_balancing_reduces_or_keeps_imbalance(self, speeds):
        """Property: one balance step never increases the max busy-time
        spread implied by the SD distribution."""
        k = len(speeds)
        sg = SubdomainGrid(32, 32, 8, 8)
        lb = LoadBalancer(sg, strategy="tree")
        from repro.partition.geometric import block_partition
        parts = block_partition(8, 8, k)
        counts = np.bincount(parts, minlength=k).astype(float)
        speeds_arr = np.asarray(speeds)
        busy = counts / speeds_arr
        res = lb.balance_step(parts, k, busy_times=busy)
        new_counts = np.bincount(res.parts_after, minlength=k).astype(float)
        assert new_counts.sum() == 64
        spread_before = (busy.max() - busy.min())
        busy_after = new_counts / speeds_arr
        spread_after = busy_after.max() - busy_after.min()
        assert spread_after <= spread_before + 1e-9


class TestFig14Scenario:
    def test_highly_imbalanced_5x5_balances_within_3_iterations(self):
        """The paper's Fig. 14: 5x5 SDs, 4 symmetric nodes, highly
        imbalanced start -> nearly balanced within 3 iterations."""
        sg = SubdomainGrid(20, 20, 5, 5)
        lb = LoadBalancer(sg, strategy="tree")
        # highly imbalanced start: node 0 owns almost everything
        parts = np.zeros(25, dtype=np.int64)
        parts[4] = 1    # single SD corners for the others
        parts[20] = 2
        parts[24] = 3
        speed = np.ones(4)
        for _ in range(3):
            counts = np.bincount(parts, minlength=4).astype(float)
            busy = counts / speed
            res = lb.balance_step(parts, 4, busy_times=busy)
            parts = res.parts_after
        counts = np.bincount(parts, minlength=4)
        # 25 SDs over 4 symmetric nodes: ideal is 6/6/6/7
        assert counts.max() - counts.min() <= 2
        assert counts.min() >= 5


class TestPolicies:
    def test_never(self):
        assert not NeverBalance().should_balance(0, [1.0, 5.0])

    def test_interval(self):
        p = IntervalPolicy(3)
        fires = [p.should_balance(s, [1.0]) for s in range(7)]
        assert fires == [False, False, True, False, False, True, False]

    def test_interval_validation(self):
        with pytest.raises(ValueError):
            IntervalPolicy(0)

    def test_threshold_fires_on_spread(self):
        p = ThresholdPolicy(ratio=1.2)
        assert not p.should_balance(0, [1.0, 1.0])
        assert p.should_balance(1, [1.0, 2.0])

    def test_threshold_rate_limit(self):
        """Rate limiting runs against the caller-supplied last-balance
        step — policies themselves are stateless."""
        p = ThresholdPolicy(ratio=1.1, min_interval=5)
        assert p.should_balance(0, [1.0, 2.0], last_balance=None)
        assert not p.should_balance(2, [1.0, 2.0], last_balance=0)  # too soon
        assert p.should_balance(5, [1.0, 2.0], last_balance=0)

    def test_threshold_is_stateless(self):
        """Firing never mutates the policy: the same call repeated gives
        the same answer (the old implementation recorded the step
        internally and would rate-limit the second call)."""
        p = ThresholdPolicy(ratio=1.1, min_interval=5)
        assert p.should_balance(0, [1.0, 2.0])
        assert p.should_balance(0, [1.0, 2.0])
        assert p.should_balance(1, [1.0, 2.0], last_balance=None)

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            ThresholdPolicy(ratio=0.9)
        with pytest.raises(ValueError):
            ThresholdPolicy(min_interval=0)


class TestPolicyReuseAcrossRuns:
    def test_reused_threshold_policy_does_not_rate_limit_next_run(self):
        """Regression: a ThresholdPolicy object reused for a second
        solver run must behave exactly like a fresh policy — the old
        mutable ``_last_balance`` attribute silently rate-limited the
        next run's first balancing steps."""
        from repro.amt.cluster import ConstantSpeed
        from repro.mesh.grid import UniformGrid
        from repro.partition.geometric import block_partition
        from repro.solver.distributed import DistributedSolver
        from repro.solver.model import NonlocalHeatModel

        grid = UniformGrid(32, 32)
        model = NonlocalHeatModel(epsilon=2 * grid.h)
        sg = SubdomainGrid(32, 32, 4, 4)
        policy = ThresholdPolicy(ratio=1.05, min_interval=4)

        def run_with(p):
            solver = DistributedSolver(
                model, grid, sg, block_parts(4, 4), num_nodes=4,
                speeds=[ConstantSpeed(s) for s in (1e9, 1e9, 2e9, 4e9)],
                compute_numerics=False,
                balancer=LoadBalancer(sg, strategy="tree"), policy=p)
            res = solver.run(None, 6)
            return [(step, parts.tolist()) for step, parts in res.parts_history]

        first = run_with(policy)
        again = run_with(policy)           # same object, second run
        fresh = run_with(ThresholdPolicy(ratio=1.05, min_interval=4))
        assert first, "the heterogeneous run must rebalance at least once"
        assert again == fresh == first
