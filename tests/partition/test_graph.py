"""Tests for the CSR graph container and builders."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.partition.graph import Graph, graph_from_edges, grid_dual_graph


class TestGraphFromEdges:
    def test_simple_path(self):
        g = graph_from_edges(3, [(0, 1), (1, 2)])
        assert g.num_vertices == 3
        assert g.num_edges == 2
        assert list(g.neighbors(1)) == [0, 2]

    def test_edges_symmetric(self):
        g = graph_from_edges(4, [(0, 2), (2, 3)])
        g.validate()

    def test_duplicate_edges_merge_weights(self):
        g = graph_from_edges(2, [(0, 1), (1, 0)], edge_weights=[1.0, 2.5])
        assert g.num_edges == 1
        assert g.edge_weights(0)[0] == pytest.approx(3.5)

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError, match="self-loop"):
            graph_from_edges(2, [(1, 1)])

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="out of range"):
            graph_from_edges(2, [(0, 5)])

    def test_default_unit_weights(self):
        g = graph_from_edges(3, [(0, 1)])
        assert np.all(g.vwgt == 1.0)
        assert np.all(g.adjwgt == 1.0)

    def test_vertex_weights_stored(self):
        g = graph_from_edges(2, [(0, 1)], vwgt=[2.0, 3.0])
        assert g.total_vertex_weight() == pytest.approx(5.0)

    def test_degree(self):
        g = graph_from_edges(4, [(0, 1), (0, 2), (0, 3)])
        assert g.degree(0) == 3
        assert g.degree(3) == 1

    def test_empty_graph(self):
        g = graph_from_edges(0, [])
        assert g.num_vertices == 0
        assert g.is_connected()

    def test_isolated_vertices(self):
        g = graph_from_edges(3, [(0, 1)])
        assert not g.is_connected()
        labels = g.connected_components()
        assert labels[0] == labels[1] != labels[2]


class TestGraphValidation:
    def test_bad_xadj_start(self):
        with pytest.raises(ValueError):
            Graph(np.array([1, 2]), np.array([0]))

    def test_bad_xadj_end(self):
        with pytest.raises(ValueError):
            Graph(np.array([0, 5]), np.array([0]))

    def test_decreasing_xadj(self):
        with pytest.raises(ValueError, match="non-decreasing"):
            Graph(np.array([0, 2, 1, 2]), np.array([1, 0]))

    def test_vwgt_length_checked(self):
        with pytest.raises(ValueError):
            Graph(np.array([0, 0]), np.array([], dtype=np.int64),
                  vwgt=np.array([1.0, 2.0]))

    def test_adjncy_range_checked(self):
        with pytest.raises(ValueError, match="out-of-range"):
            Graph(np.array([0, 1]), np.array([7]))

    def test_coords_length_checked(self):
        with pytest.raises(ValueError, match="one row per vertex"):
            graph_from_edges(2, [(0, 1)], coords=np.zeros((3, 2)))


class TestConnectivityHelpers:
    def test_subgraph_connected_true(self):
        g = grid_dual_graph(3, 3)
        assert g.subgraph_is_connected([0, 1, 2])

    def test_subgraph_connected_false(self):
        g = grid_dual_graph(3, 3)
        # opposite corners with nothing in between
        assert not g.subgraph_is_connected([0, 8])

    def test_subgraph_empty_is_connected(self):
        g = grid_dual_graph(2, 2)
        assert g.subgraph_is_connected([])

    def test_components_of_connected_graph(self):
        g = grid_dual_graph(4, 4)
        assert g.is_connected()
        assert np.all(g.connected_components() == 0)


class TestGridDualGraph:
    def test_vertex_count(self):
        g = grid_dual_graph(5, 5)
        assert g.num_vertices == 25

    def test_edge_count_4neighbor(self):
        # (nx-1)*ny horizontal + nx*(ny-1) vertical
        g = grid_dual_graph(5, 4)
        assert g.num_edges == 4 * 4 + 5 * 3

    def test_interior_vertex_degree(self):
        g = grid_dual_graph(3, 3)
        assert g.degree(4) == 4  # center of 3x3

    def test_corner_degree(self):
        g = grid_dual_graph(3, 3)
        assert g.degree(0) == 2

    def test_diagonal_adjacency(self):
        g = grid_dual_graph(3, 3, diagonal=True)
        assert g.degree(4) == 8
        # diagonal edge weight is smaller than face weight
        nbrs = list(g.neighbors(4))
        wgts = dict(zip(nbrs, g.edge_weights(4)))
        assert wgts[0] == pytest.approx(0.25)   # diagonal
        assert wgts[1] == pytest.approx(1.0)    # face

    def test_coords_in_unit_square(self):
        g = grid_dual_graph(4, 2)
        assert g.coords is not None
        assert np.all(g.coords >= 0) and np.all(g.coords <= 1)

    def test_single_sd_grid(self):
        g = grid_dual_graph(1, 1)
        assert g.num_vertices == 1
        assert g.num_edges == 0

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            grid_dual_graph(0, 3)

    def test_custom_vertex_weights(self):
        g = grid_dual_graph(2, 2, vwgt=[1, 2, 3, 4])
        assert g.total_vertex_weight() == 10

    @given(nx=st.integers(1, 8), ny=st.integers(1, 8))
    @settings(max_examples=30, deadline=None)
    def test_grid_graph_always_valid_and_connected(self, nx, ny):
        g = grid_dual_graph(nx, ny)
        g.validate()
        assert g.is_connected()
