"""Tests for partition quality metrics."""

import numpy as np
import pytest

from repro.partition.graph import graph_from_edges, grid_dual_graph
from repro.partition.metrics import (boundary_vertices, edge_cut,
                                     evaluate_partition, imbalance,
                                     num_parts_used, part_weights,
                                     parts_are_contiguous)


class TestEdgeCut:
    def test_all_same_part_zero_cut(self):
        g = grid_dual_graph(4, 4)
        assert edge_cut(g, np.zeros(16, dtype=int)) == 0.0

    def test_half_split_of_path(self):
        g = graph_from_edges(4, [(0, 1), (1, 2), (2, 3)])
        parts = np.array([0, 0, 1, 1])
        assert edge_cut(g, parts) == 1.0

    def test_weighted_cut(self):
        g = graph_from_edges(2, [(0, 1)], edge_weights=[3.5])
        assert edge_cut(g, np.array([0, 1])) == 3.5

    def test_grid_vertical_split(self):
        # 4x4 grid split into left/right halves cuts 4 edges
        g = grid_dual_graph(4, 4)
        parts = np.array([0, 0, 1, 1] * 4)
        assert edge_cut(g, parts) == 4.0

    def test_length_mismatch_raises(self):
        g = grid_dual_graph(2, 2)
        with pytest.raises(ValueError, match="partition length"):
            edge_cut(g, np.zeros(3, dtype=int))

    def test_negative_part_raises(self):
        g = grid_dual_graph(2, 2)
        with pytest.raises(ValueError, match="negative part"):
            edge_cut(g, np.array([0, -1, 0, 0]))


class TestWeightsAndImbalance:
    def test_part_weights(self):
        g = grid_dual_graph(2, 2, vwgt=[1, 2, 3, 4])
        w = part_weights(g, np.array([0, 0, 1, 1]), k=2)
        assert list(w) == [3.0, 7.0]

    def test_perfect_balance(self):
        g = grid_dual_graph(2, 2)
        assert imbalance(g, np.array([0, 0, 1, 1]), k=2) == pytest.approx(1.0)

    def test_imbalanced(self):
        g = grid_dual_graph(2, 2)
        assert imbalance(g, np.array([0, 0, 0, 1]), k=2) == pytest.approx(1.5)

    def test_empty_part_counts_in_k(self):
        g = grid_dual_graph(2, 2)
        # all on part 0 of 2 -> max/ideal = 4/2
        assert imbalance(g, np.zeros(4, dtype=int), k=2) == pytest.approx(2.0)

    def test_num_parts_used(self):
        assert num_parts_used(np.array([0, 0, 2, 2])) == 2


class TestContiguity:
    def test_contiguous_halves(self):
        g = grid_dual_graph(4, 1)
        assert parts_are_contiguous(g, np.array([0, 0, 1, 1]))

    def test_split_part_not_contiguous(self):
        g = grid_dual_graph(4, 1)
        assert not parts_are_contiguous(g, np.array([0, 1, 0, 1]))

    def test_single_part(self):
        g = grid_dual_graph(3, 3)
        assert parts_are_contiguous(g, np.zeros(9, dtype=int))


class TestBoundary:
    def test_boundary_of_vertical_split(self):
        g = grid_dual_graph(4, 1)
        b = boundary_vertices(g, np.array([0, 0, 1, 1]))
        assert list(b) == [1, 2]

    def test_no_boundary_single_part(self):
        g = grid_dual_graph(3, 3)
        assert len(boundary_vertices(g, np.zeros(9, dtype=int))) == 0

    def test_boundary_grows_with_parts(self):
        g = grid_dual_graph(6, 6)
        two = np.array([0 if v % 6 < 3 else 1 for v in range(36)])
        four = np.array([(v % 6) // 2 for v in range(36)])  # 3 strips... use 2-wide
        assert len(boundary_vertices(g, four)) >= len(boundary_vertices(g, two))


class TestReport:
    def test_evaluate_partition_bundles_metrics(self):
        g = grid_dual_graph(4, 4)
        parts = np.array([0, 0, 1, 1] * 4)
        rep = evaluate_partition(g, parts, k=2)
        assert rep.cut == 4.0
        assert rep.imbalance == pytest.approx(1.0)
        assert rep.contiguous
        assert rep.parts_used == 2
        d = rep.as_dict()
        assert d["edge_cut"] == 4.0 and d["k"] == 2
