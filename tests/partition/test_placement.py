"""Topology-aware part → node placement (rack packing / scattering)."""

import numpy as np
import pytest

from repro.mesh.subdomain import SubdomainGrid
from repro.partition.geometric import block_partition, strip_partition
from repro.partition.placement import (apply_placement, part_affinity,
                                       rack_aware_mapping, scattered_mapping)


def _inter_rack_cut(affinity, mapping, node_racks):
    """Affinity mass crossing rack boundaries under a part→node map."""
    racks = [node_racks[mapping[p]] for p in range(len(mapping))]
    cut = 0.0
    for p in range(len(mapping)):
        for q in range(p + 1, len(mapping)):
            if racks[p] != racks[q]:
                cut += affinity[p, q]
    return cut


class TestPartAffinity:
    def test_strip_partition_chain(self):
        """Vertical strips touch only their left/right neighbors."""
        sd_grid = SubdomainGrid(32, 32, 4, 4)
        parts = strip_partition(4, 4, 4, axis=0)
        W = part_affinity(sd_grid, parts, 4)
        assert np.array_equal(W, W.T)
        # chain: 0-1, 1-2, 2-3 share 4 SD faces each, nothing else
        expect = np.zeros((4, 4))
        for a, b in ((0, 1), (1, 2), (2, 3)):
            expect[a, b] = expect[b, a] = 4
        assert np.array_equal(W, expect)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="parts length"):
            part_affinity(SubdomainGrid(32, 32, 4, 4), np.zeros(3), 1)


class TestRackAwareMapping:
    def test_is_a_bijection(self):
        sd_grid = SubdomainGrid(64, 64, 4, 4)
        parts = block_partition(4, 4, 8)
        W = part_affinity(sd_grid, parts, 8)
        mapping = rack_aware_mapping(W, node_racks=[0, 0, 0, 0, 1, 1, 1, 1])
        assert sorted(mapping) == list(range(8))

    def test_packs_adjacent_parts_into_racks(self):
        """On a scrambled labeling the rack map must beat scatter (and
        never lose to the identity) on the inter-rack cut."""
        sd_grid = SubdomainGrid(64, 64, 4, 4)
        parts = block_partition(4, 4, 8)
        # scramble the labels so the identity grouping is bad
        scramble = np.array([0, 4, 1, 5, 2, 6, 3, 7])
        scrambled = scramble[parts]
        W = part_affinity(sd_grid, scrambled, 8)
        node_racks = [0, 0, 0, 0, 1, 1, 1, 1]
        rack_cut = _inter_rack_cut(W, rack_aware_mapping(W, node_racks),
                                   node_racks)
        identity_cut = _inter_rack_cut(W, np.arange(8), node_racks)
        scatter_cut = _inter_rack_cut(W, scattered_mapping(node_racks),
                                      node_racks)
        assert rack_cut < identity_cut
        # (this scramble happens to be inverted by round-robin dealing,
        # so scatter can tie here — beating it strictly is covered by
        # test_beats_scatter_on_a_chain)
        assert rack_cut <= scatter_cut

    def test_beats_scatter_on_a_chain(self):
        """Strip parts form a chain; dealing them across racks cuts
        every chain edge while rack packing cuts exactly one."""
        sd_grid = SubdomainGrid(32, 32, 4, 4)
        parts = strip_partition(4, 4, 4, axis=0)
        W = part_affinity(sd_grid, parts, 4)
        node_racks = [0, 0, 1, 1]
        rack_cut = _inter_rack_cut(W, rack_aware_mapping(W, node_racks),
                                   node_racks)
        scatter_cut = _inter_rack_cut(W, scattered_mapping(node_racks),
                                      node_racks)
        assert rack_cut == 4.0      # the single 1-2 strip boundary
        assert scatter_cut == 12.0  # every chain edge crosses racks
        assert rack_cut < scatter_cut

    def test_identity_preferred_when_cut_ties(self):
        """Rack-coherent labels stay put: no gratuitous permutation."""
        sd_grid = SubdomainGrid(64, 64, 4, 4)
        parts = strip_partition(4, 4, 4, axis=0)
        W = part_affinity(sd_grid, parts, 4)
        mapping = rack_aware_mapping(W, node_racks=[0, 0, 1, 1])
        assert np.array_equal(mapping, np.arange(4))

    def test_single_rack_degenerates_to_identity(self):
        sd_grid = SubdomainGrid(32, 32, 4, 4)
        parts = block_partition(4, 4, 4)
        W = part_affinity(sd_grid, parts, 4)
        assert np.array_equal(rack_aware_mapping(W, [0, 0, 0, 0]),
                              np.arange(4))

    def test_deterministic(self):
        sd_grid = SubdomainGrid(64, 64, 8, 8)
        parts = block_partition(8, 8, 8)
        W = part_affinity(sd_grid, parts, 8)
        racks = [0, 0, 0, 1, 1, 1, 2, 2]
        a = rack_aware_mapping(W, racks)
        b = rack_aware_mapping(W, racks)
        assert np.array_equal(a, b)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="affinity"):
            rack_aware_mapping(np.zeros((3, 3)), [0, 0])


class TestScatteredMapping:
    def test_round_robin_across_racks(self):
        mapping = scattered_mapping([0, 0, 1, 1])
        # part 0 -> rack0's first node, part 1 -> rack1's first node, ...
        assert list(mapping) == [0, 2, 1, 3]

    def test_uneven_racks(self):
        mapping = scattered_mapping([0, 0, 0, 1])
        assert sorted(mapping) == [0, 1, 2, 3]
        assert list(mapping[:2]) == [0, 3]  # first deal hits both racks

    def test_single_rack_identity(self):
        assert list(scattered_mapping([0, 0, 0])) == [0, 1, 2]


class TestApplyPlacement:
    def _setup(self):
        sd_grid = SubdomainGrid(64, 64, 4, 4)
        parts = block_partition(4, 4, 8)
        return sd_grid, parts, [0, 0, 0, 0, 1, 1, 1, 1]

    @pytest.mark.parametrize("placement", ["none", "rack", "scatter"])
    def test_preserves_part_grouping(self, placement):
        """Placement relabels parts; it never regroups SDs."""
        sd_grid, parts, racks = self._setup()
        out = apply_placement(sd_grid, parts, racks, placement)
        # SDs that shared a part still share one, and vice versa
        for sd_a in range(len(parts)):
            for sd_b in range(sd_a + 1, len(parts)):
                assert ((parts[sd_a] == parts[sd_b])
                        == (out[sd_a] == out[sd_b]))

    def test_none_is_identity_copy(self):
        sd_grid, parts, racks = self._setup()
        out = apply_placement(sd_grid, parts, racks, "none")
        assert np.array_equal(out, parts)
        assert out is not parts

    def test_unknown_placement_rejected(self):
        sd_grid, parts, racks = self._setup()
        with pytest.raises(ValueError, match="placement"):
            apply_placement(sd_grid, parts, racks, "optimal")
