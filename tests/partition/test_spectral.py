"""Tests for spectral bisection."""

import numpy as np
import pytest

from repro.partition.graph import graph_from_edges, grid_dual_graph
from repro.partition.metrics import edge_cut, imbalance, num_parts_used
from repro.partition.spectral import (fiedler_vector, spectral_bisection,
                                      spectral_partition)


class TestFiedlerVector:
    def test_path_graph_is_monotone(self):
        """On a path, the Fiedler vector is monotone along the path."""
        g = graph_from_edges(8, [(i, i + 1) for i in range(7)])
        f = fiedler_vector(g)
        diffs = np.diff(f)
        assert np.all(diffs > 0) or np.all(diffs < 0)

    def test_orthogonal_to_constants(self):
        g = grid_dual_graph(5, 5)
        f = fiedler_vector(g)
        assert abs(f.sum()) < 1e-8

    def test_large_graph_sparse_path(self):
        g = grid_dual_graph(12, 12)  # 144 > 64 -> eigsh path
        f = fiedler_vector(g)
        assert len(f) == 144
        assert abs(f.sum()) < 1e-6

    def test_single_vertex_rejected(self):
        with pytest.raises(ValueError):
            fiedler_vector(graph_from_edges(1, []))


class TestSpectralBisection:
    def test_splits_path_in_half(self):
        g = graph_from_edges(8, [(i, i + 1) for i in range(7)])
        parts = spectral_bisection(g)
        assert edge_cut(g, parts) == 1.0  # the optimal path cut

    def test_grid_bisection_near_optimal(self):
        g = grid_dual_graph(8, 8)
        parts = spectral_bisection(g)
        assert edge_cut(g, parts) <= 12.0  # optimal is 8
        assert imbalance(g, parts, 2) <= 1.1

    def test_asymmetric_target(self):
        g = grid_dual_graph(8, 8)
        parts = spectral_bisection(g, target_fraction=0.25)
        w0 = g.vwgt[parts == 0].sum()
        assert w0 / g.total_vertex_weight() == pytest.approx(0.25, abs=0.05)

    def test_validation(self):
        g = grid_dual_graph(4, 4)
        with pytest.raises(ValueError):
            spectral_bisection(g, target_fraction=0.0)


class TestSpectralPartition:
    def test_all_parts_used(self):
        g = grid_dual_graph(8, 8)
        for k in (2, 3, 4):
            parts = spectral_partition(g, k)
            assert num_parts_used(parts) == k

    def test_balance(self):
        g = grid_dual_graph(10, 10)
        parts = spectral_partition(g, 4)
        assert imbalance(g, parts, 4) <= 1.3

    def test_quality_on_par_with_blocks(self):
        """4-way spectral cut within 2x of the ideal block cut."""
        g = grid_dual_graph(8, 8)
        parts = spectral_partition(g, 4)
        assert edge_cut(g, parts) <= 32.0  # blocks achieve 16

    def test_k1(self):
        g = grid_dual_graph(3, 3)
        assert np.all(spectral_partition(g, 1) == 0)

    def test_invalid_k(self):
        g = grid_dual_graph(3, 3)
        with pytest.raises(ValueError):
            spectral_partition(g, 0)
