"""Tests for coarsening, initial bisection, and FM refinement."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.partition.coarsen import (coarsen_level, contract,
                                     heavy_edge_matching)
from repro.partition.graph import graph_from_edges, grid_dual_graph
from repro.partition.initial import (best_bisection, grow_bisection,
                                     pseudo_peripheral_vertex)
from repro.partition.metrics import edge_cut, imbalance
from repro.partition.refine import compute_gains, fm_refine_bisection


class TestMatching:
    def test_matching_is_symmetric(self):
        g = grid_dual_graph(5, 5)
        match = heavy_edge_matching(g, np.random.default_rng(0))
        for v in range(g.num_vertices):
            assert match[match[v]] == v

    def test_matched_pairs_are_adjacent(self):
        g = grid_dual_graph(4, 4)
        match = heavy_edge_matching(g, np.random.default_rng(1))
        for v in range(g.num_vertices):
            if match[v] != v:
                assert match[v] in list(g.neighbors(v))

    def test_prefers_heavy_edges(self):
        # triangle-free path with one heavy edge: 0-1 (w=10), 1-2 (w=1)
        g = graph_from_edges(3, [(0, 1), (1, 2)], edge_weights=[10.0, 1.0])
        # regardless of visit order, 1 must pair with 0 if 1 visited first,
        # and 0 pairs with 1 if 0 visited first; run many seeds
        for seed in range(10):
            match = heavy_edge_matching(g, np.random.default_rng(seed))
            if match[0] != 0:
                assert match[0] == 1

    def test_isolated_vertex_stays_single(self):
        g = graph_from_edges(3, [(0, 1)])
        match = heavy_edge_matching(g, np.random.default_rng(0))
        assert match[2] == 2


class TestContract:
    def test_weights_conserved(self):
        g = grid_dual_graph(4, 4, vwgt=np.arange(1, 17, dtype=float))
        match = heavy_edge_matching(g, np.random.default_rng(0))
        coarse, f2c = contract(g, match)
        assert coarse.total_vertex_weight() == pytest.approx(g.total_vertex_weight())

    def test_projection_covers_all_coarse_vertices(self):
        g = grid_dual_graph(5, 5)
        match = heavy_edge_matching(g, np.random.default_rng(0))
        coarse, f2c = contract(g, match)
        assert set(f2c) == set(range(coarse.num_vertices))

    def test_coarse_graph_valid(self):
        g = grid_dual_graph(6, 6)
        match = heavy_edge_matching(g, np.random.default_rng(2))
        coarse, _ = contract(g, match)
        coarse.validate()

    def test_cut_preserved_under_projection(self):
        """A coarse partition's cut equals the projected fine cut."""
        g = grid_dual_graph(6, 6)
        rng = np.random.default_rng(3)
        match = heavy_edge_matching(g, rng)
        coarse, f2c = contract(g, match)
        coarse_parts = rng.integers(0, 2, coarse.num_vertices)
        fine_parts = coarse_parts[f2c]
        assert edge_cut(coarse, coarse_parts) == pytest.approx(
            edge_cut(g, fine_parts))

    def test_coords_are_weighted_centroids(self):
        g = graph_from_edges(2, [(0, 1)], vwgt=[1.0, 3.0],
                             coords=np.array([[0.0, 0.0], [1.0, 1.0]]))
        match = np.array([1, 0])
        coarse, _ = contract(g, match)
        assert coarse.coords[0] == pytest.approx([0.75, 0.75])

    def test_coarsen_level_stops_when_stalled(self):
        # a graph with no edges cannot be coarsened
        g = graph_from_edges(10, [])
        assert coarsen_level(g, np.random.default_rng(0)) is None

    def test_coarsen_level_roughly_halves_grid(self):
        g = grid_dual_graph(8, 8)
        level = coarsen_level(g, np.random.default_rng(0))
        assert level is not None
        assert level.graph.num_vertices <= 0.9 * g.num_vertices


class TestInitialBisection:
    def test_pseudo_peripheral_on_path_is_endpoint(self):
        g = graph_from_edges(5, [(i, i + 1) for i in range(4)])
        assert pseudo_peripheral_vertex(g) in (0, 4)

    def test_grow_reaches_target_weight(self):
        g = grid_dual_graph(6, 6)
        parts = grow_bisection(g, target_weight=18.0, seed_vertex=0)
        w0 = g.vwgt[parts == 0].sum()
        assert 12.0 <= w0 <= 27.0  # within the documented overshoot bounds

    def test_grow_produces_two_parts(self):
        g = grid_dual_graph(4, 4)
        parts = grow_bisection(g, 8.0, seed_vertex=0)
        assert set(np.unique(parts)) == {0, 1}

    def test_best_bisection_picks_lowest_cut(self):
        g = grid_dual_graph(8, 8)
        parts = best_bisection(g, 32.0, np.random.default_rng(0), trials=4)
        # a sane bisection of an 8x8 grid should cut at most ~2 rows worth
        assert edge_cut(g, parts) <= 16.0

    def test_best_bisection_single_vertex(self):
        g = graph_from_edges(1, [])
        assert list(best_bisection(g, 0.5, np.random.default_rng(0))) == [0]

    def test_best_bisection_empty(self):
        g = graph_from_edges(0, [])
        assert len(best_bisection(g, 0.0, np.random.default_rng(0))) == 0


class TestFMRefinement:
    def test_gains_definition(self):
        g = graph_from_edges(3, [(0, 1), (1, 2)])
        parts = np.array([0, 0, 1])
        gains = compute_gains(g, parts)
        # vertex 1: one edge inside (to 0), one edge cut (to 2) -> gain 0
        assert gains[1] == pytest.approx(0.0)
        # vertex 2: its only edge is cut -> gain +1
        assert gains[2] == pytest.approx(1.0)

    def test_refinement_never_increases_cut(self):
        rng = np.random.default_rng(0)
        g = grid_dual_graph(8, 8)
        parts = rng.integers(0, 2, 64)
        before = edge_cut(g, parts)
        after = edge_cut(g, fm_refine_bisection(g, parts.copy()))
        assert after <= before

    def test_refinement_fixes_jagged_boundary(self):
        # vertical split with one vertex on the wrong side
        g = grid_dual_graph(6, 6)
        parts = np.array([0 if v % 6 < 3 else 1 for v in range(36)])
        parts[2] = 1  # wrong-side vertex: 3 cut edges instead of 1
        refined = fm_refine_bisection(g, parts.copy())
        assert edge_cut(g, refined) <= edge_cut(g, parts)
        assert refined[2] == 0  # moved back

    def test_respects_balance_constraint(self):
        g = grid_dual_graph(4, 4)
        parts = np.array([0, 0, 1, 1] * 4)
        refined = fm_refine_bisection(g, parts.copy(), balance=1.05)
        assert imbalance(g, refined, 2) <= 1.05 + 1e-9

    def test_rejects_non_binary_partition(self):
        g = grid_dual_graph(2, 2)
        with pytest.raises(ValueError, match="0/1 partition"):
            fm_refine_bisection(g, np.array([0, 1, 2, 0]))

    def test_already_optimal_partition_unchanged_cut(self):
        g = grid_dual_graph(4, 4)
        parts = np.array([0, 0, 1, 1] * 4)  # cut = 4 (optimal for 4x4)
        refined = fm_refine_bisection(g, parts.copy())
        assert edge_cut(g, refined) == 4.0

    @given(seed=st.integers(0, 1000))
    @settings(max_examples=40, deadline=None)
    def test_refinement_monotone_property(self, seed):
        """Balanced random partitions on a random grid: FM never worsens
        the cut.

        The monotonicity guarantee applies to inputs that satisfy the
        balance caps; an *unbalanced* input is first repaired (balance
        beats cut, as in METIS), which may raise the cut — that path is
        covered by ``test_unbalanced_input_is_repaired``.
        """
        rng = np.random.default_rng(seed)
        nx = int(rng.integers(2, 7))
        ny = int(rng.integers(2, 7))
        g = grid_dual_graph(nx, ny)
        n = nx * ny
        parts = np.zeros(n, dtype=np.int64)
        parts[rng.permutation(n)[:n // 2]] = 1  # an exactly even split
        before = edge_cut(g, parts)
        after = edge_cut(g, fm_refine_bisection(g, parts.copy()))
        assert after <= before + 1e-9

    @given(seed=st.integers(0, 1000))
    @settings(max_examples=40, deadline=None)
    def test_unbalanced_input_is_repaired(self, seed):
        """Arbitrarily skewed inputs come back within the balance caps
        (up to single-vertex granularity) — the degenerate-bisection
        regression behind seed 83 / k=5 of the k-way property test."""
        rng = np.random.default_rng(seed)
        nx = int(rng.integers(3, 7))
        ny = int(rng.integers(3, 7))
        g = grid_dual_graph(nx, ny)
        n = nx * ny
        parts = np.ones(n, dtype=np.int64)
        parts[int(rng.integers(0, n))] = 0  # 1 vs n-1: grossly skewed
        refined = fm_refine_bisection(g, parts.copy(), balance=1.05)
        assert imbalance(g, refined, 2) <= 1.05 + 2.0 / n
