"""Tests for the k-way driver and geometric baselines."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.partition.geometric import (block_partition, grid_blocks_for_k,
                                       recursive_coordinate_bisection,
                                       strip_partition)
from repro.partition.graph import graph_from_edges, grid_dual_graph
from repro.partition.kway import partition_graph, partition_sd_grid
from repro.partition.metrics import (edge_cut, imbalance, num_parts_used,
                                     part_weights, parts_are_contiguous)


class TestPartitionGraph:
    def test_k1_everything_in_part0(self):
        g = grid_dual_graph(4, 4)
        assert np.all(partition_graph(g, 1) == 0)

    def test_every_vertex_assigned_in_range(self):
        g = grid_dual_graph(8, 8)
        parts = partition_graph(g, 4, seed=0)
        assert parts.min() >= 0 and parts.max() < 4
        assert len(parts) == 64

    def test_all_parts_nonempty(self):
        g = grid_dual_graph(8, 8)
        for k in (2, 3, 4, 5, 7):
            parts = partition_graph(g, k, seed=0)
            assert num_parts_used(parts) == k, f"k={k}"

    def test_balance_on_uniform_grid(self):
        g = grid_dual_graph(8, 8)
        parts = partition_graph(g, 4, seed=0)
        assert imbalance(g, parts, 4) <= 1.25

    def test_cut_is_reasonable_16x16_4way(self):
        """16x16 grid, 4 parts: ideal block split cuts 32; allow 2x slack."""
        g = grid_dual_graph(16, 16)
        parts = partition_graph(g, 4, seed=0)
        assert edge_cut(g, parts) <= 64.0

    def test_deterministic_given_seed(self):
        g = grid_dual_graph(8, 8)
        a = partition_graph(g, 4, seed=7)
        b = partition_graph(g, 4, seed=7)
        assert np.array_equal(a, b)

    def test_weighted_targets_shift_part_sizes(self):
        g = grid_dual_graph(8, 8)
        parts = partition_graph(g, 2, seed=0, target_weights=[3.0, 1.0])
        w = part_weights(g, parts, 2)
        assert w[0] > w[1]
        assert w[0] / w.sum() == pytest.approx(0.75, abs=0.15)

    def test_nonuniform_vertex_weights_balanced_by_weight(self):
        vwgt = np.ones(64)
        vwgt[:8] = 8.0  # one heavy column
        g = grid_dual_graph(8, 8, vwgt=vwgt)
        parts = partition_graph(g, 2, seed=0)
        assert imbalance(g, parts, 2) <= 1.3

    def test_invalid_k(self):
        g = grid_dual_graph(2, 2)
        with pytest.raises(ValueError):
            partition_graph(g, 0)

    def test_bad_target_weights(self):
        g = grid_dual_graph(2, 2)
        with pytest.raises(ValueError):
            partition_graph(g, 2, target_weights=[1.0])
        with pytest.raises(ValueError):
            partition_graph(g, 2, target_weights=[1.0, -1.0])

    def test_k_larger_than_vertices(self):
        g = grid_dual_graph(2, 1)
        parts = partition_graph(g, 2, seed=0)
        assert num_parts_used(parts) == 2

    def test_disconnected_graph_still_partitions(self):
        g = graph_from_edges(6, [(0, 1), (1, 2), (3, 4), (4, 5)])
        parts = partition_graph(g, 2, seed=0)
        assert num_parts_used(parts) == 2

    @given(seed=st.integers(0, 200), k=st.integers(2, 6))
    @settings(max_examples=25, deadline=None)
    def test_partition_invariants_property(self, seed, k):
        g = grid_dual_graph(10, 10)
        parts = partition_graph(g, k, seed=seed)
        assert len(parts) == 100
        assert parts.min() >= 0 and parts.max() < k
        assert num_parts_used(parts) == k
        assert imbalance(g, parts, k) <= 1.6


class TestPartitionSDGrid:
    def test_paper_fig13_shape_16x16_over_16_nodes(self):
        parts = partition_sd_grid(16, 16, 16, seed=0)
        g = grid_dual_graph(16, 16)
        assert num_parts_used(parts) == 16
        assert imbalance(g, parts, 16) <= 1.35

    def test_fig2_shape_5x5_over_4_nodes(self):
        parts = partition_sd_grid(5, 5, 4, seed=0)
        g = grid_dual_graph(5, 5)
        assert num_parts_used(parts) == 4
        # 25 SDs over 4 nodes: parts of size 6-7 ideally
        w = part_weights(g, parts, 4)
        assert w.max() <= 9

    def test_contiguity_usually_holds_on_grids(self):
        """Multilevel RB on grids should give contiguous parts for pow2 k."""
        g = grid_dual_graph(8, 8)
        parts = partition_sd_grid(8, 8, 4, seed=0)
        assert parts_are_contiguous(g, parts)


class TestGeometric:
    def test_strip_partition_columns(self):
        parts = strip_partition(4, 2, 2, axis=0)
        assert list(parts) == [0, 0, 1, 1, 0, 0, 1, 1]

    def test_strip_partition_rows(self):
        parts = strip_partition(2, 4, 2, axis=1)
        assert list(parts) == [0, 0, 0, 0, 1, 1, 1, 1]

    def test_strip_sizes_near_equal(self):
        parts = strip_partition(10, 1, 3)
        _, counts = np.unique(parts, return_counts=True)
        assert counts.max() - counts.min() <= 1

    def test_strip_invalid(self):
        with pytest.raises(ValueError):
            strip_partition(4, 4, 0)
        with pytest.raises(ValueError):
            strip_partition(4, 4, 2, axis=5)

    def test_blocks_for_k(self):
        assert grid_blocks_for_k(4) == (2, 2)
        assert grid_blocks_for_k(6) == (3, 2)
        assert grid_blocks_for_k(7) == (7, 1)

    def test_block_partition_matches_paper_4node_layout(self):
        """4 nodes on an even grid = 4 equal squares (paper Sec. 8.3)."""
        parts = block_partition(4, 4, 4)
        g = grid_dual_graph(4, 4)
        assert num_parts_used(parts) == 4
        assert imbalance(g, parts, 4) == pytest.approx(1.0)
        assert parts_are_contiguous(g, parts)
        # the four quadrants
        grid = parts.reshape(4, 4)
        assert len(set(grid[:2, :2].ravel())) == 1
        assert len(set(grid[2:, 2:].ravel())) == 1

    def test_block_partition_k2_halves(self):
        parts = block_partition(4, 4, 2)
        g = grid_dual_graph(4, 4)
        assert imbalance(g, parts, 2) == pytest.approx(1.0)

    def test_rcb_basic(self):
        g = grid_dual_graph(8, 8)
        parts = recursive_coordinate_bisection(g, 4)
        assert num_parts_used(parts) == 4
        assert imbalance(g, parts, 4) <= 1.1

    def test_rcb_requires_coords(self):
        g = graph_from_edges(4, [(0, 1), (1, 2), (2, 3)])
        with pytest.raises(ValueError, match="coordinates"):
            recursive_coordinate_bisection(g, 2)

    def test_rcb_respects_weights(self):
        vwgt = np.ones(16)
        vwgt[0] = 15.0
        g = grid_dual_graph(4, 4, vwgt=vwgt)
        parts = recursive_coordinate_bisection(g, 2)
        w = part_weights(g, parts, 2)
        assert imbalance(g, parts, 2) <= 1.35
