"""Documentation consistency: the package docstring example must run."""

import doctest

import repro


def test_package_docstring_example():
    """The ``>>>`` example in ``repro.__doc__`` executes and passes."""
    results = doctest.testmod(repro, verbose=False)
    assert results.attempted > 0
    assert results.failed == 0


def test_version_declared():
    assert repro.__version__ == "1.0.0"


def test_all_exports_resolve():
    for name in repro.__all__:
        assert hasattr(repro, name), f"__all__ lists missing name {name}"
