"""Tests for execution tracing and Gantt rendering."""

import pytest

from repro.amt.cluster import ConstantSpeed, Network, SimCluster
from repro.reporting.trace import TaskInterval, TraceRecorder, render_gantt


class TestTraceRecorder:
    def test_records_single_task(self):
        cluster = SimCluster(1, speeds=[ConstantSpeed(2.0)])
        trace = TraceRecorder(cluster)
        cluster.submit(0, work=10.0, label="kernel")
        cluster.run()
        assert len(trace.intervals) == 1
        iv = trace.intervals[0]
        assert iv.node_id == 0
        assert iv.label == "kernel"
        assert iv.start == 0.0
        assert iv.end == pytest.approx(5.0)

    def test_serialized_tasks_do_not_overlap(self):
        cluster = SimCluster(1, cores_per_node=1)
        trace = TraceRecorder(cluster)
        for i in range(4):
            cluster.submit(0, work=2.0, label=f"t{i}")
        cluster.run()
        ivs = trace.intervals_of_node(0)
        assert len(ivs) == 4
        for a, b in zip(ivs, ivs[1:]):
            assert b.start >= a.end - 1e-12

    def test_two_cores_overlap(self):
        cluster = SimCluster(1, cores_per_node=2)
        trace = TraceRecorder(cluster)
        cluster.submit(0, work=4.0, label="a")
        cluster.submit(0, work=4.0, label="b")
        cluster.run()
        ivs = trace.intervals_of_node(0)
        assert ivs[0].start == ivs[1].start == 0.0

    def test_recording_does_not_change_schedule(self):
        def run(with_trace):
            cluster = SimCluster(2, cores_per_node=2)
            if with_trace:
                TraceRecorder(cluster)
            for i in range(10):
                cluster.submit(i % 2, work=1.0 + i)
            return cluster.run()

        assert run(False) == run(True)

    def test_dependent_task_starts_after_message(self):
        net = Network(latency=3.0, bandwidth=1e12, serialize_egress=False)
        cluster = SimCluster(2, network=net)
        trace = TraceRecorder(cluster)
        msg = cluster.send(0, 1, nbytes=0)
        cluster.submit(1, work=1.0, deps=[msg], label="c1")
        cluster.run()
        assert trace.intervals[0].start == pytest.approx(3.0)


class TestRenderGantt:
    def test_empty(self):
        assert render_gantt([], 0.0) == "(empty schedule)"

    def test_lane_per_node(self):
        ivs = [TaskInterval(0, "a", 0.0, 5.0),
               TaskInterval(1, "b", 5.0, 10.0)]
        out = render_gantt(ivs, 10.0, width=20)
        lines = out.split("\n")
        assert len(lines) == 3
        assert lines[1].startswith("n0 |")
        assert lines[2].startswith("n1 |")

    def test_glyphs_cover_proportional_span(self):
        ivs = [TaskInterval(0, "x", 0.0, 5.0)]
        out = render_gantt(ivs, 10.0, width=20)
        lane = out.split("\n")[1].split("|")[1]
        assert lane[:10] == "x" * 10
        assert lane[10:] == "." * 10

    def test_idle_shows_as_dots(self):
        ivs = [TaskInterval(0, "a", 8.0, 10.0)]
        out = render_gantt(ivs, 10.0, width=10)
        lane = out.split("\n")[1].split("|")[1]
        assert lane.startswith("........")

    def test_num_nodes_override(self):
        out = render_gantt([TaskInterval(0, "a", 0, 1)], 1.0, num_nodes=3)
        assert len(out.split("\n")) == 4

    def test_short_task_still_one_glyph(self):
        ivs = [TaskInterval(0, "z", 0.0, 1e-6)]
        out = render_gantt(ivs, 100.0, width=10)
        lane = out.split("\n")[1].split("|")[1]
        assert "z" in lane


class TestEndToEndOverlapVisibility:
    def test_case2_fills_ghost_wait(self):
        """With the Case-1/Case-2 split, the lane shows compute during
        the message flight; without it, leading idle time."""
        from repro.mesh.grid import UniformGrid
        from repro.mesh.subdomain import SubdomainGrid
        from repro.partition.geometric import block_partition
        from repro.solver.distributed import DistributedSolver
        from repro.solver.model import NonlocalHeatModel

        def first_start(overlap):
            grid = UniformGrid(64, 64)
            model = NonlocalHeatModel(epsilon=4 * grid.h)
            sg = SubdomainGrid(64, 64, 2, 2)
            net = Network(latency=1e-4, bandwidth=1e6)
            solver = DistributedSolver(model, grid, sg,
                                       block_partition(2, 2, 4),
                                       num_nodes=4, network=net,
                                       compute_numerics=False,
                                       overlap=overlap)
            trace = TraceRecorder(solver.cluster)
            solver.run(None, 1)
            return min(iv.start for iv in trace.intervals)

        assert first_start(True) == 0.0       # case-2 work starts at once
        assert first_start(False) > 0.0       # everything waits for ghosts
