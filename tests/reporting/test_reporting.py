"""Tests for table and ownership rendering."""

import numpy as np
import pytest

from repro.mesh.subdomain import SubdomainGrid
from repro.reporting.ownership import (ownership_counts, render_ownership,
                                       render_ownership_sequence)
from repro.reporting.tables import format_series, format_table


class TestFormatTable:
    def test_basic_alignment(self):
        out = format_table(["a", "bb"], [[1, 2.5], [10, 0.25]])
        lines = out.split("\n")
        assert len(lines) == 4
        assert "a" in lines[0] and "bb" in lines[0]
        assert set(lines[1]) <= {"-", "+"}

    def test_title_prepended(self):
        out = format_table(["x"], [[1]], title="Fig. 9")
        assert out.startswith("Fig. 9\n")

    def test_row_width_checked(self):
        with pytest.raises(ValueError, match="cells"):
            format_table(["a", "b"], [[1]])

    def test_float_formatting(self):
        out = format_table(["v"], [[1234567.0], [0.00001], [0.0], [3.14159]],
                           precision=3)
        assert "1.235e+06" in out or "1.23e+06" in out
        assert "e-05" in out
        assert "3.14" in out

    def test_bool_and_str_cells(self):
        out = format_table(["ok", "name"], [[True, "metis"]])
        assert "True" in out and "metis" in out


class TestFormatSeries:
    def test_columns_per_series(self):
        out = format_series("SDs", [1, 4, 16],
                            {"1CPU": [1.0, 1.0, 1.0], "2CPU": [1.0, 1.8, 1.9]})
        header = out.split("\n")[0]
        assert "SDs" in header and "1CPU" in header and "2CPU" in header
        assert len(out.split("\n")) == 5

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="series"):
            format_series("x", [1, 2], {"s": [1.0]})


class TestOwnershipRendering:
    def test_grid_shape_and_symbols(self):
        sg = SubdomainGrid(8, 8, 2, 2)
        out = render_ownership(sg, [0, 1, 2, 3])
        lines = out.split("\n")
        assert len(lines) == 2
        # top row printed first = SD row 1 (ids 2, 3)
        assert lines[0] == "2 3"
        assert lines[1] == "0 1"

    def test_title(self):
        sg = SubdomainGrid(8, 8, 2, 2)
        out = render_ownership(sg, [0, 0, 1, 1], title="iter 0")
        assert out.startswith("iter 0\n")

    def test_too_many_nodes_rejected(self):
        sg = SubdomainGrid(64, 64, 8, 8)
        with pytest.raises(ValueError, match="render"):
            render_ownership(sg, list(range(40)) + [0] * 24)

    def test_sequence_side_by_side(self):
        sg = SubdomainGrid(8, 8, 2, 2)
        out = render_ownership_sequence(sg, [[0, 0, 1, 1], [0, 1, 1, 1]],
                                        labels=["before", "after"])
        lines = out.split("\n")
        assert "before" in lines[0] and "after" in lines[0]
        assert len(lines) == 3

    def test_sequence_label_count_checked(self):
        sg = SubdomainGrid(8, 8, 2, 2)
        with pytest.raises(ValueError, match="label"):
            render_ownership_sequence(sg, [[0, 0, 1, 1]], labels=["a", "b"])

    def test_ownership_counts(self):
        assert ownership_counts([0, 0, 1, 2], 4) == [2, 1, 1, 0]


class TestBalanceEventTables:
    """Edge cases of the telemetry renderers: empty and one-row lists
    (runs that never balanced, or saw exactly one churn event) and
    pre-churn event dicts without the ``recovery`` key."""

    EVENT = {"step": 3, "strategy": "tree", "sds_moved": 4,
             "migration_bytes": 2048, "imbalance_before": 1.42,
             "imbalance_after": 1.05, "recovery": True}

    def test_empty_event_list_renders_header_only(self):
        from repro.reporting import format_balance_events
        out = format_balance_events([])
        lines = out.split("\n")
        assert lines[0] == "balance events"
        assert "strategy" in lines[1] and "recovery" in lines[1]
        assert len(lines) == 3  # title + header + separator, no rows

    def test_single_event_row(self):
        from repro.reporting import format_balance_events
        out = format_balance_events([self.EVENT])
        assert "2,048" in out and "1.420" in out and "yes" in out
        assert len(out.split("\n")) == 4

    def test_legacy_dict_without_recovery_key(self):
        from repro.reporting import format_balance_events
        legacy = {k: v for k, v in self.EVENT.items() if k != "recovery"}
        out = format_balance_events([legacy])
        assert "yes" not in out  # no mark, but no KeyError either

    def test_missing_required_key_raises(self):
        from repro.reporting import format_balance_events
        with pytest.raises(KeyError):
            format_balance_events([{"step": 0}])

    def test_balance_event_objects_accepted(self):
        from repro.core.strategies import BalanceEvent
        from repro.reporting import format_balance_events
        out = format_balance_events([BalanceEvent(**self.EVENT)])
        assert "tree" in out and "yes" in out


class TestRecoveryEventTables:
    EVENT = {"time": 1.25e-3, "step": 2, "kind": "fail", "node": 1,
             "sds_evacuated": 5, "tasks_requeued": 3,
             "recovery_bytes": 4096}

    def test_empty_list_renders_header_only(self):
        from repro.reporting import format_recovery_events
        out = format_recovery_events([])
        assert out.split("\n")[0] == "recovery events"
        assert len(out.split("\n")) == 3

    def test_single_event_row(self):
        from repro.reporting import format_recovery_events
        out = format_recovery_events([self.EVENT])
        assert "1.250" in out  # ms
        assert "fail" in out and "4,096" in out
        assert len(out.split("\n")) == 4

    def test_recovery_event_objects_accepted(self):
        from repro.amt.faults import RecoveryEvent
        from repro.reporting import format_recovery_events
        out = format_recovery_events(
            [RecoveryEvent(**self.EVENT)], title="churn")
        assert out.startswith("churn\n") and "join" not in out
