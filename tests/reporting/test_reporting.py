"""Tests for table and ownership rendering."""

import numpy as np
import pytest

from repro.mesh.subdomain import SubdomainGrid
from repro.reporting.ownership import (ownership_counts, render_ownership,
                                       render_ownership_sequence)
from repro.reporting.tables import format_series, format_table


class TestFormatTable:
    def test_basic_alignment(self):
        out = format_table(["a", "bb"], [[1, 2.5], [10, 0.25]])
        lines = out.split("\n")
        assert len(lines) == 4
        assert "a" in lines[0] and "bb" in lines[0]
        assert set(lines[1]) <= {"-", "+"}

    def test_title_prepended(self):
        out = format_table(["x"], [[1]], title="Fig. 9")
        assert out.startswith("Fig. 9\n")

    def test_row_width_checked(self):
        with pytest.raises(ValueError, match="cells"):
            format_table(["a", "b"], [[1]])

    def test_float_formatting(self):
        out = format_table(["v"], [[1234567.0], [0.00001], [0.0], [3.14159]],
                           precision=3)
        assert "1.235e+06" in out or "1.23e+06" in out
        assert "e-05" in out
        assert "3.14" in out

    def test_bool_and_str_cells(self):
        out = format_table(["ok", "name"], [[True, "metis"]])
        assert "True" in out and "metis" in out


class TestFormatSeries:
    def test_columns_per_series(self):
        out = format_series("SDs", [1, 4, 16],
                            {"1CPU": [1.0, 1.0, 1.0], "2CPU": [1.0, 1.8, 1.9]})
        header = out.split("\n")[0]
        assert "SDs" in header and "1CPU" in header and "2CPU" in header
        assert len(out.split("\n")) == 5

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="series"):
            format_series("x", [1, 2], {"s": [1.0]})


class TestOwnershipRendering:
    def test_grid_shape_and_symbols(self):
        sg = SubdomainGrid(8, 8, 2, 2)
        out = render_ownership(sg, [0, 1, 2, 3])
        lines = out.split("\n")
        assert len(lines) == 2
        # top row printed first = SD row 1 (ids 2, 3)
        assert lines[0] == "2 3"
        assert lines[1] == "0 1"

    def test_title(self):
        sg = SubdomainGrid(8, 8, 2, 2)
        out = render_ownership(sg, [0, 0, 1, 1], title="iter 0")
        assert out.startswith("iter 0\n")

    def test_too_many_nodes_rejected(self):
        sg = SubdomainGrid(64, 64, 8, 8)
        with pytest.raises(ValueError, match="render"):
            render_ownership(sg, list(range(40)) + [0] * 24)

    def test_sequence_side_by_side(self):
        sg = SubdomainGrid(8, 8, 2, 2)
        out = render_ownership_sequence(sg, [[0, 0, 1, 1], [0, 1, 1, 1]],
                                        labels=["before", "after"])
        lines = out.split("\n")
        assert "before" in lines[0] and "after" in lines[0]
        assert len(lines) == 3

    def test_sequence_label_count_checked(self):
        sg = SubdomainGrid(8, 8, 2, 2)
        with pytest.raises(ValueError, match="label"):
            render_ownership_sequence(sg, [[0, 0, 1, 1]], labels=["a", "b"])

    def test_ownership_counts(self):
        assert ownership_counts([0, 0, 1, 2], 4) == [2, 1, 1, 0]
