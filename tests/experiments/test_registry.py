"""Registry completeness: every name builds and runs a tiny config."""

import pytest

from repro.experiments import (ScenarioSpec, build, get_factory, register,
                               run_scenario, scenario_names)

EXPECTED = {
    "fig08_convergence", "fig09_strong_shared", "fig10_weak_shared",
    "fig11_strong_distributed", "fig12_weak_distributed",
    "fig13_metis_scaling", "fig14_load_balance",
    "abl_overlap", "abl_partitioners", "abl_balancing_gain",
    "abl_backends", "abl_balancers",
    "crack_hetero", "hetero_interference", "hetero_drift", "quickstart",
    "solve_serial", "scale_strong", "scale_extreme",
    "hetero_churn", "fault_recovery", "straggler_tail",
}


def test_registry_contains_the_paper_scenarios():
    names = scenario_names()
    assert EXPECTED <= set(names)
    assert names == sorted(names)


def test_unknown_name_raises():
    with pytest.raises(KeyError):
        get_factory("fig99_imaginary")
    with pytest.raises(KeyError):
        build("fig99_imaginary")


def test_duplicate_registration_rejected():
    with pytest.raises(ValueError):
        register("fig14_load_balance")(lambda: None)


@pytest.mark.parametrize("name", sorted(EXPECTED))
def test_every_scenario_builds(name):
    spec = build(name)
    assert isinstance(spec, ScenarioSpec)
    # the registered name is the spec's name: `repro run --scenario X`
    # reports what it ran
    assert spec.name == name
    # every factory takes a `steps` override (tiny smoke configs, CLI)
    assert build(name, steps=1).num_steps == 1


@pytest.mark.parametrize("name", sorted(EXPECTED))
def test_every_scenario_runs_tiny(name):
    rec = run_scenario(build(name, steps=1))
    assert rec.scenario == name
    assert rec.num_steps == 1
    if rec.solver == "distributed":
        assert rec.makespan > 0
        assert len(rec.step_durations) == 1
    else:
        assert rec.total_error is not None


def test_balancer_sweep_covers_every_strategy():
    from repro.core.strategies import strategy_names
    from repro.experiments import balancer_sweep
    specs = balancer_sweep(steps=2)
    assert [s.policy.balancer for s in specs] == strategy_names()
    assert all(s.name == "abl_balancers" for s in specs)
    assert all(s.num_steps == 2 for s in specs)


def test_hetero_drift_spec_shape():
    spec = build("hetero_drift", nodes=4, steps=5, balancer="greedy")
    drift = spec.cluster.drift
    assert drift is not None
    # the drift reverses the start rates mid-run
    assert drift.rates_end == spec.cluster.speed_rates[::-1]
    assert 0 < drift.start < drift.stop
    assert spec.policy.balancer == "greedy"
    assert spec.policy.enabled
    assert not build("hetero_drift", balanced=False).policy.enabled


def test_churn_scenario_shapes():
    spec = build("hetero_churn", nodes=4, steps=8, balancer="greedy")
    faults = spec.cluster.faults
    assert faults is not None
    kinds = [e.kind for e in faults.events]
    assert kinds == ["straggle", "fail", "join"]  # time-sorted
    assert faults.events[-1].node == 4  # joiner id after the initial 4
    assert spec.policy.balancer == "greedy"
    assert not build("hetero_churn", balanced=False).policy.enabled

    golden = build("fault_recovery")
    # everything pinned so the committed golden record is invariant
    # under the CI backend/balancer matrices
    assert golden.policy.balancer == "tree"
    assert golden.kernel_backend == "direct"
    assert golden.compute_numerics and golden.track_error
    assert [e.kind for e in golden.cluster.faults.events] == ["fail"]

    tail = build("straggler_tail")
    assert all(e.kind == "straggle" for e in tail.cluster.faults.events)
    assert tail.policy.kind == "threshold"


def test_overrides_reach_the_spec():
    spec = build("fig11_strong_distributed", mesh=64, sd_axis=4, nodes=2,
                 partitioner="metis", steps=3)
    assert spec.mesh.nx == 64
    assert spec.cluster.num_nodes == 2
    assert spec.partition.method == "metis"
    assert spec.num_steps == 3
    with pytest.raises(ValueError):
        build("fig11_strong_distributed", partitioner="magic")
