"""Runner contracts: operator cache, spec→solver wiring, sweep parity."""

import numpy as np
import pytest

from repro.experiments import (ClusterSpec, MeshSpec, PartitionSpec,
                               PolicySpec, ScenarioSpec, build, build_solver,
                               build_work_factors, cached_operator,
                               clear_operator_cache, operator_cache_info,
                               run_scenario, run_sweep)


class TestOperatorCache:
    def test_repeated_points_share_one_assembly(self):
        clear_operator_cache()
        a = cached_operator(32, 32, 8.0)
        b = cached_operator(32, 32, 8.0)
        assert a is b
        info = operator_cache_info()
        assert info.misses == 1 and info.hits == 1

    def test_distinct_points_get_distinct_operators(self):
        assert cached_operator(32, 32, 8.0) is not cached_operator(32, 32, 4.0)
        assert cached_operator(32, 32, 8.0) is not cached_operator(16, 16, 8.0)

    def test_cached_operator_matches_cold_construction(self):
        from repro.mesh.grid import UniformGrid
        from repro.solver.kernel import NonlocalOperator
        from repro.solver.model import NonlocalHeatModel
        grid = UniformGrid(16, 16)
        cold = NonlocalOperator(NonlocalHeatModel(epsilon=4 * grid.h), grid)
        warm = cached_operator(16, 16, 4.0)
        assert warm.radius == cold.radius
        np.testing.assert_array_equal(warm.stencil.mask, cold.stencil.mask)

    def test_backend_is_part_of_the_cache_key(self):
        """Scenarios pinning different kernel backends must never share
        an operator — the backend carries per-shape state."""
        clear_operator_cache()
        direct = cached_operator(32, 32, 8.0, "direct")
        fft = cached_operator(32, 32, 8.0, "fft")
        sparse = cached_operator(32, 32, 8.0, "sparse")
        assert len({id(direct), id(fft), id(sparse)}) == 3
        assert (direct.backend_name, fft.backend_name,
                sparse.backend_name) == ("direct", "fft", "sparse")
        assert cached_operator(32, 32, 8.0, "fft") is fft
        assert operator_cache_info().misses == 3

    def test_default_and_explicit_auto_share_one_entry(self, monkeypatch):
        monkeypatch.delenv("REPRO_KERNEL_BACKEND", raising=False)
        clear_operator_cache()
        assert cached_operator(32, 32, 8.0) is cached_operator(
            32, 32, 8.0, "auto")

    def test_auto_shares_the_entry_of_its_resolution(self, monkeypatch):
        """The key is fully resolved: a backend sweep over auto + the
        name auto resolves to must not rebuild the same operator."""
        monkeypatch.delenv("REPRO_KERNEL_BACKEND", raising=False)
        clear_operator_cache()
        assert cached_operator(32, 32, 8.0) is cached_operator(
            32, 32, 8.0, "fft")         # R = 8 -> fft
        assert cached_operator(32, 32, 2.0) is cached_operator(
            32, 32, 2.0, "direct")      # R = 2 -> direct
        assert operator_cache_info().misses == 2

    def test_env_override_resolves_before_the_cache(self, monkeypatch):
        """Forcing via REPRO_KERNEL_BACKEND must key the cache on the
        resolved name, so a later unforced call cannot be served a
        forced operator (and vice versa)."""
        clear_operator_cache()
        monkeypatch.setenv("REPRO_KERNEL_BACKEND", "sparse")
        forced = cached_operator(32, 32, 8.0)
        assert forced.backend_name == "sparse"
        assert forced is cached_operator(32, 32, 8.0, "sparse")
        monkeypatch.delenv("REPRO_KERNEL_BACKEND")
        unforced = cached_operator(32, 32, 8.0)
        assert unforced is not forced
        # explicit names ignore the environment entirely
        monkeypatch.setenv("REPRO_KERNEL_BACKEND", "direct")
        assert cached_operator(32, 32, 8.0, "fft").backend_name == "fft"


class TestBuildSolver:
    def test_solver_uses_the_cached_operator(self):
        spec = build("fig11_strong_distributed", mesh=32, sd_axis=4,
                     nodes=2, steps=1)
        solver = build_solver(spec)
        assert solver.operator is cached_operator(32, 32, 8.0)
        assert solver.num_nodes == 2

    def test_balancing_wiring(self):
        spec = build("fig14_load_balance", steps=1)
        solver = build_solver(spec)
        assert solver.balancer is not None
        # the policy decides whether balancing runs; the strategy is
        # always wired (name resolved from spec.policy.balancer)
        from repro.core.strategies import requested_strategy
        expected = requested_strategy("auto")
        if expected == "auto":
            expected = "tree"
        assert solver.balancer.name == expected
        off = spec.replace(policy=PolicySpec())
        off_solver = build_solver(off)
        assert not off_solver.run(None, 1).balance_events

    def test_balancer_pinned_by_spec(self):
        spec = build("fig14_load_balance", steps=1).with_balancer("greedy")
        assert build_solver(spec).balancer.name == "greedy"

    def test_work_factors_from_cracks(self):
        spec = build("crack_hetero", steps=1)
        wf = build_work_factors(spec)
        assert wf is not None and (wf < 1.0).any()
        assert build_work_factors(build("fig14_load_balance")) is None

    def test_serial_spec_rejected(self):
        with pytest.raises(ValueError):
            build_solver(build("solve_serial"))

    def test_spec_kernel_backend_reaches_the_solver(self):
        spec = build("fig11_strong_distributed", mesh=32, sd_axis=4,
                     nodes=2, steps=1).replace(kernel_backend="sparse")
        solver = build_solver(spec)
        assert solver.operator.backend_name == "sparse"
        assert solver.operator is cached_operator(32, 32, 8.0, "sparse")

    def test_abl_backends_scenario_sweeps_the_backend(self):
        from repro.solver.backends import backend_names
        for name in backend_names():
            spec = build("abl_backends", backend=name, mesh=32, sd_axis=4,
                         nodes=2, steps=1)
            assert spec.kernel_backend == name
            assert build_solver(spec).operator.backend_name == name

    def test_mismatched_operator_rejected(self):
        from repro.mesh.grid import UniformGrid
        from repro.solver.model import NonlocalHeatModel
        from repro.solver.serial import SerialSolver
        grid = UniformGrid(16, 16)
        model = NonlocalHeatModel(epsilon=2 * grid.h)
        with pytest.raises(ValueError):  # wrong horizon
            SerialSolver(model, grid, operator=cached_operator(16, 16, 8.0))
        with pytest.raises(ValueError):  # wrong grid
            SerialSolver(model, grid, operator=cached_operator(32, 32, 2.0))


class TestRunScenario:
    def test_deterministic(self):
        spec = build("fig11_strong_distributed", mesh=64, sd_axis=4,
                     nodes=4, steps=3)
        assert run_scenario(spec) == run_scenario(spec)

    def test_numeric_run_tracks_error(self):
        rec = run_scenario(build("quickstart", nx=16, sd_axis=2, nodes=2,
                                 steps=2))
        assert rec.errors is not None and len(rec.errors) == 3  # e_0..e_2
        assert rec.total_error == pytest.approx(sum(rec.errors))

    def test_distributed_numerics_match_serial(self):
        """The engine preserves the repo's core invariant: schedule is
        virtual, temperatures are real and equal to the serial path."""
        from repro.solver.serial import solve_manufactured
        rec = run_scenario(build("quickstart", nx=16, sd_axis=2, nodes=2,
                                 steps=4))
        ref = solve_manufactured(16, eps_factor=8.0, num_steps=4)
        assert rec.total_error == pytest.approx(ref.total_error, rel=1e-12)

    def test_backend_changes_numerics_execution_only(self):
        """Across backends: the virtual schedule is bit-identical (task
        costs are neighbor-count-based) and the temperatures agree to
        rounding.  Flat-model property by construction — the hierarchy
        model prices backends differently on purpose — so the cost
        model is pinned (keeps the CI costmodel-smoke leg green)."""
        from repro.solver.backends import backend_names
        recs = [run_scenario(build("quickstart", nx=16, sd_axis=2, nodes=2,
                                   steps=3).replace(kernel_backend=b,
                                                    cost_model="flat"))
                for b in backend_names()]
        for rec in recs[1:]:
            assert rec.makespan == recs[0].makespan
            assert rec.step_durations == recs[0].step_durations
            assert rec.total_error == pytest.approx(recs[0].total_error,
                                                    rel=1e-10)

    def test_record_carries_the_resolved_backend(self, monkeypatch):
        monkeypatch.delenv("REPRO_KERNEL_BACKEND", raising=False)
        from repro.solver.backends import backend_names
        pinned = run_scenario(build("quickstart", nx=16, sd_axis=2, nodes=2,
                                    steps=1).replace(kernel_backend="sparse"))
        assert pinned.backend_resolved == "sparse"
        auto = run_scenario(build("quickstart", nx=16, sd_axis=2, nodes=2,
                                  steps=1))
        assert auto.spec["kernel_backend"] == "auto"
        assert auto.backend_resolved == "fft"  # eps = 8h -> R = 8
        serial = run_scenario(build("solve_serial", nx=16, eps_factor=2.0,
                                    steps=1))
        assert serial.backend_resolved in backend_names()

    def test_record_spec_round_trips(self):
        spec = build("fig09_strong_shared", mesh=32, sd_axis=2, cpus=2,
                     steps=1)
        rec = run_scenario(spec)
        assert ScenarioSpec.from_dict(rec.spec) == spec


class TestOwnershipTimeline:
    def test_one_frame_per_step_plus_initial(self):
        from repro.experiments import ownership_timeline
        spec = build("fig14_load_balance", steps=3)
        rec = run_scenario(spec)
        frames = ownership_timeline(spec, rec)
        assert len(frames) == 4  # initial + one per timestep
        np.testing.assert_array_equal(
            frames[0], spec.partition.build(5, 5, 4))
        np.testing.assert_array_equal(frames[-1], rec.final_parts)

    def test_zero_move_steps_carry_forward(self):
        from repro.experiments import ownership_timeline
        # enough extra steps that later sweeps are already balanced;
        # pinned to the tree strategy, whose integer-target apportionment
        # guarantees it goes quiet once converged
        spec = build("fig14_load_balance", steps=6).with_balancer("tree")
        rec = run_scenario(spec)
        frames = ownership_timeline(spec, rec)
        assert len(frames) == 7
        np.testing.assert_array_equal(frames[-1], frames[-2])


class TestRunSweep:
    def _specs(self):
        specs = [build("fig11_strong_distributed", mesh=64, sd_axis=4,
                       nodes=n, steps=2) for n in (1, 2, 4)]
        specs.append(build("fig14_load_balance", steps=2))
        return specs

    def test_serial_order_matches_input(self):
        recs = run_sweep(self._specs(), serial=True)
        assert [r.scenario for r in recs] == [
            "fig11_strong_distributed"] * 3 + ["fig14_load_balance"]

    def test_processes_bit_identical_to_serial(self):
        """The acceptance contract: a 4-point sweep through the
        ProcessPoolExecutor equals serial execution result-for-result."""
        specs = self._specs()
        serial = run_sweep(specs, serial=True)
        parallel = run_sweep(specs, serial=False, max_workers=2)
        assert parallel == serial  # RunRecord dataclass equality, all fields

    def test_env_forces_serial(self, monkeypatch):
        monkeypatch.setenv("REPRO_SWEEP_SERIAL", "1")
        recs = run_sweep(self._specs())
        assert len(recs) == 4

    def test_invalid_point_fails_at_construction(self):
        with pytest.raises(ValueError):
            build("fig11_strong_distributed", mesh=64, sd_axis=1, nodes=4)
