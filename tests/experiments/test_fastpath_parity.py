"""End-to-end parity of the DES fast path across whole scenarios.

The fast path has three independently-gated pieces — queue backend
(``REPRO_DES_QUEUE``), wave batching (``REPRO_DES_WAVE``), and the
solver's step-plan cache (``REPRO_DES_PLANCACHE``).  Each must leave
every :class:`RunRecord` field bit-identical on full scenario runs,
including makespans, step durations, imbalance history, and byte
accounting.  (The committed goldens pin the same property against the
repository history; these tests pin it pairwise within one checkout,
over scenarios with balancing, faults, and hierarchical topologies.)
"""

import json

import pytest

from repro.experiments import build, run_scenario

#: small but feature-covering: balancing + drift, fault + recovery,
#: rack topology with per-link contention
SCENARIOS = [
    ("hetero_drift", {"steps": 6}),
    ("fault_recovery", {"steps": 4}),
    ("rack_locality", {"steps": 4}),
]


def _record(name, overrides):
    rec = run_scenario(build(name, **overrides))
    return json.dumps(rec.to_dict(), sort_keys=True)


@pytest.mark.parametrize("name,overrides", SCENARIOS)
def test_queue_backends_produce_identical_records(name, overrides,
                                                  monkeypatch):
    results = {}
    for queue in ("heap", "bucket", "auto"):
        monkeypatch.setenv("REPRO_DES_QUEUE", queue)
        results[queue] = _record(name, overrides)
    assert results["bucket"] == results["heap"]
    assert results["auto"] == results["heap"]


@pytest.mark.parametrize("name,overrides", SCENARIOS)
def test_wave_batching_produces_identical_records(name, overrides,
                                                  monkeypatch):
    monkeypatch.setenv("REPRO_DES_WAVE", "0")
    off = _record(name, overrides)
    monkeypatch.setenv("REPRO_DES_WAVE", "1")
    assert _record(name, overrides) == off


@pytest.mark.parametrize("name,overrides", SCENARIOS)
def test_plan_cache_produces_identical_records(name, overrides, monkeypatch):
    monkeypatch.setenv("REPRO_DES_PLANCACHE", "0")
    uncached = _record(name, overrides)
    monkeypatch.setenv("REPRO_DES_PLANCACHE", "1")
    assert _record(name, overrides) == uncached


def test_everything_on_matches_everything_off(monkeypatch):
    """The full fast path vs the full seed path on one drifting,
    balanced scenario — the combined gate."""
    for var in ("REPRO_DES_QUEUE", "REPRO_DES_WAVE", "REPRO_DES_PLANCACHE"):
        monkeypatch.setenv(var, {"REPRO_DES_QUEUE": "heap"}.get(var, "0"))
    seed = _record("hetero_drift", {"steps": 6})
    monkeypatch.setenv("REPRO_DES_QUEUE", "bucket")
    monkeypatch.setenv("REPRO_DES_WAVE", "1")
    monkeypatch.setenv("REPRO_DES_PLANCACHE", "1")
    assert _record("hetero_drift", {"steps": 6}) == seed


class TestScaleExtreme:
    def test_tiny_run_is_schedule_only(self):
        spec = build("scale_extreme", mesh=128, sd_axis=4, nodes=4, steps=2)
        assert spec.cluster.num_nodes == 4
        rec = run_scenario(spec)
        assert rec.scenario == "scale_extreme"
        assert rec.makespan > 0
        assert len(rec.step_durations) == 2

    def test_default_shape(self):
        spec = build("scale_extreme")
        assert spec.mesh.nx == 2048
        assert spec.mesh.sd_nx == 64  # 4096 SDs
        assert spec.cluster.num_nodes == 512
        assert spec.cluster.cores_per_node == 1
        assert spec.partition.method == "blocks"
        assert not spec.compute_numerics  # pure schedule measurement
        assert spec.cluster.spawn_overhead == 0.0
