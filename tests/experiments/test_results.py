"""RunRecord serialization and the JSON file helpers."""

import json

import pytest

from repro.experiments import (SCHEMA, RunRecord, build, read_records,
                               run_scenario, write_json, write_records)


def _record() -> RunRecord:
    return run_scenario(build("fig14_load_balance", steps=2))


class TestRunRecord:
    def test_dict_round_trip(self):
        rec = _record()
        assert RunRecord.from_dict(rec.to_dict()) == rec

    def test_json_round_trip_is_exact(self):
        rec = _record()
        assert RunRecord.from_json(rec.to_json()) == rec

    def test_dict_holds_plain_json_types(self):
        # the sweep runner's bit-identity guarantee rests on this
        doc = _record().to_dict()
        json.dumps(doc)  # must not raise
        assert isinstance(doc["final_parts"], list)
        assert all(isinstance(p, int) for p in doc["final_parts"])
        assert all(isinstance(d, float) for d in doc["step_durations"])

    def test_balancing_fields(self):
        rec = _record()
        assert rec.sds_moved > 0
        assert rec.migration_bytes > 0
        # the corner distribution balances in the very first sweep
        assert rec.parts_events and rec.parts_events[0][0] == 0
        assert len(rec.imbalance_history) == 2

    def test_balance_events_telemetry(self):
        """Per-event telemetry: one row per balancer invocation, and the
        aggregate counters are the sums over events."""
        rec = _record()
        assert len(rec.balance_events) == 2  # interval=1, 2 steps
        first = rec.balance_events[0]
        assert set(first) == {"step", "strategy", "sds_moved",
                              "migration_bytes", "imbalance_before",
                              "imbalance_after", "recovery"}
        assert first["step"] == 0
        assert first["recovery"] is False  # no churn in this scenario
        assert first["strategy"] == rec.balancer_resolved
        assert first["sds_moved"] > 0
        assert first["migration_bytes"] > 0
        # the first sweep drains the corner hotspot
        assert first["imbalance_after"] < first["imbalance_before"]
        assert rec.sds_moved == sum(e["sds_moved"]
                                    for e in rec.balance_events)
        assert rec.migration_bytes == sum(e["migration_bytes"]
                                          for e in rec.balance_events)

    def test_balancer_resolved_recorded(self, monkeypatch):
        monkeypatch.delenv("REPRO_BALANCER", raising=False)
        assert _record().balancer_resolved == "tree"  # the auto default
        rec = run_scenario(build("fig14_load_balance",
                                 steps=1).with_balancer("greedy"))
        assert rec.balancer_resolved == "greedy"

    def test_serial_record_defaults(self):
        rec = run_scenario(build("solve_serial", nx=8, eps_factor=2.0,
                                 steps=2))
        assert rec.solver == "serial"
        assert rec.makespan == 0.0
        assert rec.step_durations == []
        assert rec.total_error is not None


class TestFiles:
    def test_write_and_read_records(self, tmp_path):
        recs = [_record(), run_scenario(build("solve_serial", nx=8,
                                              eps_factor=2.0, steps=1))]
        path = tmp_path / "out.json"
        write_records(str(path), recs)
        doc = json.loads(path.read_text())
        assert doc["schema"] == SCHEMA
        assert read_records(str(path)) == recs

    def test_read_rejects_unknown_schema(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": "other/v9", "records": []}))
        with pytest.raises(ValueError):
            read_records(str(path))

    def test_write_json_stamps_schema(self, tmp_path):
        path = tmp_path / "payload.json"
        write_json(str(path), {"hello": [1, 2, 3]})
        doc = json.loads(path.read_text())
        assert doc["schema"] == SCHEMA
        assert doc["hello"] == [1, 2, 3]
