"""Spec validation and dict/JSON round-trip contracts."""

import json

import numpy as np
import pytest

from repro.experiments import (ChurnEvent, ClusterSpec, DriftSpec, FaultSpec,
                               InterferenceSpec, MemorySpec, MeshSpec,
                               PartitionSpec, PolicySpec, ScenarioSpec)


class TestMeshSpec:
    def test_square_defaults(self):
        m = MeshSpec(nx=64, sd_nx=4)
        assert (m.ny, m.sd_ny) == (64, 4)
        assert m.num_subdomains == 16

    @pytest.mark.parametrize("kwargs", [
        dict(nx=0),
        dict(nx=64, ny=-1),
        dict(nx=64, sd_nx=0),
        dict(nx=65, sd_nx=8),        # SDs must tile evenly
        dict(nx=64, sd_nx=4, sd_ny=5),
        dict(nx=4, sd_nx=8),          # more SDs than DPs
        dict(nx=64, eps_factor=0.0),
        dict(nx=64, eps_factor=-2.0),
    ])
    def test_invalid(self, kwargs):
        with pytest.raises(ValueError):
            MeshSpec(**kwargs)


class TestClusterSpec:
    def test_defaults(self):
        c = ClusterSpec()
        assert c.build_speeds() is None
        net = c.build_network()
        assert net.bytes_sent == 0

    def test_fresh_network_per_build(self):
        c = ClusterSpec(latency=1e-4, bandwidth=1e6)
        assert c.build_network() is not c.build_network()
        assert c.build_network().latency == 1e-4

    def test_speeds_and_interference(self):
        c = ClusterSpec(num_nodes=2, speed_rates=(1e9, 2e9),
                        interference=(InterferenceSpec(
                            node=1, start=0.5, stop=1.0, slowdown=0.5),))
        traces = c.build_speeds()
        assert len(traces) == 2
        assert traces[0].rate(0.0) == 1e9
        assert traces[1].rate(0.75) == 1e9  # 2e9 * 0.5 in the window
        assert traces[1].rate(2.0) == 2e9

    @pytest.mark.parametrize("kwargs", [
        dict(num_nodes=0),
        dict(cores_per_node=0),
        dict(num_nodes=2, speed_rates=(1e9,)),     # wrong length
        dict(speed_rates=(0.0,)),
        dict(latency=-1.0),
        dict(bandwidth=0.0),
        dict(spawn_overhead=-1e-6),
        dict(num_nodes=1, interference=(
            InterferenceSpec(node=3, start=0.0, stop=1.0),)),
    ])
    def test_invalid(self, kwargs):
        with pytest.raises(ValueError):
            ClusterSpec(**kwargs)

    @pytest.mark.parametrize("kwargs", [
        dict(node=0, start=1.0, stop=0.5),
        dict(node=0, start=0.0, stop=1.0, slowdown=0.0),
        dict(node=0, start=0.0, stop=1.0, slowdown=1.5),
        dict(node=-1, start=0.0, stop=1.0),
    ])
    def test_invalid_interference(self, kwargs):
        with pytest.raises(ValueError):
            InterferenceSpec(**kwargs)


class TestDriftSpec:
    def test_build_speeds_ramps_every_node(self):
        from repro.amt.cluster import RampSpeed
        c = ClusterSpec(num_nodes=2, speed_rates=(1e9, 2e9),
                        drift=DriftSpec(rates_end=(2e9, 1e9),
                                        start=1.0, stop=3.0))
        traces = c.build_speeds()
        assert all(isinstance(t, RampSpeed) for t in traces)
        assert traces[0].rate(0.0) == 1e9
        assert traces[0].rate(2.0) == pytest.approx(1.5e9)  # mid-ramp
        assert traces[0].rate(5.0) == 2e9
        assert traces[1].rate(5.0) == 1e9

    def test_drift_uses_default_base_rates(self):
        c = ClusterSpec(num_nodes=2,
                        drift=DriftSpec(rates_end=(2e9, 5e8),
                                        start=0.0, stop=1.0))
        traces = c.build_speeds(default_rate=1e9)
        assert traces[0].rate(0.0) == 1e9
        assert traces[0].rate(2.0) == 2e9

    @pytest.mark.parametrize("kwargs", [
        dict(rates_end=()),                              # no rates
        dict(rates_end=(1e9, 0.0), start=0.0, stop=1.0),  # zero rate
        dict(rates_end=(1e9,), start=1.0, stop=1.0),      # empty window
        dict(rates_end=(1e9,), start=-1.0, stop=1.0),     # negative start
    ])
    def test_invalid_drift(self, kwargs):
        with pytest.raises(ValueError):
            DriftSpec(**kwargs)

    def test_drift_length_must_match_nodes(self):
        with pytest.raises(ValueError, match="end rates"):
            ClusterSpec(num_nodes=3,
                        drift=DriftSpec(rates_end=(1e9,), start=0, stop=1))

    def test_drift_and_interference_exclusive(self):
        with pytest.raises(ValueError, match="cannot be combined"):
            ClusterSpec(
                num_nodes=1,
                drift=DriftSpec(rates_end=(1e9,), start=0, stop=1),
                interference=(InterferenceSpec(node=0, start=0.0,
                                               stop=1.0),))


class TestFaultSpec:
    EVENTS = (ChurnEvent("straggle", 0.5, 0, stop=1.0, factor=0.5),
              ChurnEvent("fail", 1.0, 1),
              ChurnEvent("join", 2.0, 3, rate=2e9))

    def test_cluster_accepts_and_builds_schedule(self):
        spec = ClusterSpec(num_nodes=3, faults=FaultSpec(events=self.EVENTS))
        sched = spec.build_faults()
        assert sched.initial_nodes == 3
        assert sched.max_nodes == 4
        assert [e.kind for e in sched.events] == ["straggle", "fail", "join"]
        assert ClusterSpec(num_nodes=3).build_faults() is None

    def test_membership_validated_at_spec_construction(self):
        # a schedule that fails an unknown node must not survive to the
        # solver: ClusterSpec builds the runtime schedule eagerly
        with pytest.raises(ValueError, match="before it exists"):
            ClusterSpec(num_nodes=2,
                        faults=FaultSpec(events=(ChurnEvent("fail", 1.0, 7),)))
        with pytest.raises(ValueError, match="no alive nodes"):
            ClusterSpec(num_nodes=1,
                        faults=FaultSpec(events=(ChurnEvent("fail", 1.0, 0),)))
        with pytest.raises(ValueError, match="recovery_penalty"):
            FaultSpec(recovery_penalty=-1.0)

    def test_dicts_normalized_to_events(self):
        spec = FaultSpec(events=(
            {"kind": "fail", "time": 1.0, "node": 0},))
        assert isinstance(spec.events[0], ChurnEvent)
        cluster = ClusterSpec.from_dict(
            {"num_nodes": 2,
             "faults": {"events": [{"kind": "fail", "time": 1.0,
                                    "node": 0}]}})
        assert cluster.faults.events[0].node == 0
        assert cluster.faults.recovery_penalty == FaultSpec().recovery_penalty

    def test_faults_compose_with_other_capacity_fields(self):
        # straggles wrap whatever trace the cluster produces, so faults
        # are legal alongside speed_rates, interference, and drift
        ClusterSpec(num_nodes=2, speed_rates=(1e9, 2e9),
                    faults=FaultSpec(events=self.EVENTS[:1]))
        ClusterSpec(num_nodes=2,
                    drift=DriftSpec(rates_end=(1e9, 2e9), start=0.1,
                                    stop=0.2),
                    faults=FaultSpec(events=self.EVENTS[:1]))

    def test_legacy_cluster_dicts_default_to_no_faults(self):
        cluster = ClusterSpec.from_dict({"num_nodes": 2})
        assert cluster.faults is None


class TestPartitionSpec:
    def test_single(self):
        parts = PartitionSpec(method="single").build(4, 4, 3)
        assert (parts == 0).all()

    def test_corner_imbalanced(self):
        parts = PartitionSpec(method="corner_imbalanced").build(5, 5, 4)
        counts = np.bincount(parts, minlength=4)
        assert list(counts) == [22, 1, 1, 1]
        # the paper's Fig. 14 left grid: nodes 1-3 on distinct corners
        # (top-right, bottom-left, bottom-right)
        assert (parts[4], parts[20], parts[24]) == (1, 2, 3)

    def test_corner_imbalanced_more_nodes_than_corners(self):
        parts = PartitionSpec(method="corner_imbalanced").build(4, 4, 6)
        counts = np.bincount(parts, minlength=6)
        assert counts.sum() == 16
        assert list(counts[1:]) == [1] * 5  # one SD per non-zero node

    def test_corner_imbalanced_degenerate_grids(self):
        # 1-wide grids collapse corners: every node must still own a SD
        for shape in ((1, 5), (5, 1), (2, 2)):
            parts = PartitionSpec(method="corner_imbalanced").build(
                shape[0], shape[1], 4)
            assert (np.bincount(parts, minlength=4) >= 1).all()
        with pytest.raises(ValueError):
            PartitionSpec(method="corner_imbalanced").build(2, 2, 9)

    def test_explicit(self):
        spec = PartitionSpec(method="explicit", parts=(0, 1, 1, 0))
        assert list(spec.build(2, 2, 2)) == [0, 1, 1, 0]
        with pytest.raises(ValueError):
            spec.build(4, 4, 2)  # wrong length for the SD grid

    @pytest.mark.parametrize("method", ["metis", "blocks", "strips",
                                        "rcb", "spectral"])
    def test_methods_cover_all_nodes(self, method):
        parts = PartitionSpec(method=method).build(8, 8, 4)
        assert len(parts) == 64
        assert set(parts) == {0, 1, 2, 3}

    @pytest.mark.parametrize("kwargs", [
        dict(method="magic"),
        dict(method="explicit"),                       # missing parts
        dict(method="metis", parts=(0, 1)),            # parts w/o explicit
        dict(method="explicit", parts=(0, -1)),
        dict(method="strips", axis=2),
    ])
    def test_invalid(self, kwargs):
        with pytest.raises(ValueError):
            PartitionSpec(**kwargs)


class TestPolicySpec:
    def test_build(self):
        from repro.core.policy import IntervalPolicy, ThresholdPolicy
        assert PolicySpec().build() is None
        assert not PolicySpec().enabled
        assert isinstance(PolicySpec(kind="interval", interval=2).build(),
                          IntervalPolicy)
        assert isinstance(PolicySpec(kind="threshold", ratio=1.2).build(),
                          ThresholdPolicy)

    @pytest.mark.parametrize("kwargs", [
        dict(kind="sometimes"),
        dict(kind="interval", interval=0),
        dict(kind="threshold", ratio=0.9),
        dict(kind="threshold", min_interval=0),
        dict(balancer="magic"),
        dict(balancer=""),
    ])
    def test_invalid(self, kwargs):
        with pytest.raises(ValueError):
            PolicySpec(**kwargs)

    def test_balancer_defaults_to_auto(self):
        from repro.core.strategies import strategy_names
        assert PolicySpec().balancer == "auto"
        for name in strategy_names():
            assert PolicySpec(balancer=name).balancer == name

    def test_balancer_survives_legacy_dicts(self):
        """Policy dicts written before the strategy field (PR-1/2 result
        files) must still load, defaulting to auto."""
        d = PolicySpec(kind="interval", interval=2).to_dict()
        del d["balancer"]
        assert PolicySpec.from_dict(d).balancer == "auto"

    def test_scenario_surfaces_the_policy_balancer(self):
        s = ScenarioSpec(name="s", mesh=MeshSpec(nx=16, sd_nx=4),
                         policy=PolicySpec(kind="interval",
                                           balancer="diffusion"))
        assert s.balancer == "diffusion"
        assert s.with_balancer("greedy").policy.balancer == "greedy"
        with pytest.raises(ValueError):
            s.with_balancer("magic")


class TestScenarioSpec:
    def test_serial_implies_numerics(self):
        s = ScenarioSpec(name="s", mesh=MeshSpec(nx=16), solver="serial")
        assert s.compute_numerics

    @pytest.mark.parametrize("kwargs", [
        dict(name=""),
        dict(name="s", solver="quantum"),
        dict(name="s", num_steps=-1),
        dict(name="s", source_mode="exact"),
        dict(name="s", dt=0.0),
        dict(name="s", track_error=True),          # needs numerics
        dict(name="s", cracks=(((0.1, 0.2),),)),   # one-point polyline
        dict(name="s", crack_floor=0.0),
        dict(name="s", crack_floor=1.5),
        dict(name="s", crack_horizon_factor=0.0),
        dict(name="s", kernel_backend="quantum"),
        dict(name="s", kernel_backend=""),
        dict(name="s", cost_model="oracle"),
        dict(name="s", cost_model=""),
    ])
    def test_invalid(self, kwargs):
        kwargs.setdefault("mesh", MeshSpec(nx=16, sd_nx=4))
        with pytest.raises(ValueError):
            ScenarioSpec(**kwargs)

    def test_distributed_needs_enough_sds(self):
        with pytest.raises(ValueError):
            ScenarioSpec(name="s", mesh=MeshSpec(nx=16, sd_nx=2),
                         cluster=ClusterSpec(num_nodes=8))

    def test_replace_revalidates(self):
        s = ScenarioSpec(name="s", mesh=MeshSpec(nx=16, sd_nx=4))
        assert s.replace(num_steps=7).num_steps == 7
        with pytest.raises(ValueError):
            s.replace(num_steps=-2)

    def test_kernel_backend_defaults_to_auto(self):
        s = ScenarioSpec(name="s", mesh=MeshSpec(nx=16, sd_nx=4))
        assert s.kernel_backend == "auto"
        # every registered backend is a valid choice
        from repro.solver.backends import backend_names
        for name in backend_names():
            assert s.replace(kernel_backend=name).kernel_backend == name

    def test_kernel_backend_survives_legacy_dicts(self):
        """Spec dicts written before the backend field (PR-1 result
        files) must still load, defaulting to auto."""
        s = ScenarioSpec(name="s", mesh=MeshSpec(nx=16, sd_nx=4))
        d = s.to_dict()
        del d["kernel_backend"]
        assert ScenarioSpec.from_dict(d).kernel_backend == "auto"

    def test_cost_model_survives_legacy_dicts(self):
        """Pre-v7 spec dicts have no cost_model/work_factors/memory
        keys: they must load as auto/None — the flat seed arithmetic."""
        s = ScenarioSpec(name="s", mesh=MeshSpec(nx=16, sd_nx=4))
        d = s.to_dict()
        for key in ("cost_model", "work_factors"):
            del d[key]
        del d["cluster"]["memory"]
        loaded = ScenarioSpec.from_dict(d)
        assert loaded.cost_model == "auto"
        assert loaded.work_factors is None
        assert loaded.cluster.memory is None


class TestWorkFactorsValidation:
    """Explicit per-SD work multipliers fail at spec construction, not
    steps into a sweep when build_work_factors first touches them."""

    def make(self, **kw):
        return ScenarioSpec(name="s", mesh=MeshSpec(nx=16, sd_nx=4), **kw)

    def test_valid_factors_normalize_to_floats(self):
        s = self.make(work_factors=tuple(range(1, 17)))
        assert s.work_factors == tuple(float(w) for w in range(1, 17))

    def test_wrong_length_rejected_eagerly(self):
        with pytest.raises(ValueError, match="work_factors has 3 entries"):
            self.make(work_factors=(1.0, 2.0, 3.0))

    def test_negative_factor_rejected_eagerly(self):
        with pytest.raises(ValueError, match="non-negative"):
            self.make(work_factors=(1.0,) * 15 + (-0.5,))

    def test_non_numeric_factor_rejected_eagerly(self):
        with pytest.raises((TypeError, ValueError)):
            self.make(work_factors=("heavy",) * 16)

    def test_cracks_and_work_factors_are_mutually_exclusive(self):
        with pytest.raises(ValueError, match="mutually exclusive"):
            self.make(work_factors=(1.0,) * 16,
                      cracks=(((0.1, 0.1), (0.9, 0.9)),))

    def test_replace_revalidates_factors(self):
        s = self.make(work_factors=(1.0,) * 16)
        with pytest.raises(ValueError):
            s.replace(work_factors=(1.0,) * 5)

    def test_factors_flow_into_the_runner(self):
        from repro.experiments.runner import build_work_factors
        factors = tuple(float(1 + i % 3) for i in range(16))
        wf = build_work_factors(self.make(work_factors=factors))
        assert wf.dtype == np.float64
        assert tuple(wf) == factors
        assert build_work_factors(self.make()) is None


def _sample_specs():
    yield ScenarioSpec(name="tiny", mesh=MeshSpec(nx=16, sd_nx=4))
    yield ScenarioSpec(
        name="full",
        mesh=MeshSpec(nx=64, ny=32, sd_nx=8, sd_ny=4, eps_factor=4.0),
        cluster=ClusterSpec(
            num_nodes=4, cores_per_node=2, speed_rates=(1e9, 2e9, 1e9, 5e8),
            interference=(InterferenceSpec(node=0, start=0.1, stop=0.2,
                                           slowdown=0.5),),
            latency=1e-5, bandwidth=1e8, spawn_overhead=5e-6),
        partition=PartitionSpec(method="strips", axis=1, seed=3),
        policy=PolicySpec(kind="threshold", ratio=1.25, min_interval=2),
        num_steps=7, overlap=False,
        cracks=(((0.1, 0.5), (0.9, 0.5)), ((0.2, 0.2), (0.5, 0.5),
                                           (0.8, 0.2))),
        crack_floor=0.3, crack_horizon_factor=1.5)
    yield ScenarioSpec(name="serial", mesh=MeshSpec(nx=8, eps_factor=2.0),
                       solver="serial", dt=1e-4, track_error=True,
                       source_mode="discrete")
    yield ScenarioSpec(name="explicit",
                       mesh=MeshSpec(nx=8, sd_nx=2),
                       cluster=ClusterSpec(num_nodes=2),
                       partition=PartitionSpec(method="explicit",
                                               parts=(0, 1, 1, 0)))
    yield ScenarioSpec(name="backend", mesh=MeshSpec(nx=8, sd_nx=2),
                       kernel_backend="fft")
    yield ScenarioSpec(name="costed", mesh=MeshSpec(nx=8, sd_nx=2),
                       cluster=ClusterSpec(num_nodes=2,
                                           memory=MemorySpec()),
                       cost_model="hierarchy",
                       work_factors=(1.0, 2.0, 1.5, 0.5))
    yield ScenarioSpec(
        name="drifting",
        mesh=MeshSpec(nx=8, sd_nx=2),
        cluster=ClusterSpec(num_nodes=2, speed_rates=(1e9, 2e9),
                            drift=DriftSpec(rates_end=(2e9, 1e9),
                                            start=0.5, stop=1.5)),
        policy=PolicySpec(kind="interval", balancer="repartition"))
    yield ScenarioSpec(
        name="churny",
        mesh=MeshSpec(nx=8, sd_nx=2),
        cluster=ClusterSpec(
            num_nodes=2,
            faults=FaultSpec(
                events=(ChurnEvent("straggle", 0.1, 0, stop=0.2,
                                   factor=0.5),
                        ChurnEvent("fail", 0.5, 1),
                        ChurnEvent("join", 0.7, 2, cores=2, rate=2e9)),
                recovery_penalty=0.5)),
        policy=PolicySpec(kind="interval", balancer="tree"))


class TestRoundTrip:
    @pytest.mark.parametrize("spec", list(_sample_specs()),
                             ids=lambda s: s.name)
    def test_dict_round_trip(self, spec):
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec

    @pytest.mark.parametrize("spec", list(_sample_specs()),
                             ids=lambda s: s.name)
    def test_json_round_trip(self, spec):
        through_json = json.loads(json.dumps(spec.to_dict()))
        assert ScenarioSpec.from_dict(through_json) == spec

    def test_sub_spec_round_trips(self):
        for sub in (MeshSpec(nx=32, sd_nx=2),
                    ClusterSpec(num_nodes=3, speed_rates=(1.0, 2.0, 3.0)),
                    ClusterSpec(num_nodes=2, speed_rates=(1.0, 2.0),
                                drift=DriftSpec(rates_end=(2.0, 1.0),
                                                start=0.0, stop=1.0)),
                    DriftSpec(rates_end=(1.0, 2.0), start=0.5, stop=2.0),
                    PartitionSpec(method="explicit", parts=(0, 1)),
                    PolicySpec(kind="interval", interval=4),
                    PolicySpec(kind="threshold", balancer="greedy"),
                    FaultSpec(events=(ChurnEvent("fail", 1.0, 0),
                                      ChurnEvent("join", 2.0, 2)),
                              recovery_penalty=0.125)):
            assert type(sub).from_dict(
                json.loads(json.dumps(sub.to_dict()))) == sub
