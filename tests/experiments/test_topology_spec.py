"""TopologySpec validation, round-trips, and cluster/partition wiring."""

import json

import pytest

from repro.amt.cluster import Network
from repro.amt.topology import (FlatTopology, HierarchicalTopology,
                                SwitchedTopology)
from repro.experiments import (ClusterSpec, PartitionSpec, ScenarioSpec,
                               TopologySpec, build)


class TestTopologySpecValidation:
    def test_defaults(self):
        t = TopologySpec()
        assert t.kind == "flat"
        assert isinstance(t.build(4), FlatTopology)

    @pytest.mark.parametrize("kwargs", [
        dict(kind="torus"),
        dict(rack_size=0),
        dict(oversubscription=0.0),
        dict(kind="switched", latency=-1.0),
        dict(kind="switched", bandwidth=0.0),
        dict(kind="switched", uplink_bandwidth=-5.0),
        dict(kind="hierarchical", wan_racks=(-1,)),
        dict(kind="hierarchical", racks=(0, -2)),
        dict(kind="hierarchical", join_rack=-1),
        # tier fields gated to the kinds that use them
        dict(kind="flat", uplink_latency=1e-5),
        dict(kind="flat", racks=(0, 0)),
        dict(kind="switched", wan_latency=1.0),
        dict(kind="switched", join_rack=0),
        dict(kind="flat", oversubscription=2.0),
        dict(kind="hierarchical", oversubscription=64.0),
        # join_rack without an initial racks assignment would swallow
        # the whole cluster into one rack
        dict(kind="hierarchical", join_rack=1),
        # both size the uplink: the record would lie about one of them
        dict(kind="switched", oversubscription=16.0, uplink_bandwidth=1e9),
    ])
    def test_invalid(self, kwargs):
        with pytest.raises(ValueError):
            TopologySpec(**kwargs)

    def test_float_coercible_strings_accepted(self):
        """Hand-edited JSON specs may carry numeric strings; they must
        coerce, and the range check must see the coerced value."""
        t = TopologySpec(kind="switched", latency="5e-6", bandwidth="1e9")
        assert t.latency == 5e-6 and t.bandwidth == 1e9
        with pytest.raises(ValueError, match="bandwidth"):
            TopologySpec(kind="switched", bandwidth="-1e9")

    def test_wan_joiner_scales_with_nodes(self):
        """The scenario derives racks and the fail target from nodes."""
        for nodes in (2, 4, 8):
            spec = build("wan_joiner", nodes=nodes)
            topo = spec.cluster.topology
            assert len(topo.racks) == nodes
            assert topo.join_rack == topo.racks[-1] + 1
            fails = [e for e in spec.cluster.faults.events
                     if e.kind == "fail"]
            assert fails[0].node == nodes - 1
        with pytest.raises(ValueError, match="nodes"):
            build("wan_joiner", nodes=1)

    def test_build_kinds(self):
        assert isinstance(TopologySpec(kind="switched").build(4),
                          SwitchedTopology)
        assert isinstance(TopologySpec(kind="hierarchical").build(4),
                          HierarchicalTopology)

    def test_wrong_length_rack_list_fails_eagerly(self):
        t = TopologySpec(kind="hierarchical", racks=(0, 1))
        with pytest.raises(ValueError, match="rack ids"):
            t.build(4)
        # and already at ClusterSpec construction, not mid-sweep
        with pytest.raises(ValueError, match="rack ids"):
            ClusterSpec(num_nodes=4, topology=t)
        # too long is rejected too: extra entries would silently
        # override join_rack for sequential-id elastic joiners
        long = TopologySpec(kind="hierarchical", racks=(0, 0, 1, 1, 1),
                            join_rack=2, wan_racks=(2,))
        with pytest.raises(ValueError, match="rack ids"):
            ClusterSpec(num_nodes=4, topology=long)

    def test_cluster_latency_feeds_nic_tier(self):
        c = ClusterSpec(num_nodes=4, latency=3e-5, bandwidth=2e6,
                        topology=TopologySpec(kind="switched"))
        net = c.build_network()
        assert net.latency == 3e-5
        assert net.bandwidth == 2e6
        # the topology's own values win over the cluster's
        c2 = ClusterSpec(num_nodes=4, latency=3e-5,
                         topology=TopologySpec(kind="switched",
                                               latency=9e-5))
        assert c2.build_network().latency == 9e-5

    def test_uplink_params_flow_to_hierarchical_rack_tier(self):
        t = TopologySpec(kind="hierarchical", uplink_latency=7e-5,
                         uplink_bandwidth=5e6)
        net = t.build(4)
        assert net.rack_latency == 7e-5
        assert net.rack_bandwidth == 5e6


class TestTopologySpecRoundTrip:
    @pytest.mark.parametrize("spec", [
        TopologySpec(),
        TopologySpec(kind="switched", rack_size=8, oversubscription=16.0,
                     uplink_latency=1e-5),
        TopologySpec(kind="hierarchical", racks=(0, 0, 1, 1), join_rack=2,
                     wan_racks=(2,), wan_latency=1e-3, wan_bandwidth=1e6),
    ])
    def test_dict_round_trip(self, spec):
        assert TopologySpec.from_dict(spec.to_dict()) == spec
        # and through JSON (the sweep-runner contract)
        assert TopologySpec.from_dict(
            json.loads(json.dumps(spec.to_dict()))) == spec

    def test_cluster_spec_embeds_topology(self):
        c = ClusterSpec(num_nodes=8,
                        topology=TopologySpec(kind="switched"))
        back = ClusterSpec.from_dict(c.to_dict())
        assert back == c
        assert back.topology.kind == "switched"

    def test_cluster_spec_accepts_topology_dict(self):
        c = ClusterSpec(num_nodes=4,
                        topology={"kind": "switched", "rack_size": 2})
        assert isinstance(c.topology, TopologySpec)
        assert c.topology.rack_size == 2

    def test_legacy_cluster_dicts_default_to_flat_network(self):
        d = ClusterSpec(num_nodes=4).to_dict()
        del d["topology"]   # a pre-v4 record
        c = ClusterSpec.from_dict(d)
        assert c.topology is None
        assert isinstance(c.build_network(), Network)

    def test_scenario_round_trip_with_topology_and_placement(self):
        spec = build("oversubscribed_uplink", placement="scatter")
        back = ScenarioSpec.from_dict(
            json.loads(json.dumps(spec.to_dict())))
        assert back == spec

    def test_with_topology_helper(self):
        spec = build("fig11_strong_distributed")
        assert spec.cluster.topology is None
        switched = spec.with_topology("switched")
        assert switched.cluster.topology.kind == "switched"
        assert switched.with_topology(None).cluster.topology is None


class TestPartitionPlacementSpec:
    def test_placement_validated(self):
        with pytest.raises(ValueError, match="placement"):
            PartitionSpec(placement="optimal")

    def test_placement_round_trips(self):
        p = PartitionSpec(method="metis", placement="rack")
        assert PartitionSpec.from_dict(p.to_dict()) == p

    def test_legacy_partition_dicts_default_to_none(self):
        d = PartitionSpec().to_dict()
        del d["placement"]
        assert PartitionSpec.from_dict(d).placement == "none"

    def test_build_parts_applies_placement(self):
        import numpy as np
        from repro.experiments import build_parts
        spec = build("oversubscribed_uplink", placement="scatter")
        scattered = build_parts(spec)
        plain = build_parts(spec.replace(
            partition=spec.partition.__class__(
                method="metis", seed=spec.partition.seed,
                placement="none")))
        # a pure relabeling: same label set, same SD grouping, new map
        assert set(scattered) == set(plain)
        assert list(scattered) != list(plain)
        assert sorted(np.bincount(scattered)) == sorted(np.bincount(plain))
        relabel = {}
        for old, new in zip(plain, scattered):
            assert relabel.setdefault(old, new) == new
