"""Tests for non-square domain masks."""

import numpy as np
import pytest

from repro.mesh.domain import DomainMask
from repro.mesh.subdomain import SubdomainGrid
from repro.partition.kway import partition_graph
from repro.partition.metrics import num_parts_used


def sg8():
    return SubdomainGrid(64, 64, 8, 8)


class TestFactories:
    def test_full_mask(self):
        m = DomainMask.full(sg8())
        assert m.num_active == 64

    def test_l_shape_removes_corner(self):
        m = DomainMask.l_shape(sg8(), notch=0.5)
        assert m.num_active == 64 - 16
        sg = m.sd_grid
        assert not m.active[sg.sd_id(7, 7)]  # notched corner
        assert m.active[sg.sd_id(0, 0)]

    def test_disc(self):
        m = DomainMask.disc(sg8(), radius=0.5)
        # corners of the square lie outside the inscribed disc
        sg = m.sd_grid
        assert not m.active[sg.sd_id(0, 0)]
        assert m.active[sg.sd_id(4, 4)]
        assert 40 <= m.num_active <= 60

    def test_predicate(self):
        m = DomainMask.from_predicate(sg8(), lambda x, y: x < 0.5)
        assert m.num_active == 32

    def test_validation(self):
        with pytest.raises(ValueError, match="mask length"):
            DomainMask(sg8(), np.ones(5, dtype=bool))
        with pytest.raises(ValueError, match="every SD"):
            DomainMask(sg8(), np.zeros(64, dtype=bool))
        with pytest.raises(ValueError, match="notch"):
            DomainMask.l_shape(sg8(), notch=1.5)
        with pytest.raises(ValueError, match="radius"):
            DomainMask.disc(sg8(), radius=0.0)


class TestQueries:
    def test_dp_mask_covers_active_rects(self):
        m = DomainMask.l_shape(sg8(), notch=0.5)
        dp = m.dp_mask()
        assert dp.shape == (64, 64)
        assert dp[:32, :].all()       # lower half fully active
        assert not dp[32:, 32:].any()  # notch inactive

    def test_work_factors_zero_inactive(self):
        m = DomainMask.l_shape(sg8())
        wf = m.work_factors()
        assert np.all(wf[m.active] == 1.0)
        assert np.all(wf[~m.active] == 0.0)

    def test_work_factors_compose_with_base(self):
        m = DomainMask.l_shape(sg8())
        base = np.full(64, 0.5)
        wf = m.work_factors(base)
        assert np.all(wf[m.active] == 0.5)
        assert np.all(wf[~m.active] == 0.0)

    def test_work_factors_base_length_checked(self):
        m = DomainMask.full(sg8())
        with pytest.raises(ValueError):
            m.work_factors(np.ones(3))

    def test_l_shape_connected(self):
        assert DomainMask.l_shape(sg8()).is_connected()

    def test_two_islands_not_connected(self):
        active = np.zeros(64, dtype=bool)
        active[0] = True
        active[63] = True
        m = DomainMask(sg8(), active)
        assert not m.is_connected()


class TestPartitioningActiveRegion:
    def test_active_dual_graph_vertex_count(self):
        m = DomainMask.l_shape(sg8())
        graph, ids = m.active_dual_graph()
        assert graph.num_vertices == m.num_active
        assert len(ids) == m.num_active

    def test_partition_only_active_region(self):
        m = DomainMask.l_shape(sg8())
        graph, ids = m.active_dual_graph()
        active_parts = partition_graph(graph, 4, seed=0)
        assert num_parts_used(active_parts) == 4
        parts = m.scatter_parts(active_parts)
        assert len(parts) == 64
        # every active SD got its partition id; inactive got the default
        for i, sd in enumerate(ids):
            assert parts[sd] == active_parts[i]

    def test_scatter_length_checked(self):
        m = DomainMask.l_shape(sg8())
        with pytest.raises(ValueError):
            m.scatter_parts(np.zeros(3, dtype=int))


class TestEndToEndLShapeSolve:
    def test_distributed_solve_on_l_shape(self):
        """An L-shaped run: inactive SDs carry zero work, temperatures
        outside the L stay exactly zero, and the active region evolves."""
        from repro.mesh.grid import UniformGrid
        from repro.solver.distributed import DistributedSolver
        from repro.solver.model import NonlocalHeatModel

        grid = UniformGrid(64, 64)
        model = NonlocalHeatModel(epsilon=4 * grid.h)
        sg = sg8()
        mask = DomainMask.l_shape(sg, notch=0.5)
        graph, ids = mask.active_dual_graph()
        parts = mask.scatter_parts(partition_graph(graph, 2, seed=0))
        u0 = grid.field_from_function(
            lambda x, y: np.sin(np.pi * x) * np.sin(np.pi * y))
        solver = DistributedSolver(model, grid, sg, parts, num_nodes=2,
                                   work_factors=mask.work_factors(),
                                   domain_mask=mask)
        res = solver.run(u0, 3)
        # the active region computed something
        assert not np.allclose(res.u[mask.dp_mask()],
                               u0[mask.dp_mask()])
        # the notch stays pinned to zero (Dc extended to the void)
        assert np.all(res.u[~mask.dp_mask()] == 0.0)
        assert res.makespan > 0

    def test_masked_solution_matches_serial_with_zeroing(self):
        """The masked distributed solve equals a serial solve that
        re-applies the zero condition on the void every step."""
        from repro.mesh.grid import UniformGrid
        from repro.solver.kernel import NonlocalOperator, stable_dt
        from repro.solver.distributed import DistributedSolver
        from repro.solver.model import NonlocalHeatModel

        grid = UniformGrid(32, 32)
        model = NonlocalHeatModel(epsilon=4 * grid.h)
        sg = SubdomainGrid(32, 32, 4, 4)
        mask = DomainMask.l_shape(sg, notch=0.5)
        parts = mask.scatter_parts(
            np.zeros(mask.num_active, dtype=int))
        u0 = np.ones(grid.shape)
        dt = stable_dt(model, grid)
        solver = DistributedSolver(model, grid, sg, parts, num_nodes=1,
                                   dt=dt, domain_mask=mask)
        res = solver.run(u0, 3)

        op = NonlocalOperator(model, grid)
        dp = mask.dp_mask()
        u = u0.copy()
        u[~dp] = 0.0
        for _ in range(3):
            u = u + dt * op.apply(u)
            u[~dp] = 0.0
        assert np.allclose(res.u, u, atol=1e-12)
