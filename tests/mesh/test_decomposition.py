"""Tests for the decomposition: ghosts, case split, node adjacency."""

import numpy as np
import pytest

from repro.mesh.decomposition import BYTES_PER_DP, Decomposition
from repro.mesh.subdomain import SubdomainGrid


def quad_decomp(mesh=16, sds=4, nodes=4):
    """4x4 SDs on `nodes` nodes in quadrant layout (paper Sec. 8.3)."""
    sg = SubdomainGrid(mesh, mesh, sds, sds)
    parts = np.zeros(sds * sds, dtype=int)
    for sd in range(sds * sds):
        ix, iy = sg.sd_coords(sd)
        parts[sd] = (1 if ix >= sds // 2 else 0) + 2 * (1 if iy >= sds // 2 else 0)
    return Decomposition(sg, parts, nodes)


class TestOwnership:
    def test_owner_and_sds_of_node(self):
        d = quad_decomp()
        assert d.owner(0) == 0
        sds0 = d.sds_of_node(0)
        assert len(sds0) == 4
        assert all(d.owner(s) == 0 for s in sds0)

    def test_sp_sizes(self):
        d = quad_decomp()
        assert list(d.sp_sizes()) == [4, 4, 4, 4]

    def test_dp_counts_per_node(self):
        d = quad_decomp(mesh=16, sds=4)
        assert list(d.dp_counts_per_node()) == [64, 64, 64, 64]

    def test_validation(self):
        sg = SubdomainGrid(8, 8, 2, 2)
        with pytest.raises(ValueError, match="parts length"):
            Decomposition(sg, np.zeros(3, dtype=int), 2)
        with pytest.raises(ValueError, match="part ids"):
            Decomposition(sg, np.array([0, 1, 2, 3]), 2)
        with pytest.raises(ValueError, match="num_nodes"):
            Decomposition(sg, np.zeros(4, dtype=int), 0)


class TestGhostMessages:
    def test_single_node_no_messages(self):
        sg = SubdomainGrid(16, 16, 4, 4)
        d = Decomposition(sg, np.zeros(16, dtype=int), 1)
        assert d.ghost_messages(2) == []

    def test_two_node_split_messages_cross_the_cut(self):
        sg = SubdomainGrid(16, 16, 4, 4)
        parts = np.array([0, 0, 1, 1] * 4)  # left/right halves
        d = Decomposition(sg, parts, 2)
        msgs = d.ghost_messages(2)
        assert msgs
        for m in msgs:
            assert {m.src_node, m.dst_node} == {0, 1}

    def test_message_bytes_match_region(self):
        sg = SubdomainGrid(16, 16, 4, 4)
        parts = np.array([0, 0, 1, 1] * 4)
        d = Decomposition(sg, parts, 2)
        for m in d.ghost_messages(2):
            assert m.nbytes == m.region.area * BYTES_PER_DP

    def test_exchange_symmetric_for_symmetric_layout(self):
        d = quad_decomp()
        ex = d.exchange_bytes(2)
        assert ex[(0, 1)] == ex[(1, 0)]
        assert ex[(0, 2)] == ex[(2, 0)]

    def test_total_bytes_grows_with_radius(self):
        d = quad_decomp()
        assert d.total_exchange_bytes(3) > d.total_exchange_bytes(1)

    def test_quadrants_have_diagonal_corner_exchange(self):
        d = quad_decomp()
        ex = d.exchange_bytes(2)
        # diagonal pairs exchange only small corner regions
        assert ex[(0, 3)] > 0
        assert ex[(0, 3)] < ex[(0, 1)]


class TestNodeAdjacency:
    def test_quadrant_adjacency(self):
        d = quad_decomp()
        adj = d.node_adjacency()
        # face adjacency only: quadrants 0-1, 0-2, 1-3, 2-3
        assert (0, 1) in adj and (2, 3) in adj
        assert (0, 3) not in adj  # diagonal quadrants share no SD face

    def test_single_node_no_adjacency(self):
        sg = SubdomainGrid(8, 8, 2, 2)
        d = Decomposition(sg, np.zeros(4, dtype=int), 1)
        assert d.node_adjacency() == []

    def test_strips_adjacency_is_a_path(self):
        sg = SubdomainGrid(16, 16, 4, 4)
        parts = np.repeat([0, 1, 2, 3], 4)  # horizontal strips
        d = Decomposition(sg, parts, 4)
        assert d.node_adjacency() == [(0, 1), (1, 2), (2, 3)]


class TestCaseSplit:
    def test_interior_sd_fully_case2_on_single_node(self):
        sg = SubdomainGrid(16, 16, 4, 4)
        d = Decomposition(sg, np.zeros(16, dtype=int), 1)
        split = d.case_split(5, radius=2)
        assert split.case1_count == 0
        assert split.case2_count == 16

    def test_boundary_sd_has_case1_strip(self):
        sg = SubdomainGrid(16, 16, 4, 4)
        parts = np.array([0, 0, 1, 1] * 4)
        d = Decomposition(sg, parts, 2)
        # SD at column 1 (owned by 0) borders column 2 (owned by 1)
        sd = sg.sd_id(1, 1)
        split = d.case_split(sd, radius=2)
        # right strip of width 2 in a 4x4 block = 8 DPs
        assert split.case1_count == 8
        assert split.case2_count == 8
        assert np.all(split.case1_mask[:, 2:])
        assert not np.any(split.case1_mask[:, :2])

    def test_radius_covering_whole_sd_makes_all_case1(self):
        sg = SubdomainGrid(16, 16, 4, 4)
        parts = np.array([0, 0, 1, 1] * 4)
        d = Decomposition(sg, parts, 2)
        sd = sg.sd_id(1, 1)
        split = d.case_split(sd, radius=4)
        assert split.case2_count == 0

    def test_case_counts_sum_to_mesh(self):
        d = quad_decomp(mesh=16, sds=4)
        c1, c2 = d.case_counts(radius=2)
        assert c1 + c2 == 16 * 16

    def test_corner_sd_two_foreign_sides(self):
        d = quad_decomp(mesh=16, sds=4)
        sg = d.sd_grid
        # SD (1,1) is the inner corner of node 0's quadrant
        split = d.case_split(sg.sd_id(1, 1), radius=1)
        # strips along two sides: 4 + 4 - 1 overlap corner = 7
        assert split.case1_count == 7

    def test_split_total_matches_dp_count(self):
        d = quad_decomp()
        for sd in range(d.sd_grid.num_subdomains):
            split = d.case_split(sd, radius=2)
            assert split.total == d.sd_grid.dp_count(sd)
