"""Tests for nonlocal stencil construction."""

import numpy as np
import pytest

from repro.mesh.stencil import NonlocalStencil, build_stencil
from repro.solver.model import (constant_influence, gaussian_influence,
                                linear_influence)


class TestBuildStencil:
    def test_radius_matches_eps_over_h(self):
        st = build_stencil(h=0.1, epsilon=0.8, influence=constant_influence)
        assert st.radius == 8

    def test_exact_multiple_includes_boundary_point(self):
        """eps = 2h must include the DP at distance exactly 2h."""
        st = build_stencil(h=0.5, epsilon=1.0, influence=constant_influence)
        assert st.radius == 2
        # axis point at offset (2, 0): distance = 2h = eps, included
        assert st.mask[2, 4] == 1.0

    def test_center_excluded(self):
        st = build_stencil(h=0.1, epsilon=0.3, influence=constant_influence)
        assert st.mask[st.radius, st.radius] == 0.0

    def test_corners_outside_ball_are_zero(self):
        st = build_stencil(h=0.1, epsilon=0.3, influence=constant_influence)
        assert st.mask[0, 0] == 0.0  # distance 3*sqrt(2)h > 3h

    def test_mask_is_symmetric(self):
        st = build_stencil(h=0.1, epsilon=0.4, influence=linear_influence)
        assert np.allclose(st.mask, st.mask[::-1, :])
        assert np.allclose(st.mask, st.mask[:, ::-1])
        assert np.allclose(st.mask, st.mask.T)

    def test_neighbor_count_approximates_ball_area(self):
        """For large R, #neighbors ~ pi R^2."""
        st = build_stencil(h=0.01, epsilon=0.2, influence=constant_influence)
        R = st.radius
        assert st.num_neighbors == pytest.approx(np.pi * R * R, rel=0.05)

    def test_constant_weights_are_one(self):
        st = build_stencil(h=0.1, epsilon=0.25, influence=constant_influence)
        nz = st.mask[st.mask > 0]
        assert np.all(nz == 1.0)

    def test_linear_influence_decays(self):
        st = build_stencil(h=0.1, epsilon=0.8, influence=linear_influence)
        R = st.radius
        # nearest axis neighbour has higher weight than farthest
        assert st.mask[R, R + 1] > st.mask[R, 2 * R]

    def test_gaussian_influence_positive(self):
        st = build_stencil(h=0.1, epsilon=0.5, influence=gaussian_influence)
        assert st.weight_sum > 0

    def test_1d_stencil(self):
        st = build_stencil(h=0.1, epsilon=0.3, influence=constant_influence, dim=1)
        assert st.mask.shape == (1, 7)
        assert st.mask[0, 3] == 0.0  # center
        assert st.weight_sum == 6.0

    def test_validation(self):
        with pytest.raises(ValueError, match="h must be positive"):
            build_stencil(0.0, 1.0, constant_influence)
        with pytest.raises(ValueError, match="must be >="):
            build_stencil(0.5, 0.1, constant_influence)
        with pytest.raises(ValueError, match="dim"):
            build_stencil(0.1, 0.2, constant_influence, dim=3)

    def test_negative_influence_rejected(self):
        from repro.solver.model import InfluenceFunction
        bad = InfluenceFunction("bad", lambda r: -np.ones_like(r))
        with pytest.raises(ValueError, match="negative"):
            build_stencil(0.1, 0.2, bad)


class TestNonlocalStencil:
    def test_mask_shape_validation(self):
        with pytest.raises(ValueError, match="2-D"):
            NonlocalStencil(np.zeros(5), 0.1, 0.2)
        with pytest.raises(ValueError, match="odd"):
            NonlocalStencil(np.zeros((4, 4)), 0.1, 0.2)
        with pytest.raises(ValueError, match="square or a single row"):
            NonlocalStencil(np.zeros((3, 5)), 0.1, 0.2)

    def test_mask_1d_returns_central_row(self):
        st = build_stencil(h=0.1, epsilon=0.2, influence=constant_influence)
        row = st.mask_1d()
        assert row.shape == (2 * st.radius + 1,)
        assert row[st.radius] == 0.0

    def test_mask_1d_on_single_row_mask(self):
        """Regression (1-D path): a ``(1, 2k+1)`` single-row mask is a
        valid stencil and ``mask_1d`` must return exactly that row —
        ``mask.shape[0] // 2`` is row 0 here, not the mask radius."""
        mask = np.array([[1.0, 2.0, 0.0, 2.0, 1.0]])
        st = NonlocalStencil(mask, h=0.1, epsilon=0.2)
        assert st.radius == 2
        row = st.mask_1d()
        assert row.shape == (5,)
        np.testing.assert_array_equal(row, mask[0])
        # a copy, not a view into the stencil's mask
        row[0] = 99.0
        assert st.mask[0, 0] == 1.0

    def test_mask_1d_of_built_1d_stencil_matches_square_central_row(self):
        """The 1-D stencil's only row carries the same weights as the
        central row of the 2-D stencil at the same (h, eps)."""
        s1 = build_stencil(h=0.1, epsilon=0.35, influence=linear_influence,
                           dim=1)
        s2 = build_stencil(h=0.1, epsilon=0.35, influence=linear_influence,
                           dim=2)
        np.testing.assert_allclose(s1.mask_1d(), s2.mask_1d(), atol=1e-15)

    def test_weight_sum(self):
        mask = np.array([[0.0, 1.0, 0.0],
                         [1.0, 0.0, 1.0],
                         [0.0, 1.0, 0.0]])
        st = NonlocalStencil(mask, 0.1, 0.1)
        assert st.weight_sum == 4.0
        assert st.num_neighbors == 4
