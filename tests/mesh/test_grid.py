"""Tests for the uniform grid."""

import numpy as np
import pytest

from repro.mesh.grid import UniformGrid


class TestConstruction:
    def test_basic_2d(self):
        g = UniformGrid(10, 10)
        assert g.shape == (10, 10)
        assert g.h == pytest.approx(0.1)
        assert g.num_points == 100

    def test_rectangular(self):
        g = UniformGrid(10, 5)
        assert g.Lx == 1.0
        assert g.Ly == pytest.approx(0.5)

    def test_1d(self):
        g = UniformGrid(8, dim=1)
        assert g.shape == (1, 8)
        assert g.cell_volume == pytest.approx(1 / 8)

    def test_1d_requires_ny_1(self):
        with pytest.raises(ValueError, match="ny == 1"):
            UniformGrid(8, 4, dim=1)

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            UniformGrid(0, 4)
        with pytest.raises(ValueError):
            UniformGrid(4, 4, dim=3)

    def test_cell_volume_2d(self):
        g = UniformGrid(20, 20)
        assert g.cell_volume == pytest.approx(g.h ** 2)


class TestCoordinates:
    def test_cell_centers_cover_unit_interval(self):
        g = UniformGrid(4, 4)
        assert list(g.x_coords()) == pytest.approx([0.125, 0.375, 0.625, 0.875])

    def test_meshgrid_shapes(self):
        g = UniformGrid(5, 3)
        X, Y = g.meshgrid()
        assert X.shape == (3, 5)
        assert Y.shape == (3, 5)

    def test_field_from_function_2d(self):
        g = UniformGrid(8, 8)
        f = g.field_from_function(lambda x, y: x + 2 * y)
        assert f.shape == g.shape
        assert f[0, 0] == pytest.approx(g.x_coords()[0] + 2 * g.y_coords()[0])

    def test_field_from_function_1d(self):
        g = UniformGrid(8, dim=1)
        f = g.field_from_function(lambda x: 3 * x)
        assert f.shape == (1, 8)
        assert f[0, -1] == pytest.approx(3 * g.x_coords()[-1])

    def test_zeros(self):
        g = UniformGrid(3, 4)
        z = g.zeros()
        assert z.shape == (4, 3)
        assert np.all(z == 0.0)


class TestBoundaryDistance:
    def test_corner_cell_nearest(self):
        g = UniformGrid(8, 8)
        d = g.boundary_distance()
        assert d[0, 0] == pytest.approx(g.h / 2)

    def test_center_farthest(self):
        g = UniformGrid(8, 8)
        d = g.boundary_distance()
        assert d.max() == pytest.approx(0.5 - g.h / 2)
        assert np.unravel_index(d.argmax(), d.shape) in [(3, 3), (3, 4), (4, 3), (4, 4)]

    def test_1d_distance(self):
        g = UniformGrid(4, dim=1)
        d = g.boundary_distance()
        assert d.shape == (1, 4)
        assert d[0, 0] == pytest.approx(0.125)
        assert d[0, 1] == pytest.approx(0.375)
