"""Tests for Rect and SubdomainGrid."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mesh.subdomain import Rect, SubdomainGrid


class TestRect:
    def test_area_and_dims(self):
        r = Rect(0, 4, 2, 5)
        assert r.height == 4 and r.width == 3
        assert r.area == 12

    def test_degenerate_area_zero(self):
        assert Rect(3, 3, 0, 5).area == 0
        assert Rect(5, 3, 0, 5).area == 0

    def test_slices_roundtrip(self):
        a = np.arange(36).reshape(6, 6)
        r = Rect(1, 3, 2, 5)
        assert a[r.slices()].shape == (2, 3)

    def test_intersect(self):
        a = Rect(0, 4, 0, 4)
        b = Rect(2, 6, 3, 8)
        c = a.intersect(b)
        assert c == Rect(2, 4, 3, 4)

    def test_disjoint_intersection_empty(self):
        assert Rect(0, 2, 0, 2).intersect(Rect(5, 7, 5, 7)).area == 0

    def test_expand_and_clip(self):
        r = Rect(0, 2, 0, 2).expand(3)
        assert r == Rect(-3, 5, -3, 5)
        assert r.clip(4, 4) == Rect(0, 4, 0, 4)

    def test_equality_and_hash(self):
        assert Rect(0, 1, 2, 3) == Rect(0, 1, 2, 3)
        assert hash(Rect(0, 1, 2, 3)) == hash(Rect(0, 1, 2, 3))
        assert Rect(0, 1, 2, 3) != Rect(0, 1, 2, 4)


class TestSubdomainGrid:
    def test_paper_fig2_setup(self):
        """Fig. 2: 20x20 DPs in 5x5 SDs of 4x4 DPs each."""
        sg = SubdomainGrid(20, 20, 5, 5)
        assert sg.num_subdomains == 25
        for sd in range(25):
            assert sg.dp_count(sd) == 16

    def test_id_coord_roundtrip(self):
        sg = SubdomainGrid(40, 30, 4, 3)
        for sd in range(sg.num_subdomains):
            ix, iy = sg.sd_coords(sd)
            assert sg.sd_id(ix, iy) == sd

    def test_out_of_range_ids(self):
        sg = SubdomainGrid(8, 8, 2, 2)
        with pytest.raises(IndexError):
            sg.sd_coords(4)
        with pytest.raises(IndexError):
            sg.sd_id(2, 0)

    def test_rects_tile_mesh(self):
        sg = SubdomainGrid(17, 13, 4, 3)  # uneven division
        cover = np.zeros((13, 17), dtype=int)
        for sd in range(sg.num_subdomains):
            cover[sg.rect(sd).slices()] += 1
        assert np.all(cover == 1)

    def test_uneven_split_sizes_differ_by_one_line(self):
        sg = SubdomainGrid(10, 10, 3, 3)
        widths = {sg.rect(sd).width for sd in range(9)}
        assert widths <= {3, 4}

    def test_more_sds_than_dps_rejected(self):
        with pytest.raises(ValueError, match="more SDs than DPs"):
            SubdomainGrid(4, 4, 5, 5)

    def test_sd_center_in_unit_square(self):
        sg = SubdomainGrid(20, 20, 5, 5)
        cx, cy = sg.sd_center(0)
        assert (cx, cy) == (0.1, 0.1)
        cx, cy = sg.sd_center(24)
        assert (cx, cy) == (0.9, 0.9)

    def test_face_neighbors_interior(self):
        sg = SubdomainGrid(20, 20, 5, 5)
        center = sg.sd_id(2, 2)
        nbrs = sg.face_neighbors(center)
        assert len(nbrs) == 4
        assert set(nbrs) == {sg.sd_id(1, 2), sg.sd_id(3, 2),
                             sg.sd_id(2, 1), sg.sd_id(2, 3)}

    def test_face_neighbors_corner(self):
        sg = SubdomainGrid(20, 20, 5, 5)
        assert len(sg.face_neighbors(0)) == 2

    def test_halo_rect_clipped_at_boundary(self):
        sg = SubdomainGrid(20, 20, 5, 5)
        halo = sg.halo_rect(0, radius=2)
        assert halo == Rect(0, 6, 0, 6)

    def test_halo_neighbors_small_radius(self):
        """Radius smaller than SD size: only the 8 surrounding SDs."""
        sg = SubdomainGrid(20, 20, 5, 5)
        center = sg.sd_id(2, 2)
        nbrs = sg.halo_neighbors(center, radius=2)
        assert len(nbrs) == 8

    def test_halo_neighbors_overlap_areas(self):
        sg = SubdomainGrid(20, 20, 5, 5)
        center = sg.sd_id(2, 2)
        overlaps = dict(sg.halo_neighbors(center, radius=2))
        # face neighbours contribute 2x4 strips, corners 2x2
        areas = sorted(r.area for r in overlaps.values())
        assert areas == [4, 4, 4, 4, 8, 8, 8, 8]

    def test_halo_neighbors_large_radius_reaches_second_ring(self):
        """Radius larger than SD size: SDs two rings away appear."""
        sg = SubdomainGrid(20, 20, 5, 5)  # SDs are 4x4 DPs
        center = sg.sd_id(2, 2)
        nbrs = sg.halo_neighbors(center, radius=6)
        ids = {sd for sd, _ in nbrs}
        assert sg.sd_id(0, 2) in ids  # two SDs to the left

    def test_halo_neighbors_exclude_self(self):
        sg = SubdomainGrid(8, 8, 2, 2)
        for sd in range(4):
            assert sd not in {s for s, _ in sg.halo_neighbors(sd, 3)}

    def test_ownership_grid_shape(self):
        sg = SubdomainGrid(20, 20, 5, 4)
        grid = sg.ownership_grid(np.arange(20))
        assert grid.shape == (4, 5)
        assert grid[0, 0] == 0 and grid[3, 4] == 19

    def test_ownership_grid_length_checked(self):
        sg = SubdomainGrid(8, 8, 2, 2)
        with pytest.raises(ValueError):
            sg.ownership_grid(np.zeros(5))

    @given(mesh=st.integers(8, 40), sds=st.integers(1, 8), radius=st.integers(1, 6))
    @settings(max_examples=40, deadline=None)
    def test_halo_overlaps_tile_halo_minus_own(self, mesh, sds, radius):
        """Union of overlap rects == halo minus own rect, disjointly."""
        if sds > mesh:
            sds = mesh
        sg = SubdomainGrid(mesh, mesh, sds, sds)
        sd = sg.num_subdomains // 2
        halo = sg.halo_rect(sd, radius)
        cover = np.zeros((mesh, mesh), dtype=int)
        for _, r in sg.halo_neighbors(sd, radius):
            cover[r.slices()] += 1
        own = np.zeros((mesh, mesh), dtype=bool)
        own[sg.rect(sd).slices()] = True
        in_halo = np.zeros((mesh, mesh), dtype=bool)
        in_halo[halo.slices()] = True
        expected = in_halo & ~own
        assert np.array_equal(cover > 0, expected)
        assert cover.max() <= 1  # disjoint
