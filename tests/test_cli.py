"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_defaults(self):
        args = build_parser().parse_args(["solve"])
        assert args.nx == 64
        assert args.eps_factor == 8.0

    def test_partition_method_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["partition", "--method", "magic"])


class TestCommands:
    def test_solve(self, capsys):
        rc = main(["solve", "--nx", "16", "--eps-factor", "2",
                   "--steps", "3", "--source", "discrete"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "total error" in out

    def test_validate_small(self, capsys):
        rc = main(["validate", "--max-exponent", "4", "--steps", "3"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "monotone decrease: yes" in out

    def test_scale(self, capsys):
        rc = main(["scale", "--mesh", "64", "--sds", "4",
                   "--max-nodes", "4", "--steps", "2"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "speedup" in out

    def test_balance(self, capsys):
        rc = main(["balance", "--sds", "5", "--nodes", "4",
                   "--iterations", "3"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "final SDs per node" in out
        assert "iter 0" in out

    @pytest.mark.parametrize("method", ["multilevel", "blocks", "strips",
                                        "rcb", "spectral"])
    def test_partition_all_methods(self, capsys, method):
        rc = main(["partition", "--sds", "8", "--nodes", "4",
                   "--method", method])
        out = capsys.readouterr().out
        assert rc == 0
        assert "edge cut" in out
