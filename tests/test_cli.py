"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main
from repro.experiments import SCHEMA, read_records, scenario_names


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_defaults(self):
        args = build_parser().parse_args(["solve"])
        assert args.nx == 64
        assert args.eps_factor == 8.0

    def test_partition_method_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["partition", "--method", "magic"])


class TestCommands:
    def test_solve(self, capsys):
        rc = main(["solve", "--nx", "16", "--eps-factor", "2",
                   "--steps", "3", "--source", "discrete"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "total error" in out

    def test_validate_small(self, capsys):
        rc = main(["validate", "--max-exponent", "4", "--steps", "3"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "monotone decrease: yes" in out

    def test_scale(self, capsys):
        rc = main(["scale", "--mesh", "64", "--sds", "4",
                   "--max-nodes", "4", "--steps", "2"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "speedup" in out

    def test_balance(self, capsys):
        rc = main(["balance", "--sds", "5", "--nodes", "4",
                   "--iterations", "3"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "final SDs per node" in out
        assert "iter 0" in out

    @pytest.mark.parametrize("method", ["multilevel", "blocks", "strips",
                                        "rcb", "spectral"])
    def test_partition_all_methods(self, capsys, method):
        rc = main(["partition", "--sds", "8", "--nodes", "4",
                   "--method", method])
        out = capsys.readouterr().out
        assert rc == 0
        assert "edge cut" in out


class TestRunCommand:
    def test_list_scenarios(self, capsys):
        rc = main(["run", "--list"])
        out = capsys.readouterr().out
        assert rc == 0
        for name in scenario_names():
            assert name in out

    def test_run_scenario_with_json(self, capsys, tmp_path):
        path = tmp_path / "out.json"
        rc = main(["run", "--scenario", "fig14_load_balance",
                   "--steps", "2", "--json", str(path)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "virtual makespan" in out
        records = read_records(str(path))
        assert len(records) == 1
        assert records[0].scenario == "fig14_load_balance"
        assert records[0].num_steps == 2

    def test_run_requires_scenario(self, capsys):
        assert main(["run"]) == 2

    def test_run_unknown_scenario(self, capsys):
        assert main(["run", "--scenario", "fig99_imaginary"]) == 2

    def test_run_with_backend_override(self, capsys, tmp_path):
        path = tmp_path / "out.json"
        rc = main(["run", "--scenario", "quickstart", "--steps", "1",
                   "--backend", "sparse", "--json", str(path)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "kernel backend: sparse" in out
        records = read_records(str(path))
        assert records[0].spec["kernel_backend"] == "sparse"

    def test_run_default_backend_is_the_scenario_choice(self, capsys,
                                                        tmp_path):
        path = tmp_path / "out.json"
        rc = main(["run", "--scenario", "fig14_load_balance", "--steps", "1",
                   "--json", str(path)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "kernel backend" not in out  # auto is not worth a line
        assert read_records(str(path))[0].spec["kernel_backend"] == "auto"

    def test_run_rejects_unknown_backend(self, capsys):
        with pytest.raises(SystemExit):
            main(["run", "--scenario", "quickstart", "--backend", "quantum"])

    def test_bad_backend_env_reported_cleanly(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL_BACKEND", "quantum")
        rc = main(["run", "--scenario", "quickstart", "--steps", "1"])
        assert rc == 2
        assert "REPRO_KERNEL_BACKEND" in capsys.readouterr().err

    def test_solve_accepts_backend(self, capsys):
        rc = main(["solve", "--nx", "16", "--eps-factor", "2",
                   "--steps", "2", "--backend", "fft"])
        assert rc == 0
        assert "total error" in capsys.readouterr().out

    def test_run_with_balancer_override(self, capsys, tmp_path):
        path = tmp_path / "out.json"
        rc = main(["run", "--scenario", "fig14_load_balance", "--steps", "1",
                   "--balancer", "greedy", "--json", str(path)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "balancer: greedy" in out
        (rec,) = read_records(str(path))
        assert rec.spec["policy"]["balancer"] == "greedy"
        assert rec.balancer_resolved == "greedy"

    def test_run_prints_balance_events(self, capsys):
        rc = main(["run", "--scenario", "fig14_load_balance", "--steps", "2"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "SDs moved" in out
        assert "imb before" in out  # the balance-events telemetry table

    def test_run_with_topology_override(self, capsys, tmp_path):
        path = tmp_path / "out.json"
        # 16 nodes span 4 racks of the default rack_size=4
        rc = main(["run", "--scenario", "fig13_metis_scaling",
                   "--steps", "1", "--topology", "switched",
                   "--json", str(path)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "bytes by class" in out
        (rec,) = read_records(str(path))
        assert rec.spec["cluster"]["topology"]["kind"] == "switched"
        assert set(rec.bytes_by_class) <= {"intra_rack", "inter_rack"}
        assert sum(rec.bytes_by_class.values()) == rec.ghost_bytes

    def test_run_topology_scenarios_by_name(self, capsys, tmp_path):
        path = tmp_path / "out.json"
        rc = main(["run", "--scenario", "rack_locality", "--steps", "1",
                   "--json", str(path)])
        assert rc == 0
        assert "bytes by class" in capsys.readouterr().out
        (rec,) = read_records(str(path))
        assert rec.spec["partition"]["placement"] == "rack"

    def test_run_rejects_unknown_topology(self, capsys):
        with pytest.raises(SystemExit):
            main(["run", "--scenario", "quickstart", "--topology", "torus"])

    def test_flat_topology_keeps_single_class_output_quiet(self, capsys):
        rc = main(["run", "--scenario", "fig11_strong_distributed",
                   "--steps", "1", "--topology", "flat"])
        out = capsys.readouterr().out
        assert rc == 0
        # one route class: no bytes-by-class line for the flat model
        assert "bytes by class" not in out

    def test_scale_accepts_topology(self, capsys):
        rc = main(["scale", "--mesh", "64", "--sds", "4", "--max-nodes", "2",
                   "--steps", "1", "--topology", "switched"])
        assert rc == 0
        assert "Strong scaling" in capsys.readouterr().out

    FAULTS_JSON = ('{"events": [{"kind": "fail", "time": 1.5e-5, '
                   '"node": 2}], "recovery_penalty": 0.5}')

    def test_run_with_inline_faults(self, capsys, tmp_path):
        path = tmp_path / "out.json"
        rc = main(["run", "--scenario", "fig11_strong_distributed",
                   "--steps", "2", "--faults", self.FAULTS_JSON,
                   "--json", str(path)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "recovery events" in out       # the new telemetry table
        assert "SDs evacuated" in out
        (rec,) = read_records(str(path))
        faults = rec.spec["cluster"]["faults"]
        assert faults["recovery_penalty"] == 0.5
        assert faults["events"][0]["node"] == 2
        assert rec.recovery_events and rec.recovery_events[0]["kind"] == "fail"
        assert 2 not in rec.final_parts

    def test_run_with_faults_file(self, capsys, tmp_path):
        fpath = tmp_path / "faults.json"
        fpath.write_text(self.FAULTS_JSON)
        rc = main(["run", "--scenario", "fig11_strong_distributed",
                   "--steps", "2", "--faults", str(fpath)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "recovery events" in out

    def test_run_rejects_bad_faults(self, capsys, tmp_path):
        with pytest.raises(SystemExit, match="not valid JSON"):
            main(["run", "--scenario", "fig11_strong_distributed",
                  "--faults", "{broken"])
        with pytest.raises(SystemExit, match="cannot read faults file"):
            main(["run", "--scenario", "fig11_strong_distributed",
                  "--faults", str(tmp_path / "missing.json")])
        # schedule that empties the scenario's 4-node cluster
        bad = ('{"events": [' + ",".join(
            f'{{"kind": "fail", "time": {t}.0, "node": {n}}}'
            for t, n in ((1, 0), (2, 1), (3, 2), (4, 3))) + "]}")
        with pytest.raises(SystemExit, match="bad fault schedule"):
            main(["run", "--scenario", "fig11_strong_distributed",
                  "--faults", bad])

    def test_run_churn_scenario_prints_recovery_table(self, capsys):
        rc = main(["run", "--scenario", "hetero_churn", "--steps", "8"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "recovery events" in out
        assert "recovery bytes" in out
        assert "join" in out

    def test_run_rejects_unknown_balancer(self, capsys):
        with pytest.raises(SystemExit):
            main(["run", "--scenario", "fig14_load_balance",
                  "--balancer", "magic"])

    def test_bad_balancer_env_reported_cleanly(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_BALANCER", "magic")
        rc = main(["run", "--scenario", "fig14_load_balance", "--steps", "1"])
        assert rc == 2
        assert "REPRO_BALANCER" in capsys.readouterr().err

    def test_abl_balancers_sweeps_all_strategies(self, capsys, tmp_path):
        from repro.core.strategies import strategy_names
        path = tmp_path / "out.json"
        rc = main(["run", "--scenario", "abl_balancers", "--steps", "2",
                   "--json", str(path)])
        out = capsys.readouterr().out
        assert rc == 0
        for name in strategy_names():
            assert name in out
        records = read_records(str(path))
        assert [r.spec["policy"]["balancer"]
                for r in records] == strategy_names()

    def test_abl_balancers_sweep_honors_backend_override(self, capsys,
                                                         tmp_path):
        path = tmp_path / "out.json"
        rc = main(["run", "--scenario", "abl_balancers", "--steps", "1",
                   "--backend", "direct", "--json", str(path)])
        assert rc == 0
        records = read_records(str(path))
        assert all(r.spec["kernel_backend"] == "direct" for r in records)

    def test_abl_balancers_pinned_runs_single(self, capsys, tmp_path):
        path = tmp_path / "out.json"
        rc = main(["run", "--scenario", "abl_balancers", "--steps", "2",
                   "--balancer", "diffusion", "--json", str(path)])
        assert rc == 0
        records = read_records(str(path))
        assert len(records) == 1
        assert records[0].balancer_resolved == "diffusion"

    def test_balance_accepts_balancer(self, capsys):
        rc = main(["balance", "--sds", "5", "--nodes", "4",
                   "--iterations", "3", "--balancer", "repartition"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "final SDs per node" in out


class TestJsonOutput:
    def test_solve_json(self, capsys, tmp_path):
        path = tmp_path / "solve.json"
        rc = main(["solve", "--nx", "16", "--eps-factor", "2",
                   "--steps", "2", "--json", str(path)])
        assert rc == 0
        (rec,) = read_records(str(path))
        assert rec.solver == "serial"
        assert rec.total_error is not None

    def test_validate_json(self, capsys, tmp_path):
        path = tmp_path / "validate.json"
        rc = main(["validate", "--max-exponent", "4", "--steps", "2",
                   "--json", str(path)])
        assert rc == 0
        assert len(read_records(str(path))) == 3  # exponents 2..4

    def test_scale_json_and_seed(self, capsys, tmp_path):
        path = tmp_path / "scale.json"
        rc = main(["scale", "--mesh", "64", "--sds", "4", "--max-nodes", "4",
                   "--steps", "2", "--seed", "1", "--json", str(path)])
        assert rc == 0
        records = read_records(str(path))
        assert [r.spec["cluster"]["num_nodes"] for r in records] == [1, 2, 4]
        assert all(r.spec["partition"]["seed"] == 1 for r in records)

    def test_balance_json(self, capsys, tmp_path):
        path = tmp_path / "balance.json"
        rc = main(["balance", "--sds", "5", "--nodes", "4",
                   "--iterations", "3", "--json", str(path)])
        assert rc == 0
        (rec,) = read_records(str(path))
        assert rec.sds_moved > 0

    def test_partition_json(self, capsys, tmp_path):
        path = tmp_path / "part.json"
        rc = main(["partition", "--sds", "8", "--nodes", "4",
                   "--seed", "2", "--json", str(path)])
        assert rc == 0
        doc = json.loads(path.read_text())
        assert doc["schema"] == SCHEMA
        assert len(doc["parts"]) == 64
        assert doc["partition"]["seed"] == 2


class TestDesQueueEnv:
    def test_bad_queue_env_reported_cleanly(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_DES_QUEUE", "splay")
        rc = main(["run", "--scenario", "quickstart", "--steps", "1"])
        assert rc == 2
        assert "REPRO_DES_QUEUE" in capsys.readouterr().err

    def test_valid_queue_env_accepted(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_DES_QUEUE", "bucket")
        rc = main(["run", "--scenario", "quickstart", "--steps", "1"])
        assert rc == 0
        assert "makespan" in capsys.readouterr().out


class TestServeCommand:
    def test_list_service_scenarios(self, capsys):
        rc = main(["serve", "--list"])
        out = capsys.readouterr().out
        assert rc == 0
        names = out.split()
        assert names == sorted(names)
        assert {"service_poisson", "service_bursty", "service_overload",
                "flash_crowd", "diurnal_autoscale"} <= set(names)

    def test_serve_default_scenario_with_json(self, capsys, tmp_path):
        path = tmp_path / "svc.json"
        rc = main(["serve", "--horizon", "1e-3", "--json", str(path)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "goodput" in out
        assert "per-tenant service" in out
        records = read_records(str(path))
        assert len(records) == 1
        rec = records[0]
        assert rec.scenario == "service_poisson"
        assert rec.solver == "service"
        assert rec.service_events
        assert rec.spec["horizon"] == 1e-3

    def test_serve_overload_reports_shedding(self, capsys):
        rc = main(["serve", "--scenario", "service_overload"])
        out = capsys.readouterr().out
        assert rc == 0
        # the overload scenario must actually shed on its default knobs
        import re
        m = re.search(r"(\d+) shed", out)
        assert m and int(m.group(1)) > 0

    def test_serve_overrides_feed_the_spec(self, capsys, tmp_path):
        path = tmp_path / "svc.json"
        rc = main(["serve", "--scenario", "service_poisson",
                   "--rate", "5000", "--seed", "3", "--nodes", "8",
                   "--horizon", "1e-3", "--json", str(path)])
        assert rc == 0
        rec = read_records(str(path))[0]
        assert rec.spec["arrival"]["rate"] == 5000.0
        assert rec.spec["arrival"]["seed"] == 3
        assert rec.spec["cluster"]["num_nodes"] == 8

    def test_serve_unknown_scenario(self, capsys):
        assert main(["serve", "--scenario", "service_imaginary"]) == 2
        assert "service_imaginary" in capsys.readouterr().err

    def test_serve_rejects_non_service_scenario(self, capsys):
        rc = main(["serve", "--scenario", "fig14_load_balance"])
        assert rc == 2
        assert "use 'repro run'" in capsys.readouterr().err

    def test_serve_rejects_unsupported_override(self, capsys):
        rc = main(["serve", "--scenario", "fig14_load_balance",
                   "--rate", "100"])
        assert rc == 2
        assert "--rate" in capsys.readouterr().err
