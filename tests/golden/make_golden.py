"""Regenerate the golden kernel fixtures (``tests/golden/*.npz``).

Run from the repository root::

    PYTHONPATH=src python tests/golden/make_golden.py

Each fixture pins the numerics of the nonlocal operator on a small
grid: the input field, the expected ``L(u)``, and (for the evolution
fixture) the field after a few forward-Euler steps.  Expected arrays
are computed with :func:`repro.solver.backends.apply_operator_reference`
— the scipy-free oracle — never with any production backend, so the
fixtures are an independent anchor: every backend must reproduce them
to 1e-12 (relative; see ``tests/solver/test_golden.py``), which pins
the discretization against silent drift from future kernel work.

The files are committed; rerun this script only when the *intended*
numerics change (e.g. a new influence function), and say so in the
commit message.
"""

import os
import sys

import numpy as np

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "..", "src"))

from repro.mesh.grid import UniformGrid  # noqa: E402
from repro.solver.backends import apply_operator_reference  # noqa: E402
from repro.solver.exact import ManufacturedProblem  # noqa: E402
from repro.solver.kernel import stable_dt  # noqa: E402
from repro.solver.model import NonlocalHeatModel  # noqa: E402

HERE = os.path.dirname(os.path.abspath(__file__))

#: (name, nx, ny, dim, eps_factor, influence)
APPLY_CASES = [
    ("apply_2d_constant", 12, 12, 2, 3.0, "constant"),
    ("apply_2d_linear", 10, 10, 2, 2.0, "linear"),
    ("apply_2d_gaussian_rect", 16, 10, 2, 4.0, "gaussian"),
    ("apply_1d_constant", 24, 1, 1, 4.0, "constant"),
]


def build(nx, ny, dim, eps_factor, influence):
    from repro.solver.model import (constant_influence, gaussian_influence,
                                    linear_influence)
    J = {"constant": constant_influence, "linear": linear_influence,
         "gaussian": gaussian_influence}[influence]
    grid = UniformGrid(nx, ny, dim=dim)
    model = NonlocalHeatModel(epsilon=eps_factor * grid.h, dim=dim,
                              influence=J)
    return model, grid


def field(grid, seed):
    rng = np.random.default_rng(seed)
    return rng.standard_normal(grid.shape)


def main():
    for i, (name, nx, ny, dim, eps_factor, influence) in enumerate(APPLY_CASES):
        model, grid = build(nx, ny, dim, eps_factor, influence)
        from repro.mesh.stencil import build_stencil
        stencil = build_stencil(grid.h, model.epsilon, model.influence,
                                dim=dim)
        u = field(grid, seed=100 + i)
        lu = apply_operator_reference(stencil, model.c * grid.cell_volume, u)
        path = os.path.join(HERE, name + ".npz")
        np.savez(path, u=u, lu=lu, nx=nx, ny=ny, dim=dim,
                 eps_factor=eps_factor, influence=influence)
        print(f"wrote {path}: |L(u)| up to {np.abs(lu).max():.4g}")

    # evolution fixture: 5 manufactured forward-Euler steps on a small
    # 2-D grid, stepped with the reference apply (no backend involved)
    model, grid = build(16, 16, 2, 2.0, "constant")
    from repro.mesh.stencil import build_stencil
    stencil = build_stencil(grid.h, model.epsilon, model.influence, dim=2)
    prob = ManufacturedProblem(model, grid, source_mode="continuum")
    dt = stable_dt(model, grid, stencil=stencil)
    steps = 5
    scale = model.c * grid.cell_volume
    u = prob.initial_condition().astype(np.float64)
    t = 0.0
    for _ in range(steps):
        rhs = apply_operator_reference(stencil, scale, u) + prob.source(t)
        u = u + dt * rhs
        t += dt
    path = os.path.join(HERE, "evolve_2d_constant.npz")
    np.savez(path, u0=prob.initial_condition(), u_final=u, nx=16, ny=16,
             dim=2, eps_factor=2.0, influence="constant", steps=steps, dt=dt)
    print(f"wrote {path}: {steps} steps, dt={dt:.4g}")


if __name__ == "__main__":
    main()
