"""Regenerate the fault-recovery golden record (``fault_recovery.json``).

Run from the repository root::

    PYTHONPATH=src python tests/golden/make_golden_fault.py

The fixture pins the complete :class:`repro.experiments.RunRecord` of
the ``fault_recovery`` registry scenario: a numerics-on 3-node run in
which node 1 fails mid-run — its SDs are evacuated through the pinned
``tree`` strategy, its in-flight kernels are requeued with the recovery
penalty, and the final temperatures still match the serial solver.

Everything the scenario depends on is pinned (``tree`` balancer,
``direct`` kernel backend, block partition), so the record is invariant
under the CI's ``REPRO_BALANCER``/``REPRO_KERNEL_BACKEND`` matrices.
Virtual-time fields (makespan, step durations, events) are
machine-independent and compared exactly by the regression test
(``tests/solver/test_fault_recovery.py``); the numeric error fields are
compared to a relative tolerance.

The file is committed; rerun this script only when the *intended*
schedule or fault model changes, and say so in the commit message.
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "..", "src"))

from repro.experiments import build, run_scenario, write_json  # noqa: E402

HERE = os.path.dirname(os.path.abspath(__file__))


def main():
    rec = run_scenario(build("fault_recovery"))
    assert rec.recovery_events, "scenario no longer injects a failure"
    path = os.path.join(HERE, "fault_recovery.json")
    write_json(path, {"record": rec.to_dict()})
    print(f"wrote {path}: makespan={rec.makespan:.6g}s, "
          f"{len(rec.recovery_events)} recovery event(s), "
          f"total error {rec.total_error:.6g}")


if __name__ == "__main__":
    main()
