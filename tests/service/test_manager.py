"""Unit tests of admission control, dispatch order, and telemetry."""

import pytest

from repro.experiments import ClusterSpec
from repro.service import (ArrivalSpec, ServiceSpec, TenantSpec,
                           jain_fairness, percentile, run_service,
                           summarize_service)


def _spec(**overrides):
    base = dict(
        name="mgr-test",
        tenants=(TenantSpec(name="a", nx=16, steps=1),
                 TenantSpec(name="b", nx=16, steps=1)),
        cluster=ClusterSpec(num_nodes=2),
        arrival=ArrivalSpec(rate=1e5, seed=0),
        horizon=1e-3)
    base.update(overrides)
    return ServiceSpec(**base)


class TestAdmission:
    def test_queue_depth_one_sheds_aggressively(self):
        deep = run_service(_spec(max_queue_depth=64,
                                 max_concurrent=1)).service_events
        shallow = run_service(_spec(max_queue_depth=1,
                                    max_concurrent=1)).service_events
        n_shed = lambda evs: sum(1 for e in evs if e["kind"] == "shed")
        assert n_shed(shallow) > n_shed(deep)

    def test_shed_events_carry_the_depth(self):
        events = run_service(_spec(
            arrival=ArrivalSpec(rate=2e6, seed=0),
            max_queue_depth=2, max_concurrent=1)).service_events
        sheds = [e for e in events if e["kind"] == "shed"]
        assert sheds
        assert all(e["depth"] == 2 for e in sheds)

    def test_max_concurrent_caps_running_jobs(self):
        events = run_service(_spec(max_concurrent=2)).service_events
        running = 0
        for e in events:
            if e["kind"] == "start":
                running += 1
                assert running <= 2
            elif e["kind"] == "finish":
                running -= 1

    def test_round_robin_interleaves_tenants(self):
        """With both tenants backlogged and one slot, starts alternate."""
        from repro.amt.cluster import SimCluster
        from repro.service.arrivals import Arrival
        from repro.service.manager import JobManager

        spec = _spec(max_concurrent=1, max_queue_depth=8)
        cluster = SimCluster(2, wave_batching=False)
        manager = JobManager(cluster, spec, {0: 26.0, 1: 26.0})
        # 4 jobs per tenant, all in the queue before anything finishes
        manager.feed([Arrival(0.0, k % 2, k // 2) for k in range(8)])
        cluster.run()
        starts = [e["tenant"] for e in manager.events
                  if e["kind"] == "start"]
        assert starts == ["a", "b", "a", "b", "a", "b", "a", "b"]


class TestTelemetryHelpers:
    def test_percentile_nearest_rank(self):
        data = [1.0, 2.0, 3.0, 4.0]
        assert percentile(data, 50) == 2.0
        assert percentile(data, 99) == 4.0
        assert percentile(data, 100) == 4.0
        assert percentile([], 99) == 0.0

    def test_percentile_rejects_bad_q(self):
        with pytest.raises(ValueError, match="percentile"):
            percentile([1.0], 0)

    def test_percentile_rejects_bad_q_on_empty_sample(self):
        """q is validated before the empty-sample shortcut: percentile
        used to return 0.0 for ``([], 0)`` while raising for
        ``([1], 0)`` — the same bad q must fail either way."""
        with pytest.raises(ValueError, match="percentile"):
            percentile([], 0)
        with pytest.raises(ValueError, match="percentile"):
            percentile([], 101)

    def test_jain_bounds(self):
        assert jain_fairness([1.0, 1.0, 1.0]) == pytest.approx(1.0)
        assert jain_fairness([1.0, 0.0, 0.0]) == pytest.approx(1 / 3)
        assert jain_fairness([]) == 1.0

    def test_summary_weights_normalize_fairness(self):
        events = [
            {"kind": "arrival", "t": 0.0, "tenant": "a", "job": 0},
            {"kind": "start", "t": 0.0, "tenant": "a", "job": 0,
             "wait": 0.0},
            {"kind": "finish", "t": 1.0, "tenant": "a", "job": 0,
             "wait": 0.0, "makespan": 1.0, "service": 1.0},
            {"kind": "arrival", "t": 0.0, "tenant": "b", "job": 0},
            {"kind": "start", "t": 0.0, "tenant": "b", "job": 0,
             "wait": 0.0},
            {"kind": "finish", "t": 1.0, "tenant": "b", "job": 0,
             "wait": 0.0, "makespan": 1.0, "service": 1.0},
            {"kind": "arrival", "t": 0.0, "tenant": "b", "job": 1},
            {"kind": "start", "t": 0.0, "tenant": "b", "job": 1,
             "wait": 0.0},
            {"kind": "finish", "t": 2.0, "tenant": "b", "job": 1,
             "wait": 0.0, "makespan": 2.0, "service": 2.0},
        ]
        raw = summarize_service(events, 2.0)
        weighted = summarize_service(events, 2.0,
                                     weights={"a": 1.0, "b": 2.0})
        assert raw["fairness"] < 1.0       # 1 vs 2 completions
        assert weighted["fairness"] == pytest.approx(1.0)
        assert raw["completed"] == 3
        assert raw["p99_makespan"] == 2.0

    def test_fairness_counts_starved_zero_event_tenants(self):
        """The share list is seeded from the weights mapping: an
        entitled tenant absent from the event stream contributes a 0
        share.  Two equal-weight tenants with completions [1, 0] must
        read 0.5 — the starved tenant used to vanish and the index
        read a perfect 1.0."""
        events = [
            {"kind": "arrival", "t": 0.0, "tenant": "a", "job": 0},
            {"kind": "start", "t": 0.0, "tenant": "a", "job": 0,
             "wait": 0.0},
            {"kind": "finish", "t": 1.0, "tenant": "a", "job": 0,
             "wait": 0.0, "makespan": 1.0, "service": 1.0},
        ]
        summary = summarize_service(events, 2.0,
                                    weights={"a": 1.0, "b": 1.0})
        assert summary["fairness"] == pytest.approx(0.5)
        # three entitled tenants, one served: Jain reads 1/3
        three = summarize_service(
            events, 2.0, weights={"a": 1.0, "b": 1.0, "c": 1.0})
        assert three["fairness"] == pytest.approx(1 / 3)


class TestPumpRunBoundary:
    """The arrival pump's drain-ahead must respect ``run(until=t)``.

    With the fleet saturated and the next queued DES event far beyond
    the cut, the pump used to consume the whole remaining trace inline
    — a mid-horizon observer of ``manager.events`` saw arrivals with
    timestamps from the future.
    """

    def _saturated_manager(self):
        from repro.amt.cluster import SimCluster
        from repro.service.manager import JobManager

        spec = _spec(
            tenants=(TenantSpec(name="a", nx=16, steps=1),),
            cluster=ClusterSpec(num_nodes=1), max_concurrent=1)
        cluster = SimCluster(1, wave_batching=True)
        # one admitted job runs for ~256 virtual seconds at rate 1.0:
        # the fleet saturates on the first arrival and the only queued
        # cluster event sits far past any mid-horizon cut
        manager = JobManager(cluster, spec, {0: 1.0})
        times = [k * 1e-4 for k in range(10)]
        manager.feed_columnar(times, [0] * 10, list(range(10)))
        return cluster, manager

    def test_cut_observes_no_future_arrivals(self):
        cluster, manager = self._saturated_manager()
        cluster.run(until=3.5e-4)
        stamps = [e["t"] for e in manager.events]
        assert stamps, "pump never fired"
        assert max(stamps) <= 3.5e-4, (
            f"drain-ahead leaked arrivals past the cut: {stamps}")

    def test_cut_and_resume_match_the_uncut_stream(self):
        cluster, manager = self._saturated_manager()
        cluster.run(until=3.5e-4)
        cluster.run(until=1.0)
        uncut_cluster, uncut_manager = self._saturated_manager()
        uncut_cluster.run(until=1.0)
        assert list(manager.events) == list(uncut_manager.events)
