"""Closed-loop autoscaling: controller invariants, policy hysteresis,
spec plumbing, and the no-op equivalence contract.

The controller owns the actuation invariants (floor, ceiling,
cooldown, drain-before-retire), so the property suite drives it with
*scripted* adversarial policies — the invariants must hold for any
decide() whatsoever.  The reference policy's hysteresis is unit-tested
on hand-built observations, and the end-to-end layer pins seeded
determinism, sweep parity, and the strongest regression of all: a
policy that can never fire leaves the whole record bit-identical to a
run with autoscaling disabled (poll events, busy-time flushes and
pump-cut interactions included).
"""

import itertools
import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.amt.autoscale import (AutoscaleController, AutoscaleObservation,
                                 TargetUtilizationPolicy, node_seconds)
from repro.amt.cluster import (ConstantSpeed, SimCluster, SimulationError,
                               StraggleSpeed)
from repro.experiments import ClusterSpec, build, run_sweep
from repro.experiments.runner import run_scenario
from repro.reporting.service import format_scale_events
from repro.service import (ArrivalSpec, AutoscaleSpec, ServiceSpec,
                           TenantSpec, run_service_detailed,
                           summarize_record)


def _obs(**kw):
    base = dict(time=0.0, interval=1.0, nodes=4, pending_joins=0,
                draining=0, utilization=0.5, p99_wait=0.0, shed_rate=0.0,
                queue_depth=0, min_nodes=1, max_nodes=8)
    base.update(kw)
    return AutoscaleObservation(**base)


class ScriptedPolicy:
    """decide() replays a fixed decision sequence, cycling."""

    def __init__(self, decisions):
        self._it = itertools.cycle(decisions)

    def decide(self, obs):
        return next(self._it)


# ---------------------------------------------------------------------------
# reference policy: threshold + hysteresis
# ---------------------------------------------------------------------------

class TestTargetUtilizationPolicy:
    def test_sustained_breach_scales_out_once(self):
        p = TargetUtilizationPolicy(scale_out_utilization=0.8,
                                    breach_polls=3)
        hot = _obs(utilization=0.95)
        assert [p.decide(hot) for _ in range(3)] == [0, 0, 1]
        # the emitted request restarts the streak
        assert [p.decide(hot) for _ in range(3)] == [0, 0, 1]

    def test_mixed_polls_reset_the_streak(self):
        p = TargetUtilizationPolicy(scale_out_utilization=0.8,
                                    breach_polls=2)
        assert p.decide(_obs(utilization=0.9)) == 0
        assert p.decide(_obs(utilization=0.5)) == 0  # streak broken
        assert p.decide(_obs(utilization=0.9)) == 0
        assert p.decide(_obs(utilization=0.9)) == 1

    def test_any_armed_signal_counts_as_hot(self):
        p = TargetUtilizationPolicy(breach_polls=1, max_p99_wait=1e-3,
                                    max_shed_rate=10.0, max_queue_depth=5)
        assert p.decide(_obs(utilization=0.3, p99_wait=2e-3)) == 1
        assert p.decide(_obs(utilization=0.3, shed_rate=11.0)) == 1
        assert p.decide(_obs(utilization=0.3, queue_depth=6)) == 1
        # defaults leave the service signals unarmed (inf thresholds)
        q = TargetUtilizationPolicy(breach_polls=1)
        assert q.decide(_obs(utilization=0.3, p99_wait=1e6,
                             shed_rate=1e9, queue_depth=10**6)) == 0

    def test_scale_in_needs_low_util_and_empty_queue(self):
        p = TargetUtilizationPolicy(scale_in_utilization=0.25, low_polls=2)
        cold = _obs(utilization=0.1)
        assert [p.decide(cold) for _ in range(2)] == [0, -1]
        # a queued job blocks scale-in no matter how idle the fleet
        p2 = TargetUtilizationPolicy(scale_in_utilization=0.25, low_polls=1)
        assert p2.decide(_obs(utilization=0.0, queue_depth=1)) == 0

    def test_thresholds_must_be_ordered(self):
        with pytest.raises(ValueError):
            TargetUtilizationPolicy(scale_out_utilization=0.5,
                                    scale_in_utilization=0.5)
        with pytest.raises(ValueError):
            TargetUtilizationPolicy(breach_polls=0)


# ---------------------------------------------------------------------------
# controller invariants (hold for ANY policy)
# ---------------------------------------------------------------------------

class TestControllerInvariants:
    def _drive(self, decisions, *, start, min_nodes, max_nodes,
               cooldown=0.0, provision_delay=0.5, horizon=40.0):
        cluster = SimCluster(start, wave_batching=True)
        ctl = AutoscaleController(
            cluster, ScriptedPolicy(decisions),
            poll_interval=1.0, min_nodes=min_nodes, max_nodes=max_nodes,
            cooldown=cooldown, provision_delay=provision_delay)
        ctl.start()
        cluster.run(until=horizon)
        return cluster, ctl

    @settings(max_examples=30, deadline=None)
    @given(decisions=st.lists(st.sampled_from([-1, 0, 1]),
                              min_size=1, max_size=20),
           min_nodes=st.integers(min_value=1, max_value=3),
           band=st.integers(min_value=0, max_value=4),
           start_off=st.integers(min_value=0, max_value=4),
           cooldown=st.sampled_from([0.0, 1.5, 3.0]))
    def test_floor_ceiling_cooldown_for_any_policy(
            self, decisions, min_nodes, band, start_off, cooldown):
        max_nodes = min_nodes + band
        start = min(min_nodes + start_off, max_nodes)
        cluster, ctl = self._drive(
            decisions, start=start, min_nodes=min_nodes,
            max_nodes=max_nodes, cooldown=cooldown)
        # floor: the dispatchable set never shrank below min_nodes
        # (every row records the dispatchable count after the action)
        for e in ctl.events:
            assert e["nodes"] >= min_nodes
        assert len(ctl.dispatchable()) >= min_nodes
        # ceiling: alive + in-flight joins never exceed max_nodes
        assert len(cluster.active_node_ids()) <= max_nodes
        for e in ctl.events:
            assert e["nodes"] <= max_nodes
        # cooldown: consecutive *decisions* are spaced by >= cooldown
        times = [e["t"] for e in ctl.events
                 if e["action"] in ("scale_out", "drain")]
        for a, b in zip(times, times[1:]):
            assert b - a >= cooldown - 1e-12

    def test_scale_in_refused_at_the_floor(self):
        _, ctl = self._drive([-1], start=2, min_nodes=2, max_nodes=4)
        assert ctl.events == []
        assert len(ctl.dispatchable()) == 2

    def test_scale_out_refused_at_the_ceiling(self):
        cluster, ctl = self._drive([1], start=2, min_nodes=1, max_nodes=3)
        joins = [e for e in ctl.events if e["action"] == "join"]
        assert len(joins) == 1
        assert len(cluster.active_node_ids()) == 3

    def test_join_lands_after_provision_delay_with_warmup(self):
        cluster = SimCluster(1, wave_batching=True, default_rate=4.0)
        ctl = AutoscaleController(
            cluster, ScriptedPolicy([1, 0]), poll_interval=1.0,
            min_nodes=1, max_nodes=2, provision_delay=2.5,
            warmup=3.0, warmup_factor=0.5)
        ctl.start()
        cluster.run(until=10.0)
        (req,) = [e for e in ctl.events if e["action"] == "scale_out"]
        (join,) = [e for e in ctl.events if e["action"] == "join"]
        assert join["t"] == req["t"] + 2.5
        trace = cluster.nodes[join["node"]].trace
        assert isinstance(trace, StraggleSpeed)
        # half speed inside the warm-up window, full speed after
        assert trace.windows == [(join["t"], join["t"] + 3.0, 0.5)]
        assert trace.base.rate(join["t"]) == pytest.approx(4.0)

    def test_drain_waits_for_inflight_work_then_retires(self):
        cluster = SimCluster(2, wave_batching=True, default_rate=1.0)
        # node 0 shows a completed busy delta at the first poll; node 1
        # looks idle (its interval is still open) but holds 5s of work,
        # so the drain lands exactly on the node with in-flight work
        cluster.submit(0, 0.5)
        cluster.submit(1, 5.0)
        ctl = AutoscaleController(
            cluster, ScriptedPolicy([-1] + [0] * 100),
            poll_interval=1.0, min_nodes=1, max_nodes=2)
        ctl.start()
        cluster.run(until=20.0)
        drain = next(e for e in ctl.events if e["action"] == "drain")
        retire = next(e for e in ctl.events if e["action"] == "retire")
        assert drain["node"] == retire["node"] == 1
        # retirement happened at the first poll after the work finished
        # (t=5), never before — no in-flight work was lost
        assert retire["t"] >= 5.0
        assert retire["tasks_requeued"] == 0
        assert not cluster.nodes[retire["node"]].alive

    def test_idlest_node_is_drained(self):
        cluster = SimCluster(3, wave_batching=True, default_rate=8.0)
        # nodes 0 and 2 are busy through the poll window that precedes
        # the drain decision at t=2; node 1 stays idle and must be the
        # one drained (idleness is judged on the last window's delta)
        cluster.submit(0, 16.0)
        cluster.submit(2, 16.0)
        ctl = AutoscaleController(
            cluster, ScriptedPolicy([0, -1] + [0] * 50),
            poll_interval=1.0, min_nodes=1, max_nodes=3)
        ctl.start()
        cluster.run(until=30.0)
        drain = next(e for e in ctl.events if e["action"] == "drain")
        assert drain["node"] == 1

    def test_controller_validates_its_knobs(self):
        cluster = SimCluster(2)
        policy = TargetUtilizationPolicy()
        with pytest.raises(SimulationError):
            AutoscaleController(cluster, policy, poll_interval=0.0,
                                min_nodes=1, max_nodes=2)
        with pytest.raises(SimulationError):
            AutoscaleController(cluster, policy, poll_interval=1.0,
                                min_nodes=3, max_nodes=2)
        with pytest.raises(SimulationError):
            AutoscaleController(cluster, policy, poll_interval=1.0,
                                min_nodes=3, max_nodes=4)  # starts below
        with pytest.raises(SimulationError):
            AutoscaleController(cluster, policy, poll_interval=1.0,
                                min_nodes=1, max_nodes=2,
                                warmup_factor=0.0)


def test_node_seconds_bills_from_request_to_retirement():
    events = [
        {"t": 2.0, "action": "scale_out", "node": None, "nodes": 2},
        {"t": 3.0, "action": "join", "node": 2, "nodes": 3},
        {"t": 6.0, "action": "drain", "node": 0, "nodes": 2},
        {"t": 7.0, "action": "retire", "node": 0, "nodes": 2},
    ]
    # 2 nodes * 10s, + the joiner billed from its request (8s), - the
    # retiree's unused tail (3s); the join row itself is not billable
    assert node_seconds(events, 2, 10.0) == pytest.approx(20.0 + 8.0 - 3.0)
    assert node_seconds([], 4, 10.0) == pytest.approx(40.0)


# ---------------------------------------------------------------------------
# spec plumbing
# ---------------------------------------------------------------------------

class TestAutoscaleSpec:
    def test_round_trips_including_inf_thresholds(self):
        a = AutoscaleSpec(min_nodes=2, max_nodes=6, max_shed_rate=0.0)
        assert AutoscaleSpec.from_dict(a.to_dict()) == a
        assert a.to_dict()["max_p99_wait"] == math.inf

    def test_service_spec_round_trips_with_and_without(self):
        base = build("flash_crowd")
        assert base.autoscale is not None
        again = ServiceSpec.from_dict(base.to_dict())
        assert again == base and again.autoscale == base.autoscale
        off = base.replace(autoscale=None)
        assert ServiceSpec.from_dict(off.to_dict()).autoscale is None

    def test_cluster_must_start_inside_the_band(self):
        with pytest.raises(ValueError):
            build("flash_crowd", min_nodes=3).replace(
                cluster=ClusterSpec(num_nodes=2))

    def test_jobs_must_split_over_the_widest_fleet(self):
        with pytest.raises(ValueError):
            ServiceSpec(
                name="bad",
                tenants=(TenantSpec(name="a", nx=4),),
                cluster=ClusterSpec(num_nodes=2),
                autoscale=AutoscaleSpec(min_nodes=2, max_nodes=8))

    def test_bad_knobs_rejected(self):
        with pytest.raises(ValueError):
            AutoscaleSpec(policy="nonsense")
        with pytest.raises(ValueError):
            AutoscaleSpec(min_nodes=0)
        with pytest.raises(ValueError):
            AutoscaleSpec(poll_interval=0.0)
        with pytest.raises(ValueError):
            AutoscaleSpec(warmup_factor=1.5)


# ---------------------------------------------------------------------------
# end to end: the closed loop over a real service run
# ---------------------------------------------------------------------------

def _autoscaled_spec(rate=60000.0, seed=0, horizon=1.5e-3):
    """A tiny flash-crowd-shaped spec that provokes both directions."""
    return ServiceSpec(
        name="autoscale-e2e",
        tenants=(TenantSpec(name="a", nx=16, steps=2),
                 TenantSpec(name="b", weight=2.0, nx=16, steps=2)),
        cluster=ClusterSpec(num_nodes=2),
        arrival=ArrivalSpec(process="bursty", rate=rate, seed=seed,
                            burst_on=4e-4, burst_off=8e-4),
        horizon=horizon, max_queue_depth=8, max_concurrent=4,
        autoscale=AutoscaleSpec(
            min_nodes=1, max_nodes=4, poll_interval=5e-5,
            cooldown=1e-4, provision_delay=1e-4, warmup=1e-4,
            warmup_factor=0.5, scale_out_utilization=0.8,
            scale_in_utilization=0.3, max_shed_rate=0.0,
            breach_polls=2, low_polls=3))


class TestClosedLoopEndToEnd:
    def test_flash_crowd_scales_out_and_back(self):
        spec = build("flash_crowd")
        rec = run_scenario(spec)
        actions = [e["action"] for e in rec.scale_events]
        assert "scale_out" in actions and "join" in actions
        assert "drain" in actions and "retire" in actions
        fleets = [e["nodes"] for e in rec.scale_events]
        assert max(fleets) > spec.autoscale.min_nodes
        assert max(fleets) <= spec.autoscale.max_nodes
        # drained back to the floor once the crowd passed
        assert fleets[-1] == spec.autoscale.min_nodes
        # joiners really joined: retired ids' busy totals stay indexed
        assert len(rec.busy_total) == max(
            e["node"] for e in rec.scale_events if e["node"] is not None) + 1

    def test_no_admitted_job_is_lost_to_scale_in(self):
        # long quiet tail: every admitted job must complete even
        # though the whole surge fleet drains away behind them
        spec = build("flash_crowd", horizon=2.4e-2)
        rec = run_scenario(spec)
        assert any(e["action"] == "retire" for e in rec.scale_events)
        s = summarize_record(rec)
        assert s["in_flight"] == 0
        assert s["completed"] == s["admitted"]

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**16),
           rate=st.sampled_from([3e4, 6e4, 1.2e5]))
    def test_seeded_runs_bit_identical(self, seed, rate):
        spec = _autoscaled_spec(rate=rate, seed=seed)
        a, _ = run_service_detailed(spec)
        b, _ = run_service_detailed(spec)
        assert a.to_dict() == b.to_dict()

    def test_sweep_parity_serial_vs_processes(self):
        specs = [_autoscaled_spec(seed=s) for s in (0, 1)]
        serial = run_sweep(specs, serial=True)
        parallel = run_sweep(specs, serial=False, max_workers=2)
        assert [r.to_dict() for r in serial] == \
            [r.to_dict() for r in parallel]

    @pytest.mark.parametrize("wave_batching", [True, False])
    def test_noop_policy_is_bit_identical_to_disabled(self, wave_batching):
        """A policy that can never fire must leave the record untouched
        — polls, busy-time flushes and pump-cut clamps included."""
        base = build("flash_crowd")
        noop = AutoscaleSpec(
            min_nodes=2, max_nodes=8,
            scale_out_utilization=math.inf, scale_in_utilization=-1.0)
        off, _ = run_service_detailed(base.replace(autoscale=None),
                                      wave_batching=wave_batching)
        on, _ = run_service_detailed(base.replace(autoscale=noop),
                                     wave_batching=wave_batching)
        assert on.scale_events == []
        d_off, d_on = off.to_dict(), on.to_dict()
        d_off.pop("spec"), d_on.pop("spec")  # specs differ by design
        assert d_off == d_on

    def test_waves_on_off_bit_identical_with_autoscaling(self):
        spec = _autoscaled_spec()
        on, _ = run_service_detailed(spec, wave_batching=True)
        off, _ = run_service_detailed(spec, wave_batching=False)
        assert on.to_dict() == off.to_dict()

    def test_scale_events_render_as_a_table(self):
        rec = run_scenario(build("flash_crowd"))
        text = format_scale_events(rec.scale_events)
        assert "scale_out" in text and "retire" in text
        assert len(text.splitlines()) == len(rec.scale_events) + 3
