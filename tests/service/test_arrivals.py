"""Determinism and shape of the seeded arrival traces."""

import numpy as np
import pytest

from repro.service import (ArrivalSpec, TenantSpec, generate_arrival_arrays,
                           generate_arrivals)
from repro.service.arrivals import (Arrival, _poisson_times,
                                    _poisson_times_np, _tenant_times)

TENANTS = (TenantSpec(name="a"), TenantSpec(name="b", weight=3.0))


class TestDeterminism:
    @pytest.mark.parametrize("process", ["poisson", "bursty", "diurnal"])
    def test_same_spec_same_trace(self, process):
        spec = ArrivalSpec(process=process, rate=5e4, seed=11)
        first = generate_arrivals(spec, TENANTS, 2e-3)
        second = generate_arrivals(spec, TENANTS, 2e-3)
        assert first == second
        assert len(first) > 0

    def test_seed_changes_trace(self):
        a = generate_arrivals(ArrivalSpec(rate=5e4, seed=0), TENANTS, 2e-3)
        b = generate_arrivals(ArrivalSpec(rate=5e4, seed=1), TENANTS, 2e-3)
        assert a != b

    def test_streams_are_per_tenant_independent(self):
        """Reweighting tenant b never perturbs tenant a's stream times
        beyond the rate split — with the same per-tenant rate, a's
        arrivals are identical whatever else is in the tenant list."""
        spec = ArrivalSpec(rate=4e4, seed=5)
        solo = generate_arrivals(spec, (TenantSpec(name="a"),), 2e-3)
        # aggregate doubled, two equal tenants -> tenant a sees the
        # same 4e4/2 * 2 = 4e4... rather: give a the same share
        pair = generate_arrivals(
            ArrivalSpec(rate=8e4, seed=5),
            (TenantSpec(name="a"), TenantSpec(name="x")), 2e-3)
        assert ([x.time for x in solo]
                == [x.time for x in pair if x.tenant == 0])


class TestShape:
    def test_sorted_by_time(self):
        trace = generate_arrivals(ArrivalSpec(rate=1e5, seed=2),
                                  TENANTS, 1e-3)
        times = [a.time for a in trace]
        assert times == sorted(times)
        assert all(0.0 <= t < 1e-3 for t in times)

    def test_weights_split_the_load(self):
        trace = generate_arrivals(ArrivalSpec(rate=4e5, seed=3),
                                  TENANTS, 5e-3)
        counts = [sum(1 for a in trace if a.tenant == i) for i in (0, 1)]
        # b has 3x a's weight; Poisson noise stays well inside 2x-4x
        assert 2.0 < counts[1] / counts[0] < 4.0

    def test_zero_rate_empty_trace(self):
        assert generate_arrivals(ArrivalSpec(rate=0.0), TENANTS, 1e-3) == []

    def test_bursty_respects_off_windows(self):
        spec = ArrivalSpec(process="bursty", rate=1e5, seed=4,
                           burst_on=1e-4, burst_off=4e-4)
        trace = generate_arrivals(spec, TENANTS, 5e-3)
        assert trace
        cycle = spec.burst_on + spec.burst_off
        assert all((a.time % cycle) < spec.burst_on for a in trace)

    def test_bursty_average_rate_matches_nominal(self):
        spec = ArrivalSpec(process="bursty", rate=2e5, seed=6,
                           burst_on=1e-4, burst_off=4e-4)
        trace = generate_arrivals(spec, TENANTS, 2e-2)
        measured = len(trace) / 2e-2
        assert measured == pytest.approx(2e5, rel=0.15)

    def test_diurnal_modulates_intensity(self):
        spec = ArrivalSpec(process="diurnal", rate=4e5, seed=8,
                           period=2e-3, amplitude=0.9)
        trace = generate_arrivals(spec, TENANTS, 2e-3)
        # first half-period rides the sine peak, second the trough
        first = sum(1 for a in trace if a.time < 1e-3)
        second = len(trace) - first
        assert first > 2 * second

    def test_per_tenant_indices_are_sequential(self):
        trace = generate_arrivals(ArrivalSpec(rate=1e5, seed=9),
                                  TENANTS, 1e-3)
        for tenant in (0, 1):
            ks = [a.index for a in trace if a.tenant == tenant]
            assert ks == list(range(len(ks)))


def _reference_trace(spec, tenants, horizon):
    """The pre-vectorization construction: scalar per-tenant loops,
    then a plain (time, tenant, index) sort over Arrival records."""
    total = sum(t.weight for t in tenants)
    out = []
    for idx, tenant in enumerate(tenants):
        rng = np.random.default_rng([spec.seed, idx])
        rate = spec.rate * tenant.weight / total
        for k, t in enumerate(_tenant_times(spec, rate, horizon, rng)):
            out.append(Arrival(t, idx, k))
    out.sort(key=lambda a: (a.time, a.tenant, a.index))
    return out


class TestVectorizationParity:
    """The block-drawn / lexsorted fast path must be bit-identical to
    the scalar reference — same generator streams, same float64 sums,
    same tie-break order."""

    @pytest.mark.parametrize("seed", [0, 1, 7, 42, 1234])
    @pytest.mark.parametrize("rate,horizon", [(2e4, 5e-3), (1.5e5, 2e-3),
                                              (1e6, 5e-4), (37.0, 1e-2)])
    def test_poisson_times_bit_identical(self, seed, rate, horizon):
        scalar = _poisson_times(np.random.default_rng([seed, 0]),
                                rate, 0.0, horizon)
        vector = _poisson_times_np(np.random.default_rng([seed, 0]),
                                   rate, horizon)
        assert vector.tolist() == scalar

    @pytest.mark.parametrize("process", ["poisson", "bursty", "diurnal"])
    @pytest.mark.parametrize("seed", [0, 3, 11])
    def test_arrays_match_reference_trace(self, process, seed):
        spec = ArrivalSpec(process=process, rate=8e4, seed=seed)
        ref = _reference_trace(spec, TENANTS, 2e-3)
        times, tens, idxs = generate_arrival_arrays(spec, TENANTS, 2e-3)
        assert times.tolist() == [a.time for a in ref]
        assert tens.tolist() == [a.tenant for a in ref]
        assert idxs.tolist() == [a.index for a in ref]
        assert generate_arrivals(spec, TENANTS, 2e-3) == ref

    def test_empty_arrays_shape(self):
        times, tens, idxs = generate_arrival_arrays(
            ArrivalSpec(rate=0.0), TENANTS, 1e-3)
        assert (len(times), len(tens), len(idxs)) == (0, 0, 0)
        assert times.dtype == np.float64
        assert tens.dtype == np.int64 and idxs.dtype == np.int64
