"""The service fast path: wave batching + arrival pump parity.

``run_service`` now runs with wave batching on by default — sweeps go
through ``submit_group``/``send_group`` and the arrival trace through
the manager's chunked pump.  The contract is *bit-identical*
observables: every record field (the full ``service_events`` stream,
busy totals, makespan) must equal the forced-off per-event run on
every scenario, every queue backend, and across mid-horizon cuts.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments import ClusterSpec, build
from repro.service import (ArrivalSpec, ServiceSpec, TenantSpec,
                           run_service, run_service_detailed)


@pytest.mark.parametrize("name", ["service_poisson", "service_bursty",
                                  "service_overload"])
def test_registry_scenarios_waves_on_off_bit_identical(name):
    spec = build(name)
    on = run_service(spec, wave_batching=True)
    off = run_service(spec, wave_batching=False)
    assert list(on.service_events) == list(off.service_events)
    assert on.to_dict() == off.to_dict()


def test_fast_path_actually_reduces_events():
    spec = build("service_overload")
    _, cl_on = run_service_detailed(spec, wave_batching=True)
    _, cl_off = run_service_detailed(spec, wave_batching=False)
    assert cl_on.sim.events_processed < cl_off.sim.events_processed / 2


def _small_spec(rate, seed, depth, concurrent, tenants, horizon):
    mix = tuple(
        TenantSpec(name=f"t{i}", weight=1.0 + (i % 2), nx=16, steps=2)
        for i in range(tenants))
    return ServiceSpec(
        name="hyp", tenants=mix, cluster=ClusterSpec(num_nodes=2),
        arrival=ArrivalSpec(process="poisson", rate=rate, seed=seed),
        horizon=horizon, max_queue_depth=depth,
        max_concurrent=concurrent)


class TestMultiTenantInterleaving:
    @settings(max_examples=25, deadline=None)
    @given(rate=st.sampled_from([2e4, 1e5, 4e5]),
           seed=st.integers(min_value=0, max_value=2**16),
           depth=st.integers(min_value=1, max_value=8),
           concurrent=st.integers(min_value=1, max_value=6),
           tenants=st.integers(min_value=1, max_value=4))
    def test_interleaved_dags_bit_identical(self, rate, seed, depth,
                                            concurrent, tenants):
        """Randomized admission pressure: interleaved multi-tenant
        step-DAGs must be invisible to the wave fast path."""
        spec = _small_spec(rate, seed, depth, concurrent, tenants, 5e-4)
        on = run_service(spec, wave_batching=True)
        off = run_service(spec, wave_batching=False)
        assert on.to_dict() == off.to_dict()


class TestMidHorizonCut:
    def test_cut_and_resume_matches_one_shot(self):
        """Stopping the cluster mid-horizon (materializing every
        in-flight group) and resuming must not perturb anything."""
        from repro.amt.cluster import ConstantSpeed, SimCluster
        from repro.experiments.runner import cached_operator
        from repro.service.arrivals import generate_arrivals
        from repro.service.manager import JobManager

        # cost model pinned to flat: the hand-rolled JobManager below
        # prices with the FLAT default, so run_service must too even
        # under a REPRO_COST_MODEL override
        spec = build("service_overload").replace(cost_model="flat")

        def run(cut):
            flops = {}
            for i, tenant in enumerate(spec.tenants):
                op = cached_operator(tenant.nx, tenant.nx,
                                     tenant.eps_factor,
                                     spec.kernel_backend)
                flops[i] = op.flops_per_dp()
            speeds = (spec.cluster.build_speeds(default_rate=1e9)
                      or [ConstantSpeed(1e9)] * spec.cluster.num_nodes)
            cluster = SimCluster(
                spec.cluster.num_nodes,
                cores_per_node=spec.cluster.cores_per_node,
                speeds=speeds,
                network=spec.cluster.build_network(),
                wave_batching=True)
            manager = JobManager(cluster, spec, flops)
            manager.feed(generate_arrivals(spec.arrival, spec.tenants,
                                           spec.horizon))
            if cut is not None:
                cluster.run(until=cut)
            cluster.run(until=spec.horizon)
            return (list(manager.events),
                    [float(cluster.busy_time(n))
                     for n in range(spec.cluster.num_nodes)])

        one_shot = run(None)
        composite = run(spec.horizon * 0.37)
        assert composite == one_shot
        off = run_service(spec, wave_batching=False)
        assert one_shot[0] == list(off.service_events)


class TestQueueBackendPromotion:
    """REPRO_DES_QUEUE regression: heap, bucket, and auto (heap that
    promotes itself past 4096 live events) must produce bit-identical
    records, and auto must actually promote on a large forced-off
    trace (every arrival pre-scheduled -> thousands of live events)."""

    #: rate/horizon chosen so the forced-off run pre-schedules > 4096
    #: arrival events (the auto promotion threshold)
    SPEC = dict(rate=5e6, horizon=2e-3)

    def _run(self, queue, monkeypatch):
        monkeypatch.setenv("REPRO_DES_QUEUE", queue)
        spec = build("service_overload", **self.SPEC)
        rec, cluster = run_service_detailed(spec, wave_batching=False)
        return rec, cluster

    def test_heap_bucket_auto_bit_identical(self, monkeypatch):
        records = {}
        kinds = {}
        for queue in ("heap", "bucket", "auto"):
            rec, cluster = self._run(queue, monkeypatch)
            records[queue] = rec.to_dict()
            kinds[queue] = cluster.sim._queue.kind
        assert records["heap"] == records["bucket"] == records["auto"]
        assert kinds["heap"] == "heap"
        assert kinds["bucket"] == "bucket"
        # auto must have promoted: the pre-scheduled arrival backlog
        # blows straight through the 4096-live-event threshold
        assert kinds["auto"] == "bucket"

    def test_fast_path_keeps_auto_on_the_heap(self, monkeypatch):
        """The pump schedules one arrival event at a time, so the fast
        path's live-event count stays tiny — no promotion needed."""
        monkeypatch.setenv("REPRO_DES_QUEUE", "auto")
        spec = build("service_overload", **self.SPEC)
        rec_fast, cluster = run_service_detailed(spec, wave_batching=True)
        assert cluster.sim._queue.kind == "heap"
        rec_off, _ = self._run("auto", monkeypatch)
        assert rec_fast.to_dict() == rec_off.to_dict()


def test_wave_env_default_controls_service_cluster(monkeypatch):
    """wave_batching=None defers to REPRO_DES_WAVE."""
    spec = build("service_poisson", horizon=5e-4)
    monkeypatch.setenv("REPRO_DES_WAVE", "0")
    _, cluster = run_service_detailed(spec)
    assert cluster.wave_batching is False
    monkeypatch.delenv("REPRO_DES_WAVE")
    _, cluster = run_service_detailed(spec)
    assert cluster.wave_batching is True
