"""The columnar :class:`EventLog` and its list-of-dicts contract.

The manager appends typed rows; everything downstream (persistence,
summaries, parity asserts) must see exactly the dicts the historical
per-dict path produced.
"""

import json

import pytest

from repro.experiments import build
from repro.service import EventLog, run_service
from repro.service.telemetry import summarize_service


def _sample() -> EventLog:
    log = EventLog(["a", "b"])
    log.arrival(0.0, 0, 0)
    log.arrival(1.5, 1, 0)
    log.shed(1.5, 1, 0, 4)
    log.start(2.0, 0, 0, 2.0)
    log.finish(5.0, 0, 0, 2.0, 5.0, 3.0)
    return log


EXPECTED = [
    {"kind": "arrival", "t": 0.0, "tenant": "a", "job": 0},
    {"kind": "arrival", "t": 1.5, "tenant": "b", "job": 0},
    {"kind": "shed", "t": 1.5, "tenant": "b", "job": 0, "depth": 4},
    {"kind": "start", "t": 2.0, "tenant": "a", "job": 0, "wait": 2.0},
    {"kind": "finish", "t": 5.0, "tenant": "a", "job": 0, "wait": 2.0,
     "makespan": 5.0, "service": 3.0},
]


class TestView:
    def test_len_and_iteration(self):
        log = _sample()
        assert len(log) == 5
        assert list(log) == EXPECTED

    def test_indexing(self):
        log = _sample()
        assert log[0] == EXPECTED[0]
        assert log[4] == EXPECTED[4]
        assert log[-1] == EXPECTED[-1]
        assert log[-5] == EXPECTED[0]

    def test_indexing_out_of_range(self):
        log = _sample()
        with pytest.raises(IndexError):
            log[5]
        with pytest.raises(IndexError):
            log[-6]

    def test_slicing_materializes_dicts(self):
        log = _sample()
        assert log[1:3] == EXPECTED[1:3]
        assert log[::2] == EXPECTED[::2]
        assert log[:] == EXPECTED


class TestEquality:
    def test_eq_eventlog(self):
        assert _sample() == _sample()

    def test_eq_list_of_dicts(self):
        log = _sample()
        assert log == EXPECTED
        assert not (log == EXPECTED[:-1])
        assert not (log == [])

    def test_empty(self):
        log = EventLog(["a"])
        assert len(log) == 0
        assert list(log) == []
        assert log == []
        assert log == EventLog(["a"])

    def test_mismatched_rows_not_equal(self):
        log, other = _sample(), _sample()
        other.arrival(9.0, 0, 1)
        assert not (log == other)

    def test_eq_unrelated_type_falls_through(self):
        assert _sample().__eq__(42) is NotImplemented
        assert _sample() != 42


class TestDownstream:
    def test_summarize_columnar_matches_dicts(self):
        log = _sample()
        assert (summarize_service(log, 10.0)
                == summarize_service(list(log), 10.0))

    def test_record_json_round_trip(self):
        rec = run_service(build("service_poisson", horizon=5e-4))
        assert type(rec.service_events) is EventLog
        d = rec.to_dict()
        assert type(d["service_events"]) is list
        round_tripped = json.loads(json.dumps(d))
        assert rec.service_events == round_tripped["service_events"]
        assert (summarize_service(rec.service_events, 5e-4)
                == summarize_service(round_tripped["service_events"], 5e-4))
