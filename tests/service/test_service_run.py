"""End-to-end service runs: accounting, determinism, overload, parity."""

import pytest

from repro.experiments import (SCHEMA, ClusterSpec, RunRecord, build,
                               run_scenario, run_sweep)
from repro.service import (ArrivalSpec, ServiceSpec, TenantSpec,
                           run_service, summarize_record,
                           summarize_service)


def _spec(**overrides):
    base = dict(
        name="svc-test",
        tenants=(TenantSpec(name="a", nx=32, steps=2),
                 TenantSpec(name="b", nx=32, steps=2, weight=2.0)),
        cluster=ClusterSpec(num_nodes=4),
        arrival=ArrivalSpec(rate=2e4, seed=0),
        horizon=2e-3)
    base.update(overrides)
    return ServiceSpec(**base)


class TestZeroArrivals:
    def test_empty_trace_clean_run(self):
        """No arrivals at all: the run must still land the clock on
        the horizon (the drained-queue clock contract) with an empty
        event stream and all-zero busy time."""
        rec = run_service(_spec(arrival=ArrivalSpec(rate=0.0)))
        assert rec.makespan == 2e-3
        assert rec.service_events == []
        assert rec.busy_total == [0.0] * 4
        summary = summarize_record(rec)
        assert summary["offered"] == 0
        assert summary["goodput"] == 0.0
        assert summary["fairness"] == 1.0


class TestAccounting:
    @pytest.fixture(scope="class")
    def overload(self):
        rec = run_service(_spec(arrival=ArrivalSpec(rate=2e5, seed=1),
                                max_queue_depth=4))
        return rec, summarize_record(rec)

    def test_offered_splits_into_shed_plus_admitted(self, overload):
        _, s = overload
        assert s["offered"] == s["shed"] + s["admitted"]
        assert s["admitted"] == s["completed"] + s["in_flight"]
        assert s["shed"] > 0

    def test_per_tenant_accounting_sums_to_totals(self, overload):
        _, s = overload
        assert sum(t["offered"] for t in s["tenants"].values()) \
            == s["offered"]
        assert sum(t["shed"] for t in s["tenants"].values()) == s["shed"]
        assert sum(t["completed"] for t in s["tenants"].values()) \
            == s["completed"]

    def test_events_are_time_ordered(self, overload):
        rec, _ = overload
        times = [e["t"] for e in rec.service_events]
        assert times == sorted(times)

    def test_every_start_precedes_its_finish(self, overload):
        rec, _ = overload
        started = set()
        for e in rec.service_events:
            key = (e["tenant"], e["job"])
            if e["kind"] == "start":
                started.add(key)
            elif e["kind"] == "finish":
                assert key in started
                assert e["makespan"] >= e["wait"] >= 0.0
                assert e["service"] > 0.0


class TestDeterminism:
    def test_seeded_bursty_repeats_bit_identical(self):
        spec = _spec(arrival=ArrivalSpec(process="bursty", rate=4e4,
                                         seed=13, burst_on=2e-4,
                                         burst_off=6e-4))
        first = run_service(spec).to_dict()
        second = run_service(spec).to_dict()
        assert first == second

    def test_record_round_trips_through_json(self):
        rec = run_service(_spec())
        clone = RunRecord.from_json(rec.to_json())
        assert clone == rec
        assert clone.service_events
        assert summarize_record(clone) == summarize_record(rec)


class TestOverloadBehavior:
    def test_goodput_saturates_below_offered(self):
        """Doubling an already-saturating load must not double goodput
        — the shed count absorbs the excess instead."""
        light = summarize_record(run_service(_spec(
            arrival=ArrivalSpec(rate=2e4, seed=2))))
        heavy = summarize_record(run_service(_spec(
            arrival=ArrivalSpec(rate=3e5, seed=2), max_queue_depth=4)))
        heavier = summarize_record(run_service(_spec(
            arrival=ArrivalSpec(rate=6e5, seed=2), max_queue_depth=4)))
        assert light["shed"] == 0
        assert heavy["goodput"] > light["goodput"]
        assert heavy["goodput"] < 0.6 * heavy["offered_rate"]
        assert heavier["goodput"] < 1.2 * heavy["goodput"]
        assert heavier["shed"] > heavy["shed"]

    def test_bounded_queue_bounds_the_wait(self):
        """With depth-D queues an admitted job waits at most roughly
        D * (its queue's drain time), not the whole horizon."""
        s = summarize_record(run_service(_spec(
            arrival=ArrivalSpec(rate=6e5, seed=3), max_queue_depth=4,
            horizon=4e-3)))
        assert s["shed"] > 0
        assert s["p99_wait"] < 0.25 * 4e-3


class TestSweepParity:
    def test_parallel_sweep_matches_serial(self):
        specs = [build("service_poisson", horizon=1e-3, seed=s)
                 for s in (0, 1, 2, 3)]
        serial = run_sweep(specs, serial=True)
        parallel = run_sweep(specs, serial=False, max_workers=2)
        assert [r.to_dict() for r in parallel] \
            == [r.to_dict() for r in serial]

    def test_mixed_sweep_dispatches_by_solver(self):
        specs = [build("service_poisson", horizon=1e-3),
                 build("fig14_load_balance", steps=2)]
        records = run_sweep(specs, serial=False, max_workers=2)
        assert [r.solver for r in records] == ["service", "distributed"]


class TestRegistryScenarios:
    def test_registered_names_build_and_run(self):
        for name in ("service_poisson", "service_bursty",
                     "service_overload"):
            spec = build(name, horizon=5e-4)
            assert spec.solver == "service"
            rec = run_scenario(spec)
            assert rec.scenario == name
            assert rec.solver == "service"

    def test_operator_sharing_across_tenants(self):
        from repro.experiments import clear_operator_cache, \
            operator_cache_info
        clear_operator_cache()
        run_service(build("service_poisson", horizon=2e-4))
        # alpha+beta share one 32x32 assembly; gamma builds the 48x48
        assert operator_cache_info().currsize == 2

    def test_overload_scenario_sheds_and_saturates(self):
        rec = run_scenario(build("service_overload"))
        s = summarize_record(rec)
        assert s["shed"] > 0
        assert s["goodput"] < 0.5 * s["offered_rate"]
        # admitted jobs' tail wait is bounded by the finite queues
        assert s["p99_wait"] < 0.5 * rec.spec["horizon"]

    def test_schema_is_v7(self):
        assert SCHEMA == "repro.experiments/v7"
