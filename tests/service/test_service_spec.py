"""Validation and round-trip tests for the service spec layer."""

import pytest

from repro.experiments import ClusterSpec
from repro.experiments.spec import ChurnEvent, FaultSpec
from repro.service import ArrivalSpec, ServiceSpec, TenantSpec


def _spec(**overrides):
    base = dict(
        name="svc",
        tenants=(TenantSpec(name="a"), TenantSpec(name="b", weight=2.0)),
        cluster=ClusterSpec(num_nodes=4),
        arrival=ArrivalSpec(rate=1000.0, seed=7),
        horizon=1e-3)
    base.update(overrides)
    return ServiceSpec(**base)


class TestArrivalSpec:
    def test_defaults_validate(self):
        spec = ArrivalSpec()
        assert spec.process == "poisson"

    def test_unknown_process_rejected(self):
        with pytest.raises(ValueError, match="arrival process"):
            ArrivalSpec(process="fractal")

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError, match="rate"):
            ArrivalSpec(rate=-1.0)

    def test_amplitude_bounds(self):
        with pytest.raises(ValueError, match="amplitude"):
            ArrivalSpec(process="diurnal", amplitude=1.0)

    def test_round_trip(self):
        spec = ArrivalSpec(process="bursty", rate=5e4, seed=3,
                           burst_on=2e-4, burst_off=1e-3)
        assert ArrivalSpec.from_dict(spec.to_dict()) == spec


class TestTenantSpec:
    def test_empty_name_rejected(self):
        with pytest.raises(ValueError, match="name"):
            TenantSpec(name="")

    def test_nonpositive_weight_rejected(self):
        with pytest.raises(ValueError, match="weight"):
            TenantSpec(name="t", weight=0.0)

    def test_round_trip(self):
        spec = TenantSpec(name="t", weight=1.5, nx=48, steps=3,
                          eps_factor=4.0)
        assert TenantSpec.from_dict(spec.to_dict()) == spec


class TestServiceSpec:
    def test_solver_marker(self):
        spec = _spec()
        assert spec.solver == "service"
        assert spec.to_dict()["solver"] == "service"

    def test_round_trip_exact(self):
        spec = _spec()
        assert ServiceSpec.from_dict(spec.to_dict()) == spec

    def test_from_dict_rejects_solver_specs(self):
        with pytest.raises(ValueError, match="not a service spec"):
            ServiceSpec.from_dict({"solver": "distributed", "name": "x",
                                   "tenants": []})

    def test_duplicate_tenant_names_rejected(self):
        with pytest.raises(ValueError, match="unique"):
            _spec(tenants=(TenantSpec(name="a"), TenantSpec(name="a")))

    def test_no_tenants_rejected(self):
        with pytest.raises(ValueError, match="tenant"):
            _spec(tenants=())

    def test_faulty_cluster_rejected(self):
        faults = FaultSpec(events=(ChurnEvent("fail", 1.0, node=0),))
        with pytest.raises(ValueError, match="fault-free"):
            _spec(cluster=ClusterSpec(num_nodes=4, faults=faults))

    def test_mesh_smaller_than_cluster_rejected(self):
        with pytest.raises(ValueError, match="block-split"):
            _spec(tenants=(TenantSpec(name="tiny", nx=2),),
                  cluster=ClusterSpec(num_nodes=4))

    def test_tenant_rate_splits_by_weight(self):
        spec = _spec()
        assert spec.tenant_rate(0) == pytest.approx(1000.0 / 3)
        assert spec.tenant_rate(1) == pytest.approx(2000.0 / 3)

    def test_replace_revalidates(self):
        with pytest.raises(ValueError, match="horizon"):
            _spec().replace(horizon=0.0)
