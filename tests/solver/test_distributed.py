"""Tests for the distributed solver on the simulated cluster."""

import numpy as np
import pytest

from repro.amt.cluster import ConstantSpeed, Network
from repro.core.balancer import LoadBalancer
from repro.core.policy import IntervalPolicy
from repro.mesh.grid import UniformGrid
from repro.mesh.subdomain import SubdomainGrid
from repro.partition.geometric import block_partition
from repro.solver.distributed import DistributedSolver
from repro.solver.exact import ManufacturedProblem
from repro.solver.model import NonlocalHeatModel
from repro.solver.serial import SerialSolver


def setup(nx=24, eps_factor=3, sds=4):
    grid = UniformGrid(nx, nx)
    model = NonlocalHeatModel(epsilon=eps_factor * grid.h)
    prob = ManufacturedProblem(model, grid, source_mode="discrete")
    sg = SubdomainGrid(nx, nx, sds, sds)
    return grid, model, prob, sg


class TestNumericalCorrectness:
    @pytest.mark.parametrize("nodes", [1, 2, 4])
    def test_matches_serial(self, nodes):
        grid, model, prob, sg = setup()
        serial = SerialSolver(model, grid, source=prob.source)
        ref = serial.run(prob.initial_condition(), 4)
        parts = block_partition(4, 4, nodes)
        dsol = DistributedSolver(model, grid, sg, parts, num_nodes=nodes,
                                 source=prob.source, dt=serial.dt)
        res = dsol.run(prob.initial_condition(), 4)
        assert np.allclose(res.u, ref.u, atol=1e-12)

    def test_matches_serial_without_overlap(self):
        grid, model, prob, sg = setup()
        serial = SerialSolver(model, grid, source=prob.source)
        ref = serial.run(prob.initial_condition(), 3)
        parts = block_partition(4, 4, 4)
        dsol = DistributedSolver(model, grid, sg, parts, num_nodes=4,
                                 source=prob.source, dt=serial.dt,
                                 overlap=False)
        res = dsol.run(prob.initial_condition(), 3)
        assert np.allclose(res.u, ref.u, atol=1e-12)

    def test_matches_serial_with_balancing_enabled(self):
        grid, model, prob, sg = setup()
        serial = SerialSolver(model, grid, source=prob.source)
        ref = serial.run(prob.initial_condition(), 6)
        speeds = [ConstantSpeed(s) for s in (1e6, 2e6, 3e6, 4e6)]
        dsol = DistributedSolver(model, grid, sg, block_partition(4, 4, 4),
                                 num_nodes=4, speeds=speeds,
                                 source=prob.source, dt=serial.dt,
                                 balancer=LoadBalancer(sg),
                                 policy=IntervalPolicy(2))
        res = dsol.run(prob.initial_condition(), 6)
        assert np.allclose(res.u, ref.u, atol=1e-12)

    def test_error_tracking(self):
        grid, model, prob, sg = setup(nx=16, eps_factor=2)
        dsol = DistributedSolver(model, grid, sg, block_partition(4, 4, 2),
                                 num_nodes=2, source=prob.source)
        res = dsol.run(prob.initial_condition(), 3, exact=prob.exact)
        assert res.total_error < 1e-6
        assert len(res.errors) == 4


class TestScheduleProperties:
    def test_makespan_positive_and_steps_recorded(self):
        grid, model, prob, sg = setup()
        dsol = DistributedSolver(model, grid, sg, block_partition(4, 4, 4),
                                 num_nodes=4, source=prob.source)
        res = dsol.run(prob.initial_condition(), 5)
        assert res.makespan > 0
        assert len(res.step_durations) == 5
        assert sum(res.step_durations) == pytest.approx(res.makespan)

    def test_two_nodes_faster_than_one(self):
        grid, model, prob, sg = setup()
        r1 = DistributedSolver(model, grid, sg, block_partition(4, 4, 1),
                               num_nodes=1, source=prob.source).run(
            prob.initial_condition(), 3)
        r2 = DistributedSolver(model, grid, sg, block_partition(4, 4, 2),
                               num_nodes=2, source=prob.source).run(
            prob.initial_condition(), 3)
        assert r2.makespan < r1.makespan

    def test_speedup_close_to_linear_with_cheap_network(self):
        grid, model, prob, sg = setup(nx=32, sds=8)
        net = Network(latency=1e-9, bandwidth=1e15)
        r1 = DistributedSolver(model, grid, sg, block_partition(8, 8, 1),
                               num_nodes=1, network=net,
                               compute_numerics=False).run(None, 3)
        net2 = Network(latency=1e-9, bandwidth=1e15)
        r4 = DistributedSolver(model, grid, sg, block_partition(8, 8, 4),
                               num_nodes=4, network=net2,
                               compute_numerics=False).run(None, 3)
        speedup = r1.makespan / r4.makespan
        assert speedup == pytest.approx(4.0, rel=0.15)

    def test_overlap_hides_communication(self):
        """With a slow network, Case-1/Case-2 overlap must beat no-overlap."""
        grid, model, prob, sg = setup(nx=32, sds=4)
        slow = dict(latency=2e-4, bandwidth=1e7)
        ro = DistributedSolver(model, grid, sg, block_partition(4, 4, 4),
                               num_nodes=4, network=Network(**slow),
                               compute_numerics=False, overlap=True).run(None, 5)
        rn = DistributedSolver(model, grid, sg, block_partition(4, 4, 4),
                               num_nodes=4, network=Network(**slow),
                               compute_numerics=False, overlap=False).run(None, 5)
        assert ro.makespan < rn.makespan

    def test_ghost_bytes_accounted(self):
        grid, model, prob, sg = setup()
        dsol = DistributedSolver(model, grid, sg, block_partition(4, 4, 4),
                                 num_nodes=4, compute_numerics=False)
        res = dsol.run(None, 2)
        from repro.mesh.decomposition import Decomposition
        decomp = Decomposition(sg, block_partition(4, 4, 4), 4)
        per_step = decomp.total_exchange_bytes(dsol.operator.radius)
        assert res.ghost_bytes == 2 * per_step

    def test_single_node_no_ghost_traffic(self):
        grid, model, prob, sg = setup()
        dsol = DistributedSolver(model, grid, sg, block_partition(4, 4, 1),
                                 num_nodes=1, compute_numerics=False)
        res = dsol.run(None, 3)
        assert res.ghost_bytes == 0

    def test_deterministic_schedule(self):
        grid, model, prob, sg = setup()

        def once():
            dsol = DistributedSolver(model, grid, sg,
                                     block_partition(4, 4, 4), num_nodes=4,
                                     compute_numerics=False)
            res = dsol.run(None, 4)
            return res.makespan, tuple(res.step_durations)

        assert once() == once()


class TestLoadBalancingIntegration:
    def test_heterogeneous_cluster_balances_and_speeds_up(self):
        grid, model, prob, sg = setup(nx=32, sds=4)
        speeds = lambda: [ConstantSpeed(s) for s in (1e6, 1e6, 4e6, 4e6)]
        base = DistributedSolver(model, grid, sg, block_partition(4, 4, 4),
                                 num_nodes=4, speeds=speeds(),
                                 compute_numerics=False).run(None, 10)
        bal = DistributedSolver(model, grid, sg, block_partition(4, 4, 4),
                                num_nodes=4, speeds=speeds(),
                                compute_numerics=False,
                                balancer=LoadBalancer(sg),
                                policy=IntervalPolicy(1)).run(None, 10)
        assert bal.makespan < base.makespan
        assert bal.balance_results  # balancing actually happened
        moved_counts = [b.sds_moved for b in bal.balance_results if b.triggered]
        assert moved_counts and moved_counts[0] > 0

    def test_balancing_converges_no_perpetual_migration(self):
        grid, model, prob, sg = setup(nx=32, sds=4)
        speeds = [ConstantSpeed(s) for s in (1e6, 1e6, 4e6, 4e6)]
        dsol = DistributedSolver(model, grid, sg, block_partition(4, 4, 4),
                                 num_nodes=4, speeds=speeds,
                                 compute_numerics=False,
                                 balancer=LoadBalancer(sg),
                                 policy=IntervalPolicy(1))
        res = dsol.run(None, 10)
        # after the initial redistribution, later steps must not migrate
        late_moves = sum(b.sds_moved for b in res.balance_results[3:])
        assert late_moves == 0

    def test_migration_bytes_charged(self):
        grid, model, prob, sg = setup(nx=32, sds=4)
        speeds = [ConstantSpeed(s) for s in (1e6, 4e6, 1e6, 4e6)]
        dsol = DistributedSolver(model, grid, sg, block_partition(4, 4, 4),
                                 num_nodes=4, speeds=speeds,
                                 compute_numerics=False,
                                 balancer=LoadBalancer(sg),
                                 policy=IntervalPolicy(1))
        res = dsol.run(None, 5)
        if any(b.sds_moved for b in res.balance_results):
            assert res.migration_bytes > 0

    def test_work_factors_shift_load(self):
        """A crack-lightened region finishes faster; balancer gives its
        owner more SDs."""
        grid, model, prob, sg = setup(nx=32, sds=4)
        wf = np.ones(16)
        wf[:8] = 0.3  # bottom half much cheaper (crack region)
        parts = np.repeat([0, 0, 1, 1], 4)  # bottom rows node 0
        dsol = DistributedSolver(model, grid, sg, parts, num_nodes=2,
                                 compute_numerics=False, work_factors=wf,
                                 balancer=LoadBalancer(sg),
                                 policy=IntervalPolicy(1))
        res = dsol.run(None, 6)
        counts = np.bincount(dsol.parts, minlength=2)
        assert counts[0] > 8  # node 0 took on extra SDs


class TestValidation:
    def test_mesh_mismatch(self):
        grid = UniformGrid(16, 16)
        model = NonlocalHeatModel(epsilon=2 * grid.h)
        with pytest.raises(ValueError, match="SD grid covers"):
            DistributedSolver(model, grid, SubdomainGrid(8, 8, 2, 2),
                              np.zeros(4, dtype=int), 1)

    def test_u0_required_with_numerics(self):
        grid, model, prob, sg = setup()
        dsol = DistributedSolver(model, grid, sg, block_partition(4, 4, 1),
                                 num_nodes=1)
        with pytest.raises(ValueError, match="u0 required"):
            dsol.run(None, 1)

    def test_exact_requires_numerics(self):
        grid, model, prob, sg = setup()
        dsol = DistributedSolver(model, grid, sg, block_partition(4, 4, 1),
                                 num_nodes=1, compute_numerics=False)
        with pytest.raises(ValueError, match="requires numerics"):
            dsol.run(None, 1, exact=prob.exact)

    def test_bad_work_factors(self):
        grid, model, prob, sg = setup()
        with pytest.raises(ValueError, match="work_factors"):
            DistributedSolver(model, grid, sg, block_partition(4, 4, 1),
                              num_nodes=1, work_factors=np.ones(3))


class TestSpawnOverhead:
    def test_overhead_slows_run(self):
        grid, model, prob, sg = setup()
        parts = block_partition(4, 4, 1)
        base = DistributedSolver(model, grid, sg, parts, num_nodes=1,
                                 compute_numerics=False).run(None, 2)
        slow = DistributedSolver(model, grid, sg, parts, num_nodes=1,
                                 compute_numerics=False,
                                 spawn_overhead=1e-4).run(None, 2)
        assert slow.makespan > base.makespan

    def test_overhead_caps_speedup_below_linear(self):
        """With a serial spawn component, many-core speedup saturates
        below the core count (Amdahl)."""
        grid, model, prob, sg = setup(nx=32, sds=8)
        parts = block_partition(8, 8, 1)

        def makespan(cores, overhead):
            # cost model pinned: the spawn/compute ratio below is tuned
            # against flat task times (hierarchy-priced tasks run long
            # enough that the spawner always keeps 4 cores fed)
            return DistributedSolver(
                model, grid, sg, parts, num_nodes=1, cores_per_node=cores,
                compute_numerics=False, cost_model="flat",
                spawn_overhead=overhead).run(None, 3).makespan

        ideal = makespan(1, 0.0) / makespan(4, 0.0)
        # spawn ~ a third of one task's compute time (16 DP x 56 flops
        # at 1 GF/s ~ 0.9 us/task): 4 cores drain faster than the
        # spawner feeds them, so the speedup saturates below 4
        real = makespan(1, 3e-7) / makespan(4, 3e-7)
        assert ideal == pytest.approx(4.0, rel=0.05)
        assert real < 0.95 * ideal
        assert real > 1.5

    def test_negative_overhead_rejected(self):
        grid, model, prob, sg = setup()
        with pytest.raises(ValueError, match="spawn_overhead"):
            DistributedSolver(model, grid, sg, block_partition(4, 4, 1),
                              num_nodes=1, spawn_overhead=-1.0)

    def test_numerics_unaffected_by_overhead(self):
        grid, model, prob, sg = setup()
        serial = SerialSolver(model, grid, source=prob.source)
        ref = serial.run(prob.initial_condition(), 3)
        res = DistributedSolver(model, grid, sg, block_partition(4, 4, 4),
                                num_nodes=4, source=prob.source,
                                dt=serial.dt, spawn_overhead=1e-5).run(
            prob.initial_condition(), 3)
        assert np.allclose(res.u, ref.u, atol=1e-12)


class TestFailurePropagation:
    def test_source_exception_surfaces(self):
        """A failing source evaluation (step setup) aborts the run."""
        grid, model, prob, sg = setup()

        class ExplodingSource:
            def __init__(self):
                self.calls = 0

            def __call__(self, t):
                if self.calls >= 1:  # fail from the second step on
                    raise RuntimeError("sensor died")
                self.calls += 1
                return prob.source(t)

        dsol = DistributedSolver(model, grid, sg, block_partition(4, 4, 2),
                                 num_nodes=2, source=ExplodingSource(),
                                 dt=1e-5)
        with pytest.raises(RuntimeError, match="sensor died"):
            dsol.run(prob.initial_condition(), 4)

    def test_action_exception_inside_task(self):
        grid, model, prob, sg = setup()
        dsol = DistributedSolver(model, grid, sg, block_partition(4, 4, 2),
                                 num_nodes=2, source=prob.source, dt=1e-5)
        # sabotage the operator so every SD kernel raises
        dsol.operator.apply_block = None  # type: ignore[assignment]
        with pytest.raises(RuntimeError, match="SD kernel failed"):
            dsol.run(prob.initial_condition(), 1)


class TestDerivedCountersWithoutEvents:
    """Edge case: a run that never balanced (and never saw churn) must
    report clean zero aggregates — the derived properties sum over
    empty event lists."""

    def test_zero_balance_events(self):
        grid, model, prob, sg = setup()
        solver = DistributedSolver(model, grid, sg,
                                   block_partition(4, 4, 2), num_nodes=2,
                                   compute_numerics=False)
        res = solver.run(None, 2)
        assert res.balance_events == []
        assert res.recovery_events == []
        assert res.sds_moved == 0
        assert res.migration_bytes == 0
        assert res.balance_results == []
        assert res.parts_history == []
        # all network traffic is ghost traffic
        assert res.ghost_bytes == solver.cluster.network.bytes_sent

    def test_zero_step_run_has_empty_telemetry(self):
        grid, model, prob, sg = setup()
        solver = DistributedSolver(model, grid, sg,
                                   block_partition(4, 4, 2), num_nodes=2,
                                   compute_numerics=False)
        res = solver.run(None, 0)
        assert res.makespan == 0.0
        assert res.sds_moved == 0 and res.migration_bytes == 0
        assert res.step_durations == [] and res.imbalance_history == []

    def test_record_properties_with_zero_events(self):
        from repro.experiments import RunRecord
        rec = RunRecord()
        assert rec.sds_moved == 0
        assert rec.migration_bytes == 0
        assert rec.recovery_bytes == 0
