"""Kernel-backend suite: registry semantics and backend equivalence.

Every backend must compute the same operator as
:func:`apply_operator_reference` — the scipy-free oracle — across
random masks (including asymmetric ones, which pin the convolution
orientation), radii, block shapes, non-square grids and the 1-D
single-row-mask path.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mesh.grid import UniformGrid
from repro.mesh.stencil import NonlocalStencil, build_stencil
from repro.solver.backends import (AUTO, ENV_VAR, KernelBackend,
                                   apply_operator_reference,
                                   auto_backend_name, backend_names,
                                   get_backend_class, make_backend,
                                   register_backend, requested_backend)
from repro.solver.kernel import NonlocalOperator
from repro.solver.model import NonlocalHeatModel

ALL_BACKENDS = backend_names()


def random_stencil(rng, radius, single_row=False, symmetric=False):
    """A stencil with random non-negative weights (center included —
    backends must not assume the built-stencil zero center)."""
    side = 2 * radius + 1
    shape = (1, side) if single_row else (side, side)
    mask = rng.random(shape)
    if symmetric:
        mask = mask + mask[::-1, ::-1]
    return NonlocalStencil(mask, h=1.0, epsilon=float(max(radius, 1)))


def reference_padded(stencil, scale, padded):
    """Expected padded-block apply, derived from the full reference."""
    r = stencil.radius
    full = apply_operator_reference(stencil, scale, padded)
    return full[r:-r, r:-r] if r > 0 else full


class TestRegistry:
    def test_three_backends_registered(self):
        assert ALL_BACKENDS == ["direct", "fft", "sparse"]

    def test_get_backend_class_roundtrip(self):
        for name in ALL_BACKENDS:
            assert get_backend_class(name).name == name

    def test_unknown_backend_rejected(self):
        with pytest.raises(KeyError, match="unknown kernel backend"):
            get_backend_class("quantum")
        with pytest.raises(ValueError, match="unknown kernel backend"):
            requested_backend("quantum")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_backend("direct")(get_backend_class("direct"))

    def test_auto_is_reserved(self):
        with pytest.raises(ValueError, match="reserved"):
            register_backend(AUTO)(get_backend_class("direct"))

    def test_explicit_name_passes_through(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "sparse")
        # explicit names win over the environment
        assert requested_backend("fft") == "fft"

    def test_env_forces_auto(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "sparse")
        assert requested_backend(AUTO) == "sparse"

    def test_env_unset_leaves_auto(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        assert requested_backend(AUTO) == AUTO

    def test_env_auto_means_no_override(self, monkeypatch):
        """Exporting REPRO_KERNEL_BACKEND=auto must behave like not
        setting it, not error out as an unknown backend."""
        monkeypatch.setenv(ENV_VAR, "auto")
        assert requested_backend(AUTO) == AUTO
        assert requested_backend("fft") == "fft"

    def test_env_with_unknown_backend_rejected(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "quantum")
        with pytest.raises(ValueError, match="REPRO_KERNEL_BACKEND"):
            requested_backend(AUTO)

    def test_auto_heuristic_picks_by_radius(self):
        assert auto_backend_name(1) == "direct"
        assert auto_backend_name(2) == "direct"
        assert auto_backend_name(3) == "fft"
        assert auto_backend_name(8) == "fft"

    def test_make_backend_resolves_auto(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        rng = np.random.default_rng(1)
        small = make_backend(AUTO, random_stencil(rng, 1), 1.0)
        large = make_backend(AUTO, random_stencil(rng, 4), 1.0)
        assert small.name == "direct"
        assert large.name == "fft"
        assert isinstance(small, KernelBackend)


class TestOperatorBackendSelection:
    def make_op(self, **kw):
        grid = UniformGrid(16, 16)
        model = NonlocalHeatModel(epsilon=4 * grid.h)
        return NonlocalOperator(model, grid, **kw)

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_named_backend_used(self, backend):
        assert self.make_op(backend=backend).backend_name == backend

    def test_default_is_auto_heuristic(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        assert self.make_op().backend_name == "fft"  # R = 4

    def test_env_forces_default(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "sparse")
        assert self.make_op().backend_name == "sparse"

    def test_prebuilt_backend_instance_accepted(self):
        op = self.make_op(backend="direct")
        op2 = NonlocalOperator(op.model, op.grid, stencil=op.stencil,
                               backend=op.backend)
        assert op2.backend is op.backend

    def test_foreign_backend_instance_rejected(self):
        op = self.make_op(backend="direct")
        other = self.make_op(backend="direct")
        with pytest.raises(ValueError, match="different stencil"):
            NonlocalOperator(op.model, op.grid, stencil=op.stencil,
                             backend=other.backend)

    def test_backend_with_stale_scale_rejected(self):
        """A backend baked with another model's c*V prefactor must not
        be accepted just because the stencil object is shared."""
        op = self.make_op(backend="direct")
        hotter = NonlocalHeatModel(epsilon=op.model.epsilon,
                                   kappa=2.0 * op.model.kappa)
        with pytest.raises(ValueError, match="scale"):
            NonlocalOperator(hotter, op.grid, stencil=op.stencil,
                             backend=op.backend)


class TestSeededEquivalence:
    """Deterministic sweep over the shapes the solvers actually use."""

    CASES = [
        # (radius, single_row, grid shape)
        (1, False, (9, 9)),
        (2, False, (16, 16)),
        (3, False, (20, 13)),   # non-square
        (4, False, (9, 17)),    # non-square, grid dim == 2R + 1 on y
        (8, False, (40, 40)),   # the paper's eps = 8h mask
        (2, True, (1, 25)),     # 1-D model path
        (4, True, (1, 33)),
    ]

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    @pytest.mark.parametrize("radius,single_row,shape", CASES)
    def test_full_apply_matches_reference(self, backend, radius,
                                          single_row, shape):
        rng = np.random.default_rng(radius * 100 + shape[0])
        stencil = random_stencil(rng, radius, single_row=single_row)
        scale = 1.7
        u = rng.standard_normal(shape)
        expected = apply_operator_reference(stencil, scale, u)
        got = make_backend(backend, stencil, scale).apply_full(u)
        tol = 1e-12 * max(1.0, np.abs(expected).max())
        assert np.abs(got - expected).max() <= tol

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    @pytest.mark.parametrize("radius,single_row,block", [
        (1, False, (5, 7)),
        (3, False, (6, 6)),
        (8, False, (10, 4)),
        (2, True, (1, 9)),
        (4, True, (1, 5)),
    ])
    def test_padded_apply_matches_reference(self, backend, radius,
                                            single_row, block):
        rng = np.random.default_rng(radius * 10 + block[1])
        stencil = random_stencil(rng, radius, single_row=single_row)
        scale = 0.9
        padded = rng.standard_normal((block[0] + 2 * radius,
                                      block[1] + 2 * radius))
        expected = reference_padded(stencil, scale, padded)
        got = make_backend(backend, stencil, scale).apply_padded(padded)
        assert got.shape == block
        tol = 1e-12 * max(1.0, np.abs(expected).max())
        assert np.abs(got - expected).max() <= tol

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_repeated_applies_reuse_cached_state(self, backend):
        """Per-shape state (FFT plans, CSR matrices) must not corrupt
        later applies of other shapes."""
        rng = np.random.default_rng(7)
        stencil = random_stencil(rng, 3)
        b = make_backend(backend, stencil, 1.0)
        for shape in [(12, 12), (9, 15), (12, 12), (7, 7), (9, 15)]:
            u = rng.standard_normal(shape)
            expected = apply_operator_reference(stencil, 1.0, u)
            for _ in range(2):
                got = b.apply_full(u)
                tol = 1e-12 * max(1.0, np.abs(expected).max())
                assert np.abs(got - expected).max() <= tol


class TestPropertyEquivalence:
    """Hypothesis sweep: random masks / radii / shapes / scales."""

    @given(radius=st.integers(1, 4),
           single_row=st.booleans(),
           ny=st.integers(1, 14),
           nx=st.integers(1, 14),
           scale=st.floats(0.1, 10.0),
           seed=st.integers(0, 2 ** 16))
    @settings(max_examples=40, deadline=None)
    def test_all_backends_match_reference_full(self, radius, single_row,
                                               ny, nx, scale, seed):
        rng = np.random.default_rng(seed)
        stencil = random_stencil(rng, radius, single_row=single_row)
        u = rng.standard_normal((1 if single_row else ny, nx))
        expected = apply_operator_reference(stencil, scale, u)
        tol = 1e-12 * max(1.0, np.abs(expected).max())
        for name in ALL_BACKENDS:
            got = make_backend(name, stencil, scale).apply_full(u)
            assert np.abs(got - expected).max() <= tol, name

    @given(radius=st.integers(1, 3),
           single_row=st.booleans(),
           bh=st.integers(1, 8),
           bw=st.integers(1, 8),
           seed=st.integers(0, 2 ** 16))
    @settings(max_examples=40, deadline=None)
    def test_all_backends_match_reference_padded(self, radius, single_row,
                                                 bh, bw, seed):
        rng = np.random.default_rng(seed)
        stencil = random_stencil(rng, radius, single_row=single_row)
        padded = rng.standard_normal(((1 if single_row else bh) + 2 * radius,
                                      bw + 2 * radius))
        expected = reference_padded(stencil, 1.3, padded)
        tol = 1e-12 * max(1.0, np.abs(expected).max())
        for name in ALL_BACKENDS:
            got = make_backend(name, stencil, 1.3).apply_padded(padded)
            assert got.shape == expected.shape, name
            assert np.abs(got - expected).max() <= tol, name

    @given(nx=st.sampled_from([8, 12, 16]),
           eps_factor=st.sampled_from([2, 3, 4]),
           dim=st.sampled_from([1, 2]),
           seed=st.integers(0, 2 ** 16))
    @settings(max_examples=20, deadline=None)
    def test_built_stencil_operator_agrees_across_backends(self, nx,
                                                           eps_factor, dim,
                                                           seed):
        """The production path: model-built stencils through
        NonlocalOperator, 1-D and 2-D."""
        grid = UniformGrid(nx, nx if dim == 2 else 1, dim=dim)
        model = NonlocalHeatModel(epsilon=eps_factor * grid.h, dim=dim)
        u = np.random.default_rng(seed).standard_normal(grid.shape)
        ops = [NonlocalOperator(model, grid, backend=b)
               for b in ALL_BACKENDS]
        results = [op.apply(u) for op in ops]
        tol = 1e-12 * max(1.0, np.abs(results[0]).max())
        for name, got in zip(ALL_BACKENDS[1:], results[1:]):
            assert np.abs(got - results[0]).max() <= tol, name


class TestReferenceOracle:
    def test_reference_matches_known_small_case(self):
        """Hand-checkable 1x3 mask on a 1x3 field."""
        stencil = NonlocalStencil(np.array([[2.0, 0.0, 5.0]]), 1.0, 1.0)
        u = np.array([[1.0, 10.0, 100.0]])
        # conv[i] = 2*u[i+1] + 5*u[i-1] (zero outside); S = 7
        expected = 1.0 * (np.array([[20.0, 200.0 + 5.0, 50.0]])
                          - 7.0 * u)
        got = apply_operator_reference(stencil, 1.0, u)
        np.testing.assert_allclose(got, expected, rtol=0, atol=1e-15)

    def test_reference_rejects_non_2d(self):
        stencil = NonlocalStencil(np.ones((1, 3)), 1.0, 1.0)
        with pytest.raises(ValueError, match="2-D"):
            apply_operator_reference(stencil, 1.0, np.zeros(5))

    def test_reference_matches_legacy_sparse_assembly(self):
        """The oracle agrees with the seed's loop-based sparse matrix."""
        from repro.solver.kernel import assemble_sparse_operator
        grid = UniformGrid(10, 10)
        model = NonlocalHeatModel(epsilon=3 * grid.h)
        A = assemble_sparse_operator(model, grid)
        stencil = build_stencil(grid.h, model.epsilon, model.influence)
        u = np.random.default_rng(3).standard_normal(grid.shape)
        ref = apply_operator_reference(stencil, model.c * grid.cell_volume, u)
        np.testing.assert_allclose(
            (A @ u.ravel()).reshape(grid.shape), ref, atol=1e-11)
