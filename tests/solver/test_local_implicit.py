"""Tests for the classical local solver and the implicit integrator."""

import numpy as np
import pytest

from repro.mesh.grid import UniformGrid
from repro.solver.exact import ManufacturedProblem
from repro.solver.implicit import ImplicitSolver
from repro.solver.kernel import stable_dt
from repro.solver.local import LocalHeatSolver, local_stable_dt
from repro.solver.model import NonlocalHeatModel
from repro.solver.serial import SerialSolver


class TestLocalHeatSolver:
    def test_laplacian_of_linear_field_interior_zero(self):
        grid = UniformGrid(16, 16)
        solver = LocalHeatSolver(grid)
        X, _ = grid.meshgrid()
        lap = solver.laplacian(X)
        # interior of a linear field: Laplacian = 0
        assert np.allclose(lap[2:-2, 2:-2], 0.0, atol=1e-9)

    def test_laplacian_of_quadratic(self):
        grid = UniformGrid(32, 32)
        solver = LocalHeatSolver(grid)
        X, Y = grid.meshgrid()
        lap = solver.laplacian(X ** 2 + Y ** 2)
        # Laplacian(x^2 + y^2) = 4, exactly for the 5-point stencil
        assert np.allclose(lap[2:-2, 2:-2], 4.0, atol=1e-8)

    def test_sine_mode_decay_rate(self):
        """The (1,1) sine mode decays like exp(-2 k (2 pi)^2 t)."""
        grid = UniformGrid(64, 64)
        kappa = 1.0
        solver = LocalHeatSolver(grid, kappa=kappa)
        X, Y = grid.meshgrid()
        u = np.sin(2 * np.pi * X) * np.sin(2 * np.pi * Y)
        steps = 20
        res = solver.run(u, steps)
        t = steps * solver.dt
        expected = np.exp(-2 * kappa * (2 * np.pi) ** 2 * t)
        ratio = np.linalg.norm(res.u) / np.linalg.norm(u)
        assert ratio == pytest.approx(expected, rel=0.05)

    def test_stability_bound(self):
        grid = UniformGrid(16, 16)
        solver = LocalHeatSolver(grid, dt=local_stable_dt(grid))
        rng = np.random.default_rng(0)
        u = rng.standard_normal(grid.shape)
        n0 = np.linalg.norm(u)
        for _ in range(30):
            u = solver.step(u, 0.0)
        assert np.linalg.norm(u) <= n0

    def test_1d_laplacian(self):
        grid = UniformGrid(32, dim=1)
        solver = LocalHeatSolver(grid)
        x = grid.x_coords()[None, :]
        lap = solver.laplacian(x ** 2)
        assert np.allclose(lap[0, 2:-2], 2.0, atol=1e-8)

    def test_validation(self):
        grid = UniformGrid(8, 8)
        with pytest.raises(ValueError):
            LocalHeatSolver(grid, kappa=0.0)
        with pytest.raises(ValueError):
            LocalHeatSolver(grid, dt=-1.0)
        with pytest.raises(ValueError):
            LocalHeatSolver(grid).laplacian(np.zeros((3, 3)))


class TestNonlocalToLocalLimit:
    def test_nonlocal_operator_approaches_laplacian(self):
        """Shrinking eps at fixed eps/h: L_nonlocal -> k*Laplacian
        (this is what calibrates eq. 2).  The ratio eps/h must stay
        fixed (or grow) so the ball-quadrature error O((h/eps)^2) does
        not mask the continuum O(eps^2) convergence."""
        from repro.solver.kernel import NonlocalOperator
        errors = []
        for n in (64, 128, 256):
            grid = UniformGrid(n, n)
            X, Y = grid.meshgrid()
            u = np.sin(2 * np.pi * X) * np.sin(2 * np.pi * Y)
            exact_lap = -2 * (2 * np.pi) ** 2 * u  # Laplacian of sin sin
            model = NonlocalHeatModel(epsilon=16 * grid.h)
            op = NonlocalOperator(model, grid)
            applied = op.apply(u)
            m = n // 6  # exclude the eps-wide boundary layer
            err = np.abs(applied[m:-m, m:-m] - exact_lap[m:-m, m:-m]).max()
            errors.append(err / np.abs(exact_lap).max())
        # error decreases as the horizon shrinks (roughly 4x per halving)
        assert errors[1] < 0.5 * errors[0]
        assert errors[2] < 0.5 * errors[1]
        assert errors[2] < 0.05


class TestImplicitSolver:
    def test_matches_explicit_for_small_dt(self):
        grid = UniformGrid(16, 16)
        model = NonlocalHeatModel(epsilon=2 * grid.h)
        prob = ManufacturedProblem(model, grid, source_mode="discrete")
        dt = 0.25 * stable_dt(model, grid)
        exp = SerialSolver(model, grid, source=prob.source, dt=dt)
        imp = ImplicitSolver(model, grid, source=prob.source, dt=dt)
        u0 = prob.initial_condition()
        ue = exp.run(u0, 5).u
        ui = imp.run(u0, 5).u
        # same order-dt accuracy; difference is O(dt^2) per step
        assert np.abs(ue - ui).max() < 50 * dt * dt * 5 / dt  # ~O(dt)
        assert np.abs(ue - ui).max() < 0.02

    def test_stable_far_beyond_explicit_bound(self):
        """Backward Euler with dt = 100x the explicit bound stays bounded."""
        grid = UniformGrid(16, 16)
        model = NonlocalHeatModel(epsilon=2 * grid.h)
        big_dt = 100 * stable_dt(model, grid, safety=1.0)
        imp = ImplicitSolver(model, grid, dt=big_dt)
        rng = np.random.default_rng(1)
        u = rng.standard_normal(grid.shape)
        n0 = np.linalg.norm(u)
        res = imp.run(u, 10)
        assert np.linalg.norm(res.u) <= n0  # unconditionally dissipative

    def test_decays_unforced_solution(self):
        grid = UniformGrid(16, 16)
        model = NonlocalHeatModel(epsilon=2 * grid.h)
        imp = ImplicitSolver(model, grid, dt=1e-3)
        u0 = np.ones(grid.shape)
        res = imp.run(u0, 5)
        assert np.linalg.norm(res.u) < np.linalg.norm(u0)

    def test_error_tracking(self):
        grid = UniformGrid(16, 16)
        model = NonlocalHeatModel(epsilon=2 * grid.h)
        prob = ManufacturedProblem(model, grid, source_mode="discrete")
        imp = ImplicitSolver(model, grid, source=prob.source, dt=1e-4)
        res = imp.run(prob.initial_condition(), 4, exact=prob.exact)
        assert len(res.errors) == 5
        assert res.total_error < 1e-4

    def test_validation(self):
        grid = UniformGrid(8, 8)
        model = NonlocalHeatModel(epsilon=2 * grid.h)
        with pytest.raises(ValueError):
            ImplicitSolver(model, grid, dt=0.0)
        imp = ImplicitSolver(model, grid, dt=1e-3)
        with pytest.raises(ValueError, match="u0 shape"):
            imp.run(np.zeros((3, 3)), 1)
        with pytest.raises(ValueError, match="num_steps"):
            imp.run(np.zeros(grid.shape), -1)
