"""Tests for the serial and shared-memory async solvers."""

import numpy as np
import pytest

from repro.mesh.grid import UniformGrid
from repro.mesh.subdomain import SubdomainGrid
from repro.solver.async_solver import AsyncSolver
from repro.solver.exact import ManufacturedProblem
from repro.solver.model import NonlocalHeatModel
from repro.solver.serial import SerialSolver


def setup(nx=24, eps_factor=3):
    grid = UniformGrid(nx, nx)
    model = NonlocalHeatModel(epsilon=eps_factor * grid.h)
    prob = ManufacturedProblem(model, grid, source_mode="discrete")
    return grid, model, prob


class TestSerialSolver:
    def test_zero_steps_returns_initial(self):
        grid, model, prob = setup()
        solver = SerialSolver(model, grid, source=prob.source)
        u0 = prob.initial_condition()
        res = solver.run(u0, 0)
        assert np.array_equal(res.u, u0)
        assert res.times == [0.0]

    def test_input_not_mutated(self):
        grid, model, prob = setup()
        solver = SerialSolver(model, grid, source=prob.source)
        u0 = prob.initial_condition()
        keep = u0.copy()
        solver.run(u0, 3)
        assert np.array_equal(u0, keep)

    def test_times_match_dt(self):
        grid, model, prob = setup()
        solver = SerialSolver(model, grid, source=prob.source, dt=1e-5)
        res = solver.run(prob.initial_condition(), 4)
        assert res.times == pytest.approx([0, 1e-5, 2e-5, 3e-5, 4e-5])

    def test_error_tracking_length(self):
        grid, model, prob = setup()
        solver = SerialSolver(model, grid, source=prob.source)
        res = solver.run(prob.initial_condition(), 5, exact=prob.exact)
        assert len(res.errors) == 6  # e_0 .. e_5
        assert res.errors[0] == 0.0  # consistent initial condition

    def test_no_exact_no_errors(self):
        grid, model, prob = setup()
        solver = SerialSolver(model, grid, source=prob.source)
        res = solver.run(prob.initial_condition(), 2)
        assert res.errors is None
        assert res.total_error is None

    def test_unforced_decay(self):
        grid, model, _ = setup()
        solver = SerialSolver(model, grid)
        u0 = np.ones(grid.shape)
        res = solver.run(u0, 10)
        assert np.linalg.norm(res.u) < np.linalg.norm(u0)

    def test_validation(self):
        grid, model, prob = setup()
        solver = SerialSolver(model, grid)
        with pytest.raises(ValueError, match="num_steps"):
            solver.run(prob.initial_condition(), -1)
        with pytest.raises(ValueError, match="u0 shape"):
            solver.run(np.zeros((3, 3)), 1)
        with pytest.raises(ValueError, match="dt"):
            SerialSolver(model, grid, dt=-1.0)


class TestAsyncSolver:
    @pytest.mark.parametrize("sd_layout", [(1, 1), (2, 2), (4, 4), (3, 2)])
    def test_matches_serial_for_any_sd_layout(self, sd_layout):
        grid, model, prob = setup(nx=24)
        serial = SerialSolver(model, grid, source=prob.source)
        ref = serial.run(prob.initial_condition(), 4)
        sg = SubdomainGrid(24, 24, *sd_layout)
        asol = AsyncSolver(model, grid, sg, num_threads=2,
                           source=prob.source, dt=serial.dt)
        res = asol.run(prob.initial_condition(), 4)
        assert np.allclose(res.u, ref.u, atol=1e-12)

    @pytest.mark.parametrize("threads", [1, 2, 4])
    def test_thread_count_does_not_change_result(self, threads):
        grid, model, prob = setup(nx=16, eps_factor=2)
        sg = SubdomainGrid(16, 16, 4, 4)
        asol = AsyncSolver(model, grid, sg, num_threads=threads,
                           source=prob.source, dt=1e-5)
        res = asol.run(prob.initial_condition(), 3)
        ref = AsyncSolver(model, grid, sg, num_threads=1,
                          source=prob.source, dt=1e-5).run(
            prob.initial_condition(), 3)
        assert np.allclose(res.u, ref.u, atol=1e-13)

    def test_error_tracking(self):
        grid, model, prob = setup(nx=16, eps_factor=2)
        sg = SubdomainGrid(16, 16, 2, 2)
        asol = AsyncSolver(model, grid, sg, num_threads=2,
                           source=prob.source)
        res = asol.run(prob.initial_condition(), 3, exact=prob.exact)
        assert res.total_error < 1e-6

    def test_large_radius_halo_across_multiple_sds(self):
        """Stencil radius bigger than SD size still agrees with serial."""
        grid, model, prob = setup(nx=16, eps_factor=4)  # R=4, SDs 2x2 DPs
        sg = SubdomainGrid(16, 16, 8, 8)
        serial = SerialSolver(model, grid, source=prob.source)
        ref = serial.run(prob.initial_condition(), 2)
        asol = AsyncSolver(model, grid, sg, num_threads=3,
                           source=prob.source, dt=serial.dt)
        res = asol.run(prob.initial_condition(), 2)
        assert np.allclose(res.u, ref.u, atol=1e-12)

    def test_mesh_mismatch_rejected(self):
        grid, model, _ = setup(nx=16, eps_factor=2)
        with pytest.raises(ValueError, match="SD grid covers"):
            AsyncSolver(model, grid, SubdomainGrid(8, 8, 2, 2))

    def test_uneven_sd_sizes(self):
        grid, model, prob = setup(nx=18, eps_factor=2)
        sg = SubdomainGrid(18, 18, 4, 4)  # 18/4 uneven
        serial = SerialSolver(model, grid, source=prob.source)
        ref = serial.run(prob.initial_condition(), 2)
        res = AsyncSolver(model, grid, sg, num_threads=2,
                          source=prob.source, dt=serial.dt).run(
            prob.initial_condition(), 2)
        assert np.allclose(res.u, ref.u, atol=1e-12)
