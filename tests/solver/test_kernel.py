"""Tests for the nonlocal operator kernels."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mesh.grid import UniformGrid
from repro.solver.backends import backend_names
from repro.solver.kernel import (NonlocalOperator, assemble_sparse_operator,
                                 stable_dt)
from repro.solver.model import NonlocalHeatModel, linear_influence


def make(nx=16, eps_factor=3, backend="auto", **kw):
    grid = UniformGrid(nx, nx)
    model = NonlocalHeatModel(epsilon=eps_factor * grid.h, **kw)
    return model, grid, NonlocalOperator(model, grid, backend=backend)


class TestNonlocalOperator:
    def test_matches_sparse_assembly(self):
        model, grid, op = make(nx=12, eps_factor=3)
        A = assemble_sparse_operator(model, grid)
        u = np.random.default_rng(0).standard_normal(grid.shape)
        dense = op.apply(u)
        sparse = (A @ u.ravel()).reshape(grid.shape)
        assert np.allclose(dense, sparse, atol=1e-11)

    def test_matches_sparse_with_linear_influence(self):
        model, grid, op = make(nx=10, eps_factor=2,
                               influence=linear_influence)
        A = assemble_sparse_operator(model, grid)
        u = np.random.default_rng(1).standard_normal(grid.shape)
        assert np.allclose(op.apply(u),
                           (A @ u.ravel()).reshape(grid.shape), atol=1e-11)

    def test_linearity(self):
        _, grid, op = make()
        rng = np.random.default_rng(2)
        u, v = rng.standard_normal((2,) + grid.shape)
        assert np.allclose(op.apply(2 * u + 3 * v),
                           2 * op.apply(u) + 3 * op.apply(v), atol=1e-10)

    def test_zero_field_maps_to_zero(self):
        _, grid, op = make()
        assert np.all(op.apply(np.zeros(grid.shape)) == 0.0)

    def test_interior_of_constant_field_is_dissipative_at_boundary_only(self):
        """On a constant field, L(u) = 0 in the deep interior but < 0 near
        the boundary (the Dc zero condition drains heat)."""
        _, grid, op = make(nx=20, eps_factor=3)
        u = np.ones(grid.shape)
        r = op.apply(u)
        R = op.radius
        interior = r[R:-R, R:-R]
        assert np.allclose(interior, 0.0, atol=1e-10)
        assert r[0, 0] < 0  # corner loses heat to Dc

    def test_negative_semidefinite_quadratic_form(self):
        """<u, L u> <= 0: the operator dissipates energy."""
        model, grid, _ = make(nx=10, eps_factor=2)
        A = assemble_sparse_operator(model, grid).toarray()
        rng = np.random.default_rng(3)
        for _ in range(5):
            u = rng.standard_normal(grid.num_points)
            assert u @ A @ u <= 1e-8

    def test_operator_is_symmetric_matrix(self):
        model, grid, _ = make(nx=8, eps_factor=2)
        A = assemble_sparse_operator(model, grid).toarray()
        assert np.allclose(A, A.T, atol=1e-12)

    def test_shape_validation(self):
        _, grid, op = make()
        with pytest.raises(ValueError, match="field shape"):
            op.apply(np.zeros((3, 3)))


class TestApplyBlock:
    def test_block_matches_global_interior(self):
        _, grid, op = make(nx=16, eps_factor=2)
        rng = np.random.default_rng(4)
        u = rng.standard_normal(grid.shape)
        full = op.apply(u)
        R = op.radius
        # take block [4:8) x [4:8) with its halo
        padded = u[4 - R:8 + R, 4 - R:8 + R]
        block = op.apply_block(padded)
        assert np.allclose(block, full[4:8, 4:8], atol=1e-11)

    def test_block_at_domain_boundary_with_zero_padding(self):
        _, grid, op = make(nx=16, eps_factor=2)
        rng = np.random.default_rng(5)
        u = rng.standard_normal(grid.shape)
        full = op.apply(u)
        R = op.radius
        padded = np.zeros((4 + 2 * R, 4 + 2 * R))
        padded[R:, R:] = u[:4 + R, :4 + R]  # corner block + halo, zeros in Dc
        block = op.apply_block(padded)
        assert np.allclose(block, full[:4, :4], atol=1e-11)

    def test_too_small_block_rejected(self):
        _, grid, op = make(eps_factor=3)
        R = op.radius
        with pytest.raises(ValueError, match="too small"):
            op.apply_block(np.zeros((2 * R, 2 * R + 5)))

    def test_wrong_radius_rejected(self):
        _, grid, op = make(eps_factor=3)
        with pytest.raises(ValueError, match="radius"):
            op.apply_block(np.zeros((20, 20)), radius=op.radius + 1)

    def test_flops_per_dp_positive(self):
        _, _, op = make()
        assert op.flops_per_dp() == 2.0 * op.stencil.num_neighbors


class TestOneDimensionalPath:
    """Regression: the 1-D model's single-row mask through apply_block.

    The seed's dense path assumed a square mask: a valid convolution
    with a ``(1, 2R+1)`` mask does not shrink the y axis, so the block
    update came back with shape ``(1 + 2R, w)`` instead of ``(1, w)``.
    """

    def make_1d(self, nx=32, eps_factor=4, backend="auto"):
        grid = UniformGrid(nx, 1, dim=1)
        model = NonlocalHeatModel(epsilon=eps_factor * grid.h, dim=1)
        return grid, NonlocalOperator(model, grid, backend=backend)

    @pytest.mark.parametrize("backend", backend_names())
    def test_block_shape_and_values_match_full_apply(self, backend):
        grid, op = self.make_1d(backend=backend)
        R = op.radius
        u = np.random.default_rng(8).standard_normal(grid.shape)
        full = op.apply(u)
        padded = np.zeros((1 + 2 * R, 8 + 2 * R))
        padded[R, :] = u[0, 8 - R:16 + R]  # block [8:16) with halo
        block = op.apply_block(padded)
        assert block.shape == (1, 8)
        assert np.allclose(block, full[:, 8:16],
                           atol=1e-12 * max(1.0, np.abs(full).max()))

    @pytest.mark.parametrize("backend", backend_names())
    def test_boundary_block_with_zero_padding(self, backend):
        grid, op = self.make_1d(backend=backend)
        R = op.radius
        u = np.random.default_rng(9).standard_normal(grid.shape)
        full = op.apply(u)
        padded = np.zeros((1 + 2 * R, 8 + 2 * R))
        padded[R, R:] = u[0, :8 + R]  # leftmost block, Dc zeros on the left
        block = op.apply_block(padded)
        assert block.shape == (1, 8)
        assert np.allclose(block, full[:, :8],
                           atol=1e-12 * max(1.0, np.abs(full).max()))


class TestStableDt:
    def test_euler_stable_at_stable_dt(self):
        """Integrating noise with stable dt must not blow up."""
        model, grid, op = make(nx=12, eps_factor=2)
        dt = stable_dt(model, grid)
        rng = np.random.default_rng(6)
        u = rng.standard_normal(grid.shape)
        norm0 = np.linalg.norm(u)
        for _ in range(50):
            u = u + dt * op.apply(u)
        assert np.linalg.norm(u) <= norm0 * 1.001

    def test_euler_unstable_beyond_bound(self):
        """4x the stability bound must diverge (checks the bound is tight
        to within the safety factor)."""
        model, grid, op = make(nx=12, eps_factor=2)
        dt = 4.0 * stable_dt(model, grid, safety=1.0)
        rng = np.random.default_rng(7)
        u = rng.standard_normal(grid.shape)
        norm0 = np.linalg.norm(u)
        for _ in range(50):
            u = u + dt * op.apply(u)
        assert np.linalg.norm(u) > 10 * norm0

    def test_safety_scales_linearly(self):
        model, grid, _ = make()
        assert stable_dt(model, grid, safety=0.25) == pytest.approx(
            0.5 * stable_dt(model, grid, safety=0.5))

    @pytest.mark.parametrize("backend", backend_names())
    def test_bound_is_backend_independent(self, backend):
        """stable_dt reads only the stencil's weight_sum — never backend
        internals — so every backend shares one stability bound."""
        model, grid, op = make(backend=backend)
        assert stable_dt(model, grid) == pytest.approx(
            stable_dt(model, grid, stencil=op.stencil), rel=0, abs=0)
        assert stable_dt(model, grid) == pytest.approx(
            0.5 / (model.c * grid.cell_volume * op.stencil.weight_sum))

    @pytest.mark.parametrize("backend", backend_names())
    def test_euler_stable_at_stable_dt_under_each_backend(self, backend):
        """The bound holds for the arithmetic each backend actually
        performs, not just the dense reference."""
        model, grid, op = make(nx=12, eps_factor=2, backend=backend)
        dt = stable_dt(model, grid, stencil=op.stencil)
        rng = np.random.default_rng(10)
        u = rng.standard_normal(grid.shape)
        norm0 = np.linalg.norm(u)
        for _ in range(30):
            u = u + dt * op.apply(u)
        assert np.linalg.norm(u) <= norm0 * 1.001

    @given(nx=st.sampled_from([8, 12, 16]), eps_factor=st.sampled_from([2, 3, 4]))
    @settings(max_examples=9, deadline=None)
    def test_heat_decays_from_any_grid_config(self, nx, eps_factor):
        """Unforced solutions decay monotonically in L2 (dissipativity)."""
        model, grid, op = make(nx=nx, eps_factor=eps_factor)
        dt = stable_dt(model, grid)
        X, Y = grid.meshgrid()
        u = np.sin(2 * np.pi * X) * np.sin(2 * np.pi * Y)
        prev = np.linalg.norm(u)
        for _ in range(10):
            u = u + dt * op.apply(u)
            cur = np.linalg.norm(u)
            assert cur <= prev + 1e-12
            prev = cur
