"""Topology threading through the solver + network-state bugfix regressions.

* the reused-network bugfix: a ``Network`` instance passed to two
  successive solvers must not delay the second run's first sends with
  the first run's egress backlog (regression — failed before the
  per-run ``network.reset()``);
* the failed-node egress bugfix at cluster level (regression — the
  reservation used to survive ``fail_node``);
* the ghost-byte accounting guard: mis-attributed migration/recovery
  bytes raise instead of producing negative telemetry;
* golden parity: the ``fault_recovery`` scenario under an explicit
  default (``flat``) topology reproduces the committed golden record's
  schedule exactly, and topology runs conserve bytes across route
  classes.
"""

import json
import os
from unittest import mock

import numpy as np
import pytest

from repro.amt.cluster import Network, SimCluster
from repro.amt.topology import SwitchedTopology
from repro.experiments import TopologySpec, build, build_solver, run_scenario
from repro.solver.distributed import DistributedResult

GOLDEN = os.path.join(os.path.dirname(__file__), "..", "golden",
                      "fault_recovery.json")


def _make_solver(network):
    """A small distributed solver wired to the given network model."""
    from repro.mesh.grid import UniformGrid
    from repro.mesh.subdomain import SubdomainGrid
    from repro.partition.geometric import block_partition
    from repro.solver.distributed import DistributedSolver
    from repro.solver.model import NonlocalHeatModel
    grid = UniformGrid(32, 32)
    model = NonlocalHeatModel(epsilon=2 * grid.h)
    sg = SubdomainGrid(32, 32, 4, 4)
    return DistributedSolver(model, grid, sg, block_partition(4, 4, 4),
                             num_nodes=4, compute_numerics=False,
                             network=network)


class TestReusedNetworkRegression:
    """Bugfix: ``Network._egress_free`` survived between runs."""

    def test_second_solver_sees_fresh_link_state(self):
        shared = Network()
        first = _make_solver(shared).run(None, 2).makespan
        reused = _make_solver(shared).run(None, 2).makespan
        fresh = _make_solver(Network()).run(None, 2).makespan
        assert reused == fresh == first

    def test_reused_network_byte_counters_are_per_run(self):
        shared = Network()
        res_a = _make_solver(shared).run(None, 2)
        res_b = _make_solver(shared).run(None, 2)
        # without the per-run reset, run B's ghost bytes would include
        # run A's accumulated traffic
        assert res_b.ghost_bytes == res_a.ghost_bytes

    def test_reused_topology_object_also_resets(self):
        shared = SwitchedTopology(rack_size=2, oversubscription=8.0,
                                  latency=2e-5, bandwidth=1e6)
        out = [_make_solver(shared).run(None, 2).makespan
               for _ in range(2)]
        assert out[0] == out[1]


class TestFailedNodeEgressRegression:
    """Bugfix: ``fail_node`` left the dead node's egress reservation."""

    def test_fail_node_releases_egress(self):
        cluster = SimCluster(num_nodes=3)
        cluster.send(1, 2, nbytes=10_000_000)   # big egress backlog on 1
        assert 1 in cluster.network._egress_free
        cluster.fail_node(1)
        assert 1 not in cluster.network._egress_free

    def test_other_reservations_survive(self):
        cluster = SimCluster(num_nodes=3)
        cluster.send(0, 2, nbytes=10_000_000)
        cluster.send(1, 2, nbytes=10_000_000)
        cluster.fail_node(1)
        assert 0 in cluster.network._egress_free


class TestGhostByteGuard:
    """Bugfix: negative ghost bytes must fail loudly."""

    def test_misattributed_bytes_raise(self):
        spec = build("fig11_strong_distributed", steps=1)
        solver = build_solver(spec)
        with mock.patch.object(DistributedResult, "migration_bytes",
                               new_callable=mock.PropertyMock,
                               return_value=10 ** 15):
            with pytest.raises(RuntimeError, match="negative"):
                solver.run(None, spec.num_steps)

    def test_churn_run_stays_non_negative(self):
        rec = run_scenario(build("hetero_churn", steps=8))
        assert rec.ghost_bytes >= 0
        assert rec.recovery_bytes >= 0


class TestGoldenParityUnderFlatTopology:
    """The default topology reproduces the committed golden exactly."""

    def test_fault_recovery_schedule_unchanged(self):
        with open(GOLDEN, "r", encoding="utf-8") as fh:
            golden = json.load(fh)["record"]
        spec = build("fault_recovery").with_topology(
            TopologySpec(kind="flat"))
        rec = run_scenario(spec).to_dict()
        for field in ("makespan", "step_durations", "imbalance_history",
                      "ghost_bytes", "balance_events", "recovery_events",
                      "parts_events", "final_parts", "busy_total"):
            assert rec[field] == golden[field], field
        # the telemetry attributes every byte to the flat route class
        assert rec["bytes_by_class"] == {
            "remote": golden["ghost_bytes"]
            + sum(e["migration_bytes"] for e in golden["balance_events"])
            + sum(e["recovery_bytes"] for e in golden["recovery_events"])}

    def test_flat_topology_matches_legacy_network_run(self):
        base = build("fig13_metis_scaling", steps=3)
        legacy = run_scenario(base)
        flat = run_scenario(base.with_topology("flat"))
        assert flat.makespan == legacy.makespan
        assert flat.step_durations == legacy.step_durations
        assert flat.ghost_bytes == legacy.ghost_bytes


class TestTopologyRunTelemetry:
    def test_byte_classes_partition_total_traffic(self):
        """ghost + migration + recovery == sum over route classes."""
        rec = run_scenario(build("wan_joiner", steps=10))
        total = (rec.ghost_bytes + rec.migration_bytes
                 + rec.recovery_bytes)
        assert sum(rec.bytes_by_class.values()) == total
        assert "wan" in rec.bytes_by_class   # the joiner paid the WAN

    def test_wan_joiner_handles_churn_under_topology(self):
        """PR-4 churn machinery composes with the hierarchical model."""
        rec = run_scenario(build("wan_joiner", steps=10))
        kinds = [e["kind"] for e in rec.recovery_events]
        assert kinds == ["fail", "join"]
        assert 3 not in rec.final_parts          # dead node evacuated
        assert 4 in rec.final_parts              # WAN joiner absorbed

    def test_rack_scenarios_deterministic_across_sweep(self):
        """Topology runs keep the bit-identical serial/sweep parity."""
        from repro.experiments import run_sweep
        specs = [build("oversubscribed_uplink", steps=2,
                       placement=p) for p in ("rack", "scatter")]
        serial = [run_scenario(s).to_dict() for s in specs]
        swept = [r.to_dict() for r in run_sweep(specs)]
        assert serial == swept
