"""Fault recovery on the distributed solver, pinned by a golden record.

Three layers:

* the committed ``tests/golden/fault_recovery.json`` regression — the
  virtual schedule (makespan, step durations, recovery/balance events,
  final ownership) of the ``fault_recovery`` scenario compared field by
  field (exact for virtual-time quantities, tolerant for the numeric
  errors, which may differ in the last bits across BLAS builds);
* numerics under churn: the run's final temperatures must match the
  serial solver even though a node died mid-run and its kernels were
  re-executed elsewhere;
* solver-level behaviors the curated scenario exercises: recovery
  penalty accounting, checkpoint gating, and the never-balance
  evacuation path.
"""

import json
import os

import numpy as np
import pytest

from repro.amt.faults import ChurnEvent, FaultSchedule
from repro.core.policy import IntervalPolicy, NeverBalance
from repro.experiments import SCHEMA, RunRecord, build, build_solver, \
    run_scenario
from repro.mesh.grid import UniformGrid
from repro.mesh.subdomain import SubdomainGrid
from repro.partition.geometric import block_partition
from repro.solver.distributed import DistributedSolver
from repro.solver.exact import ManufacturedProblem
from repro.solver.model import NonlocalHeatModel
from repro.solver.serial import SerialSolver

GOLDEN = os.path.join(os.path.dirname(__file__), "..", "golden",
                      "fault_recovery.json")

#: Fields whose values are virtual-time/schedule quantities — exact
#: (deterministic arithmetic, machine-independent).
EXACT_FIELDS = ("scenario", "solver", "spec", "num_steps", "makespan",
                "step_durations", "imbalance_history", "ghost_bytes",
                "balance_events", "recovery_events", "parts_events",
                "final_parts", "busy_total", "backend_resolved",
                "balancer_resolved")


class TestGoldenRecord:
    @pytest.fixture(scope="class")
    def golden(self):
        with open(GOLDEN, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
        assert doc["schema"] == SCHEMA
        return doc["record"]

    @pytest.fixture(scope="class")
    def fresh(self):
        return run_scenario(build("fault_recovery"))

    def test_schedule_fields_match_exactly(self, golden, fresh):
        fresh_dict = fresh.to_dict()
        for field in EXACT_FIELDS:
            assert fresh_dict[field] == golden[field], field

    def test_numeric_fields_match_to_rounding(self, golden, fresh):
        assert fresh.dt == pytest.approx(golden["dt"], rel=1e-12)
        assert fresh.total_error == pytest.approx(golden["total_error"],
                                                  rel=1e-9)
        for a, b in zip(fresh.errors, golden["errors"]):
            assert a == pytest.approx(b, rel=1e-9)

    def test_golden_pins_a_real_recovery(self, golden):
        """The fixture must keep covering what it exists to cover."""
        (event,) = golden["recovery_events"]
        assert event["kind"] == "fail" and event["node"] == 1
        assert event["sds_evacuated"] > 0
        assert event["tasks_requeued"] > 0
        assert 1 not in golden["final_parts"]
        assert any(e["recovery"] for e in golden["balance_events"])

    def test_record_round_trips(self, golden):
        rec = RunRecord.from_dict(golden)
        assert rec.to_dict() == golden


class TestNumericsUnderChurn:
    def test_final_temperatures_match_serial(self):
        """Node 1 dies mid-run; the recovered distributed field must
        still agree with the serial reference to floating point."""
        spec = build("fault_recovery")
        prob = ManufacturedProblem(
            NonlocalHeatModel(epsilon=2.0 * UniformGrid(32, 32).h),
            UniformGrid(32, 32))
        solver = build_solver(spec, source=prob.source)
        res = solver.run(prob.initial_condition(), spec.num_steps)
        assert res.recovery_events and res.recovery_events[0].kind == "fail"

        serial = SerialSolver(solver.model, solver.grid, source=prob.source,
                              operator=solver.operator)
        ref = serial.run(prob.initial_condition(), spec.num_steps)
        np.testing.assert_allclose(res.u, ref.u, rtol=0, atol=1e-12)


def _make_solver(faults, policy, steps_model=None, balancer="tree"):
    grid = UniformGrid(32, 32)
    model = NonlocalHeatModel(epsilon=2 * grid.h)
    sg = SubdomainGrid(32, 32, 4, 4)
    return DistributedSolver(model, grid, sg, block_partition(4, 4, 4),
                             num_nodes=4, balancer=balancer, policy=policy,
                             compute_numerics=False, faults=faults)


class TestSolverFaultBehavior:
    def _step_time(self):
        solver = _make_solver(None, IntervalPolicy(1))
        return solver.run(None, 2).step_durations[0]

    def test_recovery_penalty_lengthens_the_run(self):
        """A higher recovery penalty must cost virtual time — the
        requeued tasks carry the extra work."""
        step = self._step_time()
        spans = []
        for penalty in (0.0, 2.0):
            faults = FaultSchedule(4, (ChurnEvent("fail", 1.5 * step, 0),),
                                   recovery_penalty=penalty)
            res = _make_solver(faults, IntervalPolicy(1)).run(None, 4)
            assert res.recovery_events[0].tasks_requeued > 0
            spans.append(res.makespan)
        assert spans[1] > spans[0]

    def test_never_balance_evacuates_mechanically(self):
        step = self._step_time()
        faults = FaultSchedule(4, (ChurnEvent("fail", 1.5 * step, 2),))
        solver = _make_solver(faults, NeverBalance())
        res = solver.run(None, 4)
        assert np.all(solver.parts != 2)
        (event,) = res.balance_events
        assert event.strategy == "evacuate" and event.recovery
        assert res.recovery_events[0].sds_evacuated == 4

    def test_recovery_transfers_gate_the_next_step(self):
        """Failure-path data movement is not latency-free: on a slow
        network the checkpoint re-fetches and recovery migrations must
        delay the next step start, exactly like ordinary step-boundary
        migrations (the new owner cannot compute on data that has not
        arrived)."""
        from repro.amt.cluster import Network

        def run(bandwidth, faults):
            grid = UniformGrid(32, 32)
            model = NonlocalHeatModel(epsilon=2 * grid.h)
            sg = SubdomainGrid(32, 32, 4, 4)
            solver = DistributedSolver(
                model, grid, sg, block_partition(4, 4, 4), num_nodes=4,
                balancer="tree", policy=IntervalPolicy(10 ** 9),
                compute_numerics=False, faults=faults,
                network=Network(bandwidth=bandwidth))
            return solver.run(None, 4)

        step = run(1.25e9, None).step_durations[0]
        faults = FaultSchedule(4, (ChurnEvent("fail", 1.5 * step, 0),))
        fast = run(1.25e9, faults)
        # ~2 ms per evacuated SD's 2 KB on a 1 MB/s wire: the recovery
        # traffic alone dwarfs the compute steps if it gates correctly
        slow = run(1e6, faults)
        wire_time = slow.recovery_events[0].sds_evacuated * 2048 / 1e6
        assert slow.makespan > fast.makespan + 0.5 * wire_time

    def test_fault_past_the_end_is_ignored(self):
        step = self._step_time()
        faults = FaultSchedule(4, (ChurnEvent("fail", 1000 * step, 0),))
        solver = _make_solver(faults, IntervalPolicy(1))
        res = solver.run(None, 2)
        assert res.recovery_events == []
        assert solver.cluster.nodes[0].alive

    def test_schedule_size_mismatch_rejected(self):
        faults = FaultSchedule(3, (ChurnEvent("fail", 1.0, 0),))
        with pytest.raises(ValueError, match="initial nodes"):
            _make_solver(faults, IntervalPolicy(1))

    def test_straggle_only_schedule_changes_no_membership(self):
        step = self._step_time()
        faults = FaultSchedule(4, (
            ChurnEvent("straggle", 0.5 * step, 1, stop=2.5 * step,
                       factor=0.25),))
        solver = _make_solver(faults, IntervalPolicy(1))
        res = solver.run(None, 4)
        assert res.recovery_events == []
        assert solver.cluster.active_node_ids() == [0, 1, 2, 3]
        # the straggler shows up in the busy-time spread the policy sees
        base = _make_solver(None, IntervalPolicy(1)).run(None, 4)
        assert res.makespan != base.makespan

    def test_join_only_schedule_absorbs_at_next_balance(self):
        step = self._step_time()
        faults = FaultSchedule(4, (
            ChurnEvent("join", 1.5 * step, 4, rate=2e9),))
        solver = _make_solver(faults, IntervalPolicy(1))
        res = solver.run(None, 4)
        (event,) = res.recovery_events
        assert event.kind == "join" and event.node == 4
        assert np.count_nonzero(solver.parts == 4) > 0
        joined_step = [e for e in res.balance_events
                       if e.recovery and e.step >= event.step]
        assert joined_step, "no recovery-tagged absorption event"
