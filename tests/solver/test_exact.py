"""Tests for the manufactured solution and error norms."""

import numpy as np
import pytest

from repro.mesh.grid import UniformGrid
from repro.solver.exact import (ManufacturedProblem, interior_multiplier,
                                step_error, total_error)
from repro.solver.model import NonlocalHeatModel, linear_influence
from repro.solver.serial import solve_manufactured


class TestExactFields:
    def test_initial_condition_is_sin_sin(self):
        grid = UniformGrid(16, 16)
        model = NonlocalHeatModel(epsilon=3 * grid.h)
        prob = ManufacturedProblem(model, grid, source_mode="discrete")
        X, Y = grid.meshgrid()
        assert np.allclose(prob.initial_condition(),
                           np.sin(2 * np.pi * X) * np.sin(2 * np.pi * Y))

    def test_exact_at_quarter_period_is_zero(self):
        grid = UniformGrid(8, 8)
        model = NonlocalHeatModel(epsilon=2 * grid.h)
        prob = ManufacturedProblem(model, grid, source_mode="discrete")
        assert np.allclose(prob.exact(0.25), 0.0, atol=1e-12)

    def test_exact_dt_at_zero_is_zero(self):
        grid = UniformGrid(8, 8)
        model = NonlocalHeatModel(epsilon=2 * grid.h)
        prob = ManufacturedProblem(model, grid, source_mode="discrete")
        assert np.allclose(prob.exact_dt(0.0), 0.0, atol=1e-12)

    def test_time_periodicity(self):
        grid = UniformGrid(8, 8)
        model = NonlocalHeatModel(epsilon=2 * grid.h)
        prob = ManufacturedProblem(model, grid, source_mode="discrete")
        assert np.allclose(prob.exact(0.3), prob.exact(1.3), atol=1e-12)

    def test_invalid_source_mode(self):
        grid = UniformGrid(8, 8)
        model = NonlocalHeatModel(epsilon=2 * grid.h)
        with pytest.raises(ValueError, match="source mode"):
            ManufacturedProblem(model, grid, source_mode="nope")


class TestInteriorMultiplier:
    def test_quadrature_matches_bessel_in_deep_interior(self):
        """The oversampled quadrature agrees with the closed form away
        from the boundary."""
        grid = UniformGrid(32, 32)
        model = NonlocalHeatModel(epsilon=4 * grid.h)
        prob = ManufacturedProblem(model, grid, source_mode="continuum",
                                   oversample=11)
        m = interior_multiplier(model)
        s = prob._space
        integ = prob._integral_of_space / model.c
        center = (16, 16)
        assert integ[center] / s[center] == pytest.approx(m, rel=0.02)

    def test_requires_constant_influence(self):
        model = NonlocalHeatModel(epsilon=0.1, influence=linear_influence)
        with pytest.raises(ValueError, match="constant influence"):
            interior_multiplier(model)

    def test_1d_multiplier_formula(self):
        model = NonlocalHeatModel(epsilon=0.1, dim=1)
        m = interior_multiplier(model)
        expected = 2 * np.sin(2 * np.pi * 0.1) / (2 * np.pi) - 2 * 0.1
        assert m == pytest.approx(expected)

    def test_multiplier_is_negative(self):
        """The ball average of sin sin is below its center value."""
        model = NonlocalHeatModel(epsilon=0.05)
        assert interior_multiplier(model) < 0


class TestErrorNorms:
    def test_step_error_zero_for_identical(self):
        grid = UniformGrid(8, 8)
        u = np.ones(grid.shape)
        assert step_error(grid, u, u) == 0.0

    def test_step_error_scales_with_h_squared(self):
        """A constant pointwise error of 1 gives e = h^2 * N = 1."""
        grid = UniformGrid(8, 8)
        e = step_error(grid, np.zeros(grid.shape), np.ones(grid.shape))
        assert e == pytest.approx(grid.h ** 2 * 64)
        assert e == pytest.approx(1.0)

    def test_step_error_shape_check(self):
        grid = UniformGrid(8, 8)
        with pytest.raises(ValueError):
            step_error(grid, np.zeros((8, 8)), np.zeros((4, 4)))

    def test_total_error_sums(self):
        assert total_error([0.5, 0.25, 0.25]) == pytest.approx(1.0)

    def test_1d_error_uses_h(self):
        grid = UniformGrid(4, dim=1)
        e = step_error(grid, np.zeros(grid.shape), np.ones(grid.shape))
        assert e == pytest.approx(grid.h * 4)


class TestManufacturedSolve:
    def test_discrete_mode_error_is_time_error_only(self):
        """With the discrete source, the error is tiny (O(dt))."""
        res = solve_manufactured(24, eps_factor=3, num_steps=10,
                                 source_mode="discrete")
        assert res.total_error < 1e-6

    def test_discrete_mode_error_shrinks_with_dt(self):
        a = solve_manufactured(16, eps_factor=2, num_steps=4,
                               dt=1e-4, source_mode="discrete")
        b = solve_manufactured(16, eps_factor=2, num_steps=8,
                               dt=5e-5, source_mode="discrete")
        assert b.total_error < a.total_error

    def test_continuum_mode_error_decreases_with_h(self):
        """The headline property of the paper's Fig. 8."""
        errors = [solve_manufactured(n, eps_factor=2, num_steps=5,
                                     source_mode="continuum").total_error
                  for n in (8, 16, 32)]
        assert errors[1] < errors[0]
        assert errors[2] < errors[1]

    def test_1d_manufactured_solve(self):
        res = solve_manufactured(32, eps_factor=3, num_steps=5,
                                 source_mode="discrete", dim=1)
        assert res.total_error < 1e-6
