"""Incremental busy-counter polling (``REPRO_BALANCER_POLL``).

The balancer's end-of-step measurement used to sweep ``busy_time(n)``
over every node; the cursor mode re-reads only nodes whose
``busy_marks`` moved (or that still have pending work) since the last
poll.  Both modes must produce bit-identical records — the cursor is a
pure caching layer over the same windowed busy-time values — pinned on
the two curated scenarios that stress the paths a stale cursor would
corrupt: ``hetero_drift`` (balances every few steps, resets counters)
and ``fault_recovery`` (mid-run node death, evacuation, requeue).
"""

import numpy as np
import pytest

from repro.amt.cluster import BusyCursor, SimCluster
from repro.experiments import build, run_scenario

SCENARIOS = ("hetero_drift", "fault_recovery")


class TestPollModeParity:
    @pytest.mark.parametrize("scenario", SCENARIOS)
    def test_sweep_and_cursor_records_agree(self, monkeypatch, scenario):
        spec = build(scenario)
        monkeypatch.setenv("REPRO_BALANCER_POLL", "sweep")
        swept = run_scenario(spec)
        monkeypatch.setenv("REPRO_BALANCER_POLL", "cursor")
        cursed = run_scenario(spec)
        assert swept.to_dict() == cursed.to_dict()

    def test_default_is_cursor_and_junk_rejected(self, monkeypatch):
        from repro.mesh.grid import UniformGrid
        from repro.mesh.subdomain import SubdomainGrid
        from repro.partition.geometric import block_partition
        from repro.solver.distributed import DistributedSolver
        from repro.solver.model import NonlocalHeatModel
        grid = UniformGrid(16, 16)
        model = NonlocalHeatModel(epsilon=2 * grid.h)
        sg = SubdomainGrid(16, 16, 2, 2)

        def make():
            return DistributedSolver(model, grid, sg,
                                     block_partition(2, 2, 2), num_nodes=2,
                                     compute_numerics=False)

        monkeypatch.delenv("REPRO_BALANCER_POLL", raising=False)
        assert make()._poll_mode == "cursor"
        monkeypatch.setenv("REPRO_BALANCER_POLL", "eager")
        with pytest.raises(ValueError, match="REPRO_BALANCER_POLL"):
            make()


class TestCursorSemantics:
    def drained_cluster(self, work=(3e3, 5e3)):
        cluster = SimCluster(len(work))
        for n, w in enumerate(work):
            cluster.submit(n, w)
        cluster.run()
        return cluster

    def test_poll_matches_sweep_and_returns_a_copy(self):
        cluster = self.drained_cluster()
        cursor = BusyCursor()
        polled = cluster.poll_busy(cursor)
        swept = [cluster.busy_time(n) for n in range(2)]
        assert polled == swept
        polled[0] = -1.0  # caller-owned list: the cache must not alias
        assert cluster.poll_busy(cursor) == swept

    def test_idle_nodes_are_served_from_the_cache(self):
        cluster = self.drained_cluster()
        cursor = BusyCursor()
        cluster.poll_busy(cursor)
        marks = list(cursor.marks)
        # nothing ran since: a second poll must not advance any mark
        cluster.poll_busy(cursor)
        assert list(cursor.marks) == marks
        # new completions bump the mark and refresh the value
        cluster.submit(0, 7e3)
        cluster.run()
        polled = cluster.poll_busy(cursor)
        assert cursor.marks[0] > marks[0]
        assert polled[0] == cluster.busy_time(0)

    def test_reset_counters_invalidates_unrebased_cursors(self):
        """A cursor the solver forgot to rebase must still observe the
        reset — reset_counters bumps every mark as a safety net."""
        cluster = self.drained_cluster()
        cursor = BusyCursor()
        before = cluster.poll_busy(cursor)
        assert any(b > 0 for b in before)
        cluster.reset_counters()
        assert cluster.poll_busy(cursor) == [0.0, 0.0]

    def test_rebase_refreshes_values_without_fresh_completions(self):
        cluster = self.drained_cluster()
        cursor = BusyCursor()
        cluster.poll_busy(cursor)
        cluster.reset_counters()
        cluster.rebase_busy_cursor(cursor)
        assert list(cursor.values) == [0.0, 0.0]
        assert cluster.poll_busy(cursor) == [0.0, 0.0]

    def test_cursor_grows_with_the_cluster(self):
        """Node joins mid-run (elastic churn) extend the node list; the
        cursor must follow instead of indexing out of range."""
        cluster = self.drained_cluster()
        cursor = BusyCursor()
        cluster.poll_busy(cursor)
        cluster.add_node()
        polled = cluster.poll_busy(cursor)
        assert len(polled) == 3 and polled[2] == 0.0


class TestBusyMarksAccounting:
    def test_marks_move_exactly_with_busy_credit(self):
        """Every completion path credits busy time; the marks must move
        in lockstep or the cursor would serve stale windows."""
        cluster = SimCluster(1)
        node = cluster.nodes[0]
        assert node.busy_marks == 0
        cluster.submit(0, 1e3)
        cluster.run()
        after_run = node.busy_marks
        assert after_run > 0
        # a pure query must not bump marks
        cluster.busy_time(0)
        assert node.busy_marks == after_run

    def test_fail_node_bumps_marks(self):
        cluster = SimCluster(2)
        cluster.submit(1, 1e6)
        cluster.run(until=1e-6)
        cursor = BusyCursor()
        cluster.poll_busy(cursor)
        cluster.fail_node(1)
        cluster.run()
        # the dead node's window closed: the poll must re-read it
        assert cluster.poll_busy(cursor)[1] == cluster.busy_time(1)


def test_sweep_env_survives_a_parallel_sweep(monkeypatch):
    """The poll mode is read at solver construction in each worker, so
    a sweep with the env var set stays bit-identical to serial."""
    monkeypatch.setenv("REPRO_BALANCER_POLL", "sweep")
    monkeypatch.setenv("REPRO_SWEEP_SERIAL", "1")
    from repro.experiments import run_sweep
    specs = [build("hetero_drift", steps=4, seed=s) for s in (0, 1)]
    serial = run_sweep(specs, serial=True)
    ordered = run_sweep(specs)
    assert [r.to_dict() for r in serial] == [r.to_dict() for r in ordered]
    assert not np.any(np.isnan([r.makespan for r in serial]))
