"""Tests for the model constants and influence functions."""

import math

import numpy as np
import pytest

from repro.solver.model import (InfluenceFunction, NonlocalHeatModel,
                                constant_influence, gaussian_influence,
                                influence_moment, linear_influence)


class TestInfluenceFunctions:
    def test_constant_is_one(self):
        r = np.linspace(0, 1, 5)
        assert np.all(constant_influence(r) == 1.0)

    def test_constant_moments_analytic(self):
        assert constant_influence.moment(2) == pytest.approx(1 / 3)
        assert constant_influence.moment(3) == pytest.approx(1 / 4)

    def test_linear_moments_analytic(self):
        # int_0^1 (1-r) r^3 dr = 1/4 - 1/5 = 1/20
        assert linear_influence.moment(3) == pytest.approx(1 / 20)

    def test_numeric_moment_matches_analytic(self):
        for i in (0, 1, 2, 3):
            num = influence_moment(constant_influence, i)
            assert num == pytest.approx(1 / (i + 1), rel=1e-8)

    def test_gaussian_moment_numeric(self):
        # int_0^1 exp(-4 r^2) r^3 dr has closed form (1 - 5 e^-4)/32
        expected = (1 - 5 * math.exp(-4)) / 32
        assert gaussian_influence.moment(3) == pytest.approx(expected, rel=1e-6)

    def test_negative_moment_order_rejected(self):
        with pytest.raises(ValueError):
            influence_moment(constant_influence, -1)

    def test_custom_influence(self):
        J = InfluenceFunction("quadratic", lambda r: r ** 2)
        assert J.moment(1) == pytest.approx(1 / 4, rel=1e-8)


class TestModelConstant:
    def test_2d_constant_paper_formula(self):
        """c = 2k / (pi eps^4 M3); with J=1, M3=1/4 -> c = 8k/(pi eps^4)."""
        m = NonlocalHeatModel(epsilon=0.1, kappa=2.0)
        expected = 8 * 2.0 / (math.pi * 0.1 ** 4)
        assert m.c == pytest.approx(expected)

    def test_1d_constant_paper_formula(self):
        """c = k / (eps^3 M2); with J=1, M2=1/3 -> c = 3k/eps^3."""
        m = NonlocalHeatModel(epsilon=0.2, kappa=1.0, dim=1)
        assert m.c == pytest.approx(3 / 0.2 ** 3)

    def test_c_scales_with_kappa(self):
        a = NonlocalHeatModel(epsilon=0.1, kappa=1.0)
        b = NonlocalHeatModel(epsilon=0.1, kappa=3.0)
        assert b.c == pytest.approx(3 * a.c)

    def test_validation(self):
        with pytest.raises(ValueError):
            NonlocalHeatModel(epsilon=0.0)
        with pytest.raises(ValueError):
            NonlocalHeatModel(epsilon=0.1, kappa=-1.0)
        with pytest.raises(ValueError):
            NonlocalHeatModel(epsilon=0.1, dim=3)

    def test_linear_influence_changes_c(self):
        a = NonlocalHeatModel(epsilon=0.1)
        b = NonlocalHeatModel(epsilon=0.1, influence=linear_influence)
        # M3 drops from 1/4 to 1/20 -> c grows 5x
        assert b.c == pytest.approx(5 * a.c)
