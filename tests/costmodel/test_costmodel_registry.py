"""Cost-model registry semantics: the same selection contract as the
kernel-backend and balancer registries.

Explicit names win over the environment; ``REPRO_COST_MODEL`` reroutes
only ``"auto"`` requests (``=auto`` means "no override"); unresolved
``"auto"`` falls back to the ``flat`` default — the seed arithmetic —
so every pre-existing scenario and golden is untouched.
"""

import pytest

from repro.costmodel import (AUTO, DEFAULT, ENV_VAR, CostModel,
                             FlatCostModel, HierarchyCostModel, WorkItem,
                             cost_model_names, get_cost_model_class,
                             make_cost_model, register_cost_model,
                             requested_cost_model)
from repro.costmodel.hierarchy import DEFAULT_HIERARCHY, MemoryHierarchy, \
    MemoryLevel

ALL_MODELS = cost_model_names()


class TestRegistry:
    def test_two_models_registered(self):
        assert ALL_MODELS == ["flat", "hierarchy"]

    def test_get_cost_model_class_roundtrip(self):
        for name in ALL_MODELS:
            assert get_cost_model_class(name).name == name

    def test_default_is_flat(self):
        assert DEFAULT == "flat"
        assert ENV_VAR == "REPRO_COST_MODEL"

    def test_unknown_model_rejected(self):
        with pytest.raises(KeyError, match="unknown cost model"):
            get_cost_model_class("oracle")
        with pytest.raises(ValueError, match="unknown cost model"):
            requested_cost_model("oracle")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_cost_model("flat")(get_cost_model_class("flat"))

    def test_auto_is_reserved(self):
        with pytest.raises(ValueError, match="reserved"):
            register_cost_model(AUTO)(get_cost_model_class("flat"))

    def test_explicit_name_passes_through(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "hierarchy")
        # explicit names win over the environment
        assert requested_cost_model("flat") == "flat"

    def test_env_forces_auto(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "hierarchy")
        assert requested_cost_model(AUTO) == "hierarchy"

    def test_env_unset_leaves_auto(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        assert requested_cost_model(AUTO) == AUTO

    def test_env_auto_means_no_override(self, monkeypatch):
        """Exporting REPRO_COST_MODEL=auto must behave like not setting
        it, not error out as an unknown model."""
        monkeypatch.setenv(ENV_VAR, "auto")
        assert requested_cost_model(AUTO) == AUTO
        assert requested_cost_model("hierarchy") == "hierarchy"

    def test_env_with_unknown_model_rejected(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "oracle")
        with pytest.raises(ValueError, match="REPRO_COST_MODEL"):
            requested_cost_model(AUTO)


class TestMakeCostModel:
    def test_auto_resolves_to_flat(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        model = make_cost_model()
        assert isinstance(model, FlatCostModel)
        assert model.name == "flat"

    def test_env_reroutes_auto(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "hierarchy")
        assert isinstance(make_cost_model(AUTO), HierarchyCostModel)
        # ...but an explicit request keeps its pin
        assert isinstance(make_cost_model("flat"), FlatCostModel)

    def test_memory_reaches_the_hierarchy_model(self):
        ladder = MemoryHierarchy(levels=(
            MemoryLevel("L1", 1024, 1e11, 1e-9),))
        model = make_cost_model("hierarchy", memory=ladder)
        assert model.memory is ladder
        # None means the model's own default
        assert make_cost_model("hierarchy").memory is DEFAULT_HIERARCHY

    def test_flat_ignores_memory(self):
        model = make_cost_model("flat", memory=DEFAULT_HIERARCHY)
        item = WorkItem(count=7, flops=26.0, work_factor=1.5,
                        backend="direct", rows=8, cols=8, radius=2)
        assert model.task_work(item) == 7 * 26.0 * 1.5


class TestSolverResolution:
    """The DistributedSolver resolves its cost model exactly like its
    kernel backend: spec name → env override of auto → flat default."""

    def make_solver(self, **kw):
        from repro.mesh.grid import UniformGrid
        from repro.mesh.subdomain import SubdomainGrid
        from repro.partition.geometric import block_partition
        from repro.solver.distributed import DistributedSolver
        from repro.solver.model import NonlocalHeatModel
        grid = UniformGrid(16, 16)
        model = NonlocalHeatModel(epsilon=2 * grid.h)
        sg = SubdomainGrid(16, 16, 2, 2)
        return DistributedSolver(model, grid, sg, block_partition(2, 2, 2),
                                 num_nodes=2, compute_numerics=False, **kw)

    def test_default_is_flat(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        solver = self.make_solver()
        assert solver.cost_model_resolved == "flat"
        assert isinstance(solver.cost_model, FlatCostModel)

    def test_env_forces_default(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "hierarchy")
        assert self.make_solver().cost_model_resolved == "hierarchy"

    def test_explicit_name_beats_env(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "hierarchy")
        assert self.make_solver(
            cost_model="flat").cost_model_resolved == "flat"

    def test_prebuilt_instance_accepted(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "flat")
        prebuilt = HierarchyCostModel()
        solver = self.make_solver(cost_model=prebuilt)
        assert solver.cost_model is prebuilt
        assert solver.cost_model_resolved == "hierarchy"
        assert isinstance(prebuilt, CostModel)

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown cost model"):
            self.make_solver(cost_model="oracle")

    def test_record_carries_the_resolved_model(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        from repro.experiments import build, run_scenario
        auto = run_scenario(build("quickstart", nx=16, sd_axis=2, nodes=2,
                                  steps=1))
        assert auto.spec["cost_model"] == "auto"
        assert auto.cost_model_resolved == "flat"
        pinned = run_scenario(build("quickstart", nx=16, sd_axis=2, nodes=2,
                                    steps=1).replace(cost_model="hierarchy"))
        assert pinned.spec["cost_model"] == "hierarchy"
        assert pinned.cost_model_resolved == "hierarchy"
