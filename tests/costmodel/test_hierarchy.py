"""The stack-distance machinery: hierarchy pricing, offline profiles,
slowdown memoization, and the JSON round-trip of the new spec fields.
"""

import math

import pytest

from repro.costmodel import (FlatCostModel, HierarchyCostModel, WorkItem,
                             clear_profile_cache, profile_cache_info,
                             reuse_profile)
from repro.costmodel.hierarchy import DEFAULT_HIERARCHY, REFERENCE_RATE, \
    MemoryHierarchy, MemoryLevel
from repro.experiments.spec import ClusterSpec, MemoryLevelSpec, MemorySpec

L1 = MemoryLevel("L1", 1024, 4e11, 1e-9)
L2 = MemoryLevel("L2", 64 * 1024, 2e11, 4e-9)
LADDER = MemoryHierarchy(levels=(L1, L2),
                         dram_bandwidth=2e10, dram_latency=8e-8)


class TestMemoryHierarchy:
    def test_access_hits_first_fitting_level(self):
        assert LADDER.access_time(512) == L1.latency + 8.0 / L1.bandwidth
        assert LADDER.access_time(1024) == L1.latency + 8.0 / L1.bandwidth
        assert LADDER.access_time(2048) == L2.latency + 8.0 / L2.bandwidth

    def test_oversized_window_falls_through_to_dram(self):
        dram = LADDER.dram_latency + 8.0 / LADDER.dram_bandwidth
        assert LADDER.access_time(10 * 1024 * 1024) == dram
        assert LADDER.access_time(math.inf) == dram

    def test_levels_must_be_ordered_by_capacity(self):
        with pytest.raises(ValueError, match="ordered by capacity"):
            MemoryHierarchy(levels=(L2, L1))

    def test_bad_level_and_dram_parameters_rejected(self):
        with pytest.raises(ValueError, match="bad memory level"):
            MemoryHierarchy(levels=(MemoryLevel("L1", 0, 1e11, 1e-9),))
        with pytest.raises(ValueError, match="bad DRAM"):
            MemoryHierarchy(levels=(L1,), dram_bandwidth=-1.0)

    def test_default_ladder_is_three_deep_and_monotone(self):
        caps = [lv.capacity for lv in DEFAULT_HIERARCHY.levels]
        assert len(caps) == 3 and caps == sorted(caps)
        # access cost must grow down the ladder
        times = [DEFAULT_HIERARCHY.access_time(c) for c in caps]
        assert times == sorted(times)
        assert DEFAULT_HIERARCHY.access_time(caps[-1] * 2) > times[-1]


class TestReuseProfiles:
    def test_distances_are_a_distribution(self):
        for backend in ("direct", "fft", "sparse"):
            prof = reuse_profile(backend, 16, 16, 2)
            assert prof.accesses_per_dp > 0
            assert sum(p for _, p in prof.distances) == pytest.approx(1.0)

    def test_unknown_backend_gets_the_streaming_profile(self):
        unknown = reuse_profile("quantum", 16, 16, 2)
        sparse = reuse_profile("sparse", 16, 16, 2)
        assert unknown.accesses_per_dp == sparse.accesses_per_dp
        assert unknown.distances == sparse.distances

    def test_bad_shape_rejected(self):
        with pytest.raises(ValueError, match="bad block shape"):
            reuse_profile("direct", 0, 16, 2)
        with pytest.raises(ValueError, match="bad block shape"):
            reuse_profile("direct", 16, 16, -1)

    def test_profiles_are_cached_like_the_operator_cache(self):
        clear_profile_cache()
        reuse_profile("direct", 8, 8, 2)
        first = profile_cache_info()
        assert first.misses == 1
        again = reuse_profile("direct", 8, 8, 2)
        assert profile_cache_info().hits == first.hits + 1
        assert again is reuse_profile("direct", 8, 8, 2)

    def test_sparse_streams_mostly_to_dram(self):
        """The CSR profile's infinite-distance mass prices at DRAM no
        matter how large the caches are."""
        prof = reuse_profile("sparse", 8, 8, 2)
        assert any(math.isinf(d) for d, _ in prof.distances)
        t = prof.mem_time_per_dp(DEFAULT_HIERARCHY)
        dram = DEFAULT_HIERARCHY.dram_latency \
            + 8.0 / DEFAULT_HIERARCHY.dram_bandwidth
        assert t > prof.accesses_per_dp * dram * 0.5


class TestHierarchyCostModel:
    ITEM = WorkItem(count=64, flops=26.0, work_factor=1.5,
                    backend="direct", rows=8, cols=8, radius=2)

    def test_slowdown_scales_the_flat_work(self):
        model = HierarchyCostModel()
        flat = FlatCostModel()
        s = model.slowdown("direct", 8, 8, 2, 26.0)
        assert s > 1.0
        assert model.task_work(self.ITEM) == flat.task_work(self.ITEM) * s
        assert model.work_scale(self.ITEM) == s

    def test_shapeless_items_fall_back_to_flat(self):
        model = HierarchyCostModel()
        flat = FlatCostModel()
        for degenerate in (
                WorkItem(count=64, flops=26.0),                # no shape
                WorkItem(count=64, flops=26.0, rows=8, cols=8),  # no backend
                WorkItem(count=64, flops=26.0, backend="direct",
                         rows=0, cols=8),
                WorkItem(count=64, flops=0.0, backend="direct",
                         rows=8, cols=8)):
            assert model.task_work(degenerate) == flat.task_work(degenerate)
            assert model.work_scale(degenerate) == 1.0

    def test_slowdowns_are_memoized_per_model(self):
        model = HierarchyCostModel()
        assert model._slowdowns == {}
        first = model.task_work(self.ITEM)
        assert len(model._slowdowns) == 1
        assert model.task_work(self.ITEM) == first
        assert len(model._slowdowns) == 1

    def test_slowdown_is_deterministic_across_instances(self):
        a = HierarchyCostModel().task_work(self.ITEM)
        clear_profile_cache()
        b = HierarchyCostModel().task_work(self.ITEM)
        assert a == b

    def test_task_time_integrates_through_a_bare_rate(self):
        model = HierarchyCostModel()
        work = model.task_work(self.ITEM)
        assert model.task_time(self.ITEM, REFERENCE_RATE) == \
            work / REFERENCE_RATE

    def test_tighter_caches_cost_more(self):
        tiny = HierarchyCostModel(memory=MemoryHierarchy(levels=(
            MemoryLevel("L1", 256, 4e11, 1e-9),)))
        roomy = HierarchyCostModel(memory=DEFAULT_HIERARCHY)
        assert tiny.task_work(self.ITEM) > roomy.task_work(self.ITEM)


class TestMemorySpecRoundTrip:
    def test_level_spec_round_trips(self):
        lv = MemoryLevelSpec("L1", 32 * 1024, 4e11, 1e-9)
        assert MemoryLevelSpec.from_dict(lv.to_dict()) == lv

    def test_memory_spec_round_trips(self):
        spec = MemorySpec()
        clone = MemorySpec.from_dict(spec.to_dict())
        assert clone == spec
        assert clone.build() == DEFAULT_HIERARCHY

    def test_memory_spec_validates_eagerly(self):
        big = MemoryLevelSpec("L3", 8 << 20, 1e11, 1.2e-8)
        small = MemoryLevelSpec("L1", 32 * 1024, 4e11, 1e-9)
        with pytest.raises(ValueError, match="ordered by capacity"):
            MemorySpec(levels=(big, small))
        with pytest.raises(ValueError, match="capacity"):
            MemoryLevelSpec("L1", -1, 4e11, 1e-9)

    def test_cluster_spec_carries_the_hierarchy(self):
        cluster = ClusterSpec(num_nodes=4, memory=MemorySpec())
        clone = ClusterSpec.from_dict(cluster.to_dict())
        assert clone == cluster
        assert clone.build_memory() == DEFAULT_HIERARCHY
        # legacy dicts (no memory key) and the default stay hierarchy-free
        d = ClusterSpec(num_nodes=4).to_dict()
        assert d["memory"] is None
        del d["memory"]
        assert ClusterSpec.from_dict(d).build_memory() is None

    def test_scenario_spec_round_trips_cost_model_fields(self):
        from repro.experiments import build
        spec = build("abl_costmodel", steps=1)
        assert spec.cost_model == "hierarchy"
        assert spec.cluster.memory is not None
        clone = type(spec).from_dict(spec.to_dict())
        assert clone == spec

    def test_service_spec_round_trips_cost_model(self):
        from repro.experiments import build
        from repro.service import ServiceSpec
        spec = build("service_poisson").replace(cost_model="hierarchy")
        clone = ServiceSpec.from_dict(spec.to_dict())
        assert clone == spec
        # legacy dicts predate the field: default back to auto
        d = spec.to_dict()
        del d["cost_model"]
        assert ServiceSpec.from_dict(d).cost_model == "auto"

    def test_unknown_cost_model_rejected_at_construction(self):
        from repro.experiments import build
        with pytest.raises(ValueError, match="unknown cost model"):
            build("quickstart").replace(cost_model="oracle")
        from repro.service import ServiceSpec
        with pytest.raises(ValueError, match="unknown cost model"):
            build("service_poisson").replace(cost_model="oracle")
