"""Flat-model bit-parity: the cost-model layer must be invisible.

The refactor's safety contract (DESIGN.md substitution 7): with the
``flat`` model — whether requested explicitly, resolved from ``auto``,
or forced through ``REPRO_COST_MODEL`` — every schedule is
bit-identical to the pre-refactor seed arithmetic.  Pinned here as

* the ``fault_recovery`` golden (committed before the cost-model layer
  existed; its schedule values must keep matching exactly),
* RunRecord equality between ``auto``-resolved, explicitly pinned, and
  env-forced flat runs, on the distributed solver and on all three
  curated service workloads, with wave batching on and off.
"""

import json
import os

import pytest

from repro.costmodel import ENV_VAR
from repro.experiments import build, run_scenario
from repro.service.runner import run_service

GOLDEN = os.path.join(os.path.dirname(__file__), "..", "golden",
                      "fault_recovery.json")

#: schedule quantities — exact, machine-independent virtual time
SCHEDULE_FIELDS = ("makespan", "step_durations", "imbalance_history",
                   "ghost_bytes", "bytes_by_class", "balance_events",
                   "recovery_events", "parts_events", "final_parts",
                   "busy_total")

SERVICE_SCENARIOS = ("service_poisson", "service_bursty",
                     "service_overload")


def records_equal(a, b, ignore_spec=False):
    da, db = a.to_dict(), b.to_dict()
    if ignore_spec:
        da.pop("spec"), db.pop("spec")
        da.pop("cost_model_resolved"), db.pop("cost_model_resolved")
    return da == db


class TestDistributedFlatParity:
    @pytest.mark.parametrize("waves", ["0", "1"])
    def test_fault_recovery_matches_golden_schedule(self, monkeypatch,
                                                    waves):
        """The flat run reproduces the golden's schedule bit for bit —
        with and without wave batching (both must resolve the same
        work floats)."""
        monkeypatch.setenv("REPRO_DES_WAVE", waves)
        with open(GOLDEN, "r", encoding="utf-8") as fh:
            golden = json.load(fh)["record"]
        rec = run_scenario(build("fault_recovery")).to_dict()
        for field in SCHEDULE_FIELDS:
            assert rec[field] == golden[field], field
        assert rec["cost_model_resolved"] == "flat"

    def test_auto_explicit_and_env_flat_agree(self, monkeypatch):
        spec = build("quickstart", nx=32, sd_axis=4, nodes=4, steps=3)
        monkeypatch.delenv(ENV_VAR, raising=False)
        auto = run_scenario(spec)
        monkeypatch.setenv(ENV_VAR, "flat")
        forced = run_scenario(spec)
        assert records_equal(auto, forced)  # specs both say "auto"
        monkeypatch.delenv(ENV_VAR, raising=False)
        pinned = run_scenario(spec.replace(cost_model="flat"))
        assert pinned.cost_model_resolved == auto.cost_model_resolved \
            == "flat"
        assert records_equal(auto, pinned, ignore_spec=True)

    def test_hierarchy_actually_changes_the_schedule(self, monkeypatch):
        """The parity above is meaningful only if a non-flat model
        would have been visible."""
        monkeypatch.delenv(ENV_VAR, raising=False)
        spec = build("quickstart", nx=32, sd_axis=4, nodes=4, steps=3)
        flat = run_scenario(spec)
        hier = run_scenario(spec.replace(cost_model="hierarchy"))
        assert hier.makespan > flat.makespan


class TestServiceFlatParity:
    @pytest.mark.parametrize("scenario", SERVICE_SCENARIOS)
    @pytest.mark.parametrize("waves", [True, False],
                             ids=["waves-on", "waves-off"])
    def test_env_flat_is_a_noop(self, monkeypatch, scenario, waves):
        spec = build(scenario)
        monkeypatch.delenv(ENV_VAR, raising=False)
        auto = run_service(spec, wave_batching=waves)
        monkeypatch.setenv(ENV_VAR, "flat")
        forced = run_service(spec, wave_batching=waves)
        assert auto.cost_model_resolved == forced.cost_model_resolved \
            == "flat"
        assert records_equal(auto, forced)

    @pytest.mark.parametrize("scenario", SERVICE_SCENARIOS)
    def test_explicit_flat_pin_is_a_noop(self, monkeypatch, scenario):
        monkeypatch.delenv(ENV_VAR, raising=False)
        auto = run_service(build(scenario))
        pinned = run_service(build(scenario).replace(cost_model="flat"))
        assert records_equal(auto, pinned, ignore_spec=True)
