"""Unit and property tests for the discrete-event simulation core."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.amt.des import SimulationError, Simulator


class TestScheduling:
    def test_clock_starts_at_zero(self):
        assert Simulator().now == 0.0

    def test_run_empty_returns_zero(self):
        assert Simulator().run() == 0.0

    def test_single_event_advances_clock(self):
        sim = Simulator()
        fired = []
        sim.schedule(2.5, lambda: fired.append(sim.now))
        assert sim.run() == 2.5
        assert fired == [2.5]

    def test_events_fire_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(3.0, lambda: order.append(3))
        sim.schedule(1.0, lambda: order.append(1))
        sim.schedule(2.0, lambda: order.append(2))
        sim.run()
        assert order == [1, 2, 3]

    def test_ties_break_by_priority_then_insertion(self):
        sim = Simulator()
        order = []
        sim.schedule(1.0, lambda: order.append("late-prio"), priority=5)
        sim.schedule(1.0, lambda: order.append("first-inserted"), priority=0)
        sim.schedule(1.0, lambda: order.append("second-inserted"), priority=0)
        sim.run()
        assert order == ["first-inserted", "second-inserted", "late-prio"]

    def test_schedule_in_past_raises(self):
        sim = Simulator()
        sim.schedule(5.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError, match="time moves forward"):
            sim.schedule(1.0, lambda: None)

    def test_schedule_after_negative_raises(self):
        with pytest.raises(SimulationError, match="negative delay"):
            Simulator().schedule_after(-1.0, lambda: None)

    def test_action_can_schedule_more_events(self):
        sim = Simulator()
        seen = []

        def chain(n):
            seen.append(sim.now)
            if n > 0:
                sim.schedule_after(1.0, lambda: chain(n - 1))

        sim.schedule(0.0, lambda: chain(3))
        sim.run()
        assert seen == [0.0, 1.0, 2.0, 3.0]

    def test_cancelled_event_is_skipped(self):
        sim = Simulator()
        fired = []
        ev = sim.schedule(1.0, lambda: fired.append("a"))
        sim.schedule(2.0, lambda: fired.append("b"))
        ev.cancel()
        sim.run()
        assert fired == ["b"]

    def test_pending_counts_noncancelled(self):
        sim = Simulator()
        ev = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        assert sim.pending() == 2
        ev.cancel()
        assert sim.pending() == 1


class TestRunControls:
    def test_run_until_stops_before_later_events(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(10.0, lambda: fired.append(10))
        sim.run(until=5.0)
        assert fired == [1]
        assert sim.now == 5.0
        # the remaining event is still there and fires on the next run
        sim.run()
        assert fired == [1, 10]

    def test_run_until_advances_clock_when_queue_drains_early(self):
        """The drained-queue path lands on ``until`` exactly like the
        later-event path: ``schedule(1.0); run(until=5.0)`` must leave
        the clock at 5.0, not parked on the last event time."""
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.run(until=5.0)
        assert fired == [1]
        assert sim.now == 5.0
        # successive windows tile virtual time without gaps
        sim.run(until=7.5)
        assert sim.now == 7.5

    def test_run_until_in_the_past_keeps_clock(self):
        sim = Simulator()
        sim.schedule(3.0, lambda: None)
        sim.run()
        assert sim.now == 3.0
        sim.run(until=1.0)  # empty queue, until behind now: no move
        assert sim.now == 3.0

    def test_run_until_exact_event_time_fires_then_holds(self):
        sim = Simulator()
        fired = []
        sim.schedule(2.0, lambda: fired.append(2))
        sim.run(until=2.0)
        assert fired == [2]
        assert sim.now == 2.0

    def test_max_events_guard(self):
        sim = Simulator()

        def forever():
            sim.schedule_after(1.0, forever)

        sim.schedule(0.0, forever)
        with pytest.raises(SimulationError, match="max_events"):
            sim.run(max_events=100)

    def test_step_executes_one_event(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(2.0, lambda: fired.append(2))
        assert sim.step()
        assert fired == [1]
        assert sim.step()
        assert not sim.step()

    def test_events_processed_counter(self):
        sim = Simulator()
        for t in (1.0, 2.0, 3.0):
            sim.schedule(t, lambda: None)
        sim.run()
        assert sim.events_processed == 3

    def test_not_reentrant(self):
        sim = Simulator()
        err = []

        def reenter():
            try:
                sim.run()
            except SimulationError as exc:
                err.append(str(exc))

        sim.schedule(1.0, reenter)
        sim.run()
        assert err and "reentrant" in err[0]


class TestDeterminismProperties:
    @given(st.lists(st.tuples(st.floats(min_value=0, max_value=1e6,
                                        allow_nan=False),
                              st.integers(min_value=-5, max_value=5)),
                    max_size=60))
    @settings(max_examples=60, deadline=None)
    def test_execution_order_is_deterministic(self, specs):
        """Two identical schedules run in an identical order."""
        def run_once():
            sim = Simulator()
            order = []
            for idx, (t, prio) in enumerate(specs):
                sim.schedule(t, lambda i=idx: order.append(i), priority=prio)
            sim.run()
            return order

        assert run_once() == run_once()

    @given(st.lists(st.floats(min_value=0, max_value=1e6, allow_nan=False),
                    max_size=60))
    @settings(max_examples=60, deadline=None)
    def test_fire_times_are_nondecreasing(self, times):
        sim = Simulator()
        fired = []
        for t in times:
            sim.schedule(t, lambda: fired.append(sim.now))
        sim.run()
        assert fired == sorted(fired)
        assert len(fired) == len(times)
