"""Barrier-aware wave batching and the task-group fast path.

The wave fast path historically had to be switched off whenever
independent jobs' ``local_when_all`` barriers interleaved on one node:
a batched wave resolved its member futures only when the whole wave
ended, so a barrier over an early member fired late.  These tests pin
the barrier-aware machinery that lifted that restriction:

* wave formation stops at the boundary of a second barrier group, so
  interleaved-job waves are simply not formed;
* a wave is unwound mid-flight the moment any member future gains a
  subscriber (the ``_wave`` trigger), so late subscriptions still see
  exact per-task resolution times;
* ``submit_group`` / ``send_group`` batch a whole cross-node group
  into one event while producing bit-identical telemetry, busy time,
  and barrier firing times to the per-event path;
* a mid-horizon ``run(until=...)`` cut materializes in-flight groups
  back into per-task form with no observable difference.

Each scenario runs once with batching on and once off and asserts the
observable streams are equal.
"""

from repro.amt.cluster import SimCluster
from repro.amt.future import local_when_all


def _two_clusters(n, **kw):
    return (SimCluster(n, wave_batching=True, **kw),
            SimCluster(n, wave_batching=False, **kw))


class TestBarrierAwareWaves:
    def test_single_barrier_run_still_batches(self):
        """One barrier over the whole backlog (the solver's shape):
        the wave fast path must still collapse it to O(1) events."""
        results = {}
        for mode in (True, False):
            c = SimCluster(1, wave_batching=mode)
            futs = [c.submit(0, 10.0) for _ in range(100)]
            fired = []
            local_when_all(futs)._add_callback(lambda _f, c=c: fired.append(c.now))
            c.run()
            results[mode] = fired
            if mode:
                assert c.sim.events_processed <= 3
        assert results[True] == results[False] == [1000.0]

    def test_interleaved_job_barriers_fire_at_their_own_times(self):
        """Two jobs' barriers interleave on one node: each must fire
        when its own tasks are done, not when the backlog drains."""
        results = {}
        for mode in (True, False):
            c = SimCluster(1, wave_batching=mode)
            a = [c.submit(0, 10.0), c.submit(0, 10.0)]
            b = [c.submit(0, 10.0), c.submit(0, 10.0)]
            fired = {}
            local_when_all(a)._add_callback(
                lambda _f, c=c: fired.setdefault("A", c.now))
            local_when_all(b)._add_callback(
                lambda _f, c=c: fired.setdefault("B", c.now))
            c.run()
            results[mode] = fired
        # submission order on the FIFO node: a0 a1 b0 b1
        assert results[True] == results[False] == {"A": 20.0, "B": 40.0}

    def test_mid_wave_subscription_unwinds_the_wave(self):
        """Subscribing to a member future while its wave is in flight
        must observe the member's exact per-task completion time."""
        results = {}
        for mode in (True, False):
            c = SimCluster(1, wave_batching=mode)
            futs = [c.submit(0, 10.0) for _ in range(5)]
            seen = []
            # at t=25 (mid-wave), subscribe to task 3 (finishes at 40)
            c.timer(25.0).then(
                lambda _f: futs[3]._add_callback(
                    lambda _g: seen.append(c.now)))
            c.run()
            results[mode] = seen
        assert results[True] == results[False] == [40.0]


class TestTaskGroups:
    def test_group_chain_matches_per_event_path(self):
        """A 3-step submit_group/send_group chain over 3 nodes: same
        barrier times, same busy time, far fewer events."""
        logs = {}
        events = {}
        for mode in (True, False):
            c = SimCluster(3, wave_batching=mode)
            log = []

            def step(k, c=c, log=log):
                if k == 3:
                    return
                fut = c.submit_group([10.0, 20.0, 15.0])
                fut._add_callback(lambda _f: (
                    log.append((k, c.now)),
                    send(k)))

            def send(k, c=c):
                fut = c.send_group([(0, 1, 800), (1, 2, 800)])
                fut._add_callback(lambda _f: step(k + 1))

            step(0)
            c.run()
            log.append(("busy", [round(c.busy_time(n), 9)
                                 for n in range(3)]))
            logs[mode] = log
            events[mode] = c.sim.events_processed
        assert logs[True] == logs[False]
        assert events[True] < events[False]

    def test_group_callback_mode_matches_future_mode(self):
        """submit_group(callback=...) fires exactly where the barrier
        future would have resolved."""
        fired = {}
        for label, use_cb in (("cb", True), ("fut", False)):
            c = SimCluster(2, wave_batching=True)
            times = []
            if use_cb:
                c.submit_group([10.0, 30.0],
                               callback=lambda: times.append(c.now))
            else:
                c.submit_group([10.0, 30.0])._add_callback(
                    lambda _f: times.append(c.now))
            c.run()
            fired[label] = times
        assert fired["cb"] == fired["fut"] == [30.0]

    def test_mid_horizon_cut_and_resume(self):
        """run(until=) through in-flight groups, then resume: the
        materialized continuation must finish identically."""
        results = {}
        for mode in (True, False):
            c = SimCluster(1, wave_batching=mode)
            log = []

            def chain(k, c=c, log=log):
                if k == 4:
                    return
                c.submit_group([20.0])._add_callback(
                    lambda _f: (log.append((k, c.now)), chain(k + 1)))

            chain(0)
            c.run(until=25.0)
            mid_busy = round(c.busy_time(0), 9)
            mid_now = c.now
            c.run()
            results[mode] = (log, mid_busy, mid_now,
                             round(c.busy_time(0), 9))
        assert results[True] == results[False]
        assert results[True][0] == [(0, 20.0), (1, 40.0), (2, 60.0),
                                    (3, 80.0)]

    def test_group_falls_back_on_ineligible_node(self):
        """Multi-core nodes take the classic path but the barrier
        semantics are unchanged."""
        c = SimCluster(2, cores_per_node=2, wave_batching=True)
        times = []
        c.submit_group([10.0, 30.0])._add_callback(
            lambda _f: times.append(c.now))
        c.run()
        assert times == [30.0]

    def test_counters_flush_through_busy_time_reads(self):
        """busy_time() mid-run sees the completed prefix of pending
        group entries without materializing them."""
        c = SimCluster(1, wave_batching=True)
        c.submit_group([10.0])
        c.submit_group([10.0])
        c.run(until=15.0)
        assert c.busy_time(0) == 10.0
        c.run()
        assert c.busy_time(0) == 20.0
