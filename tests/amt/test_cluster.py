"""Tests for the simulated cluster: nodes, network, speed traces."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.amt.cluster import (ConstantSpeed, Network, PiecewiseSpeed,
                               RampSpeed, SimCluster)
from repro.amt.des import SimulationError


class TestSpeedTraces:
    def test_constant_rate(self):
        tr = ConstantSpeed(2.0)
        assert tr.rate(0.0) == 2.0
        assert tr.time_to_complete(10.0, 0.0) == 5.0

    def test_constant_invalid_rate(self):
        with pytest.raises(ValueError):
            ConstantSpeed(0.0)

    def test_constant_negative_work(self):
        with pytest.raises(ValueError):
            ConstantSpeed(1.0).time_to_complete(-1.0, 0.0)

    def test_piecewise_rate_lookup(self):
        tr = PiecewiseSpeed([10.0], [1.0, 4.0])
        assert tr.rate(5.0) == 1.0
        assert tr.rate(10.0) == 4.0
        assert tr.rate(100.0) == 4.0

    def test_piecewise_integrates_across_breakpoint(self):
        # 5 units at rate 1 (takes 5s to t=10 boundary? start at t=7):
        # from t=7 to t=10 at rate 1 -> 3 units, remaining 2 at rate 4 -> 0.5s
        tr = PiecewiseSpeed([10.0], [1.0, 4.0])
        assert tr.time_to_complete(5.0, 7.0) == pytest.approx(3.5)

    def test_piecewise_entirely_in_last_segment(self):
        tr = PiecewiseSpeed([10.0], [1.0, 4.0])
        assert tr.time_to_complete(8.0, 20.0) == pytest.approx(2.0)

    def test_piecewise_validation(self):
        with pytest.raises(ValueError):
            PiecewiseSpeed([1.0], [1.0])  # wrong rate count
        with pytest.raises(ValueError):
            PiecewiseSpeed([2.0, 1.0], [1.0, 1.0, 1.0])  # not increasing
        with pytest.raises(ValueError):
            PiecewiseSpeed([1.0], [1.0, -1.0])  # negative rate

    @given(work=st.floats(min_value=0, max_value=1e4),
           t0=st.floats(min_value=0, max_value=100))
    @settings(max_examples=50, deadline=None)
    def test_piecewise_consistent_with_manual_integration(self, work, t0):
        tr = PiecewiseSpeed([5.0, 15.0], [2.0, 1.0, 3.0])
        dt = tr.time_to_complete(work, t0)
        # integrate rate over [t0, t0+dt] manually
        done, t, end = 0.0, t0, t0 + dt
        for b in [5.0, 15.0, float("inf")]:
            seg_end = min(b, end)
            if seg_end > t:
                done += (seg_end - t) * tr.rate(t)
                t = seg_end
            if t >= end:
                break
        assert done == pytest.approx(work, abs=1e-6, rel=1e-6)


class TestRampSpeed:
    def test_rate_profile(self):
        tr = RampSpeed(1.0, 3.0, 10.0, 20.0)
        assert tr.rate(0.0) == 1.0
        assert tr.rate(10.0) == 1.0
        assert tr.rate(15.0) == pytest.approx(2.0)
        assert tr.rate(20.0) == 3.0
        assert tr.rate(100.0) == 3.0

    def test_flat_head_segment(self):
        tr = RampSpeed(2.0, 4.0, 10.0, 20.0)
        # entirely before the ramp: plain constant rate
        assert tr.time_to_complete(10.0, 0.0) == pytest.approx(5.0)

    def test_integrates_across_the_ramp(self):
        tr = RampSpeed(1.0, 3.0, 10.0, 20.0)
        # full ramp holds the trapezoid area 0.5*(1+3)*10 = 20 units
        assert tr.time_to_complete(20.0, 10.0) == pytest.approx(10.0)
        # half the ramp area (5 units from rate 1 rising): solve the
        # quadratic 0.1*x^2 + x = 5 -> x = 5*(sqrt(3)-1)
        assert tr.time_to_complete(5.0, 10.0) == pytest.approx(
            5 * (3 ** 0.5 - 1))

    def test_spans_head_ramp_and_tail(self):
        tr = RampSpeed(1.0, 3.0, 10.0, 20.0)
        # 5 units head (5s) + 20 units ramp (10s) + 6 units tail (2s)
        assert tr.time_to_complete(31.0, 5.0) == pytest.approx(17.0)

    def test_downward_ramp(self):
        tr = RampSpeed(3.0, 1.0, 0.0, 10.0)
        assert tr.time_to_complete(20.0, 0.0) == pytest.approx(10.0)
        assert tr.rate(5.0) == pytest.approx(2.0)

    def test_equal_rates_degenerate_to_constant(self):
        tr = RampSpeed(2.0, 2.0, 1.0, 3.0)
        const = ConstantSpeed(2.0)
        for work, t0 in ((0.0, 0.0), (1.0, 0.5), (10.0, 2.0), (3.0, 9.0)):
            assert tr.time_to_complete(work, t0) == pytest.approx(
                const.time_to_complete(work, t0))

    @given(work=st.floats(0.0, 1e3), t0=st.floats(0.0, 40.0))
    @settings(max_examples=60, deadline=None)
    def test_completion_inverts_the_rate_integral(self, work, t0):
        """integral of rate over [t0, t0+dt] == work (the trace's
        contract with the simulator)."""
        tr = RampSpeed(0.5, 4.0, 10.0, 30.0)
        dt = tr.time_to_complete(work, t0)
        # numerically integrate the rate over [t0, t0 + dt]
        n = 4000
        ts = [t0 + dt * (i + 0.5) / n for i in range(n)]
        integral = sum(tr.rate(t) for t in ts) * (dt / n)
        assert integral == pytest.approx(work, rel=1e-3, abs=1e-6)

    def test_validation(self):
        with pytest.raises(ValueError):
            RampSpeed(0.0, 1.0, 0.0, 1.0)
        with pytest.raises(ValueError):
            RampSpeed(1.0, -1.0, 0.0, 1.0)
        with pytest.raises(ValueError):
            RampSpeed(1.0, 2.0, 5.0, 5.0)   # empty window
        with pytest.raises(ValueError):
            RampSpeed(1.0, 2.0, -1.0, 5.0)  # negative start
        with pytest.raises(ValueError):
            RampSpeed(1.0, 2.0, 0.0, 1.0).time_to_complete(-1.0, 0.0)


class TestNetwork:
    def test_self_send_is_free(self):
        net = Network(latency=1.0, bandwidth=1.0)
        assert net.plan_send(0, 0, 10_000, now=5.0) == 5.0
        assert net.bytes_sent == 0

    def test_latency_plus_wire_time(self):
        net = Network(latency=2.0, bandwidth=100.0, serialize_egress=False)
        assert net.plan_send(0, 1, 500, now=0.0) == pytest.approx(2.0 + 5.0)

    def test_egress_serialization(self):
        net = Network(latency=0.0, bandwidth=100.0, serialize_egress=True)
        t1 = net.plan_send(0, 1, 100, now=0.0)  # wire 1s -> arrives 1.0
        t2 = net.plan_send(0, 2, 100, now=0.0)  # waits for egress -> 2.0
        assert t1 == pytest.approx(1.0)
        assert t2 == pytest.approx(2.0)

    def test_different_sources_do_not_serialize(self):
        net = Network(latency=0.0, bandwidth=100.0, serialize_egress=True)
        t1 = net.plan_send(0, 1, 100, now=0.0)
        t2 = net.plan_send(1, 0, 100, now=0.0)
        assert t1 == t2 == pytest.approx(1.0)

    def test_stats_accumulate(self):
        net = Network()
        net.plan_send(0, 1, 100, now=0.0)
        net.plan_send(1, 0, 50, now=0.0)
        assert net.bytes_sent == 150
        assert net.messages_sent == 2
        net.reset_stats()
        assert net.bytes_sent == 0

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            Network(latency=-1.0)
        with pytest.raises(ValueError):
            Network(bandwidth=0.0)
        with pytest.raises(ValueError):
            Network().plan_send(0, 1, -5, now=0.0)


class TestSimCluster:
    def test_single_task_runs_for_work_over_rate(self):
        cluster = SimCluster(num_nodes=1, speeds=[ConstantSpeed(2.0)])
        fut = cluster.submit(0, work=10.0)
        end = cluster.run()
        assert end == pytest.approx(5.0)
        assert fut.is_ready()

    def test_action_result_lands_in_future(self):
        cluster = SimCluster(num_nodes=1)
        fut = cluster.submit(0, work=1.0, action=lambda: "payload")
        cluster.run()
        assert fut.get() == "payload"

    def test_action_exception_lands_in_future(self):
        cluster = SimCluster(num_nodes=1)

        def bad():
            raise RuntimeError("kernel failed")

        fut = cluster.submit(0, work=1.0, action=bad)
        cluster.run()
        with pytest.raises(RuntimeError, match="kernel failed"):
            fut.get()

    def test_single_core_serializes_tasks(self):
        cluster = SimCluster(num_nodes=1, cores_per_node=1)
        cluster.submit(0, work=3.0)
        cluster.submit(0, work=4.0)
        assert cluster.run() == pytest.approx(7.0)

    def test_two_cores_run_in_parallel(self):
        cluster = SimCluster(num_nodes=1, cores_per_node=2)
        cluster.submit(0, work=3.0)
        cluster.submit(0, work=4.0)
        assert cluster.run() == pytest.approx(4.0)

    def test_nodes_run_independently(self):
        cluster = SimCluster(num_nodes=2)
        cluster.submit(0, work=10.0)
        cluster.submit(1, work=2.0)
        assert cluster.run() == pytest.approx(10.0)

    def test_heterogeneous_speeds(self):
        cluster = SimCluster(num_nodes=2,
                             speeds=[ConstantSpeed(1.0), ConstantSpeed(4.0)])
        cluster.submit(0, work=8.0)
        cluster.submit(1, work=8.0)
        cluster.run()
        assert cluster.busy_time(0) == pytest.approx(8.0)
        assert cluster.busy_time(1) == pytest.approx(2.0)

    def test_dependency_delays_start(self):
        cluster = SimCluster(num_nodes=2)
        first = cluster.submit(0, work=5.0)
        second = cluster.submit(1, work=1.0, deps=[first])
        end = cluster.run()
        assert end == pytest.approx(6.0)
        assert second.is_ready()

    def test_message_delivery_time(self):
        net = Network(latency=1.0, bandwidth=100.0, serialize_egress=False)
        cluster = SimCluster(num_nodes=2, network=net)
        msg = cluster.send(0, 1, nbytes=200, payload=[1, 2, 3])
        cluster.run()
        assert cluster.now == pytest.approx(3.0)
        assert msg.get() == [1, 2, 3]

    def test_task_waiting_on_message(self):
        net = Network(latency=2.0, bandwidth=1e9, serialize_egress=False)
        cluster = SimCluster(num_nodes=2, network=net)
        msg = cluster.send(0, 1, nbytes=0, payload="ghost")
        fut = cluster.submit(1, work=1.0, deps=[msg])
        end = cluster.run()
        assert end == pytest.approx(3.0)
        assert fut.is_ready()

    def test_busy_fraction_and_idle(self):
        cluster = SimCluster(num_nodes=2)
        cluster.submit(0, work=4.0)
        cluster.submit(1, work=1.0)
        cluster.run()
        assert cluster.busy_fraction(0) == pytest.approx(1.0)
        assert cluster.busy_fraction(1) == pytest.approx(0.25)
        assert cluster.idle_time(1) == pytest.approx(3.0)

    def test_reset_counters_starts_new_window(self):
        cluster = SimCluster(num_nodes=1)
        cluster.submit(0, work=4.0)
        cluster.run()
        cluster.reset_counters()
        assert cluster.busy_time(0) == 0.0
        cluster.submit(0, work=2.0)
        cluster.run()
        assert cluster.busy_time(0) == pytest.approx(2.0)
        assert cluster.busy_fraction(0) == pytest.approx(1.0)

    def test_reset_counters_with_in_flight_work_clips_the_window(self):
        """A balance-poll-style reset while a task is mid-execution:
        the new window must measure only post-reset busy time, not the
        task's whole span (the busy-window bug inflated eq-8 node power
        for exactly this case)."""
        cluster = SimCluster(num_nodes=2)
        cluster.submit(0, work=10.0)   # in flight across the poll
        cluster.submit(1, work=2.0)    # quiescent by the poll
        cluster.run(until=4.0)
        assert cluster.now == 4.0
        assert cluster.nodes[0].running  # genuinely mid-task
        cluster.reset_counters()
        assert cluster.busy_time(0) == 0.0
        cluster.run()
        # window: only the 6 busy seconds after the poll
        assert cluster.busy_time(0) == pytest.approx(6.0)
        assert cluster.busy_fraction(0) == pytest.approx(1.0)
        # lifetime keeps the full span
        assert cluster.nodes[0].counter.total() == pytest.approx(10.0)
        assert cluster.busy_time(1) == 0.0

    def test_unknown_node_raises(self):
        cluster = SimCluster(num_nodes=1)
        with pytest.raises(SimulationError, match="unknown node"):
            cluster.submit(5, work=1.0)

    def test_speed_list_length_checked(self):
        with pytest.raises(ValueError):
            SimCluster(num_nodes=2, speeds=[ConstantSpeed(1.0)])

    def test_stats_tracked(self):
        cluster = SimCluster(num_nodes=1)
        cluster.submit(0, work=2.0)
        cluster.submit(0, work=3.0)
        cluster.run()
        node = cluster.nodes[0]
        assert node.tasks_completed == 2
        assert node.work_completed == pytest.approx(5.0)

    def test_determinism_of_schedule(self):
        def run_once():
            cluster = SimCluster(num_nodes=3, cores_per_node=2)
            futs = []
            for i in range(20):
                futs.append(cluster.submit(i % 3, work=1.0 + (i % 7)))
            end = cluster.run()
            return end, cluster.busy_time(0), cluster.busy_time(1)

        assert run_once() == run_once()


class TestDefaultRate:
    """``default_rate`` governs construction AND mid-run joiners.

    ``add_node(trace=None)`` used to hand every joiner a hard-coded
    ``ConstantSpeed(1.0)`` — on a service cluster running at 1e9
    flops/s the joiner was a billion times slow.
    """

    def test_construction_uses_default_rate(self):
        cluster = SimCluster(num_nodes=1, default_rate=4.0)
        cluster.submit(0, work=8.0)
        assert cluster.run() == pytest.approx(2.0)

    def test_joiner_inherits_default_rate(self):
        cluster = SimCluster(num_nodes=1, default_rate=4.0)
        nid = cluster.add_node()
        cluster.submit(nid, work=8.0)
        assert cluster.run() == pytest.approx(2.0)

    def test_joiner_inherits_default_rate_with_explicit_speeds(self):
        # explicit speeds don't change the joiner contract: trace=None
        # still means "the cluster default", not a bare 1.0
        cluster = SimCluster(num_nodes=1, speeds=[ConstantSpeed(2.0)],
                             default_rate=4.0)
        nid = cluster.add_node()
        cluster.submit(nid, work=8.0)
        assert cluster.run() == pytest.approx(2.0)

    def test_explicit_trace_still_wins(self):
        cluster = SimCluster(num_nodes=1, default_rate=4.0)
        nid = cluster.add_node(trace=ConstantSpeed(1.0))
        cluster.submit(nid, work=8.0)
        assert cluster.run() == pytest.approx(8.0)

    def test_default_rate_must_be_positive(self):
        with pytest.raises(ValueError, match="default_rate"):
            SimCluster(num_nodes=1, default_rate=0.0)


class TestNetworkingCounters:
    """The paper's future-work item: per-node networking counters."""

    def test_bytes_counted_on_both_ends(self):
        cluster = SimCluster(num_nodes=2)
        cluster.send(0, 1, nbytes=300)
        cluster.run()
        assert cluster.bytes_sent(0) == 300
        assert cluster.bytes_received(1) == 300
        assert cluster.bytes_sent(1) == 0
        assert cluster.bytes_received(0) == 0

    def test_self_send_not_counted(self):
        cluster = SimCluster(num_nodes=1)
        cluster.send(0, 0, nbytes=500)
        cluster.run()
        assert cluster.bytes_sent(0) == 0

    def test_registered_in_agas(self):
        cluster = SimCluster(num_nodes=2)
        assert cluster.agas.contains("/counters/node0/bytes_sent")
        assert cluster.agas.contains("/counters/node1/bytes_received")

    def test_reset_counters_zeroes_network_window(self):
        cluster = SimCluster(num_nodes=2)
        cluster.send(0, 1, nbytes=100)
        cluster.run()
        cluster.reset_counters()
        assert cluster.bytes_sent(0) == 0.0
        # lifetime total is preserved on the counter object
        c = cluster.agas.resolve("/counters/node0/bytes_sent")
        assert c.total() == 100.0

    def test_accumulates_across_messages(self):
        cluster = SimCluster(num_nodes=3)
        cluster.send(0, 1, nbytes=10)
        cluster.send(0, 2, nbytes=20)
        cluster.send(1, 0, nbytes=5)
        cluster.run()
        assert cluster.bytes_sent(0) == 30
        assert cluster.bytes_received(0) == 5


class TestTimer:
    def test_timer_resolves_after_delay(self):
        cluster = SimCluster(num_nodes=1)
        fut = cluster.timer(2.5, payload="tick")
        cluster.run()
        assert cluster.now == pytest.approx(2.5)
        assert fut.get() == "tick"

    def test_zero_delay_immediate(self):
        cluster = SimCluster(num_nodes=1)
        fut = cluster.timer(0.0)
        assert fut.is_ready()

    def test_negative_delay_rejected(self):
        cluster = SimCluster(num_nodes=1)
        with pytest.raises(SimulationError):
            cluster.timer(-1.0)

    def test_task_gated_by_timer(self):
        cluster = SimCluster(num_nodes=1)
        t = cluster.timer(3.0)
        cluster.submit(0, work=1.0, deps=[t])
        assert cluster.run() == pytest.approx(4.0)


class TestTracesAtExactBreakpoints:
    """Edge cases the fault layer leans on: starting, stopping, and
    measuring exactly at a trace's breakpoint times must be consistent
    between ``rate``, ``time_to_complete``, and ``work_until`` (the
    straggle composition walks these boundaries exactly)."""

    PW = PiecewiseSpeed([5.0, 15.0], [2.0, 1.0, 3.0])
    RAMP = RampSpeed(1.0, 3.0, 10.0, 20.0)

    def test_piecewise_start_at_breakpoint_uses_next_segment(self):
        # rate at the breakpoint belongs to the segment that starts
        assert self.PW.rate(5.0) == 1.0
        assert self.PW.rate(15.0) == 3.0
        assert self.PW.time_to_complete(3.0, 5.0) == pytest.approx(3.0)
        assert self.PW.time_to_complete(9.0, 15.0) == pytest.approx(3.0)

    def test_piecewise_work_ending_exactly_at_breakpoint(self):
        # 10 units from t=0: exactly consumes [0,5) at rate 2
        assert self.PW.time_to_complete(10.0, 0.0) == pytest.approx(5.0)
        # and the integral of the closed interval agrees
        assert self.PW.work_until(0.0, 5.0) == pytest.approx(10.0)

    def test_piecewise_work_until_across_both_breakpoints(self):
        # [0,5): 10, [5,15): 10, [15,20]: 15
        assert self.PW.work_until(0.0, 20.0) == pytest.approx(35.0)
        assert self.PW.work_until(5.0, 15.0) == pytest.approx(10.0)
        assert self.PW.work_until(15.0, 15.0) == 0.0
        with pytest.raises(ValueError):
            self.PW.work_until(2.0, 1.0)

    def test_piecewise_zero_work_at_breakpoint(self):
        assert self.PW.time_to_complete(0.0, 5.0) == 0.0
        assert self.PW.time_to_complete(0.0, 15.0) == 0.0

    def test_ramp_start_exactly_at_t0_and_t1(self):
        # at t0: the ramp begins (rate 1, rising)
        assert self.RAMP.rate(10.0) == 1.0
        assert self.RAMP.time_to_complete(20.0, 10.0) == pytest.approx(10.0)
        # at t1: constant tail
        assert self.RAMP.rate(20.0) == 3.0
        assert self.RAMP.time_to_complete(9.0, 20.0) == pytest.approx(3.0)

    def test_ramp_work_ending_exactly_at_t0(self):
        # 10 units of flat head from t=0 end exactly at the ramp foot
        assert self.RAMP.time_to_complete(10.0, 0.0) == pytest.approx(10.0)
        assert self.RAMP.work_until(0.0, 10.0) == pytest.approx(10.0)

    def test_ramp_work_until_trapezoid(self):
        assert self.RAMP.work_until(10.0, 20.0) == pytest.approx(20.0)
        assert self.RAMP.work_until(0.0, 25.0) == pytest.approx(
            10.0 + 20.0 + 15.0)
        assert self.RAMP.work_until(15.0, 15.0) == 0.0
        with pytest.raises(ValueError):
            self.RAMP.work_until(5.0, 4.0)

    @given(a=st.floats(0.0, 30.0), b=st.floats(0.0, 30.0))
    @settings(max_examples=40, deadline=None)
    def test_work_until_additive(self, a, b):
        lo, hi = sorted((a, b))
        mid = 0.5 * (lo + hi)
        for tr in (self.PW, self.RAMP, ConstantSpeed(2.5)):
            whole = tr.work_until(lo, hi)
            split = tr.work_until(lo, mid) + tr.work_until(mid, hi)
            assert whole == pytest.approx(split, rel=1e-12, abs=1e-12)

    @given(work=st.floats(0.0, 100.0), t0=st.floats(0.0, 30.0))
    @settings(max_examples=40, deadline=None)
    def test_work_until_inverts_time_to_complete(self, work, t0):
        for tr in (self.PW, self.RAMP):
            dt = tr.time_to_complete(work, t0)
            assert tr.work_until(t0, t0 + dt) == pytest.approx(
                work, rel=1e-9, abs=1e-9)
