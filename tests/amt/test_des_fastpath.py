"""DES fast-path contracts: queue backends, run controls, profiling.

The bucketed calendar queue must pop events in *exactly* the order of
the seed's binary heap — ``(time, priority, seq)`` tie-breaking is the
determinism contract everything downstream (goldens, benches, the
paper figures) rests on.  The hypothesis suites here drive both
backends (and ``auto`` promotion) with adversarial schedules, including
cancellations and events scheduled from inside actions.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.amt.des import SimulationError, Simulator

BACKENDS = ("heap", "bucket", "auto")

#: (time, priority) pairs with heavy collisions so tie-breaking matters
_specs = st.lists(
    st.tuples(st.floats(min_value=0, max_value=100, allow_nan=False),
              st.integers(min_value=-2, max_value=2)),
    max_size=120)


def _pop_order(queue, specs, cancel_every=0):
    """Fire a schedule on one backend; return the observed event order."""
    sim = Simulator(queue=queue)
    order = []
    events = []
    for idx, (t, prio) in enumerate(specs):
        events.append(
            sim.schedule(t, lambda i=idx: order.append(i), priority=prio))
    if cancel_every:
        for ev in events[::cancel_every]:
            ev.cancel()
    sim.run()
    return order, sim.now, sim.events_processed


class TestQueueEquivalence:
    @given(_specs)
    @settings(max_examples=80, deadline=None)
    def test_bucket_pops_in_heap_order(self, specs):
        heap = _pop_order("heap", specs)
        assert _pop_order("bucket", specs) == heap
        assert _pop_order("auto", specs) == heap

    @given(_specs, st.integers(min_value=2, max_value=5))
    @settings(max_examples=80, deadline=None)
    def test_equivalent_under_cancellation(self, specs, cancel_every):
        heap = _pop_order("heap", specs, cancel_every)
        assert _pop_order("bucket", specs, cancel_every) == heap
        assert _pop_order("auto", specs, cancel_every) == heap

    @given(st.lists(st.floats(min_value=0, max_value=10, allow_nan=False),
                    max_size=40))
    @settings(max_examples=40, deadline=None)
    def test_equivalent_with_nested_scheduling(self, times):
        """Actions scheduling more events exercise mid-run inserts —
        the calendar queue must file them into already-drained regions
        correctly (they land at or after ``now`` by construction)."""
        def run(queue):
            sim = Simulator(queue=queue)
            order = []

            def fire(i, t):
                order.append(i)
                sim.schedule_after(t % 3.0, lambda: order.append(-i - 1))

            for idx, t in enumerate(times):
                sim.schedule(t, lambda i=idx, tt=t: fire(i, tt))
            sim.run()
            return order

        assert run("bucket") == run("heap")

    def test_identical_time_storm_shares_a_bucket(self):
        """Thousands of same-time events: bucket width degenerates but
        order must still follow (priority, seq)."""
        def run(queue):
            sim = Simulator(queue=queue)
            order = []
            for i in range(3000):
                sim.schedule(1.0, lambda i=i: order.append(i),
                             priority=i % 3 - 1)
            sim.run()
            return order

        assert run("bucket") == run("heap")

    def test_auto_promotes_to_bucket_at_scale(self):
        sim = Simulator(queue="auto")
        assert sim._queue.kind == "heap"
        fired = []
        for i in range(5000):
            sim.schedule(float(i % 97), lambda i=i: fired.append(i))
        assert sim._queue.kind == "bucket"
        sim.run()
        assert len(fired) == 5000
        ref = Simulator(queue="heap")
        expect = []
        for i in range(5000):
            ref.schedule(float(i % 97), lambda i=i: expect.append(i))
        ref.run()
        assert fired == expect

    def test_unknown_backend_rejected(self):
        with pytest.raises(SimulationError, match="queue backend"):
            Simulator(queue="splay")

    def test_env_selects_backend(self, monkeypatch):
        monkeypatch.setenv("REPRO_DES_QUEUE", "bucket")
        assert Simulator().queue_kind == "bucket"
        monkeypatch.setenv("REPRO_DES_QUEUE", "heap")
        assert Simulator().queue_kind == "heap"
        monkeypatch.delenv("REPRO_DES_QUEUE")
        assert Simulator().queue_kind == "auto"


@pytest.mark.parametrize("queue", BACKENDS)
class TestRunControlEdges:
    def test_max_events_raises_before_popping(self, queue):
        """The guard fires *before* the offending event is popped or
        counted, so the schedule can resume exactly where it stopped
        (regression: the seed popped and counted event N+1 first)."""
        sim = Simulator(queue=queue)
        fired = []
        for t in (1.0, 2.0, 3.0):
            sim.schedule(t, lambda t=t: fired.append(t))
        with pytest.raises(SimulationError, match="max_events"):
            sim.run(max_events=2)
        assert fired == [1.0, 2.0]
        assert sim.events_processed == 2
        assert sim.pending() == 1
        # the untouched tail drains on the next run
        assert sim.run() == 3.0
        assert fired == [1.0, 2.0, 3.0]

    def test_max_events_exact_budget_completes(self, queue):
        sim = Simulator(queue=queue)
        for t in (1.0, 2.0):
            sim.schedule(t, lambda: None)
        assert sim.run(max_events=2) == 2.0

    def test_event_exactly_at_until_fires(self, queue):
        sim = Simulator(queue=queue)
        fired = []
        sim.schedule(5.0, lambda: fired.append("at"))
        sim.schedule(5.0 + 1e-12, lambda: fired.append("after"))
        assert sim.run(until=5.0) == 5.0
        assert fired == ["at"]

    def test_cancelled_head_at_until_boundary(self, queue):
        """A cancelled event at the boundary is skipped, not fired, and
        must not stop the clock short of ``until``."""
        sim = Simulator(queue=queue)
        fired = []
        ev = sim.schedule(5.0, lambda: fired.append("dead"))
        sim.schedule(9.0, lambda: fired.append("late"))
        ev.cancel()
        assert sim.run(until=7.0) == 7.0
        assert fired == []
        assert sim.pending() == 1

    def test_until_in_past_leaves_clock(self, queue):
        sim = Simulator(queue=queue)
        sim.schedule(4.0, lambda: None)
        sim.run()
        assert sim.run(until=1.0) == 4.0
        assert sim.now == 4.0

    def test_until_with_empty_queue_advances_clock(self, queue):
        # the drained-queue path lands on `until` just like the
        # later-event path does — empty windows still tile virtual time
        sim = Simulator(queue=queue)
        assert sim.run(until=3.0) == 3.0
        assert sim.run(until=2.0) == 3.0  # never backwards

    def test_pending_is_live_count(self, queue):
        sim = Simulator(queue=queue)
        events = [sim.schedule(float(i), lambda: None) for i in range(10)]
        assert sim.pending() == 10
        for ev in events[::2]:
            ev.cancel()
        assert sim.pending() == 5
        events[1].cancel()
        assert sim.pending() == 4
        sim.run()
        assert sim.pending() == 0

    def test_mass_cancellation_compacts(self, queue):
        """Cancelling nearly everything triggers lazy compaction; the
        survivors still fire in order."""
        sim = Simulator(queue=queue)
        fired = []
        events = [sim.schedule(float(i), lambda i=i: fired.append(i))
                  for i in range(4000)]
        for ev in events:
            if ev.time % 100 != 0.0:
                ev.cancel()
        sim.run()
        assert fired == list(range(0, 4000, 100))


class TestProfiling:
    def test_counters_accumulate_by_class(self):
        sim = Simulator(profile=True)
        sim.schedule(1.0, lambda: None, klass="delivery")
        sim.schedule(2.0, lambda: None, klass="delivery")
        sim.schedule(3.0, lambda: None)  # untagged -> "event"
        sim.run()
        assert sim.profile["delivery"][0] == 2
        assert sim.profile["event"][0] == 1
        assert sim.profile["delivery"][1] >= 0.0
        report = sim.profile_report()
        assert "delivery" in report and "total" in report

    def test_disabled_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_DES_PROFILE", raising=False)
        sim = Simulator()
        assert sim.profile is None
        assert "disabled" in sim.profile_report()

    def test_env_enables(self, monkeypatch):
        monkeypatch.setenv("REPRO_DES_PROFILE", "1")
        assert Simulator().profile == {}
