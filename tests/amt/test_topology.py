"""Topology models: routing, contention, telemetry, legacy equivalence.

Three layers:

* unit tests per topology (routes, rack maps, FIFO contention on
  NICs/uplinks/WAN links, state management);
* hypothesis property tests over random message schedules — the
  :class:`FlatTopology` must reproduce the legacy ``Network`` delivery
  times **bit-for-bit**, every topology's per-route-class byte
  telemetry must partition ``bytes_sent`` exactly, and replaying a
  schedule on a fresh instance must be deterministic;
* regression tests for the network-state bugfixes: per-run link-state
  reset (a reused ``network=`` instance must not delay the second run)
  and the failed node's egress release.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.amt.cluster import Network
from repro.amt.topology import (FlatTopology, HierarchicalTopology, LinkHop,
                                SwitchedTopology, topology_names)


#: Factories, not instances: hypothesis re-runs a test body many times
#: and FIFO link state must start fresh for every example.
TOPOLOGY_FACTORIES = {
    "flat": FlatTopology,
    "flat-noserial": lambda: FlatTopology(latency=0.0, bandwidth=100.0,
                                          serialize_egress=False),
    "switched": lambda: SwitchedTopology(rack_size=2, latency=1e-6,
                                         bandwidth=1e8,
                                         oversubscription=8.0),
    "switched-3": lambda: SwitchedTopology(rack_size=3),
    "hier": lambda: HierarchicalTopology(rack_size=2),
    "hier-wan": lambda: HierarchicalTopology(
        racks=(0, 0, 1, 1), join_rack=2, wan_racks=(2,),
        wan_latency=1e-3, wan_bandwidth=1e6),
}


def _make_topologies():
    """One fresh instance of every registered topology variant."""
    return [make() for make in TOPOLOGY_FACTORIES.values()]


#: (src, dst, nbytes, dt>=0) tuples; the schedule walks now += dt.
_messages = st.lists(
    st.tuples(st.integers(0, 5), st.integers(0, 5),
              st.integers(0, 100_000),
              st.floats(0.0, 1e-3, allow_nan=False)),
    min_size=1, max_size=60)


def _replay(model, schedule):
    """Arrival times + final counters of a message schedule."""
    now, out = 0.0, []
    for src, dst, nbytes, dt in schedule:
        now += dt
        out.append(model.plan_send(src, dst, nbytes, now))
    return out, model.bytes_sent, model.messages_sent


class TestFlatEqualsLegacyNetwork:
    """FlatTopology is the legacy Network, bit-for-bit."""

    @given(schedule=_messages)
    @settings(max_examples=100, deadline=None)
    def test_delivery_times_bit_identical(self, schedule):
        legacy, flat = Network(), FlatTopology()
        times_l, bytes_l, msgs_l = _replay(legacy, schedule)
        times_f, bytes_f, msgs_f = _replay(flat, schedule)
        assert times_l == times_f  # exact float equality, no approx
        assert (bytes_l, msgs_l) == (bytes_f, msgs_f)

    @given(schedule=_messages)
    @settings(max_examples=40, deadline=None)
    def test_non_serializing_variant_matches_too(self, schedule):
        legacy = Network(latency=1e-4, bandwidth=1e7, serialize_egress=False)
        flat = FlatTopology(latency=1e-4, bandwidth=1e7,
                            serialize_egress=False)
        assert _replay(legacy, schedule) == _replay(flat, schedule)

    def test_same_defaults(self):
        legacy, flat = Network(), FlatTopology()
        assert flat.latency == legacy.latency
        assert flat.bandwidth == legacy.bandwidth


class TestTopologyProperties:
    @pytest.mark.parametrize("name", sorted(TOPOLOGY_FACTORIES))
    @given(schedule=_messages)
    @settings(max_examples=25, deadline=None)
    def test_byte_class_conservation(self, name, schedule):
        """Route classes partition the traffic exactly."""
        model = TOPOLOGY_FACTORIES[name]()
        _replay(model, schedule)
        assert sum(model.bytes_by_class.values()) == model.bytes_sent
        sent = sum(n for s, d, n, _ in schedule if s != d)
        assert model.bytes_sent == sent

    @pytest.mark.parametrize("name", sorted(TOPOLOGY_FACTORIES))
    @given(schedule=_messages)
    @settings(max_examples=25, deadline=None)
    def test_replay_deterministic(self, name, schedule):
        """Fresh instances replay a schedule to identical times."""
        factory = TOPOLOGY_FACTORIES[name]
        assert _replay(factory(), schedule) == _replay(factory(), schedule)

    @pytest.mark.parametrize("topo", _make_topologies(),
                             ids=lambda t: f"{t.kind}-{id(t) % 97}")
    def test_routes_are_static(self, topo):
        """route() is pure: repeated queries agree, sends don't mutate."""
        pairs = [(0, 3), (1, 4), (2, 5)]
        before = [[(h.key, h.latency, h.bandwidth, h.fifo)
                   for h in topo.route(s, d)] for s, d in pairs]
        for s, d in pairs:
            topo.plan_send(s, d, 1000, 0.0)
        after = [[(h.key, h.latency, h.bandwidth, h.fifo)
                  for h in topo.route(s, d)] for s, d in pairs]
        assert before == after

    @pytest.mark.parametrize("topo", _make_topologies(),
                             ids=lambda t: f"{t.kind}-{id(t) % 97}")
    def test_self_send_free_and_uncounted(self, topo):
        assert topo.plan_send(2, 2, 10_000, 5.0) == 5.0
        assert topo.bytes_sent == 0
        assert topo.bytes_by_class == {}

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError, match="nbytes"):
            FlatTopology().plan_send(0, 1, -1, 0.0)

    def test_topology_names(self):
        assert topology_names() == ["flat", "switched", "hierarchical"]


class TestSwitchedTopology:
    def test_rack_map(self):
        sw = SwitchedTopology(rack_size=3)
        assert [sw.rack_of(n) for n in range(7)] == [0, 0, 0, 1, 1, 1, 2]

    def test_intra_rack_matches_flat(self):
        """Same-rack messages pay only the NIC — the flat cost."""
        sw = SwitchedTopology(rack_size=4, latency=2e-6, bandwidth=1e8)
        flat = FlatTopology(latency=2e-6, bandwidth=1e8)
        for nbytes in (0, 100, 65536):
            assert (sw.plan_send(0, 3, nbytes, 1.0)
                    == flat.plan_send(0, 3, nbytes, 1.0))

    def test_inter_rack_pays_uplink_and_downlink(self):
        sw = SwitchedTopology(rack_size=2, latency=0.0, bandwidth=100.0,
                              uplink_latency=0.5, uplink_bandwidth=50.0)
        # egress 1s wire, uplink 0.5 + 2s, downlink 0.5 + 2s
        assert sw.plan_send(0, 2, 100, 0.0) == pytest.approx(6.0)
        assert sw.route_class(0, 2) == "inter_rack"
        assert sw.route_class(0, 1) == "intra_rack"

    def test_uplink_contention_serializes_rack_peers(self):
        """Two nodes of one rack sending inter-rack queue on the shared
        uplink even though their NICs are independent."""
        sw = SwitchedTopology(rack_size=2, latency=0.0, bandwidth=1e9,
                              uplink_latency=0.0, uplink_bandwidth=100.0)
        t1 = sw.plan_send(0, 2, 100, 0.0)   # uplink busy until 1.0
        t2 = sw.plan_send(1, 3, 100, 0.0)   # different NIC, same uplink
        assert t2 > t1
        # and the destination rack's downlink serializes incast
        sw2 = SwitchedTopology(rack_size=2, latency=0.0, bandwidth=1e9,
                               uplink_latency=0.0, uplink_bandwidth=100.0)
        a = sw2.plan_send(0, 2, 100, 0.0)   # rack0 uplink, rack1 downlink
        b = sw2.plan_send(3, 1, 100, 0.0)   # rack1 uplink, rack0 downlink
        assert a == b  # opposite directions do not contend

    def test_oversubscription_scales_uplink_bandwidth(self):
        sw = SwitchedTopology(rack_size=4, bandwidth=1e9,
                              oversubscription=16.0)
        assert sw.uplink_bandwidth == pytest.approx(1e9 * 4 / 16)

    def test_validation(self):
        with pytest.raises(ValueError, match="rack_size"):
            SwitchedTopology(rack_size=0)
        with pytest.raises(ValueError, match="oversubscription"):
            SwitchedTopology(oversubscription=0.0)
        with pytest.raises(ValueError, match="uplink"):
            SwitchedTopology(uplink_bandwidth=-1.0)


class TestHierarchicalTopology:
    def test_rack_assignment_precedence(self):
        """Explicit racks, then join_rack for ids beyond the list."""
        h = HierarchicalTopology(rack_size=2, racks=(0, 0, 1), join_rack=5)
        assert [h.rack_of(n) for n in range(5)] == [0, 0, 1, 5, 5]
        # without join_rack, joiners fall back to node // rack_size
        h2 = HierarchicalTopology(rack_size=2, racks=(0, 0, 1))
        assert h2.rack_of(7) == 3

    def test_tier_costs_ordered(self):
        """intra-node < intra-rack < inter-rack < wan."""
        h = HierarchicalTopology(
            racks=(0, 0, 1, 1), join_rack=2, wan_racks=(2,),
            latency=1e-6, bandwidth=1e9, rack_latency=1e-5,
            rack_bandwidth=1e8, wan_latency=1e-2, wan_bandwidth=1e6)
        nbytes = 8192
        t_self = h.plan_send(0, 0, nbytes, 0.0)
        t_rack = h.plan_send(0, 1, nbytes, 0.0)
        t_inter = h.plan_send(0, 2, nbytes, 0.0)
        t_wan = h.plan_send(0, 4, nbytes, 0.0)
        assert t_self < t_rack < t_inter < t_wan
        assert h.route_class(0, 1) == "intra_rack"
        assert h.route_class(0, 2) == "inter_rack"
        assert h.route_class(0, 4) == "wan"
        assert h.route_class(4, 0) == "wan"

    def test_wan_rack_links_use_wan_tier(self):
        h = HierarchicalTopology(
            racks=(0, 1), join_rack=1, wan_racks=(1,),
            latency=0.0, bandwidth=1e9, wan_latency=2.0, wan_bandwidth=10.0)
        # egress ~0 + uplink (rack 0: rack tier) + downlink (rack 1: wan)
        hops = h.route(0, 1)
        assert [hop.key[0] for hop in hops] == ["egress", "uplink",
                                                "downlink"]
        assert hops[2].latency == 2.0 and hops[2].bandwidth == 10.0

    def test_validation(self):
        with pytest.raises(ValueError, match="rack ids"):
            HierarchicalTopology(racks=(0, -1))
        with pytest.raises(ValueError, match="join_rack"):
            HierarchicalTopology(join_rack=-2)
        with pytest.raises(ValueError, match="wan link"):
            HierarchicalTopology(wan_bandwidth=0.0)
        # join_rack without racks would put every node in the join
        # rack, silently flattening the whole cluster
        with pytest.raises(ValueError, match="racks"):
            HierarchicalTopology(join_rack=1)


class TestStateManagement:
    """The two network-state bugfix surfaces, at the model level."""

    @pytest.mark.parametrize("model_factory", [
        Network, FlatTopology,
        lambda: SwitchedTopology(rack_size=2),
    ])
    def test_reset_clears_link_backlog_and_counters(self, model_factory):
        model = model_factory()
        first = model.plan_send(0, 1, 10_000_000, 0.0)
        model.reset()
        assert model.bytes_sent == 0
        assert model.messages_sent == 0
        assert model.bytes_by_class == {}
        # the egress backlog is gone: a fresh-run send is undelayed
        assert model.plan_send(0, 1, 10_000_000, 0.0) == first

    def test_reset_stats_keeps_backlog(self):
        """The narrower legacy contract still holds: counters only."""
        for model in (Network(), FlatTopology()):
            t1 = model.plan_send(0, 1, 10_000_000, 0.0)
            model.reset_stats()
            assert model.bytes_sent == 0
            assert model.plan_send(0, 2, 0, 0.0) > t1 - 1e-9  # still queued

    @pytest.mark.parametrize("model_factory", [
        Network, FlatTopology,
        lambda: SwitchedTopology(rack_size=2),
    ])
    def test_release_node_drops_private_reservation(self, model_factory):
        model = model_factory()
        model.plan_send(0, 1, 10_000_000, 0.0)   # big egress backlog
        baseline = model_factory().plan_send(0, 1, 100, 0.0)
        model.release_node(0)
        assert model.plan_send(0, 1, 100, 0.0) == baseline

    def test_release_node_keeps_shared_uplinks(self):
        """Messages already on a rack uplink still occupy the switch."""
        sw = SwitchedTopology(rack_size=2, latency=0.0, bandwidth=1e9,
                              uplink_latency=0.0, uplink_bandwidth=10.0)
        sw.plan_send(0, 2, 1000, 0.0)    # rack-0 uplink busy for 100s
        sw.release_node(0)
        # node 1 shares the uplink: still queued behind the wire time
        assert sw.plan_send(1, 3, 1000, 0.0) > 100.0

    def test_linkhop_repr_smoke(self):
        assert "egress" in repr(LinkHop(("egress", 0), 1e-6, 1e9))
