"""Tests for the real thread-pool executor."""

import threading
import time

import pytest

from repro.amt.executor import TaskExecutor
from repro.amt.future import when_all


class TestTaskExecutor:
    def test_async_returns_value(self):
        with TaskExecutor(2) as ex:
            assert ex.async_(lambda a, b: a + b, 1, 2).get(timeout=5) == 3

    def test_kwargs_forwarded(self):
        with TaskExecutor(1) as ex:
            fut = ex.async_(lambda a, b=0: a - b, 10, b=4)
            assert fut.get(timeout=5) == 6

    def test_exception_propagates(self):
        with TaskExecutor(1) as ex:
            fut = ex.async_(lambda: 1 / 0)
            with pytest.raises(ZeroDivisionError):
                fut.get(timeout=5)

    def test_map_async(self):
        with TaskExecutor(4) as ex:
            futs = ex.map_async(lambda x: x * x, list(range(10)))
            when_all(futs).wait(timeout=5)
            assert [f.get() for f in futs] == [x * x for x in range(10)]

    def test_tasks_actually_run_on_worker_threads(self):
        with TaskExecutor(1, name="probe") as ex:
            name = ex.async_(lambda: threading.current_thread().name).get(timeout=5)
            assert name.startswith("probe-worker-")

    def test_concurrency_with_two_workers(self):
        """Two blocking tasks overlap when two workers are available."""
        barrier = threading.Barrier(2, timeout=5)
        with TaskExecutor(2) as ex:
            futs = [ex.async_(barrier.wait) for _ in range(2)]
            when_all(futs).wait(timeout=5)
        # reaching here proves both ran concurrently (barrier needs 2)

    def test_busy_time_accumulates(self):
        with TaskExecutor(1) as ex:
            ex.async_(time.sleep, 0.05).get(timeout=5)
            assert ex.busy_time() >= 0.04

    def test_reset_counters(self):
        with TaskExecutor(1) as ex:
            ex.async_(time.sleep, 0.02).get(timeout=5)
            ex.reset_counters()
            assert ex.busy_time() == 0.0
            assert ex.elapsed() < 1.0

    def test_busy_time_per_worker_length(self):
        with TaskExecutor(3) as ex:
            assert len(ex.busy_time_per_worker()) == 3

    def test_submit_after_shutdown_raises(self):
        ex = TaskExecutor(1)
        ex.shutdown()
        with pytest.raises(RuntimeError, match="shut down"):
            ex.async_(lambda: None)

    def test_shutdown_idempotent(self):
        ex = TaskExecutor(1)
        ex.shutdown()
        ex.shutdown()

    def test_invalid_thread_count(self):
        with pytest.raises(ValueError):
            TaskExecutor(0)

    def test_many_small_tasks_complete(self):
        with TaskExecutor(4) as ex:
            futs = [ex.async_(lambda i=i: i) for i in range(200)]
            when_all(futs).wait(timeout=10)
            assert sum(f.get() for f in futs) == sum(range(200))
