"""Tests for AGAS and the performance-counter registry."""

import pytest

from repro.amt.agas import AddressSpace, AgasError
from repro.amt.counters import (BUSY_TIME, BusyTimeCounter, Counter,
                                CounterRegistry)


class TestAddressSpace:
    def test_register_resolve_roundtrip(self):
        agas = AddressSpace()
        obj = object()
        agas.register("/objects/sd/1", obj)
        assert agas.resolve("/objects/sd/1") is obj

    def test_duplicate_registration_raises(self):
        agas = AddressSpace()
        agas.register("/x", 1)
        with pytest.raises(AgasError, match="already registered"):
            agas.register("/x", 2)

    def test_resolve_unknown_raises(self):
        with pytest.raises(AgasError, match="unknown name"):
            AddressSpace().resolve("/nope")

    def test_names_must_be_absolute(self):
        with pytest.raises(AgasError, match="must start with"):
            AddressSpace().register("relative/name", 1)

    def test_name_normalization(self):
        agas = AddressSpace()
        agas.register("//a///b/", "v")
        assert agas.resolve("/a/b") == "v"

    def test_unregister_returns_object(self):
        agas = AddressSpace()
        agas.register("/a", 5)
        assert agas.unregister("/a") == 5
        assert not agas.contains("/a")

    def test_unregister_unknown_raises(self):
        with pytest.raises(AgasError):
            AddressSpace().unregister("/a")

    def test_contains(self):
        agas = AddressSpace()
        agas.register("/a/b", 1)
        assert agas.contains("/a/b")
        assert not agas.contains("/a/c")
        assert not agas.contains("not-a-path")

    def test_query_prefix_matches_whole_components(self):
        agas = AddressSpace()
        agas.register("/counters/node0/busy_time", 1)
        agas.register("/counters/node1/busy_time", 2)
        agas.register("/countersX/other", 3)
        hits = agas.query("/counters")
        assert [n for n, _ in hits] == [
            "/counters/node0/busy_time", "/counters/node1/busy_time"]

    def test_query_exact_name(self):
        agas = AddressSpace()
        agas.register("/a/b", 1)
        assert agas.query("/a/b") == [("/a/b", 1)]

    def test_len_and_iter(self):
        agas = AddressSpace()
        agas.register("/b", 2)
        agas.register("/a", 1)
        assert len(agas) == 2
        assert list(agas) == ["/a", "/b"]


class TestCounter:
    def test_starts_at_zero(self):
        c = Counter("/c")
        assert c.value() == 0.0
        assert c.total() == 0.0

    def test_add_accumulates(self):
        c = Counter("/c")
        c.add(1.5)
        c.add(2.5)
        assert c.value() == 4.0

    def test_negative_add_raises(self):
        with pytest.raises(ValueError):
            Counter("/c").add(-1.0)

    def test_reset_zeroes_window_not_total(self):
        c = Counter("/c")
        c.add(3.0)
        c.reset()
        c.add(1.0)
        assert c.value() == 1.0
        assert c.total() == 4.0


class TestBusyTimeCounter:
    def test_interval_accumulates(self):
        c = BusyTimeCounter("/b")
        tok = c.begin_work(10.0)
        c.end_work(12.5, tok)
        assert c.value() == 2.5

    def test_overlapping_intervals_add(self):
        """Two cores busy over the same second -> two busy-seconds."""
        c = BusyTimeCounter("/b")
        t1 = c.begin_work(0.0)
        t2 = c.begin_work(0.0)
        c.end_work(1.0, t1)
        c.end_work(1.0, t2)
        assert c.value() == 2.0

    def test_open_intervals_count(self):
        c = BusyTimeCounter("/b")
        t1 = c.begin_work(0.0)
        assert c.open_intervals() == 1
        c.end_work(1.0, t1)
        assert c.open_intervals() == 0

    def test_unknown_token_raises(self):
        with pytest.raises(ValueError, match="unknown work token"):
            BusyTimeCounter("/b").end_work(1.0, 99)

    def test_end_before_begin_raises(self):
        c = BusyTimeCounter("/b")
        tok = c.begin_work(5.0)
        with pytest.raises(ValueError, match="before begin"):
            c.end_work(4.0, tok)

    def test_reset_clips_open_interval_at_reset_time(self):
        """The confirmed busy-window bug: begin_work(0); reset at t=5;
        end_work(12) must put 7.0 in the new window — not the full 12.0
        pre-reset-straddling span."""
        c = BusyTimeCounter("/b")
        tok = c.begin_work(0.0)
        c.reset(5.0)
        assert c.value() == 0.0       # new window starts empty
        assert c.total() == 5.0       # clipped span kept in the lifetime
        c.end_work(12.0, tok)
        assert c.value() == 7.0       # only the in-window portion
        assert c.total() == 12.0

    def test_reset_clips_every_open_interval(self):
        c = BusyTimeCounter("/b")
        t1 = c.begin_work(0.0)
        t2 = c.begin_work(2.0)
        c.reset(4.0)
        assert c.total() == 4.0 + 2.0
        c.end_work(5.0, t1)
        c.end_work(6.0, t2)
        assert c.value() == 1.0 + 2.0
        assert c.open_intervals() == 0

    def test_reset_with_open_intervals_requires_now(self):
        c = BusyTimeCounter("/b")
        c.begin_work(1.0)
        with pytest.raises(ValueError, match="open work interval"):
            c.reset()

    def test_reset_before_open_start_raises(self):
        c = BusyTimeCounter("/b")
        c.begin_work(3.0)
        with pytest.raises(ValueError, match="before open"):
            c.reset(2.0)

    def test_quiescent_reset_needs_no_time(self):
        c = BusyTimeCounter("/b")
        tok = c.begin_work(0.0)
        c.end_work(2.0, tok)
        c.reset()
        assert c.value() == 0.0
        assert c.total() == 2.0


class TestCounterRegistry:
    def test_create_and_get_busy_time(self):
        reg = CounterRegistry()
        c = reg.create_busy_time("node0")
        assert reg.get("node0", BUSY_TIME) is c

    def test_busy_time_accessor(self):
        reg = CounterRegistry()
        c = reg.create_busy_time("node0")
        c.add(7.0)
        assert reg.busy_time("node0") == 7.0

    def test_all_of_kind_creation_order(self):
        """Creation order, not name order: lexicographic sorting put
        ``node10`` before ``node2`` once a cluster reached ten nodes."""
        reg = CounterRegistry()
        for i in range(12):
            reg.create_busy_time(f"node{i}")
        reg.create("node0", "messages")
        busy = reg.all_of_kind(BUSY_TIME)
        assert [c.name for c in busy] == [
            f"/counters/node{i}/busy_time" for i in range(12)]

    def test_reset_all_matches_algorithm1_line35(self):
        reg = CounterRegistry()
        a = reg.create_busy_time("node0")
        b = reg.create_busy_time("node1")
        a.add(1.0)
        b.add(2.0)
        n = reg.reset_all(BUSY_TIME)
        assert n == 2
        assert a.value() == 0.0 and b.value() == 0.0

    def test_reset_all_kind_filter(self):
        reg = CounterRegistry()
        busy = reg.create_busy_time("node0")
        other = reg.create("node0", "messages")
        busy.add(1.0)
        other.add(1.0)
        reg.reset_all(BUSY_TIME)
        assert busy.value() == 0.0
        assert other.value() == 1.0

    def test_duplicate_locality_raises(self):
        reg = CounterRegistry()
        reg.create_busy_time("node0")
        with pytest.raises(Exception):
            reg.create_busy_time("node0")

    def test_reset_all_clips_open_intervals_at_now(self):
        """Algorithm 1 line 35 with work in flight: the bulk reset
        threads the poll time through to every busy counter."""
        reg = CounterRegistry()
        a = reg.create_busy_time("node0")
        b = reg.create_busy_time("node1")
        tok = a.begin_work(0.0)
        b.add(3.0)
        n = reg.reset_all(BUSY_TIME, now=10.0)
        assert n == 2
        assert a.value() == 0.0 and b.value() == 0.0
        a.end_work(14.0, tok)
        assert a.value() == 4.0  # only the post-reset span
        assert a.total() == 14.0
