"""Wave batching and batched sends: exact equivalence to the seed path.

Wave batching (``SimCluster.wave_batching`` / ``REPRO_DES_WAVE``)
retires a run of homogeneous queued tasks with one DES event instead of
one per task.  Everything the solver can observe — makespans, per-node
busy time, task/work counters, failure orphans, ``run(until=...)``
boundary state — must be bit-identical to the per-event path; only the
physical event count may differ.  These tests run each scenario under
both modes and compare.
"""

import pytest

from repro.amt.cluster import (ConstantSpeed, PiecewiseSpeed, SimCluster,
                               StraggleSpeed)

WORKS = [1e-4 * (1 + (k % 7)) for k in range(64)]


def _observe(cluster):
    """Everything solver-visible about a drained cluster."""
    return {
        "now": cluster.now,
        "busy": [n.busy_time() for n in cluster.nodes],
        "tasks": [n.tasks_completed for n in cluster.nodes],
        "work": [n.work_completed for n in cluster.nodes],
    }


def _paired(build_and_run):
    """Run a scenario with waves off and on; return both observations."""
    out = []
    for wave in (False, True):
        cluster = SimCluster(4, cores_per_node=1, wave_batching=wave)
        build_and_run(cluster)
        out.append((_observe(cluster), cluster.sim.events_processed))
    (off, n_off), (on, n_on) = out
    return off, on, n_off, n_on


class TestWaveEquivalence:
    def test_homogeneous_backlog_fewer_events_same_schedule(self):
        def scenario(cluster):
            for n in range(4):
                for w in WORKS:
                    cluster.submit(n, work=w)
            cluster.run()

        off, on, n_off, n_on = _paired(scenario)
        assert on == off
        assert n_on < n_off  # the whole point: one event per wave

    def test_barrier_time_is_bitwise_identical(self):
        """The solver's observation point is the step barrier — the
        when_all over every task future of the step.  (Individual
        wave-member futures resolve at the wave's *end*, a documented
        deviation that is invisible through the barrier.)  The barrier
        must fire at the identical virtual instant in both modes."""
        from repro.amt.future import local_when_all

        def run(wave):
            cluster = SimCluster(2, wave_batching=wave)
            futs = [cluster.submit(k % 2, work=w)
                    for k, w in enumerate(WORKS)]
            stamp = []
            local_when_all(futs)._add_callback(
                lambda _f: stamp.append(cluster.now))
            cluster.run()
            return stamp, cluster.now

        assert run(True) == run(False)

    def test_actions_break_the_wave_prefix(self):
        """Tasks with actions can reshape the schedule mid-run, so they
        never batch — and results still match the per-event path."""
        def scenario(cluster):
            seen = []
            for k, w in enumerate(WORKS):
                if k % 5 == 0:
                    cluster.submit(0, work=w,
                                   action=lambda k=k: seen.append(k))
                else:
                    cluster.submit(0, work=w)
            cluster.run()

        off, on, _, _ = _paired(scenario)
        assert on == off

    def test_long_wave_uses_vectorized_prefix_sum(self):
        """>= 32 tasks goes through np.add.accumulate; must still match
        the sequential per-event float chain bit for bit."""
        works = [1e-5 * (1 + ((k * 13) % 11)) for k in range(500)]

        def scenario(cluster):
            for w in works:
                cluster.submit(0, work=w)
            cluster.run()

        off, on, n_off, n_on = _paired(scenario)
        assert on == off
        assert n_on < n_off

    def test_multicore_nodes_never_batch(self):
        for wave in (False, True):
            cluster = SimCluster(1, cores_per_node=4, wave_batching=wave)
            for w in WORKS:
                cluster.submit(0, work=w)
            cluster.run()
            if wave:
                assert _observe(cluster) == off
            else:
                off = _observe(cluster)

    def test_nonconstant_speed_never_batches(self):
        trace = PiecewiseSpeed([0.002, 0.004], [1.0, 0.25, 2.0])
        out = []
        for wave in (False, True):
            cluster = SimCluster(1, speeds=[trace], wave_batching=wave)
            for w in WORKS:
                cluster.submit(0, work=w)
            cluster.run()
            out.append(_observe(cluster))
        assert out[0] == out[1]

    def test_straggle_wrapped_constant_never_batches(self):
        # StraggleSpeed wraps ConstantSpeed but is NOT ConstantSpeed:
        # the type check must keep it off the fast path
        trace = StraggleSpeed(ConstantSpeed(1.0), [(0.001, 0.003, 0.5)])
        out = []
        for wave in (False, True):
            cluster = SimCluster(1, speeds=[trace], wave_batching=wave)
            for w in WORKS:
                cluster.submit(0, work=w)
            cluster.run()
            out.append(_observe(cluster))
        assert out[0] == out[1]

    def test_env_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_DES_WAVE", "0")
        assert not SimCluster(1).wave_batching
        monkeypatch.delenv("REPRO_DES_WAVE")
        assert SimCluster(1).wave_batching


class TestWaveInterruption:
    def _loaded(self, wave):
        cluster = SimCluster(2, wave_batching=wave)
        for w in WORKS:
            cluster.submit(0, work=w)
        cluster.submit(1, work=1.0)  # keeps node 1 alive as survivor
        return cluster

    @pytest.mark.parametrize("until", [1.5e-4, 12.3e-4, 0.5])
    def test_run_until_materializes_mid_wave(self, until):
        """Stopping inside a wave must leave per-task state identical to
        the per-event path: same completed prefix, same busy time, and
        the same continuation when the run resumes."""
        states = []
        for wave in (False, True):
            cluster = self._loaded(wave)
            cluster.run(until=until)
            mid = _observe(cluster)
            cluster.run()
            states.append((mid, _observe(cluster)))
        assert states[0] == states[1]

    @pytest.mark.parametrize("until", [1.5e-4, 12.3e-4])
    def test_fail_node_mid_wave(self, until):
        """Failure inside a wave: completed prefix keeps its results,
        the in-flight task's busy time is truncated at the failure, and
        the orphan list matches the per-event path."""
        outcomes = []
        for wave in (False, True):
            cluster = self._loaded(wave)
            cluster.run(until=until)
            orphans = cluster.fail_node(0)
            outcomes.append(
                ([t.work for t in orphans],
                 [t.future.is_ready() for t in orphans],
                 _observe(cluster)))
        assert outcomes[0] == outcomes[1]

    @pytest.mark.parametrize("wave", [False, True])
    def test_run_until_past_drained_queue_lands_on_until(self, wave):
        """``run(until=...)`` beyond the last event advances the clock
        to ``until`` — with and without an in-flight wave to
        materialize — so busy-fraction windows measured against ``now``
        span the full requested window."""
        cluster = self._loaded(wave)
        cluster.run(until=2.0)  # all work (incl. node 1's 1s task) done
        assert cluster.now == 2.0
        assert all(n.wave is None for n in cluster.nodes)
        assert sum(n.tasks_completed for n in cluster.nodes) == len(WORKS) + 1
        # the window denominator now covers the idle tail too
        assert cluster.busy_fraction(0) < 1.0

    def test_orphans_resubmit_after_mid_wave_failure(self):
        cluster = self._loaded(True)
        cluster.run(until=5e-4)
        orphans = cluster.fail_node(0)
        for task in orphans:
            cluster.resubmit(task, 1)
        cluster.run()
        assert all(t.future.is_ready() for t in orphans)
        done = sum(n.tasks_completed for n in cluster.nodes)
        assert done == len(WORKS) + 1


class TestSendMany:
    def test_matches_individual_sends(self):
        msgs = [((i * 7) % 4, (i * 13) % 4, 1024 + 64 * i)
                for i in range(40)]

        def run(batched):
            cluster = SimCluster(4)
            stamps = []
            if batched:
                futs = cluster.send_many([m for m in msgs])
            else:
                futs = [cluster.send(s, d, b) for s, d, b in msgs]
            for fut in futs:
                fut._add_callback(lambda _f: stamps.append(cluster.now))
            cluster.run()
            return (stamps, cluster.now,
                    [cluster.bytes_sent(n) for n in range(4)],
                    [cluster.bytes_received(n) for n in range(4)])

        assert run(True) == run(False)

    def test_self_sends_resolve_immediately(self):
        cluster = SimCluster(2)
        futs = cluster.send_many([(0, 0, 4096), (1, 1, 4096)])
        assert all(f.is_ready() for f in futs)
        assert cluster.bytes_sent(0) == 0  # loopback is not NIC traffic

    def test_unknown_node_rejected(self):
        from repro.amt.des import SimulationError
        cluster = SimCluster(2)
        with pytest.raises(SimulationError, match="unknown node"):
            cluster.send_many([(0, 5, 100)])
        with pytest.raises(SimulationError, match="unknown node"):
            cluster.send_many([(-1, 0, 100)])
