"""Tests for HPX-style generation-indexed channels."""

import threading

import pytest

from repro.amt.agas import AddressSpace
from repro.amt.channel import Channel, ChannelError, ChannelTable


class TestChannel:
    def test_set_then_get(self):
        ch = Channel("c")
        ch.set(0, "ghost-data")
        assert ch.get(0).get() == "ghost-data"

    def test_get_then_set(self):
        ch = Channel("c")
        fut = ch.get(3)
        assert not fut.is_ready()
        ch.set(3, 42)
        assert fut.get() == 42

    def test_generations_independent(self):
        ch = Channel("c")
        ch.set(1, "one")
        ch.set(0, "zero")
        assert ch.get(0).get() == "zero"
        assert ch.get(1).get() == "one"

    def test_out_of_order_get_before_set(self):
        ch = Channel("c")
        f2 = ch.get(2)
        f1 = ch.get(1)
        ch.set(1, "a")
        ch.set(2, "b")
        assert f1.get() == "a"
        assert f2.get() == "b"

    def test_double_set_raises(self):
        ch = Channel("c")
        ch.set(0, 1)
        with pytest.raises(ChannelError, match="already set"):
            ch.set(0, 2)

    def test_double_get_raises(self):
        ch = Channel("c")
        ch.set(0, 1)
        ch.get(0)
        with pytest.raises(ChannelError, match="already got"):
            ch.get(0)

    def test_none_payload_allowed(self):
        ch = Channel("c")
        ch.set(0)
        assert ch.get(0).get() is None

    def test_pending_and_buffered_counts(self):
        ch = Channel("c")
        ch.get(0)
        ch.get(1)
        ch.set(5, "x")
        assert ch.pending_generations() == 2
        assert ch.buffered_generations() == 1
        ch.set(0, "y")
        assert ch.pending_generations() == 1

    def test_cross_thread_handoff(self):
        ch = Channel("c")
        fut = ch.get(0)

        def producer():
            ch.set(0, "from-thread")

        t = threading.Thread(target=producer)
        t.start()
        assert fut.get(timeout=5.0) == "from-thread"
        t.join()


class TestChannelTable:
    def test_channel_created_lazily_and_shared(self):
        table = ChannelTable()
        a = table.channel(("sd1", "sd2"))
        b = table.channel(("sd1", "sd2"))
        assert a is b

    def test_set_get_by_key(self):
        table = ChannelTable()
        table.set((0, 1), 0, "payload")
        assert table.get((0, 1), 0).get() == "payload"

    def test_distinct_keys_isolated(self):
        table = ChannelTable()
        table.set((0, 1), 0, "a")
        table.set((1, 0), 0, "b")
        assert table.get((0, 1), 0).get() == "a"
        assert table.get((1, 0), 0).get() == "b"

    def test_agas_registration(self):
        agas = AddressSpace()
        table = ChannelTable(agas=agas, namespace="ghost")
        table.channel((3, 7))
        names = agas.names()
        assert len(names) == 1
        assert names[0].startswith("/channels/ghost/")

    def test_stats(self):
        table = ChannelTable()
        table.get((0, 1), 0)          # pending
        table.set((2, 3), 0, "v")     # buffered
        n, pending, buffered = table.stats()
        assert n == 2
        assert pending == 1
        assert buffered == 1

    def test_ghost_exchange_pattern(self):
        """The solver's usage shape: per-(src,dst) channels, one
        generation per timestep, producer and consumer racing."""
        table = ChannelTable()
        pairs = [(0, 1), (1, 0), (1, 2), (2, 1)]
        for step in range(3):
            # consumers first (they post receives up front)
            futs = {p: table.get(p, step) for p in pairs}
            for (src, dst) in pairs:
                table.set((src, dst), step, f"u[{src}->{dst}]@{step}")
            for p, fut in futs.items():
                assert fut.get() == f"u[{p[0]}->{p[1]}]@{step}"
