"""The fault layer: churn schedules, straggle traces, elastic SimCluster.

Covers static validation of ``ChurnEvent``/``FaultSchedule`` (the whole
schedule is data, so impossible schedules must fail at construction),
the exact straggle-window composition on every speed-trace type (via
the new ``work_until`` integral), and the cluster-level mechanics of
mid-simulation failures and joins: orphan collection, busy-time
truncation, requeue via ``resubmit``, and late-dependency rerouting
through the orphan handler.
"""

import numpy as np
import pytest

from repro.amt.cluster import (ConstantSpeed, PiecewiseSpeed, RampSpeed,
                               SimCluster, StraggleSpeed)
from repro.amt.des import SimulationError
from repro.amt.faults import (DEFAULT_RECOVERY_PENALTY, ChurnEvent,
                              FaultSchedule, RecoveryEvent)


class TestChurnEvent:
    def test_round_trip(self):
        for e in (ChurnEvent("fail", 1.5, 2),
                  ChurnEvent("join", 2.0, 4, cores=2, rate=2e9),
                  ChurnEvent("straggle", 0.5, 0, stop=1.0, factor=0.3)):
            assert ChurnEvent.from_dict(e.to_dict()) == e

    def test_validation(self):
        with pytest.raises(ValueError, match="unknown churn event kind"):
            ChurnEvent("explode", 1.0, 0)
        with pytest.raises(ValueError, match="time must be >= 0"):
            ChurnEvent("fail", -1.0, 0)
        with pytest.raises(ValueError, match="node must be >= 0"):
            ChurnEvent("fail", 1.0, -1)
        with pytest.raises(ValueError, match="cores must be >= 1"):
            ChurnEvent("join", 1.0, 4, cores=0)
        with pytest.raises(ValueError, match="stop > time"):
            ChurnEvent("straggle", 1.0, 0, stop=1.0)
        with pytest.raises(ValueError, match="factor must be in"):
            ChurnEvent("straggle", 1.0, 0, stop=2.0, factor=0.0)
        with pytest.raises(ValueError, match="factor must be in"):
            ChurnEvent("straggle", 1.0, 0, stop=2.0, factor=1.5)


class TestFaultSchedule:
    def test_round_trip_and_sorting(self):
        sched = FaultSchedule(3, (
            ChurnEvent("fail", 2.0, 1),
            ChurnEvent("straggle", 0.5, 0, stop=1.5, factor=0.5),
            ChurnEvent("join", 1.0, 3),
        ))
        assert [e.kind for e in sched.events] == ["straggle", "join", "fail"]
        assert FaultSchedule.from_dict(sched.to_dict()) == sched
        assert sched.max_nodes == 4
        assert [e.node for e in sched.fails()] == [1]
        assert [e.node for e in sched.joins()] == [3]
        assert sched.straggles_of(0)[0].factor == 0.5
        assert sched.straggles_of(1) == []

    def test_same_instant_join_covers_fail(self):
        # join sorts before fail at the same instant, so the pair is
        # legal even on a 1-node cluster
        sched = FaultSchedule(1, (ChurnEvent("fail", 1.0, 0),
                                  ChurnEvent("join", 1.0, 1)))
        assert [e.kind for e in sched.events] == ["join", "fail"]

    def test_rejects_unknown_target(self):
        with pytest.raises(ValueError, match="before it exists"):
            FaultSchedule(2, (ChurnEvent("fail", 1.0, 5),))

    def test_rejects_non_sequential_join_ids(self):
        with pytest.raises(ValueError, match="sequential"):
            FaultSchedule(2, (ChurnEvent("join", 1.0, 7),))

    def test_rejects_event_before_join(self):
        # a fail strictly before the join: the target does not exist yet
        with pytest.raises(ValueError, match="before it exists"):
            FaultSchedule(2, (ChurnEvent("join", 2.0, 2),
                              ChurnEvent("fail", 1.0, 2)))
        # at the join instant itself: still too early
        with pytest.raises(ValueError, match="not after its join"):
            FaultSchedule(2, (ChurnEvent("join", 2.0, 2),
                              ChurnEvent("fail", 2.0, 2)))

    def test_rejects_double_fail_and_post_fail_straggle(self):
        with pytest.raises(ValueError, match="after it failed"):
            FaultSchedule(3, (ChurnEvent("fail", 1.0, 0),
                              ChurnEvent("fail", 2.0, 0)))
        with pytest.raises(ValueError, match="after it failed"):
            FaultSchedule(3, (ChurnEvent("fail", 1.0, 0),
                              ChurnEvent("straggle", 2.0, 0, stop=3.0)))

    def test_rejects_emptying_the_cluster(self):
        with pytest.raises(ValueError, match="no alive nodes"):
            FaultSchedule(2, (ChurnEvent("fail", 1.0, 0),
                              ChurnEvent("fail", 2.0, 1)))

    def test_recovery_penalty_validation(self):
        assert FaultSchedule(1).recovery_penalty == DEFAULT_RECOVERY_PENALTY
        with pytest.raises(ValueError, match="recovery_penalty"):
            FaultSchedule(1, (), recovery_penalty=-0.1)

    def test_recovery_event_round_trip(self):
        e = RecoveryEvent(time=1.5, kind="fail", node=2, sds_evacuated=4,
                          tasks_requeued=3, recovery_bytes=2048)
        assert RecoveryEvent.from_dict(e.to_dict()) == e


class TestStraggleSpeed:
    def test_rate_inside_and_outside_windows(self):
        tr = StraggleSpeed(ConstantSpeed(10.0), [(1.0, 2.0, 0.5)])
        assert tr.rate(0.5) == 10.0
        assert tr.rate(1.0) == 5.0   # window start is inclusive
        assert tr.rate(1.999) == 5.0
        assert tr.rate(2.0) == 10.0  # window stop is exclusive

    def test_time_to_complete_spans_window_exactly(self):
        tr = StraggleSpeed(ConstantSpeed(10.0), [(1.0, 2.0, 0.5)])
        # 10 units before the window, 5 inside, 10 after
        assert tr.time_to_complete(10.0, 0.0) == pytest.approx(1.0)
        assert tr.time_to_complete(15.0, 0.0) == pytest.approx(2.0)
        assert tr.time_to_complete(25.0, 0.0) == pytest.approx(3.0)
        # starting inside the window
        assert tr.time_to_complete(5.0, 1.0) == pytest.approx(1.0)

    def test_work_until_inverts_time_to_complete(self):
        tr = StraggleSpeed(PiecewiseSpeed([2.0], [4.0, 8.0]),
                           [(1.0, 3.0, 0.25)])
        for work in (0.5, 3.0, 7.0, 20.0):
            dt = tr.time_to_complete(work, 0.5)
            assert tr.work_until(0.5, 0.5 + dt) == pytest.approx(work)

    def test_composes_onto_ramp(self):
        base = RampSpeed(2.0, 6.0, 1.0, 3.0)
        tr = StraggleSpeed(base, [(2.0, 4.0, 0.5)])
        # integral check against the base trace's own integral
        assert tr.work_until(0.0, 2.0) == pytest.approx(
            base.work_until(0.0, 2.0))
        assert tr.work_until(2.0, 4.0) == pytest.approx(
            0.5 * base.work_until(2.0, 4.0))
        dt = tr.time_to_complete(10.0, 0.0)
        assert tr.work_until(0.0, dt) == pytest.approx(10.0)

    def test_validation(self):
        with pytest.raises(ValueError, match="stop > start"):
            StraggleSpeed(ConstantSpeed(1.0), [(2.0, 2.0, 0.5)])
        with pytest.raises(ValueError, match="must not overlap"):
            StraggleSpeed(ConstantSpeed(1.0),
                          [(1.0, 3.0, 0.5), (2.0, 4.0, 0.5)])
        with pytest.raises(ValueError, match="factor"):
            StraggleSpeed(ConstantSpeed(1.0), [(1.0, 2.0, 0.0)])


class TestElasticCluster:
    def test_fail_node_orphans_running_and_queued(self):
        cluster = SimCluster(2, cores_per_node=1,
                             speeds=[ConstantSpeed(1.0), ConstantSpeed(1.0)])
        futs = [cluster.submit(0, work=2.0, label=f"t{i}", tag=i)
                for i in range(3)]
        cluster.run(until=1.0)  # first task mid-flight, two queued
        orphans = cluster.fail_node(0)
        assert [t.label for t in orphans] == ["t0", "t1", "t2"]
        assert not cluster.nodes[0].alive
        assert cluster.active_node_ids() == [1]
        assert cluster.alive_mask() == [False, True]
        # busy time truncated at the failure instant, not the would-be
        # completion
        assert cluster.busy_time(0) == pytest.approx(1.0)
        # futures still pending: the caller requeues
        assert not any(f.is_ready() for f in futs)
        for t in orphans:
            cluster.resubmit(t, 1)
        cluster.run()
        assert all(f.is_ready() for f in futs)
        assert cluster.nodes[1].tasks_completed == 3

    def test_fail_rejects_last_alive_and_double_fail(self):
        cluster = SimCluster(2)
        cluster.fail_node(0)
        with pytest.raises(SimulationError, match="already failed"):
            cluster.fail_node(0)
        with pytest.raises(SimulationError, match="last alive"):
            cluster.fail_node(1)

    def test_submit_and_resubmit_reject_dead_node(self):
        cluster = SimCluster(2)
        fut = cluster.submit(1, work=1.0)
        cluster.fail_node(0)
        with pytest.raises(SimulationError, match="failed node"):
            cluster.submit(0, work=1.0)
        orphan_like = None
        with pytest.raises(SimulationError, match="failed node"):
            from repro.amt.cluster import SimTask
            orphan_like = SimTask(1, 1.0, None, "x")
            cluster.resubmit(orphan_like, 0)
        cluster.run()
        assert fut.is_ready()

    def test_late_dependency_routes_through_orphan_handler(self):
        """A task whose ghost message arrives after its node died must
        reach the orphan handler, not the dead node's queue."""
        cluster = SimCluster(2, speeds=[ConstantSpeed(1.0)] * 2)
        msg = cluster.send(1, 0, nbytes=10 ** 9)  # ~0.8s wire time
        fut = cluster.submit(0, work=1.0, deps=[msg], label="late", tag=7)
        rerouted = []

        def handler(task):
            rerouted.append(task.tag)
            cluster.resubmit(task, 1)

        cluster.fail_node(0)
        cluster.orphan_handler = handler
        cluster.run()
        assert rerouted == [7]
        assert fut.is_ready()

    def test_late_dependency_without_handler_raises(self):
        cluster = SimCluster(2, speeds=[ConstantSpeed(1.0)] * 2)
        msg = cluster.send(1, 0, nbytes=10 ** 9)
        cluster.submit(0, work=1.0, deps=[msg])
        cluster.fail_node(0)
        with pytest.raises(SimulationError, match="no orphan handler"):
            cluster.run()

    def test_add_node_mid_run(self):
        cluster = SimCluster(1, speeds=[ConstantSpeed(1.0)])
        cluster.submit(0, work=1.0)
        cluster.run()
        nid = cluster.add_node(cores=2, trace=ConstantSpeed(4.0))
        assert nid == 1
        assert cluster.active_node_ids() == [0, 1]
        fut = cluster.submit(1, work=8.0)
        start = cluster.now
        cluster.run()
        assert fut.is_ready()
        assert cluster.now - start == pytest.approx(2.0)  # 8 work @ 4/s
        assert cluster.busy_time(1) == pytest.approx(2.0)
        assert cluster.bytes_sent(1) == 0.0

    def test_cancelled_completion_does_not_fire(self):
        """The failure instant coinciding with a completion: the
        cancelled event must not complete the task (fault wins)."""
        cluster = SimCluster(2, speeds=[ConstantSpeed(1.0)] * 2)
        fut = cluster.submit(0, work=2.0)
        cluster.sim.schedule(2.0, lambda: cluster.fail_node(0),
                             priority=-1)  # same instant as completion
        cluster.run()
        assert not fut.is_ready()
        assert cluster.nodes[0].tasks_completed == 0
        assert cluster.busy_time(0) == pytest.approx(2.0)
