"""Unit tests for the futures/promises layer."""

import threading

import pytest

from repro.amt.future import (Future, FutureError, LocalFuture, Promise,
                              dataflow, local_when_all,
                              make_exceptional_future, make_ready_future,
                              when_all)


class TestPromiseFuture:
    def test_set_then_get(self):
        p = Promise()
        p.set_value(42)
        assert p.get_future().get() == 42

    def test_get_future_returns_same_future(self):
        p = Promise()
        assert p.get_future() is p.get_future()

    def test_not_ready_initially(self):
        p = Promise()
        assert not p.get_future().is_ready()

    def test_ready_after_set(self):
        p = Promise()
        p.set_value(None)
        assert p.get_future().is_ready()

    def test_double_set_raises(self):
        p = Promise()
        p.set_value(1)
        with pytest.raises(FutureError):
            p.set_value(2)

    def test_set_exception_then_get_raises(self):
        p = Promise()
        p.set_exception(ValueError("boom"))
        with pytest.raises(ValueError, match="boom"):
            p.get_future().get()

    def test_has_exception(self):
        p = Promise()
        p.set_exception(RuntimeError("x"))
        assert p.get_future().has_exception()

    def test_value_future_has_no_exception(self):
        assert not make_ready_future(3).has_exception()

    def test_get_timeout_raises(self):
        p = Promise()
        with pytest.raises(FutureError, match="timed out"):
            p.get_future().get(timeout=0.01)

    def test_wait_timeout_raises(self):
        p = Promise()
        with pytest.raises(FutureError, match="timed out"):
            p.get_future().wait(timeout=0.01)

    def test_get_none_value(self):
        p = Promise()
        p.set_value(None)
        assert p.get_future().get() is None

    def test_cross_thread_get(self):
        p = Promise()

        def producer():
            p.set_value("from-thread")

        t = threading.Thread(target=producer)
        t.start()
        assert p.get_future().get(timeout=5.0) == "from-thread"
        t.join()


class TestReadyFutures:
    def test_make_ready(self):
        assert make_ready_future(7).get() == 7

    def test_make_ready_default_none(self):
        assert make_ready_future().get() is None

    def test_make_exceptional(self):
        f = make_exceptional_future(KeyError("k"))
        assert f.is_ready() and f.has_exception()
        with pytest.raises(KeyError):
            f.get()


class TestThen:
    def test_then_on_ready_future_runs_immediately(self):
        f = make_ready_future(10)
        g = f.then(lambda fut: fut.get() * 2)
        assert g.get() == 20

    def test_then_on_pending_runs_after_set(self):
        p = Promise()
        g = p.get_future().then(lambda fut: fut.get() + 1)
        assert not g.is_ready()
        p.set_value(1)
        assert g.get() == 2

    def test_then_propagates_continuation_exception(self):
        f = make_ready_future(0)
        g = f.then(lambda fut: 1 / fut.get())
        with pytest.raises(ZeroDivisionError):
            g.get()

    def test_then_chain(self):
        p = Promise()
        g = p.get_future().then(lambda f: f.get() + 1).then(lambda f: f.get() * 3)
        p.set_value(4)
        assert g.get() == 15


class TestWhenAll:
    def test_empty_ready_immediately(self):
        f = when_all([])
        assert f.is_ready()
        assert f.get() == []

    def test_fires_after_last(self):
        ps = [Promise() for _ in range(3)]
        combined = when_all(p.get_future() for p in ps)
        ps[0].set_value(0)
        ps[2].set_value(2)
        assert not combined.is_ready()
        ps[1].set_value(1)
        assert combined.is_ready()
        values = [f.get() for f in combined.get()]
        assert values == [0, 1, 2]

    def test_all_already_ready(self):
        futs = [make_ready_future(i) for i in range(4)]
        combined = when_all(futs)
        assert combined.is_ready()
        assert [f.get() for f in combined.get()] == [0, 1, 2, 3]

    def test_exceptional_input_still_completes(self):
        futs = [make_ready_future(1), make_exceptional_future(ValueError())]
        combined = when_all(futs)
        assert combined.is_ready()
        assert combined.get()[1].has_exception()


class TestDataflow:
    def test_paper_listing1_add(self):
        # mirrors the paper's Listing 1: a+b and c+d computed
        # asynchronously, then combined.
        a_add_b = make_ready_future(1 + 2)
        c_add_d = make_ready_future(3 + 4)
        total = dataflow(lambda x, y: x + y, a_add_b, c_add_d)
        assert total.get() == 10

    def test_waits_for_pending(self):
        p1, p2 = Promise(), Promise()
        out = dataflow(lambda a, b: a * b, p1.get_future(), p2.get_future())
        p1.set_value(6)
        assert not out.is_ready()
        p2.set_value(7)
        assert out.get() == 42

    def test_propagates_input_exception(self):
        bad = make_exceptional_future(RuntimeError("input failed"))
        out = dataflow(lambda a, b: a + b, make_ready_future(1), bad)
        with pytest.raises(RuntimeError, match="input failed"):
            out.get()

    def test_propagates_fn_exception(self):
        out = dataflow(lambda: 1 / 0)
        with pytest.raises(ZeroDivisionError):
            out.get()

    def test_no_inputs_runs_immediately(self):
        out = dataflow(lambda: "ok")
        assert out.get() == "ok"


class TestLocalFuture:
    """Lock-free single-threaded variant used on the DES hot path."""

    def test_same_protocol_as_future(self):
        fut = LocalFuture()
        assert not fut.is_ready()
        got = []
        fut._add_callback(lambda f: got.append(f.get()))
        fut._set_value(41)
        assert fut.is_ready() and fut.get() == 41
        assert got == [41]
        # late callbacks run immediately
        fut._add_callback(lambda f: got.append(f.get() + 1))
        assert got == [41, 42]

    def test_double_resolve_rejected(self):
        fut = LocalFuture()
        fut._set_value(1)
        with pytest.raises(FutureError):
            fut._set_value(2)

    def test_pending_get_raises_instead_of_blocking(self):
        fut = LocalFuture()
        with pytest.raises(FutureError, match="not ready"):
            fut.get()
        with pytest.raises(FutureError, match="not ready"):
            fut.wait()

    def test_exception_path(self):
        fut = LocalFuture()
        fut._set_exception(ValueError("boom"))
        assert fut.has_exception()
        with pytest.raises(ValueError, match="boom"):
            fut.get()

    def test_then_stays_local(self):
        fut = LocalFuture()
        out = fut.then(lambda f: f.get() * 2)
        assert isinstance(out, LocalFuture)
        fut._set_value(21)
        assert out.get() == 42

    def test_resolve_none_is_a_bound_event_action(self):
        fut = LocalFuture()
        fut._resolve_none()
        assert fut.get() is None


class TestLocalWhenAll:
    def test_fires_after_all_inputs(self):
        futs = [LocalFuture() for _ in range(3)]
        out = local_when_all(futs)
        assert isinstance(out, LocalFuture)
        for f in futs[:-1]:
            f._set_value(None)
            assert not out.is_ready()
        futs[-1]._set_value(None)
        assert out.get() == futs

    def test_empty_is_immediately_ready(self):
        assert local_when_all([]).get() == []

    def test_mixed_with_already_ready(self):
        ready = make_ready_future("x")
        pending = LocalFuture()
        out = local_when_all([ready, pending])
        assert not out.is_ready()
        pending._set_value("y")
        assert out.is_ready()
