"""Integration: end-to-end load-balancing scenarios on the full stack.

Partitioner -> decomposition -> simulated cluster -> busy-time counters
-> Algorithm 1 -> migration, across the imbalance sources the paper
motivates.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.amt.cluster import ConstantSpeed
from repro.core.balancer import LoadBalancer
from repro.core.policy import IntervalPolicy, ThresholdPolicy
from repro.mesh.grid import UniformGrid
from repro.mesh.subdomain import SubdomainGrid
from repro.models.crack import Crack, crack_work_factors
from repro.models.workload import step_interference
from repro.partition.graph import grid_dual_graph
from repro.partition.kway import partition_sd_grid
from repro.partition.metrics import parts_are_contiguous
from repro.solver.distributed import DistributedSolver
from repro.solver.model import NonlocalHeatModel


def build(mesh=128, sds=8, nodes=4, **solver_kw):
    grid = UniformGrid(mesh, mesh)
    model = NonlocalHeatModel(epsilon=8 * grid.h)
    sd_grid = SubdomainGrid(mesh, mesh, sds, sds)
    parts = partition_sd_grid(sds, sds, nodes, seed=0)
    solver = DistributedSolver(model, grid, sd_grid, parts,
                               num_nodes=nodes, compute_numerics=False,
                               **solver_kw)
    return sd_grid, solver


class TestStaticHeterogeneity:
    def test_balancer_matches_speed_ratios(self):
        """SD shares converge to the speed ratios (eq. 10)."""
        speeds = (1e9, 1e9, 2e9, 4e9)
        sd_grid, solver = build(
            speeds=[ConstantSpeed(s) for s in speeds],
            balancer=LoadBalancer(SubdomainGrid(128, 128, 8, 8)),
            policy=IntervalPolicy(1))
        solver.run(None, 12)
        counts = np.bincount(solver.parts, minlength=4)
        expected = 64 * np.array(speeds) / sum(speeds)
        assert np.all(np.abs(counts - expected) <= 2.0)

    def test_final_partition_contiguous(self):
        sd_grid, solver = build(
            speeds=[ConstantSpeed(s) for s in (1e9, 1e9, 2e9, 4e9)],
            balancer=LoadBalancer(SubdomainGrid(128, 128, 8, 8)),
            policy=IntervalPolicy(1))
        solver.run(None, 12)
        g = grid_dual_graph(8, 8)
        assert parts_are_contiguous(g, solver.parts)

    def test_makespan_gain_scales_with_heterogeneity(self):
        """More heterogeneous clusters gain more from balancing."""
        def gain(speed_set):
            base = build(speeds=[ConstantSpeed(s) for s in speed_set])[1]
            t_off = base.run(None, 10).makespan
            bal = build(speeds=[ConstantSpeed(s) for s in speed_set],
                        balancer=LoadBalancer(
                            SubdomainGrid(128, 128, 8, 8)),
                        policy=IntervalPolicy(1))[1]
            t_on = bal.run(None, 10).makespan
            return t_off / t_on

        mild = gain((1e9, 1e9, 1.2e9, 1.2e9))
        harsh = gain((1e9, 1e9, 4e9, 4e9))
        assert harsh > mild
        assert harsh > 1.5


class TestDynamicInterference:
    def test_threshold_policy_reacts_to_slowdown(self):
        """A mid-run slowdown triggers redistribution away from the
        afflicted node, and makespan beats the static baseline."""
        # per-step compute ~ 64 SDs * 256 DP * ~788 flops/DP / 4 nodes
        step_guess = 64 * 256 * 788 / 1e9 / 4
        window = (3 * step_guess, 20 * step_guess)

        def speeds():
            return [step_interference(1e9, *window, slowdown=0.3),
                    ConstantSpeed(1e9), ConstantSpeed(1e9),
                    ConstantSpeed(1e9)]

        _, static = build(speeds=speeds())
        t_static = static.run(None, 15).makespan
        sd_grid, balanced = build(
            speeds=speeds(),
            balancer=LoadBalancer(SubdomainGrid(128, 128, 8, 8)),
            policy=ThresholdPolicy(ratio=1.1))
        res = balanced.run(None, 15)
        assert res.parts_history, "no redistribution happened"
        assert res.makespan < t_static
        # node 0 sheds SDs at some point during the interference window
        min_n0 = min(int(np.bincount(p, minlength=4)[0])
                     for _, p in res.parts_history)
        assert min_n0 < 16


class TestCrackScenario:
    def test_crack_rows_end_up_with_more_sds(self):
        grid = UniformGrid(128, 128)
        model = NonlocalHeatModel(epsilon=8 * grid.h)
        sd_grid = SubdomainGrid(128, 128, 8, 8)
        cracks = [Crack.horizontal(0.1875, 0.02, 0.98),
                  Crack.horizontal(0.3125, 0.02, 0.98)]
        wf = crack_work_factors(sd_grid, cracks, horizon=2 * model.epsilon,
                                floor=0.2)
        assert (wf < 1).sum() > 8
        parts = np.repeat([0, 0, 1, 1, 2, 2, 3, 3], 8)  # 2 SD rows per node
        solver = DistributedSolver(
            model, grid, sd_grid, parts, num_nodes=4, work_factors=wf,
            compute_numerics=False, balancer=LoadBalancer(sd_grid),
            policy=IntervalPolicy(1))
        res = solver.run(None, 10)
        counts = np.bincount(solver.parts, minlength=4)
        # node 0 (cracked rows 0-1) and node 1 (cracked rows 2-3 partly)
        # absorb extra SDs; the fully intact nodes shed them
        assert counts[0] > 16
        assert counts.sum() == 64
        assert res.makespan > 0


class TestExplicitNoneBalancer:
    def test_none_disables_balancing_even_with_active_policy(self):
        """The pre-strategy contract: ``balancer=None`` means disabled,
        even when the policy fires — only the omitted argument means
        the auto strategy."""
        _, solver = build(speeds=[ConstantSpeed(s)
                                  for s in (1e9, 1e9, 2e9, 4e9)],
                          balancer=None, policy=IntervalPolicy(1))
        res = solver.run(None, 4)
        assert not res.balance_events
        assert not res.parts_history
        assert res.migration_bytes == 0


class TestDriftWorkload:
    """The hetero_drift scenario: node speeds ramp to the reversed
    assignment mid-run, so any one-shot distribution is wrong for most
    of the run.  Every adaptive strategy must beat NeverBalance."""

    @pytest.mark.parametrize("strategy", ["tree", "diffusion", "greedy",
                                          "repartition"])
    def test_every_adaptive_strategy_beats_never(self, strategy):
        from repro.experiments import build, run_scenario
        base = run_scenario(build("hetero_drift", steps=12, balanced=False))
        rec = run_scenario(build("hetero_drift", steps=12,
                                 balancer=strategy))
        assert rec.balancer_resolved == strategy
        assert rec.balance_events, "the per-step policy must have fired"
        assert base.makespan / rec.makespan >= 1.10, (
            f"{strategy} must beat NeverBalance by >= 10% under drift")

    def test_oneshot_balancing_loses_to_adaptive(self):
        """Balancing once at the start (and then freezing) matches the
        *initial* speeds — exactly wrong after the drift completes."""
        from repro.experiments import PolicySpec, build, run_scenario
        adaptive = run_scenario(build("hetero_drift", steps=10,
                                      balancer="tree"))
        oneshot = run_scenario(build("hetero_drift", steps=10).replace(
            policy=PolicySpec(kind="threshold", ratio=1.0,
                              min_interval=10 ** 9, balancer="tree")))
        assert len(oneshot.balance_events) == 1
        assert adaptive.makespan < oneshot.makespan


class TestRandomizedBalancing:
    @given(seed=st.integers(0, 100))
    @settings(max_examples=15, deadline=None)
    def test_balance_from_random_contiguous_start(self, seed):
        """From any partition, iterated Algorithm 1 on symmetric nodes
        approaches the uniform distribution within four sweeps without
        losing SDs (pinned to the tree strategy: the 4-sweep bound is
        its global-rebalance guarantee; diffusion converges slower by
        design)."""
        sg = SubdomainGrid(32, 32, 8, 8)
        lb = LoadBalancer(sg, strategy="tree")
        parts = partition_sd_grid(8, 8, 4, seed=seed,
                                  target_weights=[8, 1, 1, 1])
        for _ in range(4):
            busy = np.maximum(
                np.bincount(parts, minlength=4).astype(float), 1e-9)
            parts = lb.balance_step(parts, 4, busy).parts_after
        counts = np.bincount(parts, minlength=4)
        assert counts.sum() == 64
        assert counts.max() - counts.min() <= 2
