"""Cross-module property-based tests (hypothesis).

These pin down the structural invariants the reproduction leans on:
communication symmetry, cut/traffic consistency, balancer safety, and
operator spectral bounds.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.balancer import LoadBalancer
from repro.mesh.decomposition import Decomposition
from repro.mesh.grid import UniformGrid
from repro.mesh.stencil import build_stencil
from repro.mesh.subdomain import SubdomainGrid
from repro.partition.graph import grid_dual_graph
from repro.partition.kway import partition_sd_grid
from repro.partition.metrics import edge_cut
from repro.solver.kernel import NonlocalOperator
from repro.solver.model import NonlocalHeatModel, constant_influence


class TestCommunicationInvariants:
    @given(seed=st.integers(0, 100), k=st.integers(2, 5),
           radius=st.integers(1, 4))
    @settings(max_examples=25, deadline=None)
    def test_ghost_exchange_is_symmetric_in_bytes(self, seed, k, radius):
        """For every ordered node pair, bytes A->B equal bytes B->A.

        The stencil ball is symmetric, so if B's SDs need a strip of A's
        data, A's SDs need the mirrored strip of B's.
        """
        sds = 6
        sg = SubdomainGrid(6 * sds, 6 * sds, sds, sds)
        parts = partition_sd_grid(sds, sds, k, seed=seed)
        decomp = Decomposition(sg, parts, k)
        ex = decomp.exchange_bytes(radius)
        for (a, b), nbytes in ex.items():
            assert ex.get((b, a), 0) == nbytes

    @given(seed=st.integers(0, 100), k=st.integers(2, 5))
    @settings(max_examples=25, deadline=None)
    def test_zero_cut_iff_zero_ghost_bytes(self, seed, k):
        """Edge cut and ghost traffic vanish together."""
        sds = 6
        sg = SubdomainGrid(6 * sds, 6 * sds, sds, sds)
        g = grid_dual_graph(sds, sds)
        parts = partition_sd_grid(sds, sds, k, seed=seed)
        decomp = Decomposition(sg, parts, k)
        cut = edge_cut(g, parts)
        bytes_ = decomp.total_exchange_bytes(2)
        assert (cut == 0) == (bytes_ == 0)

    @given(radius=st.integers(1, 5))
    @settings(max_examples=10, deadline=None)
    def test_case1_counts_bounded_by_total(self, radius):
        sds = 5
        sg = SubdomainGrid(5 * sds, 5 * sds, sds, sds)
        parts = partition_sd_grid(sds, sds, 3, seed=0)
        decomp = Decomposition(sg, parts, 3)
        c1, c2 = decomp.case_counts(radius)
        assert c1 + c2 == (5 * sds) ** 2
        assert c1 >= 0 and c2 >= 0


class TestBalancerSafety:
    @given(seed=st.integers(0, 200),
           busy=st.lists(st.floats(0.1, 10.0), min_size=4, max_size=4))
    @settings(max_examples=40, deadline=None)
    def test_balance_step_output_is_always_a_valid_ownership(self, seed, busy):
        """Any busy-time vector yields a complete, in-range ownership."""
        sds = 6
        sg = SubdomainGrid(6 * sds, 6 * sds, sds, sds)
        lb = LoadBalancer(sg)
        parts = partition_sd_grid(sds, sds, 4, seed=seed)
        res = lb.balance_step(parts, 4, busy)
        after = res.parts_after
        assert len(after) == sds * sds
        assert after.min() >= 0 and after.max() < 4
        # SD conservation: nothing created or destroyed
        assert np.bincount(after, minlength=4).sum() == sds * sds

    @given(seed=st.integers(0, 100))
    @settings(max_examples=20, deadline=None)
    def test_noop_when_busy_times_match_loads(self, seed):
        """If busy time is exactly proportional to load (symmetric
        nodes), a balanced integer distribution must not move."""
        sds = 8
        sg = SubdomainGrid(8 * sds, 8 * sds, sds, sds)
        lb = LoadBalancer(sg)
        from repro.partition.geometric import block_partition
        parts = block_partition(sds, sds, 4)  # exactly 16 SDs each
        counts = np.bincount(parts, minlength=4).astype(float)
        res = lb.balance_step(parts, 4, counts)
        assert res.sds_moved == 0


class TestOperatorSpectralBounds:
    @given(seed=st.integers(0, 50), eps_factor=st.sampled_from([2, 3, 4]))
    @settings(max_examples=15, deadline=None)
    def test_operator_norm_bounded_by_2cvs(self, seed, eps_factor):
        """|| L u || <= 2 c V S || u || — the bound behind stable_dt."""
        grid = UniformGrid(16, 16)
        model = NonlocalHeatModel(epsilon=eps_factor * grid.h)
        op = NonlocalOperator(model, grid)
        rng = np.random.default_rng(seed)
        u = rng.standard_normal(grid.shape)
        bound = 2 * model.c * grid.cell_volume * op.stencil.weight_sum
        assert np.linalg.norm(op.apply(u)) <= bound * np.linalg.norm(u) + 1e-9

    @given(eps_factor=st.sampled_from([2, 3, 4, 6]))
    @settings(max_examples=8, deadline=None)
    def test_stencil_weight_sum_tracks_ball_area(self, eps_factor):
        """S * h^2 approximates the ball area pi eps^2 (J = 1)."""
        h = 1.0 / 64
        st_ = build_stencil(h, eps_factor * h, constant_influence)
        area = st_.weight_sum * h * h
        expected = np.pi * (eps_factor * h) ** 2
        assert area == np.float64(area)
        assert abs(area - expected) / expected < 0.35  # coarse balls deviate


class TestChannelRandomOps:
    @given(ops=st.lists(st.tuples(st.booleans(), st.integers(0, 8)),
                        min_size=1, max_size=40))
    @settings(max_examples=50, deadline=None)
    def test_random_interleaving_never_loses_values(self, ops):
        """Any legal set/get interleaving delivers each generation's
        value exactly once."""
        from repro.amt.channel import Channel
        ch = Channel("prop")
        futures = {}
        set_gens = set()
        got_gens = set()
        for is_set, gen in ops:
            if is_set:
                if gen in set_gens:
                    continue
                set_gens.add(gen)
                ch.set(gen, f"v{gen}")
            else:
                if gen in got_gens:
                    continue
                got_gens.add(gen)
                futures[gen] = ch.get(gen)
        for gen, fut in futures.items():
            if gen in set_gens:
                assert fut.get() == f"v{gen}"
            else:
                assert not fut.is_ready()
