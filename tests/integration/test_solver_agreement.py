"""Integration: the three solvers are the same discretization.

The async and distributed solvers perform the serial solver's arithmetic
under different schedules; any divergence beyond float round-off means a
ghost-exchange or decomposition bug.  These tests sweep layouts,
horizons, influence functions, and partitioners.
"""

import numpy as np
import pytest

from repro.mesh.grid import UniformGrid
from repro.mesh.subdomain import SubdomainGrid
from repro.partition.geometric import strip_partition
from repro.partition.kway import partition_sd_grid
from repro.solver.async_solver import AsyncSolver
from repro.solver.distributed import DistributedSolver
from repro.solver.exact import ManufacturedProblem
from repro.solver.model import (NonlocalHeatModel, gaussian_influence,
                                linear_influence)
from repro.solver.serial import SerialSolver


def reference(nx, eps_factor, steps, influence=None):
    grid = UniformGrid(nx, nx)
    kwargs = {} if influence is None else {"influence": influence}
    model = NonlocalHeatModel(epsilon=eps_factor * grid.h, **kwargs)
    prob = ManufacturedProblem(model, grid, source_mode="discrete")
    serial = SerialSolver(model, grid, source=prob.source)
    ref = serial.run(prob.initial_condition(), steps)
    return grid, model, prob, serial.dt, ref


class TestThreeWayAgreement:
    @pytest.mark.parametrize("eps_factor", [2, 4, 6])
    def test_all_solvers_agree_across_horizons(self, eps_factor):
        grid, model, prob, dt, ref = reference(32, eps_factor, 3)
        sg = SubdomainGrid(32, 32, 4, 4)
        a = AsyncSolver(model, grid, sg, num_threads=2,
                        source=prob.source, dt=dt).run(
            prob.initial_condition(), 3)
        d = DistributedSolver(model, grid, sg, partition_sd_grid(4, 4, 3),
                              num_nodes=3, source=prob.source, dt=dt).run(
            prob.initial_condition(), 3)
        assert np.allclose(a.u, ref.u, atol=1e-12)
        assert np.allclose(d.u, ref.u, atol=1e-12)

    @pytest.mark.parametrize("influence", [linear_influence, gaussian_influence])
    def test_agreement_with_nonconstant_influence(self, influence):
        grid, model, prob, dt, ref = reference(24, 3, 3, influence=influence)
        sg = SubdomainGrid(24, 24, 3, 3)
        d = DistributedSolver(model, grid, sg, strip_partition(3, 3, 2),
                              num_nodes=2, source=prob.source, dt=dt).run(
            prob.initial_condition(), 3)
        assert np.allclose(d.u, ref.u, atol=1e-12)

    def test_agreement_with_metis_vs_strip_partitions(self):
        """Different partitions must not change the numerics at all."""
        grid, model, prob, dt, _ = reference(32, 3, 3)
        sg = SubdomainGrid(32, 32, 4, 4)
        u0 = prob.initial_condition()
        runs = []
        for parts, k in [(partition_sd_grid(4, 4, 4), 4),
                         (strip_partition(4, 4, 4), 4),
                         (np.zeros(16, dtype=int), 1)]:
            res = DistributedSolver(model, grid, sg, parts, num_nodes=k,
                                    source=prob.source, dt=dt).run(u0, 3)
            runs.append(res.u)
        assert np.allclose(runs[0], runs[1], atol=1e-12)
        assert np.allclose(runs[0], runs[2], atol=1e-12)

    def test_agreement_under_active_balancing_with_work_factors(self):
        """Balancing mid-run (migrations included) must not perturb
        temperatures."""
        from repro.core.balancer import LoadBalancer
        from repro.core.policy import IntervalPolicy
        from repro.amt.cluster import ConstantSpeed

        grid, model, prob, dt, ref = reference(32, 3, 6)
        sg = SubdomainGrid(32, 32, 4, 4)
        wf = np.ones(16)
        wf[:4] = 0.4
        speeds = [ConstantSpeed(s) for s in (1e6, 2e6, 3e6, 4e6)]
        d = DistributedSolver(model, grid, sg, partition_sd_grid(4, 4, 4),
                              num_nodes=4, speeds=speeds, work_factors=wf,
                              source=prob.source, dt=dt,
                              balancer=LoadBalancer(sg),
                              policy=IntervalPolicy(1)).run(
            prob.initial_condition(), 6)
        assert any(b.sds_moved for b in d.balance_results)
        assert np.allclose(d.u, ref.u, atol=1e-12)


class TestConvergenceOrder:
    def test_spatial_convergence_is_second_order(self):
        """Continuum-source errors shrink ~4x per mesh halving.

        The error norm (eq. 7) is a *squared* L2 sum, so second-order
        pointwise accuracy appears as a factor ~16 per refinement; we
        require at least 8 to allow boundary-layer pollution.
        """
        from repro.solver.serial import solve_manufactured
        errors = []
        for nx in (16, 32, 64):
            res = solve_manufactured(nx, eps_factor=2, num_steps=4,
                                     dt=0.01 / (nx * nx),
                                     source_mode="continuum")
            errors.append(res.total_error)
        assert errors[0] / errors[1] > 8
        assert errors[1] / errors[2] > 8

    def test_temporal_convergence_first_order(self):
        """Discrete-source errors scale ~dt (squared norm => ~dt^2)."""
        from repro.solver.serial import solve_manufactured
        T = 16 * 2e-4
        coarse = solve_manufactured(16, eps_factor=2, num_steps=16,
                                    dt=T / 16, source_mode="discrete")
        fine = solve_manufactured(16, eps_factor=2, num_steps=32,
                                  dt=T / 32, source_mode="discrete")
        # compare the *final-step* errors at the same physical time
        ratio = coarse.errors[-1] / fine.errors[-1]
        assert 2.5 < ratio < 6.5  # ~4 expected for first-order-in-dt
