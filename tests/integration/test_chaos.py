"""Chaos/determinism harness: random churn x every registered balancer.

The elastic-cluster invariants (DESIGN.md substitution 4) must hold for
*any* fault schedule, not just the curated scenarios:

* **conservation** — every SD keeps exactly one owner through
  evacuation; nothing is lost or duplicated;
* **no dead owners** — once a node fails, no recorded ownership (at any
  balance event, or at the end) assigns it an SD;
* **determinism** — bit-identical ``RunRecord``s across repeated runs
  and across ``run_sweep`` vs serial execution, faults and all.

Schedules are drawn valid-by-construction (increasing times, fails only
while >= 2 nodes live, sequential join ids) over a small schedule-only
scenario so hundreds of runs stay cheap.  A fixed "forced" schedule is
also pinned per balancer — that is what the CI chaos matrix exercises
under each ``REPRO_BALANCER``.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.strategies import strategy_names
from repro.experiments import (ChurnEvent, ClusterSpec, FaultSpec, MeshSpec,
                               PartitionSpec, PolicySpec, ScenarioSpec,
                               run_scenario, run_sweep)

ALL = strategy_names()

#: Virtual length of the no-fault base run (mesh 32, 4x4 SDs, 3 nodes,
#: 5 steps, default speeds) — measured once; events are placed relative
#: to it, including slightly beyond the end (a legal no-op).
BASE_SPAN = None


def base_spec(faults=None, balancer="auto", nodes=3, steps=5):
    return ScenarioSpec(
        name="chaos_probe",
        mesh=MeshSpec(nx=32, sd_nx=4, eps_factor=2.0),
        cluster=ClusterSpec(num_nodes=nodes, faults=faults),
        partition=PartitionSpec(method="blocks"),
        policy=PolicySpec(kind="interval", interval=1, balancer=balancer),
        num_steps=steps)


def _span():
    global BASE_SPAN
    if BASE_SPAN is None:
        BASE_SPAN = run_scenario(base_spec()).makespan
    return BASE_SPAN


@st.composite
def fault_schedules(draw, initial_nodes=3):
    """A valid-by-construction churn schedule for the probe scenario."""
    span = _span()
    num_events = draw(st.integers(1, 3))
    events = []
    alive = set(range(initial_nodes))
    known = initial_nodes
    straggle_end = {}
    t = 0.0
    for _ in range(num_events):
        t += draw(st.floats(0.08, 0.45)) * span
        kind = draw(st.sampled_from(["fail", "join", "straggle"]))
        if kind == "fail" and len(alive) >= 2:
            node = draw(st.sampled_from(sorted(alive)))
            alive.discard(node)
            events.append(ChurnEvent("fail", t, node))
        elif kind == "join":
            rate = draw(st.floats(0.5, 2.0)) * 1e9
            events.append(ChurnEvent("join", t, known, rate=rate))
            alive.add(known)
            known += 1
        else:
            # no overlapping windows on one node (FaultSchedule rejects)
            candidates = sorted(n for n in alive
                                if straggle_end.get(n, 0.0) <= t)
            if not candidates:
                continue
            node = draw(st.sampled_from(candidates))
            stop = t + draw(st.floats(0.05, 0.3)) * span
            factor = draw(st.floats(0.2, 0.9))
            straggle_end[node] = stop
            events.append(ChurnEvent("straggle", t, node, stop=stop,
                                     factor=factor))
    penalty = draw(st.floats(0.0, 1.0))
    return FaultSpec(events=tuple(events), recovery_penalty=penalty)


def failed_before_end(rec):
    """Node ids that failed during the run, per the recovery telemetry."""
    return [e["node"] for e in rec.recovery_events if e["kind"] == "fail"]


def assert_churn_invariants(rec, num_sds=16):
    """Conservation + no-dead-owner over the whole recorded timeline."""
    assert len(rec.final_parts) == num_sds
    max_nodes = rec.spec["cluster"]["num_nodes"] + sum(
        1 for e in rec.spec["cluster"]["faults"]["events"]
        if e["kind"] == "join")
    assert all(0 <= p < max_nodes for p in rec.final_parts)
    dead = set(failed_before_end(rec))
    assert not dead & set(rec.final_parts), \
        f"final ownership references dead nodes {dead & set(rec.final_parts)}"
    for _step, parts in rec.parts_events:
        assert len(parts) == num_sds  # conservation at every event
    # once a failed node's SDs are evacuated, no later recorded
    # ownership may hand anything back to it.  The evacuation entry is
    # the first event at or after the failure's step that excludes the
    # dead node (entries are chronological; same-step entries recorded
    # before the failure may still legitimately include it).
    fail_steps = {e["node"]: e["step"] for e in rec.recovery_events
                  if e["kind"] == "fail"}
    for node, fail_step in fail_steps.items():
        tail = [i for i, (s, p) in enumerate(rec.parts_events)
                if s >= fail_step and node not in p]
        assert tail, f"no evacuation recorded for dead node {node}"
        for s, parts in rec.parts_events[tail[0]:]:
            assert node not in parts, \
                f"SDs reassigned to dead node {node} at step {s}"
    # every fail in the schedule within the run was handled
    for e in rec.recovery_events:
        if e["kind"] == "fail":
            assert e["sds_evacuated"] >= 0
            assert e["recovery_bytes"] >= 0


@pytest.mark.parametrize("name", ALL)
class TestChaos:
    @given(faults=fault_schedules())
    @settings(max_examples=8, deadline=None)
    def test_invariants_and_repeat_determinism(self, name, faults):
        spec = base_spec(faults=faults, balancer=name)
        rec = run_scenario(spec)
        assert_churn_invariants(rec)
        assert rec.balancer_resolved == name
        # bit-identical repeat: schedules, telemetry, everything
        assert run_scenario(spec) == rec

    @given(faults=fault_schedules())
    @settings(max_examples=6, deadline=None)
    def test_never_balancing_still_evacuates(self, name, faults):
        """Correctness does not depend on the policy: with balancing
        off, failed nodes are still mechanically evacuated."""
        spec = base_spec(faults=faults, balancer=name).replace(
            policy=PolicySpec(balancer=name))
        rec = run_scenario(spec)
        assert_churn_invariants(rec)
        for e in rec.balance_events:
            # the only balance events a never-policy run may record are
            # the forced evacuations
            assert e["recovery"] and e["strategy"] == "evacuate"


#: The forced schedule the CI chaos matrix drives through every
#: registered balancer: an early straggle, a mid-run failure, a late
#: join — all three churn kinds in one run.
FORCED = FaultSpec(events=(
    ChurnEvent("straggle", 0.08e-4, 2, stop=0.3e-4, factor=0.4),
    ChurnEvent("fail", 0.35e-4, 0),
    ChurnEvent("join", 0.6e-4, 3, rate=1.5e9),
))


@pytest.mark.parametrize("name", ALL)
class TestForcedSchedule:
    def test_forced_schedule_invariants(self, name):
        rec = run_scenario(base_spec(faults=FORCED, balancer=name))
        assert_churn_invariants(rec)
        assert failed_before_end(rec) == [0]
        assert [e["kind"] for e in rec.recovery_events] == ["fail", "join"]
        # the joiner ends up owning SDs: absorption happened
        assert 3 in rec.final_parts
        # at least the evacuation event is recovery-tagged
        assert any(e["recovery"] for e in rec.balance_events)

    def test_sweep_bit_identical_to_serial(self, name):
        """The acceptance contract under churn: a process-pool sweep
        over fault scenarios equals serial execution bit for bit."""
        specs = [base_spec(faults=FORCED, balancer=name),
                 base_spec(faults=FORCED, balancer=name, steps=4)]
        serial = run_sweep(specs, serial=True)
        parallel = run_sweep(specs, serial=False, max_workers=2)
        assert parallel == serial


class TestForcedScheduleFollowsEnv:
    """The CI chaos matrix forces each strategy via ``REPRO_BALANCER``;
    an ``auto``-configured churn run must route its recovery through
    the forced strategy (this is the test that actually differs
    between matrix legs — the parametrized classes above pin their
    balancer explicitly and are env-invariant)."""

    def test_auto_resolves_through_env_under_churn(self):
        from repro.core.strategies import requested_strategy
        expected = requested_strategy("auto")
        if expected == "auto":
            expected = "tree"
        rec = run_scenario(base_spec(faults=FORCED, balancer="auto"))
        assert_churn_invariants(rec)
        assert rec.balancer_resolved == expected
        assert all(e["strategy"] in (expected, "evacuate")
                   for e in rec.balance_events)


class TestCuratedScenarioDeterminism:
    """The registry's churn scenarios run deterministically serial vs
    sweep — the ISSUE-4 acceptance criterion, pinned per scenario."""

    @pytest.mark.parametrize("scenario", ["hetero_churn", "fault_recovery",
                                          "straggler_tail"])
    def test_registry_scenarios_sweep_parity(self, scenario):
        from repro.experiments import build
        spec = build(scenario, steps=4)
        serial = run_sweep([spec, spec], serial=True)
        parallel = run_sweep([spec, spec], serial=False, max_workers=2)
        assert parallel == serial
        assert serial[0] == serial[1]
