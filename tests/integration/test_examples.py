"""Smoke tests: every example script runs to completion.

Examples are the library's documentation of record; a broken example is
a bug.  Each is executed in-process (fresh module namespace) with its
stdout captured and sanity-checked.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def run_example(name, capsys):
    path = EXAMPLES / name
    assert path.exists(), f"missing example {name}"
    runpy.run_path(str(path), run_name="__main__")
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, capsys):
        out = run_example("quickstart.py", capsys)
        assert "OK" in out
        assert "virtual makespan" in out

    def test_partitioning_study(self, capsys):
        out = run_example("partitioning_study.py", capsys)
        assert "multilevel" in out
        assert "ghost bytes/step" in out

    def test_overlap_gantt(self, capsys):
        out = run_example("overlap_gantt.py", capsys)
        assert "WITH Case-1/Case-2 overlap" in out
        assert "WITHOUT overlap" in out
        # overlap run must be faster: parse the two makespans
        lines = [l for l in out.splitlines() if l.startswith("makespan:")]
        with_ms = float(lines[0].split()[1])
        without_ms = float(lines[1].split()[1])
        assert with_ms < without_ms

    def test_nonlocal_limits(self, capsys):
        out = run_example("nonlocal_limits.py", capsys)
        assert "pinned to zero" in out

    def test_crack_load_balancing(self, capsys):
        out = run_example("crack_load_balancing.py", capsys)
        assert "improvement" in out
        assert "balanced" in out

    def test_heterogeneous_cluster(self, capsys):
        out = run_example("heterogeneous_cluster.py", capsys)
        assert "threshold balancer" in out
        assert "SD redistribution events" in out

    def test_balancer_strategies(self, capsys):
        out = run_example("balancer_strategies.py", capsys)
        for name in ("never", "tree", "diffusion", "greedy", "repartition"):
            assert name in out
        assert "balance events" in out.lower()

    def test_elastic_churn(self, capsys):
        out = run_example("elastic_churn.py", capsys)
        assert "Recovery events" in out
        assert "churn gain" in out
        assert "OK: dead node empty, joiner absorbed" in out
        # the gap between never and adaptive is the example's point
        gain = float(out.split("churn gain: ")[1].split("x")[0])
        assert gain > 1.15

    def test_rack_placement(self, capsys):
        out = run_example("rack_placement.py", capsys)
        assert "Placement ablation" in out
        assert "bytes by class" in out
        assert "OK: same traffic, different links" in out
        gain = float(out.split("beats scattered placement ")[1]
                     .split("x")[0])
        assert gain >= 1.10  # the topology ablation's acceptance bar
