"""Tests for time-varying node capacity traces."""

import pytest

from repro.models.workload import (drift_ramp, heterogeneous_constant,
                                   random_interference,
                                   staircase_degradation, step_interference)


class TestStepInterference:
    def test_rate_profile(self):
        tr = step_interference(10.0, start=5.0, stop=10.0, slowdown=0.5)
        assert tr.rate(0.0) == 10.0
        assert tr.rate(7.0) == 5.0
        assert tr.rate(12.0) == 10.0

    def test_interference_from_time_zero(self):
        tr = step_interference(10.0, start=0.0, stop=5.0, slowdown=0.2)
        assert tr.rate(1.0) == pytest.approx(2.0)
        assert tr.rate(6.0) == 10.0

    def test_completion_spans_window(self):
        tr = step_interference(10.0, start=5.0, stop=10.0, slowdown=0.5)
        # 75 units from t=0: 50 in [0,5), then 25 at rate 5 -> 5s more
        assert tr.time_to_complete(75.0, 0.0) == pytest.approx(10.0)

    def test_validation(self):
        with pytest.raises(ValueError, match="slowdown"):
            step_interference(1.0, 0.0, 1.0, slowdown=0.0)
        with pytest.raises(ValueError, match="start < stop"):
            step_interference(1.0, 5.0, 5.0)


class TestStaircase:
    def test_decay_steps(self):
        tr = staircase_degradation(8.0, [1.0, 2.0], decay=0.5)
        assert tr.rate(0.5) == 8.0
        assert tr.rate(1.5) == 4.0
        assert tr.rate(3.0) == 2.0

    def test_no_steps_constant(self):
        tr = staircase_degradation(8.0, [])
        assert tr.rate(100.0) == 8.0

    def test_unsorted_steps_accepted(self):
        tr = staircase_degradation(8.0, [2.0, 1.0], decay=0.5)
        assert tr.rate(1.5) == 4.0

    def test_validation(self):
        with pytest.raises(ValueError, match="decay"):
            staircase_degradation(1.0, [1.0], decay=1.5)


class TestRandomInterference:
    def test_deterministic_for_seed(self):
        a = random_interference(10.0, 100.0, 3, seed=42)
        b = random_interference(10.0, 100.0, 3, seed=42)
        for t in (0.0, 25.0, 50.0, 75.0):
            assert a.rate(t) == b.rate(t)

    def test_zero_windows_constant(self):
        tr = random_interference(10.0, 100.0, 0)
        assert tr.rate(50.0) == 10.0

    def test_rates_are_base_or_slowed(self):
        tr = random_interference(10.0, 100.0, 4, slowdown=0.25, seed=1)
        for t in range(0, 100, 5):
            assert tr.rate(float(t)) in (10.0, 2.5)

    def test_validation(self):
        with pytest.raises(ValueError, match="slowdown"):
            random_interference(1.0, 10.0, 2, slowdown=1.5)


class TestHeterogeneousConstant:
    def test_builds_constant_traces(self):
        traces = heterogeneous_constant([1.0, 2.0, 4.0])
        assert [tr.rate(0.0) for tr in traces] == [1.0, 2.0, 4.0]


class TestDriftRamp:
    def test_builds_ramps_between_the_rate_vectors(self):
        from repro.amt.cluster import ConstantSpeed, RampSpeed
        traces = drift_ramp([1.0, 2.0, 3.0], [3.0, 2.0, 1.0],
                            start=5.0, stop=15.0)
        assert isinstance(traces[0], RampSpeed)
        assert isinstance(traces[1], ConstantSpeed)  # unchanged rate
        assert isinstance(traces[2], RampSpeed)
        assert traces[0].rate(0.0) == 1.0
        assert traces[0].rate(10.0) == pytest.approx(2.0)
        assert traces[0].rate(20.0) == 3.0
        assert traces[2].rate(20.0) == 1.0

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError, match="matching rate vectors"):
            drift_ramp([1.0, 2.0], [1.0], start=0.0, stop=1.0)
