"""Tests for the crack workload model."""

import numpy as np
import pytest

from repro.mesh.subdomain import SubdomainGrid
from repro.models.crack import Crack, crack_work_factors, _segments_intersect


class TestSegmentIntersection:
    def test_crossing(self):
        assert _segments_intersect((0, 0), (1, 1), (0, 1), (1, 0))

    def test_parallel_disjoint(self):
        assert not _segments_intersect((0, 0), (1, 0), (0, 1), (1, 1))

    def test_touching_endpoint(self):
        assert _segments_intersect((0, 0), (1, 0), (1, 0), (1, 1))

    def test_collinear_overlap(self):
        assert _segments_intersect((0, 0), (2, 0), (1, 0), (3, 0))

    def test_collinear_disjoint(self):
        assert not _segments_intersect((0, 0), (1, 0), (2, 0), (3, 0))

    def test_t_junction(self):
        assert _segments_intersect((0, 0), (2, 0), (1, -1), (1, 1))


class TestCrack:
    def test_requires_two_points(self):
        with pytest.raises(ValueError):
            Crack([(0, 0)])

    def test_segments(self):
        c = Crack([(0, 0), (0.5, 0.5), (1, 0)])
        assert len(c.segments) == 2

    def test_severs_crossing_bond(self):
        c = Crack.horizontal(0.5)
        assert c.severs((0.3, 0.4), (0.3, 0.6))

    def test_does_not_sever_parallel_bond(self):
        c = Crack.horizontal(0.5)
        assert not c.severs((0.2, 0.4), (0.8, 0.4))

    def test_partial_crack_extent(self):
        c = Crack.horizontal(0.5, x0=0.0, x1=0.4)
        assert c.severs((0.2, 0.4), (0.2, 0.6))
        assert not c.severs((0.8, 0.4), (0.8, 0.6))

    def test_diagonal_factory(self):
        c = Crack.diagonal()
        assert c.severs((0.4, 0.6), (0.6, 0.4))


class TestWorkFactors:
    def test_crack_free_sds_have_factor_one(self):
        sg = SubdomainGrid(16, 16, 4, 4)
        crack = Crack.horizontal(0.5)
        wf = crack_work_factors(sg, crack, horizon=0.05)
        # SDs in the top and bottom rows are far from y=0.5
        assert wf[sg.sd_id(0, 0)] == 1.0
        assert wf[sg.sd_id(3, 3)] == 1.0

    def test_cracked_sds_have_reduced_factor(self):
        sg = SubdomainGrid(16, 16, 4, 4)
        crack = Crack.horizontal(0.5)
        wf = crack_work_factors(sg, crack, horizon=0.1)
        # SDs straddling y=0.5 (rows 1 and 2 touch it) are lightened
        mid = wf[sg.sd_id(1, 1)]
        assert mid < 1.0

    def test_factors_bounded_by_floor(self):
        sg = SubdomainGrid(16, 16, 4, 4)
        crack = Crack.horizontal(0.5)
        wf = crack_work_factors(sg, crack, horizon=0.3, floor=0.4)
        assert np.all(wf >= 0.4 - 1e-12)
        assert np.all(wf <= 1.0 + 1e-12)

    def test_longer_horizon_affects_more_sds(self):
        sg = SubdomainGrid(32, 32, 8, 8)
        crack = Crack.horizontal(0.5)
        near = crack_work_factors(sg, crack, horizon=0.03)
        far = crack_work_factors(sg, crack, horizon=0.2)
        assert (far < 1.0).sum() >= (near < 1.0).sum()

    def test_diagonal_crack_asymmetric_footprint(self):
        sg = SubdomainGrid(16, 16, 4, 4)
        wf = crack_work_factors(sg, Crack.diagonal(), horizon=0.1)
        # diagonal SDs are lightened, the far corners are not
        assert wf[sg.sd_id(0, 0)] < 1.0
        assert wf[sg.sd_id(3, 0)] == 1.0

    def test_validation(self):
        sg = SubdomainGrid(8, 8, 2, 2)
        crack = Crack.horizontal(0.5)
        with pytest.raises(ValueError, match="floor"):
            crack_work_factors(sg, crack, horizon=0.1, floor=0.0)
        with pytest.raises(ValueError, match="samples"):
            crack_work_factors(sg, crack, horizon=0.1, samples_per_sd=1)
