from pathlib import Path

from setuptools import find_packages, setup

_design = Path(__file__).resolve().parent / "DESIGN.md"

setup(
    name="repro-nonlocal-loadbalance",
    version="1.0.0",
    description=("Reproduction of 'Load balancing for distributed nonlocal "
                 "models within asynchronous many-task systems' "
                 "(IPPS 2021 workshops)"),
    long_description=(_design.read_text(encoding="utf-8")
                      if _design.exists() else ""),
    long_description_content_type="text/markdown",
    author="paper-repo-growth",
    license="MIT",
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.9",
    install_requires=[
        "numpy",
        "scipy",
    ],
    entry_points={
        "console_scripts": [
            "repro = repro.cli:main",
        ],
    },
    classifiers=[
        "Programming Language :: Python :: 3",
        "Topic :: Scientific/Engineering",
        "Intended Audience :: Science/Research",
    ],
)
