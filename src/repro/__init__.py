"""repro — reproduction of "Load balancing for distributed nonlocal
models within asynchronous many-task systems" (Gadikar, Diehl, Jha;
IPPS 2021, arXiv:2102.03819).

Quick tour of the public API (see README.md for a walkthrough):

>>> from repro import (UniformGrid, NonlocalHeatModel, ManufacturedProblem,
...                    SerialSolver)
>>> grid = UniformGrid(64, 64)
>>> model = NonlocalHeatModel(epsilon=8 * grid.h)
>>> problem = ManufacturedProblem(model, grid)
>>> solver = SerialSolver(model, grid, source=problem.source)
>>> result = solver.run(problem.initial_condition(), num_steps=20,
...                     exact=problem.exact)
>>> result.total_error < 1e-2
True

Sub-packages:

* :mod:`repro.amt` — HPX-like runtime (futures, executor, simulated
  cluster, AGAS, performance counters, fault schedules, network
  topologies);
* :mod:`repro.partition` — from-scratch multilevel graph partitioner
  (METIS substitute) + geometric baselines + topology-aware placement;
* :mod:`repro.mesh` — grids, sub-domains, stencils, decomposition;
* :mod:`repro.solver` — serial / shared-memory-async / distributed
  solvers for the nonlocal heat equation, with pluggable kernel
  backends (:mod:`repro.solver.backends`: direct / fft / sparse);
* :mod:`repro.core` — the paper's load-balancing algorithm and its
  pluggable strategy alternatives (:mod:`repro.core.strategies`:
  tree / diffusion / greedy / repartition);
* :mod:`repro.models` — crack and node-interference workload models;
* :mod:`repro.reporting` — text rendering for the benchmark harness;
* :mod:`repro.experiments` — the declarative scenario/experiment engine
  (specs, registry, parallel sweep runner, structured results).
"""

from .amt import (ConstantSpeed, Network, PiecewiseSpeed, SimCluster,
                  TaskExecutor)
from .experiments import (ClusterSpec, MeshSpec, PartitionSpec, PolicySpec,
                          RunRecord, ScenarioSpec, TopologySpec,
                          build_scenario, run_scenario, run_sweep,
                          scenario_names)
from .core import (BalanceStrategy, IntervalPolicy, LoadBalancer,
                   NeverBalance, ThresholdPolicy, strategy_names)
from .mesh import Decomposition, SubdomainGrid, UniformGrid, build_stencil
from .models import Crack, crack_work_factors
from .partition import (block_partition, partition_graph, partition_sd_grid,
                        strip_partition)
from .solver import (AsyncSolver, DistributedSolver, ManufacturedProblem,
                     NonlocalHeatModel, SerialSolver, backend_names,
                     solve_manufactured)

__version__ = "1.0.0"

__all__ = [
    "ConstantSpeed", "Network", "PiecewiseSpeed", "SimCluster", "TaskExecutor",
    "BalanceStrategy", "IntervalPolicy", "LoadBalancer", "NeverBalance",
    "ThresholdPolicy", "strategy_names",
    "Decomposition", "SubdomainGrid", "UniformGrid", "build_stencil",
    "Crack", "crack_work_factors",
    "block_partition", "partition_graph", "partition_sd_grid",
    "strip_partition",
    "AsyncSolver", "DistributedSolver", "ManufacturedProblem",
    "NonlocalHeatModel", "SerialSolver", "backend_names",
    "solve_manufactured",
    "MeshSpec", "ClusterSpec", "PartitionSpec", "PolicySpec",
    "ScenarioSpec", "TopologySpec", "RunRecord", "build_scenario",
    "run_scenario", "run_sweep", "scenario_names",
    "__version__",
]
