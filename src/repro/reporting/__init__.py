"""Text rendering of benchmark outputs: series tables and ownership grids."""

from .ownership import (ownership_counts, render_ownership,
                        render_ownership_sequence)
from .tables import format_series, format_table, print_series, print_table
from .trace import TaskInterval, TraceRecorder, render_gantt

__all__ = [
    "ownership_counts", "render_ownership", "render_ownership_sequence",
    "format_series", "format_table", "print_series", "print_table",
    "TaskInterval", "TraceRecorder", "render_gantt",
]
