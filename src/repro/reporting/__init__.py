"""Text rendering of benchmark outputs: series tables, ownership grids,
and balancing telemetry."""

from .balance import (format_balance_events, format_bytes_by_class,
                      format_recovery_events)
from .ownership import (ownership_counts, render_ownership,
                        render_ownership_sequence)
from .service import (format_scale_events, format_service_summary,
                      format_tenant_table)
from .tables import format_series, format_table, print_series, print_table
from .trace import TaskInterval, TraceRecorder, render_gantt

__all__ = [
    "format_balance_events", "format_bytes_by_class",
    "format_recovery_events",
    "ownership_counts", "render_ownership", "render_ownership_sequence",
    "format_scale_events", "format_service_summary",
    "format_tenant_table",
    "format_series", "format_table", "print_series", "print_table",
    "TaskInterval", "TraceRecorder", "render_gantt",
]
