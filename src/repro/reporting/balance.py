"""Rendering of per-event balancing telemetry.

``repro run`` and the balancer-ablation bench print the
``balance_events`` list a distributed run records — one row per
balancer invocation with the strategy, movement, migration cost, and
the measured/predicted busy-time imbalance ratio around the decision.
"""

from __future__ import annotations

from typing import Any, Iterable, Union

from .tables import format_table

__all__ = ["format_balance_events"]


def _get(event: Any, key: str) -> Any:
    if isinstance(event, dict):
        return event[key]
    return getattr(event, key)


def format_balance_events(events: Iterable[Union[dict, Any]],
                          title: str = "balance events") -> str:
    """An aligned table of balance events (dicts or ``BalanceEvent``s).

    ``imb before -> after`` is the max/mean busy-time ratio measured at
    decision time and the ratio predicted for the new ownership; rows
    with zero movement are balancer invocations that decided not to act.
    """
    rows = []
    for e in events:
        rows.append([
            _get(e, "step"), _get(e, "strategy"), _get(e, "sds_moved"),
            f"{_get(e, 'migration_bytes'):,}",
            f"{_get(e, 'imbalance_before'):.3f}",
            f"{_get(e, 'imbalance_after'):.3f}",
        ])
    return format_table(
        ["step", "strategy", "SDs moved", "migration B",
         "imb before", "imb after"],
        rows, title=title)
