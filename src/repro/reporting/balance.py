"""Rendering of per-event balancing and recovery telemetry.

``repro run`` and the balancer/churn ablation benches print the
``balance_events`` list a distributed run records — one row per
balancer invocation with the strategy, movement, migration cost, and
the measured/predicted busy-time imbalance ratio around the decision —
plus, for runs with a fault schedule, the ``recovery_events`` list
(one row per node failure/join the run handled).
"""

from __future__ import annotations

from typing import Any, Iterable, Union

from .tables import format_table

__all__ = ["format_balance_events", "format_bytes_by_class",
           "format_recovery_events"]

_MISSING = object()


def _get(event: Any, key: str, default: Any = _MISSING) -> Any:
    if isinstance(event, dict):
        value = event.get(key, default)
    else:
        value = getattr(event, key, default)
    if value is _MISSING:
        raise KeyError(key)
    return value


def format_balance_events(events: Iterable[Union[dict, Any]],
                          title: str = "balance events") -> str:
    """An aligned table of balance events (dicts or ``BalanceEvent``s).

    ``imb before -> after`` is the max/mean busy-time ratio measured at
    decision time and the ratio predicted for the new ownership; rows
    with zero movement are balancer invocations that decided not to
    act.  Recovery-tagged rows (evacuation after a failure, joiner
    absorption) are marked in the last column; event dicts from
    pre-churn records simply show no mark.
    """
    rows = []
    for e in events:
        rows.append([
            _get(e, "step"), _get(e, "strategy"), _get(e, "sds_moved"),
            f"{_get(e, 'migration_bytes'):,}",
            f"{_get(e, 'imbalance_before'):.3f}",
            f"{_get(e, 'imbalance_after'):.3f}",
            "yes" if _get(e, "recovery", False) else "",
        ])
    return format_table(
        ["step", "strategy", "SDs moved", "migration B",
         "imb before", "imb after", "recovery"],
        rows, title=title)


def format_bytes_by_class(bytes_by_class: dict) -> str:
    """One line of per-route-class byte telemetry.

    ``bytes_by_class`` is the :class:`repro.experiments.RunRecord`
    field of the same name (route classes partition the traffic, so the
    shares sum to 100%); classes are rendered heaviest-first.
    """
    total = sum(bytes_by_class.values())
    if total <= 0:
        return "bytes by class: (no network traffic)"
    parts = [f"{cls} {nbytes:,} ({100.0 * nbytes / total:.0f}%)"
             for cls, nbytes in sorted(bytes_by_class.items(),
                                       key=lambda kv: (-kv[1], kv[0]))]
    return "bytes by class: " + "   ".join(parts)


def format_recovery_events(events: Iterable[Union[dict, Any]],
                           title: str = "recovery events") -> str:
    """An aligned table of churn handling (dicts or ``RecoveryEvent``s).

    One row per node failure or join the solver handled: when it
    happened (virtual ms), how many SDs were evacuated, how many
    orphaned tasks were requeued with the recovery penalty, and the
    bytes re-fetched from the checkpoint store.
    """
    rows = []
    for e in events:
        rows.append([
            f"{_get(e, 'time') * 1e3:.3f}", _get(e, "step", 0),
            _get(e, "kind"), _get(e, "node"), _get(e, "sds_evacuated"),
            _get(e, "tasks_requeued"),
            f"{_get(e, 'recovery_bytes'):,}",
        ])
    return format_table(
        ["t (ms)", "step", "kind", "node", "SDs evacuated",
         "tasks requeued", "recovery B"],
        rows, title=title)
