"""ASCII table/series rendering for the benchmark harness.

The paper's figures are line plots; offline we print the same series as
aligned text tables so every benchmark regenerates its figure's data in a
directly comparable form (EXPERIMENTS.md records paper-vs-measured from
these printouts).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Union

__all__ = ["format_table", "format_series", "print_table", "print_series"]

Number = Union[int, float]


def _fmt(value: object, precision: int) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1e5 or abs(value) < 1e-3:
            return f"{value:.{precision}e}"
        return f"{value:.{precision}g}"
    return str(value)


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                 precision: int = 4, title: str = "") -> str:
    """Render rows as an aligned ASCII table."""
    cells = [[_fmt(v, precision) for v in row] for row in rows]
    for row in cells:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but there are {len(headers)} headers")
    widths = [len(h) for h in headers]
    for row in cells:
        for i, c in enumerate(row):
            widths[i] = max(widths[i], len(c))
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in cells:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(x_label: str, x_values: Sequence[Number],
                  series: Dict[str, Sequence[Number]],
                  precision: int = 4, title: str = "") -> str:
    """Render figure-style data: one x column plus one column per series.

    ``series`` maps a series name (e.g. ``"2CPU"``) to its y values,
    which must parallel ``x_values``.
    """
    headers: List[str] = [x_label] + list(series)
    rows = []
    for i, x in enumerate(x_values):
        row: List[object] = [x]
        for name, ys in series.items():
            if len(ys) != len(x_values):
                raise ValueError(
                    f"series {name!r} has {len(ys)} values, expected {len(x_values)}")
            row.append(ys[i])
        rows.append(row)
    return format_table(headers, rows, precision=precision, title=title)


def print_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                precision: int = 4, title: str = "") -> None:
    """``format_table`` to stdout."""
    print(format_table(headers, rows, precision=precision, title=title))


def print_series(x_label: str, x_values: Sequence[Number],
                 series: Dict[str, Sequence[Number]],
                 precision: int = 4, title: str = "") -> None:
    """``format_series`` to stdout."""
    print(format_series(x_label, x_values, series,
                        precision=precision, title=title))
