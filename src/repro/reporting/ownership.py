"""ASCII rendering of SD ownership grids (paper Figs. 2, 6, 14).

The paper's load-balancing figures are colored SD grids; we render the
same information as character grids (one symbol per node) so the Fig. 14
reproduction can show the ownership evolving across balancing
iterations directly in the benchmark output.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..mesh.subdomain import SubdomainGrid

__all__ = ["render_ownership", "render_ownership_sequence", "ownership_counts"]

#: Symbols for up to 36 nodes.
_SYMBOLS = "0123456789ABCDEFGHIJKLMNOPQRSTUVWXYZ"


def render_ownership(sd_grid: SubdomainGrid, parts: Sequence[int],
                     title: str = "") -> str:
    """Render the SD ownership as a character grid.

    Row 0 (the bottom of the domain, smallest y) is printed last so the
    picture matches the usual mathematical orientation of the figures.
    """
    grid = sd_grid.ownership_grid(np.asarray(parts))
    if grid.size and grid.max() >= len(_SYMBOLS):
        raise ValueError(f"cannot render more than {len(_SYMBOLS)} nodes")
    lines: List[str] = []
    if title:
        lines.append(title)
    for row in reversed(range(grid.shape[0])):
        lines.append(" ".join(_SYMBOLS[int(p)] for p in grid[row]))
    return "\n".join(lines)


def render_ownership_sequence(sd_grid: SubdomainGrid,
                              snapshots: Sequence[Sequence[int]],
                              labels: Optional[Sequence[str]] = None,
                              gap: str = "   ") -> str:
    """Render several ownership snapshots side by side (Fig. 14 style)."""
    if labels is not None and len(labels) != len(snapshots):
        raise ValueError("one label per snapshot required")
    blocks = [render_ownership(sd_grid, s).split("\n") for s in snapshots]
    width = max(len(line) for block in blocks for line in block)
    lines: List[str] = []
    if labels is not None:
        lines.append(gap.join(lbl.ljust(width) for lbl in labels))
    for row in range(len(blocks[0])):
        lines.append(gap.join(block[row].ljust(width) for block in blocks))
    return "\n".join(lines)


def ownership_counts(parts: Sequence[int], num_nodes: int) -> List[int]:
    """SDs per node, as a plain list (for table rows)."""
    counts = np.bincount(np.asarray(parts, dtype=np.int64),
                         minlength=num_nodes)
    return [int(c) for c in counts]
