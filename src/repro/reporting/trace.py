"""Execution tracing and ASCII Gantt rendering for simulated runs.

A :class:`TraceRecorder` attached to a :class:`repro.amt.cluster
.SimCluster` records every task's (node, label, start, end) interval;
:func:`render_gantt` draws the schedule as per-node text lanes.  This is
how the communication/computation overlap of the paper's Fig. 4 becomes
*visible* offline: Case-2 lanes fill the gap in which Case-1 tasks wait
for their ghost messages.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..amt.cluster import SimCluster, SimNode, SimTask

__all__ = ["TaskInterval", "TraceRecorder", "render_gantt"]


class TaskInterval:
    """One executed task: which node ran what, from when to when."""

    __slots__ = ("node_id", "label", "start", "end")

    def __init__(self, node_id: int, label: str, start: float, end: float) -> None:
        self.node_id = node_id
        self.label = label
        self.start = start
        self.end = end

    @property
    def duration(self) -> float:
        return self.end - self.start

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<TaskInterval n{self.node_id} {self.label!r} "
                f"[{self.start:.3g},{self.end:.3g})>")


class TraceRecorder:
    """Records task execution intervals from a SimCluster.

    Attach *before* submitting work::

        cluster = SimCluster(4)
        trace = TraceRecorder(cluster)
        ... submit / run ...
        print(render_gantt(trace.intervals, cluster.now))

    Implementation: wraps the cluster's ``_dispatch``/``_complete`` pair
    to observe start and end times; the wrapped methods delegate to the
    originals, so scheduling behaviour is unchanged (asserted by tests).
    """

    def __init__(self, cluster: SimCluster) -> None:
        self.cluster = cluster
        # per-task intervals are the whole point of a trace: pin the
        # cluster to the per-event path (wave batching collapses a run of
        # homogeneous tasks into one event; the schedule is identical but
        # intermediate completions would be invisible here)
        cluster.wave_batching = False
        self.intervals: List[TaskInterval] = []
        self._starts = {}
        original_dispatch = cluster._dispatch
        original_complete = cluster._complete
        recorder = self

        def dispatch(node: SimNode) -> None:
            # observe which tasks leave the ready queue: snapshot, then
            # compare; cheaper to wrap _complete for ends and infer
            # starts from (end - duration) — but duration depends on the
            # speed trace, so record starts directly by hooking the
            # queue pop via a shim around the deque.
            before = list(node.ready)
            original_dispatch(node)
            after = set(id(t) for t in node.ready)
            for task in before:
                if id(task) not in after:
                    recorder._starts[id(task)] = recorder.cluster.sim.now

        def complete(node: SimNode, task: SimTask) -> None:
            start = recorder._starts.pop(id(task), None)
            end = recorder.cluster.sim.now
            if start is not None:
                recorder.intervals.append(
                    TaskInterval(node.node_id, task.label, start, end))
            original_complete(node, task)

        cluster._dispatch = dispatch  # type: ignore[method-assign]
        cluster._complete = complete  # type: ignore[method-assign]

    def intervals_of_node(self, node_id: int) -> List[TaskInterval]:
        """This node's intervals, in start order."""
        out = [iv for iv in self.intervals if iv.node_id == node_id]
        out.sort(key=lambda iv: iv.start)
        return out


def render_gantt(intervals: Sequence[TaskInterval], makespan: float,
                 width: int = 72, num_nodes: Optional[int] = None,
                 label_chars: int = 1) -> str:
    """Render intervals as one text lane per node.

    Each lane is ``width`` characters spanning ``[0, makespan]``; a task
    paints its first ``label_chars`` label characters over its time
    span, idle time shows as ``.``.  Overlapping tasks on multi-core
    nodes overwrite left to right (the lane shows *occupancy*, not per
    -core detail).
    """
    if makespan <= 0:
        return "(empty schedule)"
    if num_nodes is None:
        num_nodes = 1 + max((iv.node_id for iv in intervals), default=0)
    lanes = [["."] * width for _ in range(num_nodes)]
    for iv in intervals:
        a = int(iv.start / makespan * width)
        b = max(a + 1, int(iv.end / makespan * width))
        glyph = (iv.label[:label_chars] or "#").ljust(1)[0]
        for x in range(a, min(b, width)):
            lanes[iv.node_id][x] = glyph
    lines = [f"t=0 {'-' * (width - 8)} t={makespan:.3g}"]
    for n, lane in enumerate(lanes):
        lines.append(f"n{n} |{''.join(lane)}|")
    return "\n".join(lines)
