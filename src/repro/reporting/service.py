"""Rendering of multi-tenant service telemetry.

``repro serve`` (and ``benchmarks/bench_service.py``) print the
summary :func:`repro.service.summarize_service` reduces from a run's
``service_events``: one headline block for the whole service, and one
aligned table with a row per tenant.
"""

from __future__ import annotations

from typing import Any, Dict, List

from .tables import format_table

__all__ = ["format_service_summary", "format_tenant_table",
           "format_scale_events"]


def format_service_summary(summary: Dict[str, Any]) -> str:
    """The whole-service headline: load accounting and latency tails.

    ``summary`` is the dict :func:`repro.service.summarize_service`
    returns (directly, or recomputed from a loaded record's
    ``service_events``).
    """
    lines = [
        f"offered {summary['offered']} jobs "
        f"({summary['offered_rate']:.4g}/s) over "
        f"{summary['horizon']:.4g}s: "
        f"{summary['completed']} completed, {summary['shed']} shed, "
        f"{summary['in_flight']} in flight",
        f"goodput {summary['goodput']:.4g} jobs/s"
        f"   fairness {summary['fairness']:.3f}",
        f"queue wait p50 {summary['p50_wait']:.4g}s "
        f"p99 {summary['p99_wait']:.4g}s"
        f"   makespan p50 {summary['p50_makespan']:.4g}s "
        f"p99 {summary['p99_makespan']:.4g}s",
    ]
    return "\n".join(lines)


def format_tenant_table(summary: Dict[str, Any],
                        title: str = "per-tenant service") -> str:
    """One row per tenant: load split, goodput, and latency tails."""
    rows = []
    for name, t in summary["tenants"].items():
        rows.append([
            name, t["offered"], t["shed"], t["completed"],
            f"{t['goodput']:.4g}",
            f"{t['p50_wait']:.4g}", f"{t['p99_wait']:.4g}",
            f"{t['p50_makespan']:.4g}", f"{t['p99_makespan']:.4g}",
        ])
    return format_table(
        ["tenant", "offered", "shed", "done", "goodput/s",
         "wait p50", "wait p99", "mkspan p50", "mkspan p99"],
        rows, title=title)


def format_scale_events(scale_events: List[Dict[str, Any]],
                        title: str = "autoscale decisions") -> str:
    """One row per autoscale decision/transition of a service run.

    ``scale_events`` is a record's ``scale_events`` list (see
    :mod:`repro.amt.autoscale`).  Decision rows (``scale_out`` /
    ``drain``) carry the observation that triggered them; transition
    rows (``join`` / ``retire``) show ``-`` in the signal columns.
    """
    rows = []
    for e in scale_events:
        has_obs = "utilization" in e
        rows.append([
            f"{e['t']:.4g}", e["action"],
            "-" if e["node"] is None else e["node"], e["nodes"],
            f"{e['utilization']:.3f}" if has_obs else "-",
            f"{e['p99_wait']:.4g}" if has_obs else "-",
            f"{e['shed_rate']:.4g}" if has_obs else "-",
            f"{e['queue_depth']:g}" if has_obs else "-",
        ])
    return format_table(
        ["t (s)", "action", "node", "fleet", "util",
         "wait p99", "shed/s", "queued"],
        rows, title=title)
