"""Non-square domains via SD-level activity masks (paper future work).

The paper's conclusion lists "more complex non-square domains" as future
work.  At SD granularity this is an activity mask: SDs outside the
physical domain are *inactive* — they hold no DPs to update, exchange no
ghosts, and carry zero vertex weight in the partitioner.  The
temperature there is pinned to zero, which extends the ``Dc`` condition
to the internal voids (e.g. the notch of an L-shaped plate).

:class:`DomainMask` provides shape factories (L-shape, disc, halo of a
crack), conversion to partitioner vertex weights, and the active-SD dual
graph used to partition only the physical region.
"""

from __future__ import annotations

from typing import Callable, List, Tuple

import numpy as np

from ..partition.graph import Graph, graph_from_edges
from .subdomain import SubdomainGrid

__all__ = ["DomainMask"]


class DomainMask:
    """Boolean activity per SD of a :class:`SubdomainGrid`.

    Parameters
    ----------
    sd_grid:
        The SD geometry.
    active:
        Boolean array, one entry per SD (``True`` = physical domain).
    """

    def __init__(self, sd_grid: SubdomainGrid, active: np.ndarray) -> None:
        active = np.asarray(active, dtype=bool)
        if len(active) != sd_grid.num_subdomains:
            raise ValueError(
                f"mask length {len(active)} != SD count {sd_grid.num_subdomains}")
        if not active.any():
            raise ValueError("mask deactivates every SD")
        self.sd_grid = sd_grid
        self.active = active

    # -- factories -----------------------------------------------------------
    @classmethod
    def full(cls, sd_grid: SubdomainGrid) -> "DomainMask":
        """The trivial mask: the whole square is physical."""
        return cls(sd_grid, np.ones(sd_grid.num_subdomains, dtype=bool))

    @classmethod
    def from_predicate(cls, sd_grid: SubdomainGrid,
                       inside: Callable[[float, float], bool]) -> "DomainMask":
        """Activate SDs whose center satisfies ``inside(x, y)``."""
        active = np.zeros(sd_grid.num_subdomains, dtype=bool)
        for sd in range(sd_grid.num_subdomains):
            cx, cy = sd_grid.sd_center(sd)
            active[sd] = bool(inside(cx, cy))
        return cls(sd_grid, active)

    @classmethod
    def l_shape(cls, sd_grid: SubdomainGrid, notch: float = 0.5) -> "DomainMask":
        """An L-shaped plate: the upper-right ``notch x notch`` corner
        of the unit square is removed."""
        if not 0.0 < notch < 1.0:
            raise ValueError(f"notch must be in (0,1), got {notch}")
        return cls.from_predicate(
            sd_grid, lambda x, y: not (x > 1.0 - notch and y > 1.0 - notch))

    @classmethod
    def disc(cls, sd_grid: SubdomainGrid, radius: float = 0.5,
             center: Tuple[float, float] = (0.5, 0.5)) -> "DomainMask":
        """A disc inscribed in the unit square."""
        if radius <= 0:
            raise ValueError(f"radius must be positive, got {radius}")
        cx0, cy0 = center
        return cls.from_predicate(
            sd_grid,
            lambda x, y: (x - cx0) ** 2 + (y - cy0) ** 2 <= radius ** 2)

    # -- queries -----------------------------------------------------------
    @property
    def num_active(self) -> int:
        """Number of physical SDs."""
        return int(self.active.sum())

    def active_sds(self) -> List[int]:
        """Sorted active SD ids."""
        return [int(s) for s in np.nonzero(self.active)[0]]

    def dp_mask(self) -> np.ndarray:
        """Boolean DP-level mask of the mesh (``(ny, nx)``)."""
        out = np.zeros((self.sd_grid.mesh_ny, self.sd_grid.mesh_nx),
                       dtype=bool)
        for sd in self.active_sds():
            out[self.sd_grid.rect(sd).slices()] = True
        return out

    def work_factors(self, base: np.ndarray = None) -> np.ndarray:
        """Per-SD work factors with inactive SDs zeroed.

        Multiplies an optional ``base`` factor array (e.g. from the
        crack model); the result plugs straight into
        ``DistributedSolver(work_factors=...)``.
        """
        wf = np.ones(self.sd_grid.num_subdomains) if base is None \
            else np.asarray(base, dtype=np.float64).copy()
        if len(wf) != self.sd_grid.num_subdomains:
            raise ValueError("base must have one entry per SD")
        wf[~self.active] = 0.0
        return wf

    def is_connected(self) -> bool:
        """Whether the active region is face-connected."""
        graph, _ = self.active_dual_graph()
        return graph.is_connected()

    def active_dual_graph(self) -> Tuple[Graph, np.ndarray]:
        """Dual graph restricted to active SDs.

        Returns ``(graph, active_ids)`` where graph vertex ``i``
        corresponds to SD ``active_ids[i]``.  Partition this graph, then
        scatter the part ids back with :meth:`scatter_parts`.
        """
        ids = np.asarray(self.active_sds(), dtype=np.int64)
        local = {int(s): i for i, s in enumerate(ids)}
        edges = []
        for sd in ids:
            for nb in self.sd_grid.face_neighbors(int(sd)):
                if self.active[nb] and sd < nb:
                    edges.append((local[int(sd)], local[nb]))
        coords = np.array([self.sd_grid.sd_center(int(s)) for s in ids])
        return graph_from_edges(len(ids), edges, coords=coords), ids

    def scatter_parts(self, active_parts: np.ndarray,
                      inactive_owner: int = 0) -> np.ndarray:
        """Expand a partition of the active dual graph to all SDs.

        Inactive SDs are assigned ``inactive_owner``; they carry zero
        work so their nominal owner never computes for them.
        """
        ids = self.active_sds()
        if len(active_parts) != len(ids):
            raise ValueError(
                f"got {len(active_parts)} part ids for {len(ids)} active SDs")
        parts = np.full(self.sd_grid.num_subdomains, inactive_owner,
                        dtype=np.int64)
        for sd, p in zip(ids, active_parts):
            parts[sd] = int(p)
        return parts
