"""Discretization substrate: grids, sub-domains, stencils, decomposition.

Implements the paper's Sec. 3.1 uniform-grid discretization and the
Sec. 4/6 formalism — SPs (per-node sub-problems), SDs (sub-domains, the
unit of work and exchange), DPs (discretized points), ghost regions, and
the Case-1/Case-2 dependent/independent DP split.
"""

from .decomposition import (BYTES_PER_DP, CaseSplit, Decomposition,
                            GhostMessage)
from .domain import DomainMask
from .grid import UniformGrid
from .stencil import NonlocalStencil, build_stencil
from .subdomain import Rect, SubdomainGrid

__all__ = [
    "BYTES_PER_DP", "CaseSplit", "Decomposition", "GhostMessage",
    "DomainMask",
    "UniformGrid", "NonlocalStencil", "build_stencil",
    "Rect", "SubdomainGrid",
]
