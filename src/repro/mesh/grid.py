"""Uniform grid discretization of the material domain (paper Sec. 3.1).

The paper discretizes ``D = [0,1]^2`` with a uniform grid of spacing ``h``
and surrounds it with the nonlocal boundary ``Dc = (-eps, 1+eps)^2 - D``
where the temperature is pinned to zero (Fig. 1).

We use a **cell-centered** grid: ``nx × ny`` discretized points (DPs) at
``x = (i + 1/2) h``.  The paper's nodal grid (``x_i = h i``) differs only
in where points sit relative to the boundary; cell centering gives exactly
``V_j = h^2`` per DP and lets the mesh divide evenly into the paper's SD
sizes (e.g. 400×400 DPs into 8×8 SDs of 50×50), so all SD bookkeeping is
exact.  The zero condition on ``Dc`` becomes zero-extension outside the
``nx × ny`` array, which the convolution kernels implement natively.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = ["UniformGrid"]


class UniformGrid:
    """Cell-centered uniform grid on the unit square (or a 1-D interval).

    Parameters
    ----------
    nx, ny:
        Number of DPs along x and y.  ``ny=1`` with ``dim=1`` gives the
        1-D model from eq. (2).
    dim:
        Spatial dimension (1 or 2); controls ``h`` and cell volume.

    Attributes
    ----------
    h:
        Grid spacing, ``1 / nx`` (the domain is the unit square/interval;
        ``ny`` must then satisfy ``ny * h == 1`` in 2-D, i.e. ``ny == nx``
        for the square; rectangular meshes use ``Ly = ny * h``).
    """

    def __init__(self, nx: int, ny: int = 1, dim: int = 2) -> None:
        if dim not in (1, 2):
            raise ValueError(f"dim must be 1 or 2, got {dim}")
        if nx < 1 or ny < 1:
            raise ValueError(f"grid must be at least 1x1, got {nx}x{ny}")
        if dim == 1 and ny != 1:
            raise ValueError("1-D grids must have ny == 1")
        self.nx = nx
        self.ny = ny
        self.dim = dim
        self.h = 1.0 / nx
        #: domain extents; x is always [0, 1], y is [0, ny*h]
        self.Lx = 1.0
        self.Ly = ny * self.h if dim == 2 else 0.0

    @property
    def shape(self) -> Tuple[int, int]:
        """Array shape ``(ny, nx)`` used for temperature fields."""
        return (self.ny, self.nx)

    @property
    def num_points(self) -> int:
        """Total number of DPs."""
        return self.nx * self.ny

    @property
    def cell_volume(self) -> float:
        """``V_j`` in eq. (5): ``h`` in 1-D, ``h^2`` in 2-D."""
        return self.h if self.dim == 1 else self.h * self.h

    def x_coords(self) -> np.ndarray:
        """Cell-center x coordinates, shape ``(nx,)``."""
        return (np.arange(self.nx) + 0.5) * self.h

    def y_coords(self) -> np.ndarray:
        """Cell-center y coordinates, shape ``(ny,)``."""
        return (np.arange(self.ny) + 0.5) * self.h

    def meshgrid(self) -> Tuple[np.ndarray, np.ndarray]:
        """``(X, Y)`` arrays of shape ``(ny, nx)`` with DP coordinates."""
        return np.meshgrid(self.x_coords(), self.y_coords())

    def zeros(self) -> np.ndarray:
        """A zero temperature field of the right shape/dtype."""
        return np.zeros(self.shape)

    def field_from_function(self, fn) -> np.ndarray:
        """Evaluate ``fn(x, y)`` (vectorized) at every DP.

        In 1-D, ``fn`` is called as ``fn(x)`` with the y row dropped.
        """
        if self.dim == 1:
            return np.asarray(fn(self.x_coords()))[None, :]
        X, Y = self.meshgrid()
        return np.asarray(fn(X, Y))

    def boundary_distance(self) -> np.ndarray:
        """Distance of each DP to the boundary of D, shape ``(ny, nx)``.

        Used by the manufactured-solution source to decide which points
        need the near-boundary quadrature correction (their eps-ball
        pokes into Dc).
        """
        x = self.x_coords()
        dx = np.minimum(x, self.Lx - x)
        if self.dim == 1:
            return dx[None, :]
        y = self.y_coords()
        dy = np.minimum(y, self.Ly - y)
        return np.minimum(dx[None, :], dy[:, None])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<UniformGrid {self.nx}x{self.ny} h={self.h:.4g} dim={self.dim}>"
