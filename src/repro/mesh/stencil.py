"""Nonlocal neighborhood stencils: the discrete ball ``B_eps(x)``.

Equation (5) of the paper sums ``J(|x_j - x_i| / eps) (u_j - u_i) V_j``
over all DPs within the horizon ``eps``.  On a uniform grid this is a
fixed stencil: an offset mask of shape ``(2R+1, 2R+1)`` with
``R = floor(eps / h)``, whose entry at offset ``d`` is ``J(|d| h / eps)``
if ``|d| h <= eps`` (center excluded — its term vanishes).

The stencil is precomputed once per (h, eps, J) and reused every timestep
by both the dense convolution kernel and the sparse-matrix reference
implementation.
"""

from __future__ import annotations

from typing import Callable, Tuple

import numpy as np

__all__ = ["NonlocalStencil", "build_stencil"]


class NonlocalStencil:
    """Precomputed nonlocal interaction weights on a uniform grid.

    Attributes
    ----------
    mask:
        ``(2R+1, 2R+1)`` float64 array of ``J`` values; zero outside the
        ball and at the center.
    radius:
        ``R = floor(eps / h)`` in index units — the ghost-layer width the
        distributed solver must exchange.
    weight_sum:
        ``S = mask.sum()``; the ``u_i`` coefficient in the kernel
        ``c V (W * u - S u)``.
    """

    def __init__(self, mask: np.ndarray, h: float, epsilon: float) -> None:
        if mask.ndim != 2:
            raise ValueError(f"mask must be 2-D, got shape {mask.shape}")
        if mask.shape[0] not in (1, mask.shape[1]):
            raise ValueError(f"mask must be square or a single row, got {mask.shape}")
        if mask.shape[1] % 2 != 1:
            raise ValueError("mask side length must be odd")
        self.mask = np.asarray(mask, dtype=np.float64)
        self.h = float(h)
        self.epsilon = float(epsilon)
        self.radius = mask.shape[1] // 2
        self.weight_sum = float(self.mask.sum())

    @property
    def num_neighbors(self) -> int:
        """Number of interacting DPs in the ball (non-zero mask entries)."""
        return int(np.count_nonzero(self.mask))

    def mask_1d(self) -> np.ndarray:
        """The central row of the mask — the 1-D model's stencil."""
        return self.mask[self.mask.shape[0] // 2, :].copy()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<NonlocalStencil R={self.radius} "
                f"neighbors={self.num_neighbors} S={self.weight_sum:.4g}>")


def build_stencil(h: float, epsilon: float,
                  influence: Callable[[np.ndarray], np.ndarray],
                  dim: int = 2) -> NonlocalStencil:
    """Construct the stencil for grid spacing ``h`` and horizon ``epsilon``.

    Parameters
    ----------
    h:
        Grid spacing (> 0).
    epsilon:
        Nonlocal horizon (>= h; the paper uses ``eps = 8 h``).
    influence:
        Vectorized influence function ``J(r)`` on normalized distance
        ``r = |y - x| / eps`` in ``[0, 1]``; see
        :mod:`repro.solver.model` for the standard choices.
    dim:
        With ``dim=1`` only the central row of offsets is retained (the
        1-D nonlocal diffusion model).

    Notes
    -----
    Inclusion uses ``|d| h <= eps`` with a tiny relative tolerance so that
    the common exact-multiple case (``eps = 8 h``) includes the DP at
    distance exactly ``eps``, matching the paper's ``|x_j - x_i| <= eps``.
    """
    if h <= 0:
        raise ValueError(f"h must be positive, got {h}")
    if epsilon < h:
        raise ValueError(f"epsilon ({epsilon}) must be >= h ({h})")
    radius = int(np.floor(epsilon / h * (1 + 1e-12)))
    side = 2 * radius + 1
    offsets = np.arange(-radius, radius + 1)
    if dim == 2:
        dy, dx = np.meshgrid(offsets, offsets, indexing="ij")
        dist = np.hypot(dx, dy) * h
    elif dim == 1:
        dx = offsets[None, :]
        dist = np.abs(dx) * h
        dist = np.broadcast_to(dist, (1, side)).copy()
    else:
        raise ValueError(f"dim must be 1 or 2, got {dim}")

    inside = dist <= epsilon * (1 + 1e-12)
    r = np.where(inside, dist / epsilon, 0.0)
    mask = np.where(inside, influence(r), 0.0).astype(np.float64)
    if dim == 2:
        mask[radius, radius] = 0.0  # center: (u_i - u_i) contributes nothing
    else:
        mask[0, radius] = 0.0
        full = np.zeros((1, side))
        full[0, :] = mask[0, :]
        mask = full
    if np.any(mask < 0):
        raise ValueError("influence function produced negative weights")
    return NonlocalStencil(mask, h, epsilon)
