"""Domain decomposition: SP ownership, ghost messages, Case-1/Case-2 split.

Ties together the SD grid and a partition (node id per SD) into the
structures the distributed solver consumes each timestep:

* which node owns which SDs (the node's **SP**, paper Sec. 4);
* the **ghost messages** that must cross node boundaries (source node,
  destination node, DP rectangle, byte count);
* the per-SD split of DPs into **Case 1** (update depends on foreign
  data — must wait for ghosts) and **Case 2** (interior — computable
  immediately), the paper's Sec. 6.3 overlap mechanism.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from .subdomain import Rect, SubdomainGrid

__all__ = ["GhostMessage", "CaseSplit", "Decomposition", "BYTES_PER_DP"]

#: Ghost payloads are float64 temperatures.
BYTES_PER_DP = 8


class GhostMessage:
    """One ghost-region transfer needed for a timestep.

    ``region`` (global DP coordinates) is owned by ``src_node`` and read
    by SD ``dst_sd`` on ``dst_node``.  Messages are per (source SD,
    destination SD) pair; the cluster's egress serialization models the
    aggregation behaviour of a real transport well enough for the
    schedule shapes studied here.
    """

    __slots__ = ("src_node", "dst_node", "src_sd", "dst_sd", "region")

    def __init__(self, src_node: int, dst_node: int, src_sd: int,
                 dst_sd: int, region: Rect) -> None:
        self.src_node = src_node
        self.dst_node = dst_node
        self.src_sd = src_sd
        self.dst_sd = dst_sd
        self.region = region

    @property
    def nbytes(self) -> int:
        """Payload size in bytes."""
        return self.region.area * BYTES_PER_DP

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Ghost sd{self.src_sd}(n{self.src_node}) -> "
                f"sd{self.dst_sd}(n{self.dst_node}) {self.region.area} DPs>")


class CaseSplit:
    """Case-1/Case-2 DP classification for one SD (paper Fig. 5).

    ``case1_mask`` marks DPs (within the SD's local block) whose stencil
    reaches into SDs owned by *other nodes*; their update must wait for
    ghost data.  ``case2`` DPs can be updated immediately from local data.
    """

    __slots__ = ("sd", "case1_mask", "case1_count", "case2_count")

    def __init__(self, sd: int, case1_mask: np.ndarray) -> None:
        self.sd = sd
        self.case1_mask = case1_mask
        self.case1_count = int(case1_mask.sum())
        self.case2_count = int(case1_mask.size - self.case1_count)

    @property
    def total(self) -> int:
        """DP count of the SD."""
        return self.case1_mask.size


class Decomposition:
    """A (SubdomainGrid, partition) pair with derived communication data.

    Parameters
    ----------
    sd_grid:
        The SD geometry.
    parts:
        int array, node id per SD (``len == sd_grid.num_subdomains``).
    num_nodes:
        Number of compute nodes; part ids must lie in ``[0, num_nodes)``.
    """

    def __init__(self, sd_grid: SubdomainGrid, parts: np.ndarray,
                 num_nodes: int) -> None:
        parts = np.asarray(parts, dtype=np.int64)
        if len(parts) != sd_grid.num_subdomains:
            raise ValueError(
                f"parts length {len(parts)} != SD count {sd_grid.num_subdomains}")
        if num_nodes < 1:
            raise ValueError(f"num_nodes must be >= 1, got {num_nodes}")
        if len(parts) and (parts.min() < 0 or parts.max() >= num_nodes):
            raise ValueError(
                f"part ids must lie in [0,{num_nodes}), got "
                f"[{parts.min()},{parts.max()}]")
        self.sd_grid = sd_grid
        self.parts = parts
        self.num_nodes = num_nodes

    # -- ownership ----------------------------------------------------------
    def owner(self, sd: int) -> int:
        """Node owning SD ``sd``."""
        return int(self.parts[sd])

    def sds_of_node(self, node: int) -> List[int]:
        """Sorted SD ids in ``node``'s SP."""
        return [int(s) for s in np.nonzero(self.parts == node)[0]]

    def sp_sizes(self) -> np.ndarray:
        """SD count per node — the balancer's ``NumSubDomains`` array."""
        out = np.zeros(self.num_nodes, dtype=np.int64)
        np.add.at(out, self.parts, 1)
        return out

    def dp_counts_per_node(self) -> np.ndarray:
        """DP count per node (work proxy when SDs are unevenly sized)."""
        out = np.zeros(self.num_nodes, dtype=np.int64)
        for sd in range(self.sd_grid.num_subdomains):
            out[self.owner(sd)] += self.sd_grid.dp_count(sd)
        return out

    # -- communication ---------------------------------------------------------
    def ghost_messages(self, radius: int) -> List[GhostMessage]:
        """All cross-node ghost transfers for stencil ``radius``.

        One message per (foreign source SD, destination SD) halo overlap;
        same-node overlaps are excluded (shared memory inside a node).
        Ordering is deterministic: by destination SD, then source SD.
        """
        out: List[GhostMessage] = []
        for dst_sd in range(self.sd_grid.num_subdomains):
            dst_node = self.owner(dst_sd)
            for src_sd, region in self.sd_grid.halo_neighbors(dst_sd, radius):
                src_node = self.owner(src_sd)
                if src_node != dst_node:
                    out.append(GhostMessage(src_node, dst_node, src_sd,
                                            dst_sd, region))
        return out

    def exchange_bytes(self, radius: int) -> Dict[Tuple[int, int], int]:
        """Total ghost bytes per ordered ``(src_node, dst_node)`` pair."""
        out: Dict[Tuple[int, int], int] = {}
        for msg in self.ghost_messages(radius):
            key = (msg.src_node, msg.dst_node)
            out[key] = out.get(key, 0) + msg.nbytes
        return out

    def total_exchange_bytes(self, radius: int) -> int:
        """Total cross-node ghost bytes per timestep."""
        return sum(self.exchange_bytes(radius).values())

    def node_adjacency(self) -> List[Tuple[int, int]]:
        """Unordered node pairs with at least one SD face adjacency.

        This is the edge set of the load balancer's dependency tree
        (Algorithm 1 lines 13–18): nodes are connected iff an SD of one
        is adjacent to the SP of the other.
        """
        pairs = set()
        for sd in range(self.sd_grid.num_subdomains):
            a = self.owner(sd)
            for nb in self.sd_grid.face_neighbors(sd):
                b = self.owner(nb)
                if a != b:
                    pairs.add((min(a, b), max(a, b)))
        return sorted(pairs)

    # -- case split ----------------------------------------------------------
    def case_split(self, sd: int, radius: int) -> CaseSplit:
        """Classify the DPs of ``sd`` into Case 1 / Case 2 (paper Fig. 5).

        A DP is Case 1 iff its stencil ball intersects a DP rectangle
        owned by a different node.  Computed by marking, for each foreign
        halo overlap, the strip of the SD within ``radius`` of that
        overlap (exact for axis-aligned rectangles with the Chebyshev
        bound; we use the Euclidean-conservative Chebyshev strip which
        matches the square-stencil bounding box the solver exchanges).
        """
        rect = self.sd_grid.rect(sd)
        mask = np.zeros((rect.height, rect.width), dtype=bool)
        own = self.owner(sd)
        for src_sd, overlap in self.sd_grid.halo_neighbors(sd, radius):
            if self.owner(src_sd) == own:
                continue
            # DPs within `radius` (Chebyshev) of the overlap rectangle
            y0 = max(rect.y0, overlap.y0 - radius)
            y1 = min(rect.y1, overlap.y1 + radius)
            x0 = max(rect.x0, overlap.x0 - radius)
            x1 = min(rect.x1, overlap.x1 + radius)
            if y1 > y0 and x1 > x0:
                mask[y0 - rect.y0:y1 - rect.y0,
                     x0 - rect.x0:x1 - rect.x0] = True
        return CaseSplit(sd, mask)

    def case_counts(self, radius: int) -> Tuple[int, int]:
        """Total (case1, case2) DP counts over the whole mesh."""
        c1 = c2 = 0
        for sd in range(self.sd_grid.num_subdomains):
            split = self.case_split(sd, radius)
            c1 += split.case1_count
            c2 += split.case2_count
        return c1, c2
