"""Sub-domain (SD) bookkeeping: the paper's unit of work and exchange.

The paper (Sec. 6.1) coarsens the DP mesh into square sub-domains: the
computation of one SD is the unit of work, and SDs are the unit of load
balancing and of ghost exchange.  :class:`SubdomainGrid` maps between SD
ids and DP index rectangles, and answers the geometric queries the
decomposition and the balancer need (neighbors, halos, border strips).

SD ids follow the dual-graph convention of :mod:`repro.partition.graph`:
``sd = iy * sd_nx + ix``, so a partition array from
:func:`repro.partition.kway.partition_sd_grid` indexes directly.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

__all__ = ["Rect", "SubdomainGrid"]


class Rect:
    """A half-open DP index rectangle ``[y0, y1) × [x0, x1)``."""

    __slots__ = ("y0", "y1", "x0", "x1")

    def __init__(self, y0: int, y1: int, x0: int, x1: int) -> None:
        self.y0, self.y1, self.x0, self.x1 = int(y0), int(y1), int(x0), int(x1)

    @property
    def height(self) -> int:
        return self.y1 - self.y0

    @property
    def width(self) -> int:
        return self.x1 - self.x0

    @property
    def area(self) -> int:
        """Number of DPs covered (0 if degenerate)."""
        return max(0, self.height) * max(0, self.width)

    def slices(self) -> Tuple[slice, slice]:
        """``(row_slice, col_slice)`` for NumPy indexing."""
        return (slice(self.y0, self.y1), slice(self.x0, self.x1))

    def intersect(self, other: "Rect") -> "Rect":
        """Intersection rectangle (possibly empty)."""
        return Rect(max(self.y0, other.y0), min(self.y1, other.y1),
                    max(self.x0, other.x0), min(self.x1, other.x1))

    def expand(self, margin: int) -> "Rect":
        """Grow by ``margin`` DPs on every side (unclipped)."""
        return Rect(self.y0 - margin, self.y1 + margin,
                    self.x0 - margin, self.x1 + margin)

    def clip(self, ny: int, nx: int) -> "Rect":
        """Clip to the mesh extent ``[0, ny) × [0, nx)``."""
        return Rect(max(0, self.y0), min(ny, self.y1),
                    max(0, self.x0), min(nx, self.x1))

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, Rect) and
                (self.y0, self.y1, self.x0, self.x1) ==
                (other.y0, other.y1, other.x0, other.x1))

    def __hash__(self) -> int:
        return hash((self.y0, self.y1, self.x0, self.x1))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Rect(y=[{self.y0},{self.y1}), x=[{self.x0},{self.x1}))"


class SubdomainGrid:
    """Partition of an ``mesh_nx × mesh_ny`` DP mesh into SDs.

    Parameters
    ----------
    mesh_nx, mesh_ny:
        DP counts of the full mesh.
    sd_nx, sd_ny:
        Number of SDs along each axis.  When the mesh does not divide
        evenly, the remainder DPs are spread over the leading SDs (the
        paper always divides evenly, e.g. 400/8; uneven support keeps the
        library usable on arbitrary meshes).
    """

    def __init__(self, mesh_nx: int, mesh_ny: int, sd_nx: int, sd_ny: int) -> None:
        if sd_nx < 1 or sd_ny < 1:
            raise ValueError(f"SD grid must be at least 1x1, got {sd_nx}x{sd_ny}")
        if sd_nx > mesh_nx or sd_ny > mesh_ny:
            raise ValueError(
                f"more SDs than DPs: {sd_nx}x{sd_ny} SDs on {mesh_nx}x{mesh_ny} mesh")
        self.mesh_nx = mesh_nx
        self.mesh_ny = mesh_ny
        self.sd_nx = sd_nx
        self.sd_ny = sd_ny
        self._x_cuts = np.linspace(0, mesh_nx, sd_nx + 1).round().astype(np.int64)
        self._y_cuts = np.linspace(0, mesh_ny, sd_ny + 1).round().astype(np.int64)

    # -- id mapping ---------------------------------------------------------
    @property
    def num_subdomains(self) -> int:
        """Total SD count."""
        return self.sd_nx * self.sd_ny

    def sd_id(self, ix: int, iy: int) -> int:
        """SD id at SD-grid column ``ix``, row ``iy``."""
        if not (0 <= ix < self.sd_nx and 0 <= iy < self.sd_ny):
            raise IndexError(f"SD ({ix},{iy}) outside {self.sd_nx}x{self.sd_ny}")
        return iy * self.sd_nx + ix

    def sd_coords(self, sd: int) -> Tuple[int, int]:
        """``(ix, iy)`` SD-grid coordinates of SD ``sd``."""
        if not 0 <= sd < self.num_subdomains:
            raise IndexError(f"SD id {sd} outside [0,{self.num_subdomains})")
        return sd % self.sd_nx, sd // self.sd_nx

    def sd_center(self, sd: int) -> Tuple[float, float]:
        """SD center in unit-square coordinates (for transfer geometry)."""
        ix, iy = self.sd_coords(sd)
        return (ix + 0.5) / self.sd_nx, (iy + 0.5) / self.sd_ny

    # -- geometry --------------------------------------------------------------
    def rect(self, sd: int) -> Rect:
        """DP rectangle owned by SD ``sd``."""
        ix, iy = self.sd_coords(sd)
        return Rect(self._y_cuts[iy], self._y_cuts[iy + 1],
                    self._x_cuts[ix], self._x_cuts[ix + 1])

    def dp_count(self, sd: int) -> int:
        """Number of DPs in SD ``sd``."""
        return self.rect(sd).area

    def halo_rect(self, sd: int, radius: int) -> Rect:
        """The SD rectangle expanded by the stencil ``radius`` and clipped.

        This is the region of the global field the SD's update reads;
        everything in it outside :meth:`rect` is ghost data.
        """
        return self.rect(sd).expand(radius).clip(self.mesh_ny, self.mesh_nx)

    def face_neighbors(self, sd: int) -> List[int]:
        """The 4-adjacent SD ids (matching the dual graph edges)."""
        ix, iy = self.sd_coords(sd)
        out = []
        for dx, dy in ((1, 0), (-1, 0), (0, 1), (0, -1)):
            jx, jy = ix + dx, iy + dy
            if 0 <= jx < self.sd_nx and 0 <= jy < self.sd_ny:
                out.append(self.sd_id(jx, jy))
        return out

    def halo_neighbors(self, sd: int, radius: int) -> List[Tuple[int, Rect]]:
        """SDs that own part of ``sd``'s halo, with the overlap rectangles.

        Returns ``(other_sd, overlap_rect)`` pairs where ``overlap_rect``
        is in global DP coordinates.  When the stencil radius exceeds the
        SD edge length, SDs beyond the immediate ring appear — this is the
        regime the paper avoids by keeping SDs bigger than eps, and the
        solver supports both.
        """
        halo = self.halo_rect(sd, radius)
        ix, iy = self.sd_coords(sd)
        # ring width in SD units that the halo can reach
        own = self.rect(sd)
        min_w = int(np.diff(self._x_cuts).min())
        min_h = int(np.diff(self._y_cuts).min())
        ring = int(np.ceil(radius / max(1, min(min_w, min_h))))
        out: List[Tuple[int, Rect]] = []
        for jy in range(max(0, iy - ring), min(self.sd_ny, iy + ring + 1)):
            for jx in range(max(0, ix - ring), min(self.sd_nx, ix + ring + 1)):
                other = self.sd_id(jx, jy)
                if other == sd:
                    continue
                overlap = halo.intersect(self.rect(other))
                if overlap.area > 0:
                    out.append((other, overlap))
        return out

    def ownership_grid(self, parts: np.ndarray) -> np.ndarray:
        """Reshape a per-SD part array into the ``(sd_ny, sd_nx)`` grid."""
        parts = np.asarray(parts)
        if len(parts) != self.num_subdomains:
            raise ValueError(
                f"parts length {len(parts)} != SD count {self.num_subdomains}")
        return parts.reshape(self.sd_ny, self.sd_nx)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<SubdomainGrid mesh={self.mesh_nx}x{self.mesh_ny} "
                f"sds={self.sd_nx}x{self.sd_ny}>")
