"""Spec → running service: the execution path for service scenarios.

:func:`run_service` mirrors :func:`repro.experiments.runner
.run_scenario` for the multi-tenant service: build the shared cluster
from the embedded :class:`ClusterSpec`, resolve one cached operator per
distinct tenant discretization (jobs with the same ``(nx, eps_factor,
backend)`` share the assembly — the cross-job reuse the service
measures), replay the seeded arrival trace through a
:class:`JobManager`, and reduce the event stream into a
:class:`RunRecord` whose ``service_events`` field carries the raw
trace.

Wave batching now runs **on** by default on the service cluster: the
wave machinery is barrier-aware (a wave is materialized the moment a
``local_when_all`` barrier observes any of its member futures early,
and ``submit_group`` / ``send_group`` batch each sweep and exchange
into one DES event per job step), so interleaved multi-job DAGs see
bit-identical telemetry with batching on or off.  ``wave_batching``
can still be forced either way per call — the parity tests and the
service bench run both modes and assert the ``service_events`` streams
are equal.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..amt.autoscale import AutoscaleController
from ..amt.cluster import ConstantSpeed, SimCluster
from ..costmodel import make_cost_model
from ..experiments.results import RunRecord
from ..experiments.runner import cached_operator
from .arrivals import generate_arrival_arrays, generate_arrivals
from .manager import JobManager
from .spec import ServiceSpec
from .telemetry import summarize_service

__all__ = ["run_service", "run_service_detailed", "summarize_record"]


def run_service_detailed(
        spec: ServiceSpec,
        wave_batching: Optional[bool] = None
) -> Tuple[RunRecord, SimCluster]:
    """Execute one service point; return the record *and* the cluster.

    The cluster runs ``until=spec.horizon``: jobs still queued or
    mid-DAG at the horizon stay unfinished (they are the ``in_flight``
    count in the summary), and — via the drained-queue clock contract —
    an underloaded run still ends with ``now == horizon``, so busy
    fractions and goodput are always measured against the full window.

    ``wave_batching=None`` defers to the ``REPRO_DES_WAVE`` default
    (on); pass ``False`` to force the strict one-event-per-task path.
    The returned cluster exposes the DES itself (``cluster.sim``) for
    callers that want ``events_processed`` or ``profile_report()``.
    """
    flops: Dict[int, float] = {}
    backends = set()
    backend_info: Dict[int, tuple] = {}
    for i, tenant in enumerate(spec.tenants):
        op = cached_operator(tenant.nx, tenant.nx, tenant.eps_factor,
                             spec.kernel_backend)
        flops[i] = op.flops_per_dp()
        backends.add(op.backend_name)
        backend_info[i] = (op.backend_name, op.radius)

    # same default rate as the distributed solver: 1e9 DP-update-flops
    # per virtual second per node (SimCluster's own default is a bare
    # 1.0 for unit tests); also the rate autoscale joiners inherit
    speeds = spec.cluster.build_speeds(default_rate=1e9)
    if speeds is None:
        speeds = [ConstantSpeed(1e9)] * spec.cluster.num_nodes
    memory = spec.cluster.build_memory()
    cost = make_cost_model(spec.cost_model, memory=memory)
    cluster = SimCluster(
        spec.cluster.num_nodes,
        cores_per_node=spec.cluster.cores_per_node,
        speeds=speeds,
        network=spec.cluster.build_network(),
        wave_batching=wave_batching,
        default_rate=1e9,
        cost_model=cost,
        memory=memory)

    manager = JobManager(cluster, spec, flops, cost_model=cost,
                         backend_info=backend_info)
    controller = None
    if spec.autoscale is not None:
        a = spec.autoscale
        controller = AutoscaleController(
            cluster, a.build_policy(),
            poll_interval=a.poll_interval,
            min_nodes=a.min_nodes, max_nodes=a.max_nodes,
            cooldown=a.cooldown, provision_delay=a.provision_delay,
            warmup=a.warmup, warmup_factor=a.warmup_factor,
            cores_per_node=spec.cluster.cores_per_node,
            metrics=manager.poll_signals,
            on_membership_change=manager.set_membership)
        controller.start()
    if cluster.wave_batching:
        # columnar trace straight into the arrival pump — no per-event
        # lambda and no Arrival object per job at service_extreme scale
        manager.feed_columnar(*generate_arrival_arrays(
            spec.arrival, spec.tenants, spec.horizon))
    else:
        manager.feed(generate_arrivals(spec.arrival, spec.tenants,
                                       spec.horizon))
    cluster.run(until=spec.horizon)

    record = RunRecord(
        scenario=spec.name, solver="service", spec=spec.to_dict(),
        num_steps=0,
        makespan=float(cluster.now),
        # final membership, joiners included (dead nodes keep their
        # slot so busy_total[i] still belongs to node id i)
        busy_total=[float(cluster.busy_time(n))
                    for n in range(len(cluster.nodes))],
        service_events=manager.events,
        scale_events=(list(controller.events) if controller is not None
                      else []),
        backend_resolved="+".join(sorted(backends)),
        cost_model_resolved=cost.name)
    return record, cluster


def run_service(spec: ServiceSpec,
                wave_batching: Optional[bool] = None) -> RunRecord:
    """Execute one service point and collect its :class:`RunRecord`."""
    record, _cluster = run_service_detailed(spec, wave_batching)
    return record


def summarize_record(record: RunRecord) -> Dict:
    """The service summary of a (possibly JSON-round-tripped) record,
    with fairness normalized by the spec's tenant weights."""
    weights = {t["name"]: t["weight"] for t in record.spec["tenants"]}
    return summarize_service(record.service_events,
                             record.spec["horizon"], weights=weights)
