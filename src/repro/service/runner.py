"""Spec → running service: the execution path for service scenarios.

:func:`run_service` mirrors :func:`repro.experiments.runner
.run_scenario` for the multi-tenant service: build the shared cluster
from the embedded :class:`ClusterSpec`, resolve one cached operator per
distinct tenant discretization (jobs with the same ``(nx, eps_factor,
backend)`` share the assembly — the cross-job reuse the service
measures), replay the seeded arrival trace through a
:class:`JobManager`, and reduce the event stream into a
:class:`RunRecord` whose ``service_events`` field carries the raw
trace.

Wave batching is forced **off** on the service cluster: the wave fast
path resolves intermediate task futures at the end of a batched run,
which is invisible through a single solver's step barrier but *not*
through many independent jobs' interleaved barriers — a job's sweep
barrier must fire the instant its own tasks finish, not when an
unrelated tenant's backlog drains.
"""

from __future__ import annotations

from typing import Dict

from ..amt.cluster import ConstantSpeed, SimCluster
from ..experiments.results import RunRecord
from ..experiments.runner import cached_operator
from .arrivals import generate_arrivals
from .manager import JobManager
from .spec import ServiceSpec
from .telemetry import summarize_service

__all__ = ["run_service"]


def run_service(spec: ServiceSpec) -> RunRecord:
    """Execute one service point and collect its :class:`RunRecord`.

    The cluster runs ``until=spec.horizon``: jobs still queued or
    mid-DAG at the horizon stay unfinished (they are the ``in_flight``
    count in the summary), and — via the drained-queue clock contract —
    an underloaded run still ends with ``now == horizon``, so busy
    fractions and goodput are always measured against the full window.
    """
    flops: Dict[int, float] = {}
    backends = set()
    for i, tenant in enumerate(spec.tenants):
        op = cached_operator(tenant.nx, tenant.nx, tenant.eps_factor,
                             spec.kernel_backend)
        flops[i] = op.flops_per_dp()
        backends.add(op.backend_name)

    # same default rate as the distributed solver: 1e9 DP-update-flops
    # per virtual second per node (SimCluster's own default is a bare
    # 1.0 for unit tests)
    speeds = spec.cluster.build_speeds(default_rate=1e9)
    if speeds is None:
        speeds = [ConstantSpeed(1e9)] * spec.cluster.num_nodes
    cluster = SimCluster(
        spec.cluster.num_nodes,
        cores_per_node=spec.cluster.cores_per_node,
        speeds=speeds,
        network=spec.cluster.build_network(),
        wave_batching=False)

    manager = JobManager(cluster, spec, flops)
    manager.feed(generate_arrivals(spec.arrival, spec.tenants,
                                   spec.horizon))
    cluster.run(until=spec.horizon)

    return RunRecord(
        scenario=spec.name, solver="service", spec=spec.to_dict(),
        num_steps=0,
        makespan=float(cluster.now),
        busy_total=[float(cluster.busy_time(n))
                    for n in range(spec.cluster.num_nodes)],
        service_events=list(manager.events),
        backend_resolved="+".join(sorted(backends)))


def summarize_record(record: RunRecord) -> Dict:
    """The service summary of a (possibly JSON-round-tripped) record,
    with fairness normalized by the spec's tenant weights."""
    weights = {t["name"]: t["weight"] for t in record.spec["tenants"]}
    return summarize_service(record.service_events,
                             record.spec["horizon"], weights=weights)
