"""Seeded open-loop arrival traces for the solve service.

:func:`generate_arrivals` turns an :class:`ArrivalSpec` plus the tenant
list into the literal event trace the service replays: a time-sorted
list of :class:`Arrival` records.  Every tenant draws from its own
``numpy`` generator seeded by ``(spec.seed, tenant_index)``, so

* the trace is a pure function of the spec — bit-identical across
  repeats, processes, and machines (the sweep-parity contract), and
* adding a tenant or reweighting one never perturbs the other tenants'
  streams (each stream owns its seed).

The processes are standard constructions: exponential gaps for Poisson,
an on/off modulated Poisson for bursty (rate inflated on the "on"
windows so the long-run average matches the nominal rate), and Lewis
thinning for the diurnal sinusoid.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from .spec import ArrivalSpec, TenantSpec

__all__ = ["Arrival", "generate_arrivals", "generate_arrival_arrays"]


@dataclass(frozen=True)
class Arrival:
    """One job arrival: when, which tenant, and its per-tenant index."""

    time: float
    tenant: int
    index: int  # k-th arrival of this tenant (0-based)


def _poisson_times(rng: np.random.Generator, rate: float,
                   start: float, stop: float) -> List[float]:
    """Homogeneous Poisson arrival instants in ``[start, stop)``."""
    times: List[float] = []
    t = start
    if rate <= 0:
        return times
    while True:
        t += rng.exponential(1.0 / rate)
        if t >= stop:
            return times
        times.append(t)


def _tenant_times(spec: ArrivalSpec, rate: float, horizon: float,
                  rng: np.random.Generator) -> List[float]:
    if rate <= 0:
        return []
    if spec.process == "poisson":
        return _poisson_times(rng, rate, 0.0, horizon)
    if spec.process == "bursty":
        # arrivals only while "on"; inflate the on-rate so the long-run
        # average over a full on+off cycle still equals ``rate``
        cycle = spec.burst_on + spec.burst_off
        on_rate = rate * cycle / spec.burst_on
        times: List[float] = []
        start = 0.0
        while start < horizon:
            stop = min(start + spec.burst_on, horizon)
            times.extend(_poisson_times(rng, on_rate, start, stop))
            start += cycle
        return times
    # diurnal: thin a dominating homogeneous process of intensity
    # rate * (1 + amplitude) down to the sinusoidal target intensity
    peak = rate * (1.0 + spec.amplitude)
    times = []
    for t in _poisson_times(rng, peak, 0.0, horizon):
        intensity = rate * (1.0 + spec.amplitude
                            * np.sin(2.0 * np.pi * t / spec.period))
        if rng.uniform() * peak < intensity:
            times.append(t)
    return times


def _poisson_times_np(rng: np.random.Generator, rate: float,
                      horizon: float) -> np.ndarray:
    """Vectorized homogeneous Poisson instants in ``[0, horizon)``.

    Block-draws exponential gaps and chains them with
    ``np.add.accumulate`` — the accumulate performs the identical
    left-to-right ``t_{i+1} = fl(t_i + gap)`` float64 additions as the
    scalar loop over the *same* generator stream, so the kept times are
    bit-identical to :func:`_poisson_times`.  The block draw may consume
    a few more variates past the horizon than the scalar loop's single
    terminating draw, which is only safe because a pure-Poisson tenant
    stream uses its generator for nothing else — the modulated processes
    (bursty, diurnal) must keep the scalar path.
    """
    scale = 1.0 / rate
    expected = rate * horizon
    chunk = max(64, int(expected + 6.0 * math.sqrt(expected)) + 16)
    total = 0.0
    parts: List[np.ndarray] = []
    while True:
        gaps = np.empty(chunk + 1, dtype=np.float64)
        gaps[0] = total
        gaps[1:] = rng.exponential(scale, size=chunk)
        acc = np.add.accumulate(gaps)[1:]
        cut = int(np.searchsorted(acc, horizon, side="left"))
        if cut < chunk:
            parts.append(acc[:cut])
            break
        parts.append(acc)
        total = float(acc[-1])
        chunk = max(64, chunk // 4)
    return parts[0] if len(parts) == 1 else np.concatenate(parts)


def generate_arrival_arrays(
        spec: ArrivalSpec, tenants: Sequence[TenantSpec],
        horizon: float) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """The arrival trace as ``(times, tenants, indices)`` arrays.

    Column-for-column the same trace :func:`generate_arrivals` returns
    as records — same per-tenant generator streams, same
    ``(time, tenant, index)`` ordering via a lexsort — without building
    a million :class:`Arrival` objects.  This is what the service
    runner feeds the manager's arrival pump at the ``service_extreme``
    scale.
    """
    total = sum(t.weight for t in tenants)
    times_parts: List[np.ndarray] = []
    tenant_parts: List[np.ndarray] = []
    index_parts: List[np.ndarray] = []
    for idx, tenant in enumerate(tenants):
        rng = np.random.default_rng([spec.seed, idx])
        rate = spec.rate * tenant.weight / total
        if rate <= 0:
            continue
        if spec.process == "poisson":
            t = _poisson_times_np(rng, rate, horizon)
        else:
            t = np.asarray(_tenant_times(spec, rate, horizon, rng),
                           dtype=np.float64)
        times_parts.append(t)
        tenant_parts.append(np.full(len(t), idx, dtype=np.int64))
        index_parts.append(np.arange(len(t), dtype=np.int64))
    if not times_parts:
        empty = np.empty(0, dtype=np.float64)
        return empty, np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    times = np.concatenate(times_parts)
    tens = np.concatenate(tenant_parts)
    idxs = np.concatenate(index_parts)
    order = np.lexsort((idxs, tens, times))
    return times[order], tens[order], idxs[order]


def generate_arrivals(spec: ArrivalSpec, tenants: Sequence[TenantSpec],
                      horizon: float) -> List[Arrival]:
    """The full arrival trace, time-sorted with a deterministic
    tie-break (time, tenant, index)."""
    times, tens, idxs = generate_arrival_arrays(spec, tenants, horizon)
    return [Arrival(t, n, k)
            for t, n, k in zip(times.tolist(), tens.tolist(), idxs.tolist())]
