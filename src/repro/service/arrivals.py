"""Seeded open-loop arrival traces for the solve service.

:func:`generate_arrivals` turns an :class:`ArrivalSpec` plus the tenant
list into the literal event trace the service replays: a time-sorted
list of :class:`Arrival` records.  Every tenant draws from its own
``numpy`` generator seeded by ``(spec.seed, tenant_index)``, so

* the trace is a pure function of the spec — bit-identical across
  repeats, processes, and machines (the sweep-parity contract), and
* adding a tenant or reweighting one never perturbs the other tenants'
  streams (each stream owns its seed).

The processes are standard constructions: exponential gaps for Poisson,
an on/off modulated Poisson for bursty (rate inflated on the "on"
windows so the long-run average matches the nominal rate), and Lewis
thinning for the diurnal sinusoid.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from .spec import ArrivalSpec, TenantSpec

__all__ = ["Arrival", "generate_arrivals"]


@dataclass(frozen=True)
class Arrival:
    """One job arrival: when, which tenant, and its per-tenant index."""

    time: float
    tenant: int
    index: int  # k-th arrival of this tenant (0-based)


def _poisson_times(rng: np.random.Generator, rate: float,
                   start: float, stop: float) -> List[float]:
    """Homogeneous Poisson arrival instants in ``[start, stop)``."""
    times: List[float] = []
    t = start
    if rate <= 0:
        return times
    while True:
        t += rng.exponential(1.0 / rate)
        if t >= stop:
            return times
        times.append(t)


def _tenant_times(spec: ArrivalSpec, rate: float, horizon: float,
                  rng: np.random.Generator) -> List[float]:
    if rate <= 0:
        return []
    if spec.process == "poisson":
        return _poisson_times(rng, rate, 0.0, horizon)
    if spec.process == "bursty":
        # arrivals only while "on"; inflate the on-rate so the long-run
        # average over a full on+off cycle still equals ``rate``
        cycle = spec.burst_on + spec.burst_off
        on_rate = rate * cycle / spec.burst_on
        times: List[float] = []
        start = 0.0
        while start < horizon:
            stop = min(start + spec.burst_on, horizon)
            times.extend(_poisson_times(rng, on_rate, start, stop))
            start += cycle
        return times
    # diurnal: thin a dominating homogeneous process of intensity
    # rate * (1 + amplitude) down to the sinusoidal target intensity
    peak = rate * (1.0 + spec.amplitude)
    times = []
    for t in _poisson_times(rng, peak, 0.0, horizon):
        intensity = rate * (1.0 + spec.amplitude
                            * np.sin(2.0 * np.pi * t / spec.period))
        if rng.uniform() * peak < intensity:
            times.append(t)
    return times


def generate_arrivals(spec: ArrivalSpec, tenants: Sequence[TenantSpec],
                      horizon: float) -> List[Arrival]:
    """The full arrival trace, time-sorted with a deterministic
    tie-break (time, tenant, index)."""
    total = sum(t.weight for t in tenants)
    arrivals: List[Arrival] = []
    for idx, tenant in enumerate(tenants):
        rng = np.random.default_rng([spec.seed, idx])
        rate = spec.rate * tenant.weight / total
        for k, t in enumerate(_tenant_times(spec, rate, horizon, rng)):
            arrivals.append(Arrival(float(t), idx, k))
    arrivals.sort(key=lambda a: (a.time, a.tenant, a.index))
    return arrivals
