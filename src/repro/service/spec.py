"""Declarative specifications for the multi-tenant solve service.

A :class:`ServiceSpec` describes an *open-loop* service experiment: many
virtual tenants submit solve jobs to one shared simulated cluster
according to a seeded arrival process, a :class:`repro.service.manager
.JobManager` admits or sheds them against bounded per-tenant queues, and
admitted jobs run as step-DAGs on the cluster.  Like every spec in
:mod:`repro.experiments.spec`, these are frozen, eagerly validated,
JSON-round-trippable value objects — the contract the parallel sweep
runner and the ``--json`` files rely on.

``ServiceSpec.to_dict`` carries a ``"solver": "service"`` marker so the
sweep worker (which only sees a payload dict across the process
boundary) can route service points to :func:`repro.service.runner
.run_service` instead of the scenario runner.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Dict, Optional, Tuple

from ..experiments.spec import ClusterSpec, _require, _set

__all__ = ["ArrivalSpec", "TenantSpec", "ServiceSpec"]


@dataclass(frozen=True)
class ArrivalSpec:
    """The open-loop arrival process feeding the service.

    ``rate`` is the *aggregate* offered load in jobs per virtual second,
    split across tenants by their weights.  All three processes are
    seeded and deterministic — the same spec always replays the same
    trace (the bit-identical-repeats test pins this).

    Processes
    ---------
    ``poisson``
        Independent exponential inter-arrival gaps per tenant.
    ``bursty``
        An on/off modulated Poisson process: arrivals only during "on"
        windows of length ``burst_on`` (separated by ``burst_off`` of
        silence), at a rate inflated so the long-run average still
        matches ``rate``.
    ``diurnal``
        A sinusoidally modulated Poisson process (thinning construction):
        intensity ``rate * (1 + amplitude * sin(2*pi*t / period))``.
    """

    PROCESSES = ("poisson", "bursty", "diurnal")

    process: str = "poisson"
    rate: float = 1000.0
    seed: int = 0
    burst_on: float = 1e-3
    burst_off: float = 3e-3
    period: float = 1e-2
    amplitude: float = 0.8

    def __post_init__(self) -> None:
        _require(self.process in self.PROCESSES,
                 f"unknown arrival process {self.process!r}; "
                 f"expected one of {self.PROCESSES}")
        _set(self, "rate", float(self.rate))
        _set(self, "seed", int(self.seed))
        _set(self, "burst_on", float(self.burst_on))
        _set(self, "burst_off", float(self.burst_off))
        _set(self, "period", float(self.period))
        _set(self, "amplitude", float(self.amplitude))
        _require(self.rate >= 0, f"rate must be >= 0, got {self.rate}")
        _require(self.burst_on > 0,
                 f"burst_on must be > 0, got {self.burst_on}")
        _require(self.burst_off >= 0,
                 f"burst_off must be >= 0, got {self.burst_off}")
        _require(self.period > 0, f"period must be > 0, got {self.period}")
        _require(0 <= self.amplitude < 1,
                 f"amplitude must be in [0, 1), got {self.amplitude}")

    def to_dict(self) -> Dict[str, Any]:
        return {"process": self.process, "rate": self.rate,
                "seed": self.seed, "burst_on": self.burst_on,
                "burst_off": self.burst_off, "period": self.period,
                "amplitude": self.amplitude}

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "ArrivalSpec":
        return cls(**d)


@dataclass(frozen=True)
class TenantSpec:
    """One virtual tenant: its share of the load and its job shape.

    Every job a tenant submits is the same mini solve: ``steps``
    relaxation sweeps of an ``nx`` x ``nx`` mesh with horizon
    ``eps_factor * h``, block-split across the whole cluster with a
    ring ghost exchange between sweeps.  Tenants with the same
    ``(nx, eps_factor)`` share one cached operator (the
    :func:`repro.experiments.cached_operator` key), which is the
    cross-job operator reuse the service exists to exercise.
    """

    name: str
    weight: float = 1.0
    nx: int = 32
    steps: int = 2
    eps_factor: float = 2.0

    def __post_init__(self) -> None:
        _require(isinstance(self.name, str) and bool(self.name),
                 "tenant name must be a non-empty string")
        _set(self, "weight", float(self.weight))
        _set(self, "nx", int(self.nx))
        _set(self, "steps", int(self.steps))
        _set(self, "eps_factor", float(self.eps_factor))
        _require(self.weight > 0,
                 f"tenant {self.name!r}: weight must be > 0, "
                 f"got {self.weight}")
        _require(self.nx >= 1,
                 f"tenant {self.name!r}: nx must be >= 1, got {self.nx}")
        _require(self.steps >= 1,
                 f"tenant {self.name!r}: steps must be >= 1, "
                 f"got {self.steps}")
        _require(self.eps_factor > 0,
                 f"tenant {self.name!r}: eps_factor must be positive, "
                 f"got {self.eps_factor}")

    def to_dict(self) -> Dict[str, Any]:
        return {"name": self.name, "weight": self.weight, "nx": self.nx,
                "steps": self.steps, "eps_factor": self.eps_factor}

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "TenantSpec":
        return cls(**d)


@dataclass(frozen=True)
class ServiceSpec:
    """One complete, runnable multi-tenant service experiment.

    The service replays ``arrival`` over ``[0, horizon)`` virtual
    seconds into a shared cluster built from ``cluster``.  Admission
    control bounds each tenant's FIFO queue at ``max_queue_depth``
    (overflow is shed, not blocked — the stream is open-loop), and at
    most ``max_concurrent`` admitted jobs run on the cluster at once.

    The service requires a fault-free cluster: recovery of in-flight
    *jobs* (as opposed to tasks) is a scheduling policy question the
    service layer does not answer yet, and silently dropping jobs on a
    node failure would corrupt the goodput accounting.
    """

    name: str
    tenants: Tuple[TenantSpec, ...]
    cluster: ClusterSpec = ClusterSpec()
    arrival: ArrivalSpec = ArrivalSpec()
    horizon: float = 1e-2
    max_queue_depth: int = 16
    max_concurrent: int = 8
    kernel_backend: str = "auto"

    def __post_init__(self) -> None:
        _require(isinstance(self.name, str) and bool(self.name),
                 "service name must be a non-empty string")
        tenants = []
        for entry in self.tenants:
            if isinstance(entry, dict):
                entry = TenantSpec.from_dict(entry)
            tenants.append(entry)
        _set(self, "tenants", tuple(tenants))
        _require(len(self.tenants) >= 1, "need at least one tenant")
        names = [t.name for t in self.tenants]
        _require(len(set(names)) == len(names),
                 f"tenant names must be unique, got {names}")
        if isinstance(self.cluster, dict):
            _set(self, "cluster", ClusterSpec.from_dict(self.cluster))
        if isinstance(self.arrival, dict):
            _set(self, "arrival", ArrivalSpec.from_dict(self.arrival))
        _set(self, "horizon", float(self.horizon))
        _set(self, "max_queue_depth", int(self.max_queue_depth))
        _set(self, "max_concurrent", int(self.max_concurrent))
        _require(self.horizon > 0,
                 f"horizon must be > 0, got {self.horizon}")
        _require(self.max_queue_depth >= 1,
                 f"max_queue_depth must be >= 1, got {self.max_queue_depth}")
        _require(self.max_concurrent >= 1,
                 f"max_concurrent must be >= 1, got {self.max_concurrent}")
        _require(self.cluster.faults is None,
                 "the service layer requires a fault-free cluster "
                 "(job-level recovery is not defined)")
        for t in self.tenants:
            _require(t.nx >= self.cluster.num_nodes,
                     f"tenant {t.name!r}: nx={t.nx} rows cannot be "
                     f"block-split over {self.cluster.num_nodes} nodes")
        from ..solver.backends import backend_names
        _require(self.kernel_backend == "auto"
                 or self.kernel_backend in backend_names(),
                 f"unknown kernel backend {self.kernel_backend!r}; "
                 f"expected 'auto' or one of {tuple(backend_names())}")

    @property
    def solver(self) -> str:
        """Dispatch marker: ``run_scenario`` routes on this, exactly
        like ``ScenarioSpec.solver`` selects serial vs distributed."""
        return "service"

    @property
    def total_weight(self) -> float:
        return sum(t.weight for t in self.tenants)

    def tenant_rate(self, index: int) -> float:
        """Tenant ``index``'s share of the aggregate arrival rate."""
        return self.arrival.rate * (self.tenants[index].weight
                                    / self.total_weight)

    def replace(self, **changes: Any) -> "ServiceSpec":
        """A copy with ``changes`` applied (re-validated)."""
        return replace(self, **changes)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "solver": "service",  # sweep-worker dispatch marker
            "tenants": [t.to_dict() for t in self.tenants],
            "cluster": self.cluster.to_dict(),
            "arrival": self.arrival.to_dict(),
            "horizon": self.horizon,
            "max_queue_depth": self.max_queue_depth,
            "max_concurrent": self.max_concurrent,
            "kernel_backend": self.kernel_backend,
        }

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "ServiceSpec":
        d = dict(d)
        marker = d.pop("solver", "service")
        _require(marker == "service",
                 f"not a service spec (solver={marker!r})")
        d["tenants"] = tuple(TenantSpec.from_dict(t) for t in d["tenants"])
        d["cluster"] = ClusterSpec.from_dict(d.get("cluster", {}))
        d["arrival"] = ArrivalSpec.from_dict(d.get("arrival", {}))
        return cls(**d)
