"""Declarative specifications for the multi-tenant solve service.

A :class:`ServiceSpec` describes an *open-loop* service experiment: many
virtual tenants submit solve jobs to one shared simulated cluster
according to a seeded arrival process, a :class:`repro.service.manager
.JobManager` admits or sheds them against bounded per-tenant queues, and
admitted jobs run as step-DAGs on the cluster.  Like every spec in
:mod:`repro.experiments.spec`, these are frozen, eagerly validated,
JSON-round-trippable value objects — the contract the parallel sweep
runner and the ``--json`` files rely on.

``ServiceSpec.to_dict`` carries a ``"solver": "service"`` marker so the
sweep worker (which only sees a payload dict across the process
boundary) can route service points to :func:`repro.service.runner
.run_service` instead of the scenario runner.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Any, Dict, Optional, Tuple

from ..experiments.spec import ClusterSpec, _require, _set

__all__ = ["ArrivalSpec", "TenantSpec", "AutoscaleSpec", "ServiceSpec"]


@dataclass(frozen=True)
class AutoscaleSpec:
    """Closed-loop fleet sizing for a service run (DESIGN.md sub. 6).

    When present on a :class:`ServiceSpec`, the runner wires an
    :class:`repro.amt.autoscale.AutoscaleController` over the cluster:
    it polls every ``poll_interval`` virtual seconds, feeds the named
    ``policy`` (only ``"target_utilization"`` today), and actuates the
    churn machinery within ``[min_nodes, max_nodes]`` — the cluster
    *starts* at ``cluster.num_nodes``, which must sit inside that band.
    Scale-out lands after ``provision_delay`` and runs its first
    ``warmup`` seconds at ``warmup_factor`` of full speed; scale-in
    drains the idlest node and retires it once empty.  The service
    thresholds default to ``inf`` (utilization-only scaling); finite
    values arm the corresponding signal.
    """

    policy: str = "target_utilization"
    poll_interval: float = 2.5e-4
    min_nodes: int = 2
    max_nodes: int = 8
    cooldown: float = 5e-4
    provision_delay: float = 5e-4
    warmup: float = 5e-4
    warmup_factor: float = 0.5
    scale_out_utilization: float = 0.85
    scale_in_utilization: float = 0.25
    max_p99_wait: float = math.inf
    max_shed_rate: float = math.inf
    max_queue_depth: float = math.inf
    breach_polls: int = 2
    low_polls: int = 4

    POLICIES = ("target_utilization",)

    def __post_init__(self) -> None:
        _require(self.policy in self.POLICIES,
                 f"unknown autoscale policy {self.policy!r}; "
                 f"expected one of {self.POLICIES}")
        _set(self, "poll_interval", float(self.poll_interval))
        _set(self, "min_nodes", int(self.min_nodes))
        _set(self, "max_nodes", int(self.max_nodes))
        _set(self, "cooldown", float(self.cooldown))
        _set(self, "provision_delay", float(self.provision_delay))
        _set(self, "warmup", float(self.warmup))
        _set(self, "warmup_factor", float(self.warmup_factor))
        _set(self, "scale_out_utilization",
             float(self.scale_out_utilization))
        _set(self, "scale_in_utilization", float(self.scale_in_utilization))
        _set(self, "max_p99_wait", float(self.max_p99_wait))
        _set(self, "max_shed_rate", float(self.max_shed_rate))
        _set(self, "max_queue_depth", float(self.max_queue_depth))
        _set(self, "breach_polls", int(self.breach_polls))
        _set(self, "low_polls", int(self.low_polls))
        _require(self.poll_interval > 0,
                 f"poll_interval must be > 0, got {self.poll_interval}")
        _require(1 <= self.min_nodes <= self.max_nodes,
                 f"need 1 <= min_nodes <= max_nodes, got "
                 f"[{self.min_nodes}, {self.max_nodes}]")
        _require(self.cooldown >= 0,
                 f"cooldown must be >= 0, got {self.cooldown}")
        _require(self.provision_delay >= 0,
                 f"provision_delay must be >= 0, got "
                 f"{self.provision_delay}")
        _require(self.warmup >= 0,
                 f"warmup must be >= 0, got {self.warmup}")
        _require(0 < self.warmup_factor <= 1,
                 f"warmup_factor must be in (0, 1], got "
                 f"{self.warmup_factor}")
        _require(self.scale_in_utilization < self.scale_out_utilization,
                 f"scale_in_utilization ({self.scale_in_utilization}) "
                 f"must be below scale_out_utilization "
                 f"({self.scale_out_utilization})")
        _require(self.breach_polls >= 1 and self.low_polls >= 1,
                 "breach_polls and low_polls must be >= 1")

    def build_policy(self):
        """The configured :class:`repro.amt.autoscale.AutoscalePolicy`
        instance (fresh per run — policies carry hysteresis state)."""
        from ..amt.autoscale import TargetUtilizationPolicy
        return TargetUtilizationPolicy(
            scale_out_utilization=self.scale_out_utilization,
            scale_in_utilization=self.scale_in_utilization,
            max_p99_wait=self.max_p99_wait,
            max_shed_rate=self.max_shed_rate,
            max_queue_depth=self.max_queue_depth,
            breach_polls=self.breach_polls,
            low_polls=self.low_polls)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "policy": self.policy,
            "poll_interval": self.poll_interval,
            "min_nodes": self.min_nodes,
            "max_nodes": self.max_nodes,
            "cooldown": self.cooldown,
            "provision_delay": self.provision_delay,
            "warmup": self.warmup,
            "warmup_factor": self.warmup_factor,
            "scale_out_utilization": self.scale_out_utilization,
            "scale_in_utilization": self.scale_in_utilization,
            "max_p99_wait": self.max_p99_wait,
            "max_shed_rate": self.max_shed_rate,
            "max_queue_depth": self.max_queue_depth,
            "breach_polls": self.breach_polls,
            "low_polls": self.low_polls,
        }

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "AutoscaleSpec":
        return cls(**d)


@dataclass(frozen=True)
class ArrivalSpec:
    """The open-loop arrival process feeding the service.

    ``rate`` is the *aggregate* offered load in jobs per virtual second,
    split across tenants by their weights.  All three processes are
    seeded and deterministic — the same spec always replays the same
    trace (the bit-identical-repeats test pins this).

    Processes
    ---------
    ``poisson``
        Independent exponential inter-arrival gaps per tenant.
    ``bursty``
        An on/off modulated Poisson process: arrivals only during "on"
        windows of length ``burst_on`` (separated by ``burst_off`` of
        silence), at a rate inflated so the long-run average still
        matches ``rate``.
    ``diurnal``
        A sinusoidally modulated Poisson process (thinning construction):
        intensity ``rate * (1 + amplitude * sin(2*pi*t / period))``.
    """

    PROCESSES = ("poisson", "bursty", "diurnal")

    process: str = "poisson"
    rate: float = 1000.0
    seed: int = 0
    burst_on: float = 1e-3
    burst_off: float = 3e-3
    period: float = 1e-2
    amplitude: float = 0.8

    def __post_init__(self) -> None:
        _require(self.process in self.PROCESSES,
                 f"unknown arrival process {self.process!r}; "
                 f"expected one of {self.PROCESSES}")
        _set(self, "rate", float(self.rate))
        _set(self, "seed", int(self.seed))
        _set(self, "burst_on", float(self.burst_on))
        _set(self, "burst_off", float(self.burst_off))
        _set(self, "period", float(self.period))
        _set(self, "amplitude", float(self.amplitude))
        _require(self.rate >= 0, f"rate must be >= 0, got {self.rate}")
        _require(self.burst_on > 0,
                 f"burst_on must be > 0, got {self.burst_on}")
        _require(self.burst_off >= 0,
                 f"burst_off must be >= 0, got {self.burst_off}")
        _require(self.period > 0, f"period must be > 0, got {self.period}")
        _require(0 <= self.amplitude < 1,
                 f"amplitude must be in [0, 1), got {self.amplitude}")

    def to_dict(self) -> Dict[str, Any]:
        return {"process": self.process, "rate": self.rate,
                "seed": self.seed, "burst_on": self.burst_on,
                "burst_off": self.burst_off, "period": self.period,
                "amplitude": self.amplitude}

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "ArrivalSpec":
        return cls(**d)


@dataclass(frozen=True)
class TenantSpec:
    """One virtual tenant: its share of the load and its job shape.

    Every job a tenant submits is the same mini solve: ``steps``
    relaxation sweeps of an ``nx`` x ``nx`` mesh with horizon
    ``eps_factor * h``, block-split across the whole cluster with a
    ring ghost exchange between sweeps.  Tenants with the same
    ``(nx, eps_factor)`` share one cached operator (the
    :func:`repro.experiments.cached_operator` key), which is the
    cross-job operator reuse the service exists to exercise.
    """

    name: str
    weight: float = 1.0
    nx: int = 32
    steps: int = 2
    eps_factor: float = 2.0

    def __post_init__(self) -> None:
        _require(isinstance(self.name, str) and bool(self.name),
                 "tenant name must be a non-empty string")
        _set(self, "weight", float(self.weight))
        _set(self, "nx", int(self.nx))
        _set(self, "steps", int(self.steps))
        _set(self, "eps_factor", float(self.eps_factor))
        _require(self.weight > 0,
                 f"tenant {self.name!r}: weight must be > 0, "
                 f"got {self.weight}")
        _require(self.nx >= 1,
                 f"tenant {self.name!r}: nx must be >= 1, got {self.nx}")
        _require(self.steps >= 1,
                 f"tenant {self.name!r}: steps must be >= 1, "
                 f"got {self.steps}")
        _require(self.eps_factor > 0,
                 f"tenant {self.name!r}: eps_factor must be positive, "
                 f"got {self.eps_factor}")

    def to_dict(self) -> Dict[str, Any]:
        return {"name": self.name, "weight": self.weight, "nx": self.nx,
                "steps": self.steps, "eps_factor": self.eps_factor}

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "TenantSpec":
        return cls(**d)


@dataclass(frozen=True)
class ServiceSpec:
    """One complete, runnable multi-tenant service experiment.

    The service replays ``arrival`` over ``[0, horizon)`` virtual
    seconds into a shared cluster built from ``cluster``.  Admission
    control bounds each tenant's FIFO queue at ``max_queue_depth``
    (overflow is shed, not blocked — the stream is open-loop), and at
    most ``max_concurrent`` admitted jobs run on the cluster at once.

    The service requires a fault-free cluster: recovery of in-flight
    *jobs* (as opposed to tasks) is a scheduling policy question the
    service layer does not answer yet, and silently dropping jobs on a
    node failure would corrupt the goodput accounting.
    """

    name: str
    tenants: Tuple[TenantSpec, ...]
    cluster: ClusterSpec = ClusterSpec()
    arrival: ArrivalSpec = ArrivalSpec()
    horizon: float = 1e-2
    max_queue_depth: int = 16
    max_concurrent: int = 8
    kernel_backend: str = "auto"
    cost_model: str = "auto"
    autoscale: Optional[AutoscaleSpec] = None

    def __post_init__(self) -> None:
        _require(isinstance(self.name, str) and bool(self.name),
                 "service name must be a non-empty string")
        tenants = []
        for entry in self.tenants:
            if isinstance(entry, dict):
                entry = TenantSpec.from_dict(entry)
            tenants.append(entry)
        _set(self, "tenants", tuple(tenants))
        _require(len(self.tenants) >= 1, "need at least one tenant")
        names = [t.name for t in self.tenants]
        _require(len(set(names)) == len(names),
                 f"tenant names must be unique, got {names}")
        if isinstance(self.cluster, dict):
            _set(self, "cluster", ClusterSpec.from_dict(self.cluster))
        if isinstance(self.arrival, dict):
            _set(self, "arrival", ArrivalSpec.from_dict(self.arrival))
        _set(self, "horizon", float(self.horizon))
        _set(self, "max_queue_depth", int(self.max_queue_depth))
        _set(self, "max_concurrent", int(self.max_concurrent))
        _require(self.horizon > 0,
                 f"horizon must be > 0, got {self.horizon}")
        _require(self.max_queue_depth >= 1,
                 f"max_queue_depth must be >= 1, got {self.max_queue_depth}")
        _require(self.max_concurrent >= 1,
                 f"max_concurrent must be >= 1, got {self.max_concurrent}")
        _require(self.cluster.faults is None,
                 "the service layer requires a fault-free cluster "
                 "(job-level recovery is not defined)")
        if isinstance(self.autoscale, dict):
            _set(self, "autoscale", AutoscaleSpec.from_dict(self.autoscale))
        # jobs must split over the largest fleet autoscaling can reach
        widest = (self.autoscale.max_nodes if self.autoscale is not None
                  else self.cluster.num_nodes)
        for t in self.tenants:
            _require(t.nx >= widest,
                     f"tenant {t.name!r}: nx={t.nx} rows cannot be "
                     f"block-split over {widest} nodes")
        if self.autoscale is not None:
            _require(self.autoscale.min_nodes <= self.cluster.num_nodes
                     <= self.autoscale.max_nodes,
                     f"cluster starts at {self.cluster.num_nodes} nodes, "
                     f"outside the autoscale band "
                     f"[{self.autoscale.min_nodes}, "
                     f"{self.autoscale.max_nodes}]")
        from ..solver.backends import backend_names
        _require(self.kernel_backend == "auto"
                 or self.kernel_backend in backend_names(),
                 f"unknown kernel backend {self.kernel_backend!r}; "
                 f"expected 'auto' or one of {tuple(backend_names())}")
        from ..costmodel import cost_model_names
        _require(self.cost_model == "auto"
                 or self.cost_model in cost_model_names(),
                 f"unknown cost model {self.cost_model!r}; "
                 f"expected 'auto' or one of {tuple(cost_model_names())}")

    @property
    def solver(self) -> str:
        """Dispatch marker: ``run_scenario`` routes on this, exactly
        like ``ScenarioSpec.solver`` selects serial vs distributed."""
        return "service"

    @property
    def total_weight(self) -> float:
        return sum(t.weight for t in self.tenants)

    def tenant_rate(self, index: int) -> float:
        """Tenant ``index``'s share of the aggregate arrival rate."""
        return self.arrival.rate * (self.tenants[index].weight
                                    / self.total_weight)

    def replace(self, **changes: Any) -> "ServiceSpec":
        """A copy with ``changes`` applied (re-validated)."""
        return replace(self, **changes)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "solver": "service",  # sweep-worker dispatch marker
            "tenants": [t.to_dict() for t in self.tenants],
            "cluster": self.cluster.to_dict(),
            "arrival": self.arrival.to_dict(),
            "horizon": self.horizon,
            "max_queue_depth": self.max_queue_depth,
            "max_concurrent": self.max_concurrent,
            "kernel_backend": self.kernel_backend,
            "cost_model": self.cost_model,
            "autoscale": (self.autoscale.to_dict()
                          if self.autoscale is not None else None),
        }

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "ServiceSpec":
        d = dict(d)
        marker = d.pop("solver", "service")
        _require(marker == "service",
                 f"not a service spec (solver={marker!r})")
        d["tenants"] = tuple(TenantSpec.from_dict(t) for t in d["tenants"])
        d["cluster"] = ClusterSpec.from_dict(d.get("cluster", {}))
        d["arrival"] = ArrivalSpec.from_dict(d.get("arrival", {}))
        autoscale = d.get("autoscale")
        if autoscale is not None and not isinstance(autoscale, AutoscaleSpec):
            d["autoscale"] = AutoscaleSpec.from_dict(autoscale)
        return cls(**d)
