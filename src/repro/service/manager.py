"""Job admission, queueing, and co-scheduling for the solve service.

The :class:`JobManager` is the service's control plane (the
QueryManager role in serving simulators like Helix): arrivals land in
bounded per-tenant FIFO queues, overflow is shed immediately (the
stream is open-loop — nothing ever blocks the arrival process), and a
round-robin dispatcher starts up to ``max_concurrent`` admitted jobs on
the one shared :class:`SimCluster`.

An admitted job runs as a mini step-DAG: each relaxation sweep is one
task per node (the tenant's mesh rows block-split across the whole
cluster), sweeps are chained through a ``local_when_all`` barrier, and
between sweeps neighbouring nodes exchange one ghost-row message each
way.  Concurrent jobs' tasks interleave in the nodes' FIFO ready
queues, so multi-tenant interference emerges from the DES itself rather
than from an analytic sharing model.

Everything the run observes lands in ``manager.events`` — a columnar
:class:`repro.service.telemetry.EventLog` whose rows render as the
same plain dicts (``arrival`` / ``shed`` / ``start`` / ``finish``)
the stream has always carried — which
:func:`repro.service.telemetry.summarize_service` reduces and
``RunRecord.service_events`` persists.

Fast path (see DESIGN.md, "Service fast path"): when the cluster runs
with wave batching, sweeps go through
:meth:`repro.amt.cluster.SimCluster.submit_group` /
:meth:`~repro.amt.cluster.SimCluster.send_group` (one DES event per
sweep / exchange instead of one per task / message) and the arrival
trace is replayed by a chunked *pump*: one chained DES event per
admission-control slice, draining every arrival that provably cannot
dispatch work (fleet saturated, no earlier cluster event) with its own
timestamp.  With batching off, both collapse to the historical
one-event-per-arrival / per-task forms; the telemetry stream is
bit-identical either way.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Sequence

from ..amt.cluster import SimCluster
from ..costmodel import FLAT, WorkItem
from .arrivals import Arrival
from .spec import ServiceSpec
from .telemetry import _SHED, _START, EventLog, percentile

__all__ = ["JobManager", "ARRIVAL_PRIORITY"]

#: DES priority for arrival events: after same-instant deliveries (0)
#: and task completions (1), so a job finishing exactly when the next
#: arrival lands frees its concurrency slot first — the dispatch order
#: is then independent of how the arrival trace interleaves with the
#: cluster's own events.
ARRIVAL_PRIORITY = 2


class _Job:
    """One admitted (or queued) solve job and its DAG bookkeeping.

    ``on_sweep`` / ``on_ghosts`` are the job's two DAG continuations,
    built once at admission and handed to ``submit_group`` /
    ``send_group`` for every step — one closure per job instead of one
    per sweep.
    """

    __slots__ = ("tenant", "index", "arrival_time", "start_time", "step",
                 "label", "on_sweep", "on_ghosts")

    def __init__(self, tenant: int, index: int, arrival_time: float) -> None:
        self.tenant = tenant
        self.index = index
        self.arrival_time = arrival_time
        self.start_time = -1.0
        self.step = 0
        self.label = ""
        self.on_sweep = None
        self.on_ghosts = None


class _Template:
    """Per-tenant job shape, resolved against the *current* fleet.

    ``works[k]`` is the flops of tenant's per-sweep task on node
    ``nodes[k]`` (mesh rows block-split across the dispatchable nodes,
    cost from the shared cached operator's ``flops_per_dp``);
    ``ghosts`` the ``(src, dst, nbytes)`` ring-exchange messages issued
    between sweeps.  Templates are rebuilt on membership change
    (:meth:`JobManager.set_membership`); in-flight jobs adopt the new
    shape at their next step, since the step DAG looks the template up
    per step.
    """

    __slots__ = ("steps", "works", "ghosts", "nodes")

    def __init__(self, steps: int, works: List[float],
                 ghosts: List[tuple], nodes: List[int]) -> None:
        self.steps = steps
        self.works = works
        self.ghosts = ghosts
        self.nodes = nodes


def _build_template(tenant, flops_per_dp: float, nodes: List[int],
                    cost=FLAT, backend: str = "",
                    radius: int = 0) -> _Template:
    num_nodes = len(nodes)
    rows = [tenant.nx // num_nodes
            + (1 if k < tenant.nx % num_nodes else 0)
            for k in range(num_nodes)]
    # priced through the cost model; flat resolves each item to the
    # seed's ``(r * nx) * flops * 1.0`` — bit-identical to the inlined
    # ``r * tenant.nx * flops_per_dp`` (``x * 1.0 == x``)
    works = [cost.task_work(WorkItem(
        count=r * tenant.nx, flops=flops_per_dp, work_factor=1.0,
        backend=backend, rows=r, cols=tenant.nx, radius=radius))
        for r in rows]
    # one ghost row (8 bytes per DP) each way across every block seam;
    # seams are between *consecutive dispatchable* nodes, so a fleet
    # with retired ids in the middle still forms one ring
    ghosts = []
    for a, b in zip(nodes, nodes[1:]):
        ghosts.append((a, b, 8 * tenant.nx))
        ghosts.append((b, a, 8 * tenant.nx))
    return _Template(tenant.steps, works, ghosts, nodes)


class JobManager:
    """Admission control and dispatch over one shared cluster.

    ``flops_per_dp`` maps tenant index → per-DP work of that tenant's
    (shared, cached) operator; the manager never builds operators
    itself, so operator sharing stays the runner's concern.

    ``cost_model`` prices each per-sweep task (default: the shared
    ``flat`` model, the seed arithmetic); ``backend_info`` maps tenant
    index → ``(backend_name, radius)`` so shape-aware models know what
    kernel each tenant runs — absent entries fall back to the flat
    arithmetic for that tenant.
    """

    def __init__(self, cluster: SimCluster, spec: ServiceSpec,
                 flops_per_dp: Dict[int, float],
                 cost_model=None,
                 backend_info: Dict[int, tuple] = None) -> None:
        self.cluster = cluster
        self.spec = spec
        self._flops_per_dp = dict(flops_per_dp)
        self._cost_model = FLAT if cost_model is None else cost_model
        self._backend_info = dict(backend_info) if backend_info else {}
        self._membership = list(range(spec.cluster.num_nodes))
        self.templates = [
            _build_template(t, flops_per_dp[i], self._membership,
                            self._cost_model,
                            *self._backend_info.get(i, ("", 0)))
            for i, t in enumerate(spec.tenants)]
        self.queues: List[Deque[_Job]] = [deque() for _ in spec.tenants]
        self.events = EventLog([t.name for t in spec.tenants])
        self.running = 0
        self.jobs_in_flight = 0
        self._rr = 0  # next tenant the round-robin scan starts from
        # admission limits, hoisted off the frozen spec for the pump's
        # per-arrival hot path
        self._max_depth = spec.max_queue_depth
        self._max_concurrent = spec.max_concurrent
        # arrival-pump state (fast feed path only)
        self._arr_times: Sequence[float] = ()
        self._arr_tenants: Sequence[int] = ()
        self._arr_indices: Sequence[int] = ()
        self._arr_cursor = 0
        # autoscale signal feed: events already reduced by poll_signals
        self._signal_cursor = 0

    # -- elastic membership (autoscale hooks) ------------------------------
    def set_membership(self, node_ids: Sequence[int]) -> None:
        """Re-split every tenant's job over the given dispatchable fleet.

        Wired as the :class:`~repro.amt.autoscale.AutoscaleController`'s
        ``on_membership_change`` callback.  Takes effect at each job's
        next step — the step DAG resolves ``self.templates`` per step —
        so in-flight sweeps on a draining node finish where they are
        while new sweeps avoid it.
        """
        nodes = sorted(node_ids)
        if not nodes:
            raise ValueError("membership must contain at least one node")
        if nodes == self._membership:
            return
        self._membership = nodes
        self.templates = [
            _build_template(t, self._flops_per_dp[i], nodes,
                            self._cost_model,
                            *self._backend_info.get(i, ("", 0)))
            for i, t in enumerate(self.spec.tenants)]

    def poll_signals(self, now: float, dt: float) -> Dict[str, float]:
        """Service-level signals since the previous poll.

        Wired as the controller's ``metrics`` callback: reduces only
        the telemetry appended since the last call (a cursor into the
        columnar log, so polling is O(new events), not O(history)).
        """
        events = self.events
        n = len(events)
        kinds = events._kind
        extras = events._extra
        waits: List[float] = []
        sheds = 0
        for i in range(self._signal_cursor, n):
            kind = kinds[i]
            if kind == _START:
                waits.append(extras[i][0])
            elif kind == _SHED:
                sheds += 1
        self._signal_cursor = n
        return {
            "p99_wait": percentile(waits, 99) if waits else 0.0,
            "shed_rate": sheds / dt if dt > 0 else 0.0,
            "queue_depth": float(sum(len(q) for q in self.queues)),
        }

    # -- arrival / admission ----------------------------------------------
    def feed(self, arrivals: List[Arrival]) -> None:
        """Replay the whole trace as absolute-time DES events."""
        if self.cluster.wave_batching:
            self.feed_columnar([a.time for a in arrivals],
                               [a.tenant for a in arrivals],
                               [a.index for a in arrivals])
            return
        for arr in arrivals:
            self.cluster.sim.schedule(
                arr.time, lambda a=arr: self.on_arrival(a),
                priority=ARRIVAL_PRIORITY, klass="arrival")

    def feed_columnar(self, times: Sequence[float],
                      tenants: Sequence[int],
                      indices: Sequence[int]) -> None:
        """Replay a ``(times, tenants, indices)`` trace via the pump.

        One chained DES event per admission-control slice instead of
        one per arrival: when the pump fires it processes the due
        arrival, then keeps draining while the fleet is saturated
        (``running == max_concurrent``) and the next arrival precedes
        every other pending DES event — such an arrival can only queue
        or shed, never dispatch work, so consuming it inline with its
        own timestamp is indistinguishable from a dedicated event.
        With batching off this falls back to one event per arrival.
        """
        if not self.cluster.wave_batching:
            self.feed([Arrival(t, n, k)
                       for t, n, k in zip(times, tenants, indices)])
            return
        if not len(times):
            return
        self._arr_times = times
        self._arr_tenants = tenants
        self._arr_indices = indices
        self._arr_cursor = 0
        self.cluster.sim.schedule(
            times[0], self._pump,
            priority=ARRIVAL_PRIORITY, klass="arrival")

    def _pump(self) -> None:
        times = self._arr_times
        tenants = self._arr_tenants
        indices = self._arr_indices
        i = self._arr_cursor
        n = len(times)
        # the due arrival — may start a job, so handle it alone first
        self._on_arrival(times[i], tenants[i], indices[i])
        i += 1
        if i < n and self.running >= self._max_concurrent:
            # drain-ahead: while saturated, an arrival strictly earlier
            # than the next queued DES event cannot observe anything a
            # dedicated event would (no completion frees a slot before
            # it, and arrivals never unsaturate the fleet).  Clamped at
            # the active run(until=...) boundary: an arrival past the
            # cut must stay queued, or a caller reading the event log
            # when run() returns would see timestamps from the future.
            sim = self.cluster.sim
            peek = sim.peek_time
            cut = sim.run_until
            nxt = peek()
            while i < n and (nxt is None or times[i] < nxt) \
                    and (cut is None or times[i] <= cut):
                self._on_arrival(times[i], tenants[i], indices[i])
                i += 1
                if self.running < self._max_concurrent:
                    break  # a slot opened (shouldn't happen) — resync
                nxt = peek()
        self._arr_cursor = i
        if i < n:
            self.cluster.sim.schedule(
                times[i], self._pump,
                priority=ARRIVAL_PRIORITY, klass="arrival")

    def on_arrival(self, arr: Arrival) -> None:
        self._on_arrival(self.cluster.now, arr.tenant, arr.index)

    def _on_arrival(self, t: float, tenant: int, index: int) -> None:
        events = self.events
        events.arrival(t, tenant, index)
        queue = self.queues[tenant]
        if len(queue) >= self._max_depth:
            events.shed(t, tenant, index, len(queue))
            return
        queue.append(_Job(tenant, index, t))
        self._dispatch()

    # -- dispatch ----------------------------------------------------------
    def _dispatch(self) -> None:
        num_tenants = len(self.queues)
        while self.running < self._max_concurrent:
            job = None
            for k in range(num_tenants):
                tenant = (self._rr + k) % num_tenants
                if self.queues[tenant]:
                    job = self.queues[tenant].popleft()
                    self._rr = (tenant + 1) % num_tenants
                    break
            if job is None:
                return
            self.running += 1
            self.jobs_in_flight += 1
            self._start(job)

    def _start(self, job: _Job) -> None:
        now = self.cluster.now
        job.start_time = now
        job.label = f"{self.spec.tenants[job.tenant].name}/{job.index}"
        job.on_sweep = lambda: self._exchange_ghosts(job)
        job.on_ghosts = lambda: self._run_step(job)
        self.events.start(now, job.tenant, job.index,
                          now - job.arrival_time)
        self._run_step(job)

    # -- the per-job step DAG ---------------------------------------------
    def _run_step(self, job: _Job) -> None:
        template = self.templates[job.tenant]
        if job.step >= template.steps:
            self._finish(job)
            return
        self.cluster.submit_group(template.works, label=job.label,
                                  callback=job.on_sweep,
                                  nodes=template.nodes)

    def _exchange_ghosts(self, job: _Job) -> None:
        job.step += 1
        template = self.templates[job.tenant]
        if job.step >= template.steps or not template.ghosts:
            # last sweep needs no exchange; single-node jobs never do
            self._run_step(job)
            return
        self.cluster.send_group(template.ghosts, callback=job.on_ghosts)

    def _finish(self, job: _Job) -> None:
        now = self.cluster.now
        self.events.finish(now, job.tenant, job.index,
                           job.start_time - job.arrival_time,
                           now - job.arrival_time,
                           now - job.start_time)
        self.running -= 1
        self.jobs_in_flight -= 1
        self._dispatch()
