"""Job admission, queueing, and co-scheduling for the solve service.

The :class:`JobManager` is the service's control plane (the
QueryManager role in serving simulators like Helix): arrivals land in
bounded per-tenant FIFO queues, overflow is shed immediately (the
stream is open-loop — nothing ever blocks the arrival process), and a
round-robin dispatcher starts up to ``max_concurrent`` admitted jobs on
the one shared :class:`SimCluster`.

An admitted job runs as a mini step-DAG: each relaxation sweep is one
task per node (the tenant's mesh rows block-split across the whole
cluster), sweeps are chained through a ``local_when_all`` barrier, and
between sweeps neighbouring nodes exchange one ghost-row message each
way.  Concurrent jobs' tasks interleave in the nodes' FIFO ready
queues, so multi-tenant interference emerges from the DES itself rather
than from an analytic sharing model.

Everything the run observes is appended to ``manager.events`` as plain
dicts (``arrival`` / ``shed`` / ``start`` / ``finish``), the raw
telemetry stream :func:`repro.service.telemetry.summarize_service`
reduces and ``RunRecord.service_events`` persists.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, List

from ..amt.cluster import SimCluster
from ..amt.future import local_when_all
from .arrivals import Arrival
from .spec import ServiceSpec

__all__ = ["JobManager", "ARRIVAL_PRIORITY"]

#: DES priority for arrival events: after same-instant deliveries (0)
#: and task completions (1), so a job finishing exactly when the next
#: arrival lands frees its concurrency slot first — the dispatch order
#: is then independent of how the arrival trace interleaves with the
#: cluster's own events.
ARRIVAL_PRIORITY = 2


class _Job:
    """One admitted (or queued) solve job and its DAG bookkeeping."""

    __slots__ = ("tenant", "index", "arrival_time", "start_time", "step")

    def __init__(self, tenant: int, index: int, arrival_time: float) -> None:
        self.tenant = tenant
        self.index = index
        self.arrival_time = arrival_time
        self.start_time = -1.0
        self.step = 0


class _Template:
    """Per-tenant job shape, resolved once against the cluster.

    ``works[n]`` is the flops of tenant's per-sweep task on node ``n``
    (mesh rows block-split over all nodes, cost from the shared cached
    operator's ``flops_per_dp``); ``ghosts`` the ``(src, dst, nbytes)``
    ring-exchange messages issued between sweeps.
    """

    __slots__ = ("steps", "works", "ghosts")

    def __init__(self, steps: int, works: List[float],
                 ghosts: List[tuple]) -> None:
        self.steps = steps
        self.works = works
        self.ghosts = ghosts


def _build_template(tenant, flops_per_dp: float,
                    num_nodes: int) -> _Template:
    rows = [tenant.nx // num_nodes
            + (1 if n < tenant.nx % num_nodes else 0)
            for n in range(num_nodes)]
    works = [r * tenant.nx * flops_per_dp for r in rows]
    # one ghost row (8 bytes per DP) each way across every block seam
    ghosts = []
    for n in range(num_nodes - 1):
        ghosts.append((n, n + 1, 8 * tenant.nx))
        ghosts.append((n + 1, n, 8 * tenant.nx))
    return _Template(tenant.steps, works, ghosts)


class JobManager:
    """Admission control and dispatch over one shared cluster.

    ``flops_per_dp`` maps tenant index → per-DP work of that tenant's
    (shared, cached) operator; the manager never builds operators
    itself, so operator sharing stays the runner's concern.
    """

    def __init__(self, cluster: SimCluster, spec: ServiceSpec,
                 flops_per_dp: Dict[int, float]) -> None:
        self.cluster = cluster
        self.spec = spec
        self.templates = [
            _build_template(t, flops_per_dp[i], spec.cluster.num_nodes)
            for i, t in enumerate(spec.tenants)]
        self.queues: List[Deque[_Job]] = [deque() for _ in spec.tenants]
        self.events: List[Dict[str, Any]] = []
        self.running = 0
        self.jobs_in_flight = 0
        self._rr = 0  # next tenant the round-robin scan starts from

    # -- arrival / admission ----------------------------------------------
    def feed(self, arrivals: List[Arrival]) -> None:
        """Schedule the whole trace as absolute-time DES events."""
        for arr in arrivals:
            self.cluster.sim.schedule(
                arr.time, lambda a=arr: self.on_arrival(a),
                priority=ARRIVAL_PRIORITY, klass="arrival")

    def on_arrival(self, arr: Arrival) -> None:
        now = self.cluster.now
        name = self.spec.tenants[arr.tenant].name
        self.events.append({"kind": "arrival", "t": now, "tenant": name,
                            "job": arr.index})
        queue = self.queues[arr.tenant]
        if len(queue) >= self.spec.max_queue_depth:
            self.events.append({"kind": "shed", "t": now, "tenant": name,
                                "job": arr.index,
                                "depth": len(queue)})
            return
        queue.append(_Job(arr.tenant, arr.index, now))
        self._dispatch()

    # -- dispatch ----------------------------------------------------------
    def _dispatch(self) -> None:
        num_tenants = len(self.queues)
        while self.running < self.spec.max_concurrent:
            job = None
            for k in range(num_tenants):
                tenant = (self._rr + k) % num_tenants
                if self.queues[tenant]:
                    job = self.queues[tenant].popleft()
                    self._rr = (tenant + 1) % num_tenants
                    break
            if job is None:
                return
            self.running += 1
            self.jobs_in_flight += 1
            self._start(job)

    def _start(self, job: _Job) -> None:
        now = self.cluster.now
        job.start_time = now
        self.events.append({
            "kind": "start", "t": now,
            "tenant": self.spec.tenants[job.tenant].name,
            "job": job.index, "wait": now - job.arrival_time})
        self._run_step(job)

    # -- the per-job step DAG ---------------------------------------------
    def _run_step(self, job: _Job) -> None:
        template = self.templates[job.tenant]
        if job.step >= template.steps:
            self._finish(job)
            return
        label = (f"{self.spec.tenants[job.tenant].name}"
                 f"/{job.index}/s{job.step}")
        futs = [self.cluster.submit(n, work, label=label)
                for n, work in enumerate(template.works)]
        local_when_all(futs)._add_callback(
            lambda _f: self._exchange_ghosts(job))

    def _exchange_ghosts(self, job: _Job) -> None:
        job.step += 1
        template = self.templates[job.tenant]
        if job.step >= template.steps or not template.ghosts:
            # last sweep needs no exchange; single-node jobs never do
            self._run_step(job)
            return
        ghost_futs = self.cluster.send_many(template.ghosts)
        local_when_all(ghost_futs)._add_callback(
            lambda _f: self._run_step(job))

    def _finish(self, job: _Job) -> None:
        now = self.cluster.now
        self.events.append({
            "kind": "finish", "t": now,
            "tenant": self.spec.tenants[job.tenant].name,
            "job": job.index,
            "wait": job.start_time - job.arrival_time,
            "makespan": now - job.arrival_time,
            "service": now - job.start_time})
        self.running -= 1
        self.jobs_in_flight -= 1
        self._dispatch()
