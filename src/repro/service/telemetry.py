"""Reduction of the raw service event stream into headline metrics.

:func:`summarize_service` is a pure function of the event list (plus
the horizon), so it works identically on a live run's
``JobManager.events`` and on the ``service_events`` field of a record
loaded back from JSON — the reporting layer and the benches both call
it on whichever they have.

:class:`EventLog` is the columnar in-memory form of that stream: the
manager appends typed rows into parallel arrays (a byte per kind, a
float64 per timestamp, …) instead of allocating one dict per event,
and the log lazily renders dicts on access so every consumer of the
list-of-dicts shape — ``RunRecord.service_events`` persistence,
:func:`summarize_service`, the reporting tables — sees byte-identical
events (see DESIGN.md, "Service fast path").
"""

from __future__ import annotations

import math
from array import array
from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence

__all__ = ["EventLog", "percentile", "jain_fairness", "summarize_service"]

#: kind codes for the columnar log (order is meaningless; values are an
#: internal encoding, never persisted)
_ARRIVAL, _SHED, _START, _FINISH = 0, 1, 2, 3
_KIND_NAMES = ("arrival", "shed", "start", "finish")


class EventLog:
    """Columnar service telemetry with a lazy list-of-dicts view.

    Parallel arrays hold one entry per event: ``kind`` (byte code),
    ``t`` (float64), ``tenant`` (index into the tenant-name table) and
    ``job``; kind-specific extras (queue ``depth`` for sheds, ``wait``
    for starts, ``wait``/``makespan``/``service`` for finishes) ride in
    a per-event tuple.  Indexing and iteration materialize the exact
    dicts the per-dict path appended, so the log compares equal to (and
    serializes as) the historical list-of-dicts stream.
    """

    __slots__ = ("_names", "_kind", "_t", "_tenant", "_job", "_extra")

    def __init__(self, tenant_names: Sequence[str]) -> None:
        self._names = list(tenant_names)
        self._kind = array("b")
        self._t = array("d")
        self._tenant = array("i")
        self._job = array("q")
        self._extra: List[Any] = []

    # -- appends (manager hot path) ---------------------------------------
    def arrival(self, t: float, tenant: int, job: int) -> None:
        self._kind.append(_ARRIVAL)
        self._t.append(t)
        self._tenant.append(tenant)
        self._job.append(job)
        self._extra.append(None)

    def shed(self, t: float, tenant: int, job: int, depth: int) -> None:
        self._kind.append(_SHED)
        self._t.append(t)
        self._tenant.append(tenant)
        self._job.append(job)
        self._extra.append((depth,))

    def start(self, t: float, tenant: int, job: int, wait: float) -> None:
        self._kind.append(_START)
        self._t.append(t)
        self._tenant.append(tenant)
        self._job.append(job)
        self._extra.append((wait,))

    def finish(self, t: float, tenant: int, job: int, wait: float,
               makespan: float, service: float) -> None:
        self._kind.append(_FINISH)
        self._t.append(t)
        self._tenant.append(tenant)
        self._job.append(job)
        self._extra.append((wait, makespan, service))

    # -- list-of-dicts view ------------------------------------------------
    def _event(self, i: int) -> Dict[str, Any]:
        kind = self._kind[i]
        e: Dict[str, Any] = {"kind": _KIND_NAMES[kind], "t": self._t[i],
                             "tenant": self._names[self._tenant[i]],
                             "job": self._job[i]}
        extra = self._extra[i]
        if kind == _SHED:
            e["depth"] = extra[0]
        elif kind == _START:
            e["wait"] = extra[0]
        elif kind == _FINISH:
            e["wait"], e["makespan"], e["service"] = extra
        return e

    def __len__(self) -> int:
        return len(self._kind)

    def __getitem__(self, i):
        if isinstance(i, slice):
            return [self._event(j) for j in range(*i.indices(len(self)))]
        n = len(self._kind)
        if i < 0:
            i += n
        if not 0 <= i < n:
            raise IndexError("event index out of range")
        return self._event(i)

    def __iter__(self) -> Iterator[Dict[str, Any]]:
        for i in range(len(self._kind)):
            yield self._event(i)

    def __eq__(self, other: Any) -> bool:
        if isinstance(other, EventLog):
            return (self._names == other._names
                    and self._kind == other._kind
                    and self._t == other._t
                    and self._tenant == other._tenant
                    and self._job == other._job
                    and self._extra == other._extra)
        if isinstance(other, (list, tuple)):
            return (len(other) == len(self)
                    and all(self._event(i) == e
                            for i, e in enumerate(other)))
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<EventLog {len(self)} events, {len(self._names)} tenants>"


def percentile(values: Iterable[float], q: float) -> float:
    """The q-th percentile by the nearest-rank method.

    Deterministic and interpolation-free (``ceil(q/100 * n)``-th order
    statistic), so summaries round-trip exactly through JSON and never
    depend on numpy version differences.  Returns 0.0 for an empty
    sample (a run with no finished jobs has no latency, not NaN).
    ``q`` is validated before the empty-sample shortcut, so a bad
    quantile fails loudly regardless of the sample.
    """
    if not 0 < q <= 100:
        raise ValueError(f"percentile q must be in (0, 100], got {q}")
    data = sorted(values)
    if not data:
        return 0.0
    rank = math.ceil(q / 100.0 * len(data))
    return data[rank - 1]


def jain_fairness(shares: List[float]) -> float:
    """Jain's fairness index of per-tenant shares: 1.0 when equal,
    ``1/n`` when one tenant monopolizes.  Empty/zero input → 1.0
    (nothing was served, nobody was treated unfairly)."""
    if not shares or all(s == 0 for s in shares):
        return 1.0
    num = sum(shares) ** 2
    den = len(shares) * sum(s * s for s in shares)
    return num / den


def summarize_service(events: List[Dict[str, Any]], horizon: float,
                      weights: Optional[Dict[str, float]] = None
                      ) -> Dict[str, Any]:
    """Headline service metrics from the raw event stream.

    Counting rules: ``offered`` arrivals split exactly into ``shed``
    plus admitted; admitted jobs are ``completed`` or still
    ``in_flight`` (queued or running) at the horizon.  ``goodput`` is
    completed jobs per virtual second; latency percentiles are over
    completed jobs only (an in-flight job has no makespan yet), while
    queue-wait percentiles are over *started* jobs, so overload shows
    up as both shed load and growing waits.

    ``weights`` (tenant name → entitlement) normalizes the fairness
    index: each tenant's share is ``completed / weight``, so 1.0 means
    everyone got throughput proportional to entitlement.  The share
    list is seeded from the *weights* mapping, not from the event
    stream — an entitled tenant that never appears in the events
    contributes a 0 share and drags the index down (two tenants with
    completions ``[1, 0]`` read 0.5), instead of silently vanishing.
    Without weights the index is over raw completion counts of the
    tenants that did appear.
    """
    offered = shed = started = completed = 0
    waits: List[float] = []
    makespans: List[float] = []
    tenants: Dict[str, Dict[str, Any]] = {}

    def bucket(name: str) -> Dict[str, Any]:
        if name not in tenants:
            tenants[name] = {"offered": 0, "shed": 0, "completed": 0,
                             "waits": [], "makespans": []}
        return tenants[name]

    if isinstance(events, EventLog):
        # columnar fast path: walk the typed arrays directly instead of
        # materializing one dict per event; the accumulations (and thus
        # every number in the summary) are identical
        names = events._names
        for i, kind in enumerate(events._kind):
            b = bucket(names[events._tenant[i]])
            if kind == _ARRIVAL:
                offered += 1
                b["offered"] += 1
            elif kind == _SHED:
                shed += 1
                b["shed"] += 1
            elif kind == _START:
                wait = events._extra[i][0]
                started += 1
                waits.append(wait)
                b["waits"].append(wait)
            else:
                makespan = events._extra[i][1]
                completed += 1
                makespans.append(makespan)
                b["completed"] += 1
                b["makespans"].append(makespan)
    else:
        for e in events:
            kind = e["kind"]
            b = bucket(e["tenant"])
            if kind == "arrival":
                offered += 1
                b["offered"] += 1
            elif kind == "shed":
                shed += 1
                b["shed"] += 1
            elif kind == "start":
                started += 1
                waits.append(e["wait"])
                b["waits"].append(e["wait"])
            elif kind == "finish":
                completed += 1
                makespans.append(e["makespan"])
                b["completed"] += 1
                b["makespans"].append(e["makespan"])

    per_tenant = {}
    for name, b in sorted(tenants.items()):
        per_tenant[name] = {
            "offered": b["offered"], "shed": b["shed"],
            "completed": b["completed"],
            "goodput": b["completed"] / horizon,
            "p50_wait": percentile(b["waits"], 50),
            "p99_wait": percentile(b["waits"], 99),
            "p50_makespan": percentile(b["makespans"], 50),
            "p99_makespan": percentile(b["makespans"], 99),
        }
    return {
        "horizon": horizon,
        "offered": offered,
        "shed": shed,
        "admitted": offered - shed,
        "started": started,
        "completed": completed,
        "in_flight": (offered - shed) - completed,
        "offered_rate": offered / horizon,
        "goodput": completed / horizon,
        "p50_wait": percentile(waits, 50),
        "p99_wait": percentile(waits, 99),
        "p50_makespan": percentile(makespans, 50),
        "p99_makespan": percentile(makespans, 99),
        "fairness": jain_fairness(
            [per_tenant.get(name, {}).get("completed", 0) / w
             for name, w in sorted(weights.items())] if weights else
            [t["completed"] for t in per_tenant.values()]),
        "tenants": per_tenant,
    }
