"""Reduction of the raw service event stream into headline metrics.

:func:`summarize_service` is a pure function of the event list (plus
the horizon), so it works identically on a live run's
``JobManager.events`` and on the ``service_events`` field of a record
loaded back from JSON — the reporting layer and the benches both call
it on whichever they have.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Iterable, List, Optional

__all__ = ["percentile", "jain_fairness", "summarize_service"]


def percentile(values: Iterable[float], q: float) -> float:
    """The q-th percentile by the nearest-rank method.

    Deterministic and interpolation-free (``ceil(q/100 * n)``-th order
    statistic), so summaries round-trip exactly through JSON and never
    depend on numpy version differences.  Returns 0.0 for an empty
    sample (a run with no finished jobs has no latency, not NaN).
    """
    data = sorted(values)
    if not data:
        return 0.0
    if not 0 < q <= 100:
        raise ValueError(f"percentile q must be in (0, 100], got {q}")
    rank = math.ceil(q / 100.0 * len(data))
    return data[rank - 1]


def jain_fairness(shares: List[float]) -> float:
    """Jain's fairness index of per-tenant shares: 1.0 when equal,
    ``1/n`` when one tenant monopolizes.  Empty/zero input → 1.0
    (nothing was served, nobody was treated unfairly)."""
    if not shares or all(s == 0 for s in shares):
        return 1.0
    num = sum(shares) ** 2
    den = len(shares) * sum(s * s for s in shares)
    return num / den


def summarize_service(events: List[Dict[str, Any]], horizon: float,
                      weights: Optional[Dict[str, float]] = None
                      ) -> Dict[str, Any]:
    """Headline service metrics from the raw event stream.

    Counting rules: ``offered`` arrivals split exactly into ``shed``
    plus admitted; admitted jobs are ``completed`` or still
    ``in_flight`` (queued or running) at the horizon.  ``goodput`` is
    completed jobs per virtual second; latency percentiles are over
    completed jobs only (an in-flight job has no makespan yet), while
    queue-wait percentiles are over *started* jobs, so overload shows
    up as both shed load and growing waits.

    ``weights`` (tenant name → entitlement) normalizes the fairness
    index: each tenant's share is ``completed / weight``, so 1.0 means
    everyone got throughput proportional to entitlement.  Without
    weights the index is over raw completion counts.
    """
    offered = shed = started = completed = 0
    waits: List[float] = []
    makespans: List[float] = []
    tenants: Dict[str, Dict[str, Any]] = {}

    def bucket(name: str) -> Dict[str, Any]:
        if name not in tenants:
            tenants[name] = {"offered": 0, "shed": 0, "completed": 0,
                             "waits": [], "makespans": []}
        return tenants[name]

    for e in events:
        kind = e["kind"]
        b = bucket(e["tenant"])
        if kind == "arrival":
            offered += 1
            b["offered"] += 1
        elif kind == "shed":
            shed += 1
            b["shed"] += 1
        elif kind == "start":
            started += 1
            waits.append(e["wait"])
            b["waits"].append(e["wait"])
        elif kind == "finish":
            completed += 1
            makespans.append(e["makespan"])
            b["completed"] += 1
            b["makespans"].append(e["makespan"])

    per_tenant = {}
    for name, b in sorted(tenants.items()):
        per_tenant[name] = {
            "offered": b["offered"], "shed": b["shed"],
            "completed": b["completed"],
            "goodput": b["completed"] / horizon,
            "p50_wait": percentile(b["waits"], 50),
            "p99_wait": percentile(b["waits"], 99),
            "p50_makespan": percentile(b["makespans"], 50),
            "p99_makespan": percentile(b["makespans"], 99),
        }
    return {
        "horizon": horizon,
        "offered": offered,
        "shed": shed,
        "admitted": offered - shed,
        "started": started,
        "completed": completed,
        "in_flight": (offered - shed) - completed,
        "offered_rate": offered / horizon,
        "goodput": completed / horizon,
        "p50_wait": percentile(waits, 50),
        "p99_wait": percentile(waits, 99),
        "p50_makespan": percentile(makespans, 50),
        "p99_makespan": percentile(makespans, 99),
        "fairness": jain_fairness(
            [t["completed"] / (weights or {}).get(name, 1.0)
             for name, t in per_tenant.items()]),
        "tenants": per_tenant,
    }
