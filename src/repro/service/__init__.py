"""Multi-tenant solve service over the simulated cluster.

Open-loop serving experiments on top of the DES: seeded arrival traces
(:mod:`arrivals`) replay solve-job submissions from many virtual
tenants into one shared :class:`repro.amt.cluster.SimCluster`, a
:class:`JobManager` (:mod:`manager`) admits them against bounded
per-tenant queues and co-schedules their step-DAGs, and the raw event
stream reduces to latency/goodput/fairness telemetry (:mod:`telemetry`).

>>> from repro.experiments import build
>>> from repro.service import run_service, summarize_service
>>> rec = build("service_poisson", horizon=2e-3)  # doctest: +SKIP
>>> summarize_service(run_service(rec).service_events, 2e-3)  # doctest: +SKIP
{'offered': ..., 'goodput': ...}
"""

from .arrivals import Arrival, generate_arrival_arrays, generate_arrivals
from .manager import JobManager
from .runner import run_service, run_service_detailed, summarize_record
from .spec import ArrivalSpec, AutoscaleSpec, ServiceSpec, TenantSpec
from .telemetry import (EventLog, jain_fairness, percentile,
                        summarize_service)

__all__ = [
    "ArrivalSpec", "TenantSpec", "AutoscaleSpec", "ServiceSpec",
    "Arrival", "generate_arrivals", "generate_arrival_arrays",
    "JobManager",
    "run_service", "run_service_detailed", "summarize_record",
    "EventLog", "summarize_service", "percentile", "jain_fairness",
]
