"""Spec → stack construction, scenario execution, and the sweep runner.

This is the single place in the repository where a scenario description
is turned into running code:

* :func:`cached_operator` — an LRU cache over ``(nx, ny, eps_factor,
  backend)`` for the :class:`NonlocalOperator` neighborhood assembly,
  the dominant repeated cost when a sweep revisits the same
  discretization (every strong-scaling figure runs many node counts on
  one mesh); the backend is part of the key so scenarios pinning
  different kernel backends never share an operator;
* :func:`build_solver` — grid → decomposition → partition → simulated
  cluster → solver from a :class:`ScenarioSpec`;
* :func:`run_scenario` — executes one spec and returns a
  :class:`RunRecord`;
* :func:`run_sweep` — fans independent scenario points across a
  ``ProcessPoolExecutor`` with deterministic, input-ordered results that
  are bit-identical to serial execution (the simulation itself is
  deterministic; records carry only plain JSON types).
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from functools import lru_cache
from typing import Any, Dict, Iterable, List, Optional, Sequence

import numpy as np

from .results import RunRecord
from .spec import ScenarioSpec

__all__ = ["cached_operator", "operator_cache_info", "clear_operator_cache",
           "build_problem", "build_work_factors", "build_parts",
           "build_solver", "ownership_timeline", "run_scenario", "run_sweep"]


@lru_cache(maxsize=64)
def _cached_operator(nx: int, ny: int, eps_factor: float, backend: str):
    from ..mesh.grid import UniformGrid
    from ..solver.kernel import NonlocalOperator
    from ..solver.model import NonlocalHeatModel
    grid = UniformGrid(nx, ny)
    model = NonlocalHeatModel(epsilon=eps_factor * grid.h)
    return NonlocalOperator(model, grid, backend=backend)


def cached_operator(nx: int, ny: int, eps_factor: float,
                    backend: str = "auto"):
    """The :class:`NonlocalOperator` for an ``nx x ny`` mesh, eps = f·h.

    Builds (and memoizes) the grid, the default nonlocal heat model, and
    the stencil/neighborhood assembly.  The returned operator is
    immutable and shared freely between solvers; grid and model hang off
    it as ``operator.grid`` / ``operator.model``.

    ``backend`` is part of the cache key: an ``"fft"`` operator (with
    its cached mask transforms) is a different object from a
    ``"direct"`` one.  The key is *fully resolved* before memoization:
    the ``REPRO_KERNEL_BACKEND`` override of ``"auto"`` is applied at
    call time (a memoized key could not see environment changes), and
    the radius heuristic is resolved from ``R = floor(eps_factor)`` —
    so omitting the argument, passing ``"auto"``, and naming the
    backend ``auto`` resolves to all share one entry (a backend sweep
    does not rebuild the auto-selected operator).
    """
    from ..solver.backends import (AUTO, auto_backend_name,
                                   requested_backend)
    name = requested_backend(str(backend))
    if name == AUTO:
        # same inclusion tolerance as build_stencil: eps = eps_factor*h
        name = auto_backend_name(int(np.floor(
            float(eps_factor) * (1 + 1e-12))))
    return _cached_operator(int(nx), int(ny), float(eps_factor), name)


def operator_cache_info():
    """``functools`` cache statistics of the operator cache."""
    return _cached_operator.cache_info()


def clear_operator_cache() -> None:
    _cached_operator.cache_clear()


def build_problem(spec: ScenarioSpec):
    """``(operator, model, grid, sd_grid)`` for a scenario's mesh."""
    op = cached_operator(spec.mesh.nx, spec.mesh.ny, spec.mesh.eps_factor,
                         spec.kernel_backend)
    return op, op.model, op.grid, spec.mesh.build_sd_grid()


def build_work_factors(spec: ScenarioSpec) -> Optional[np.ndarray]:
    """Per-SD work multipliers: explicit ``work_factors``, else cracks."""
    if spec.work_factors is not None:
        return np.asarray(spec.work_factors, dtype=np.float64)
    if not spec.cracks:
        return None
    from ..models.crack import Crack, crack_work_factors
    _, model, _, sd_grid = build_problem(spec)
    cracks = [Crack(list(polyline)) for polyline in spec.cracks]
    return crack_work_factors(
        sd_grid, cracks, horizon=spec.crack_horizon_factor * model.epsilon,
        floor=spec.crack_floor)


def build_parts(spec: ScenarioSpec, network=None) -> np.ndarray:
    """The initial SD → node assignment, placement applied.

    Builds the partition, then — when the partition spec asks for a
    non-trivial ``placement`` — permutes part labels onto nodes using
    the network topology's rack assignment (see
    :mod:`repro.partition.placement`).  ``network`` avoids rebuilding
    the topology when the caller already has one.
    """
    parts = spec.partition.build(spec.mesh.sd_nx, spec.mesh.sd_ny,
                                 spec.cluster.num_nodes)
    if spec.partition.placement != "none":
        from ..partition.placement import apply_placement
        if network is None:
            network = spec.cluster.build_network()
        node_racks = [network.rack_of(n)
                      for n in range(spec.cluster.num_nodes)]
        parts = apply_placement(spec.mesh.build_sd_grid(), parts,
                                node_racks, spec.partition.placement)
    return parts


def build_solver(spec: ScenarioSpec, source=None):
    """The fully wired :class:`DistributedSolver` for ``spec``."""
    if spec.solver != "distributed":
        raise ValueError(f"spec {spec.name!r} is not a distributed scenario")
    from ..solver.distributed import DistributedSolver
    op, model, grid, sd_grid = build_problem(spec)
    network = spec.cluster.build_network()
    parts = build_parts(spec, network=network)
    return DistributedSolver(
        model, grid, sd_grid, parts,
        num_nodes=spec.cluster.num_nodes,
        cores_per_node=spec.cluster.cores_per_node,
        speeds=spec.cluster.build_speeds(),
        network=network,
        source=source,
        dt=spec.dt,
        work_factors=build_work_factors(spec),
        balancer=spec.policy.balancer,  # the solver resolves the name
        policy=spec.policy.build(),
        overlap=spec.overlap,
        compute_numerics=spec.compute_numerics,
        spawn_overhead=spec.cluster.spawn_overhead,
        operator=op,
        faults=spec.cluster.build_faults(),
        cost_model=spec.cost_model,  # the solver resolves the name
        memory=spec.cluster.build_memory())


def ownership_timeline(spec: ScenarioSpec,
                       record: RunRecord) -> List[np.ndarray]:
    """SD ownership per timestep: initial parts + one frame per step.

    ``record.parts_events`` only holds the balancing events that moved
    SDs; this reconstructs the full per-iteration sequence (carrying
    ownership forward through steps with no movement), which is what
    the Fig. 14 demo and ``repro balance`` render.
    """
    parts = build_parts(spec)
    events = {step: np.asarray(p, dtype=np.int64)
              for step, p in record.parts_events}
    frames = [parts.copy()]
    for step in range(record.num_steps):
        parts = events.get(step, parts)
        frames.append(parts.copy())
    return frames


def _run_serial(spec: ScenarioSpec) -> RunRecord:
    from ..solver.exact import ManufacturedProblem
    from ..solver.serial import SerialSolver
    op, model, grid, _ = build_problem(spec)
    prob = ManufacturedProblem(model, grid, source_mode=spec.source_mode)
    solver = SerialSolver(model, grid, source=prob.source, dt=spec.dt,
                          operator=op)
    res = solver.run(prob.initial_condition(), spec.num_steps,
                     exact=prob.exact if spec.track_error else None)
    errors = None if res.errors is None else [float(e) for e in res.errors]
    return RunRecord(
        scenario=spec.name, solver="serial", spec=spec.to_dict(),
        num_steps=spec.num_steps, dt=float(solver.dt),
        errors=errors, total_error=res.total_error,
        backend_resolved=solver.operator.backend_name)


def _run_distributed(spec: ScenarioSpec) -> RunRecord:
    source = exact = u0 = None
    if spec.compute_numerics:
        from ..solver.exact import ManufacturedProblem
        _, model, grid, _ = build_problem(spec)
        prob = ManufacturedProblem(model, grid, source_mode=spec.source_mode)
        source = prob.source
        u0 = prob.initial_condition()
        if spec.track_error:
            exact = prob.exact
    solver = build_solver(spec, source=source)
    res = solver.run(u0, spec.num_steps, exact=exact)
    errors = None if res.errors is None else [float(e) for e in res.errors]
    return RunRecord(
        scenario=spec.name, solver="distributed", spec=spec.to_dict(),
        num_steps=spec.num_steps, dt=float(solver.dt),
        makespan=float(res.makespan),
        step_durations=[float(d) for d in res.step_durations],
        imbalance_history=[float(r) for r in res.imbalance_history],
        ghost_bytes=int(res.ghost_bytes),
        bytes_by_class={str(k): int(v)
                        for k, v in sorted(res.bytes_by_class.items())},
        balance_events=[e.to_dict() for e in res.balance_events],
        recovery_events=[e.to_dict() for e in res.recovery_events],
        parts_events=[[int(step), [int(p) for p in parts]]
                      for step, parts in res.parts_history],
        final_parts=[int(p) for p in solver.parts],
        busy_total=[float(b) for b in res.busy_total],
        errors=errors, total_error=res.total_error,
        backend_resolved=solver.operator.backend_name,
        balancer_resolved=solver.balancer.name,
        cost_model_resolved=solver.cost_model_resolved)


def run_scenario(spec) -> RunRecord:
    """Execute one scenario point and collect its :class:`RunRecord`.

    Accepts :class:`ScenarioSpec` *or* :class:`repro.service
    .ServiceSpec` — the ``solver`` attribute routes, so sweeps may mix
    solver and service points freely.
    """
    if spec.solver == "service":
        from ..service.runner import run_service
        return run_service(spec)
    if spec.solver == "serial":
        return _run_serial(spec)
    return _run_distributed(spec)


def _sweep_worker(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Child-process entry point: dict in, dict out (both picklable)."""
    if payload.get("solver") == "service":
        from ..service.spec import ServiceSpec
        return run_scenario(ServiceSpec.from_dict(payload)).to_dict()
    return run_scenario(ScenarioSpec.from_dict(payload)).to_dict()


def run_sweep(specs: Iterable[ScenarioSpec],
              max_workers: Optional[int] = None,
              serial: bool = False) -> List[RunRecord]:
    """Run independent scenario points, results in input order.

    With ``serial=False`` (the default) the points fan out across a
    ``ProcessPoolExecutor``; ``executor.map`` preserves input order, and
    because the simulation is deterministic and records carry only plain
    JSON types, the parallel records are bit-identical to what
    ``serial=True`` produces in this process.  Single-point sweeps (and
    ``REPRO_SWEEP_SERIAL=1`` in the environment) skip the pool.
    """
    specs = list(specs)
    if (serial or len(specs) <= 1
            or os.environ.get("REPRO_SWEEP_SERIAL") == "1"):
        return [run_scenario(s) for s in specs]
    workers = min(len(specs), max_workers or os.cpu_count() or 1)
    payloads = [s.to_dict() for s in specs]
    with ProcessPoolExecutor(max_workers=workers) as pool:
        dicts = list(pool.map(_sweep_worker, payloads))
    return [RunRecord.from_dict(d) for d in dicts]
