"""Declarative scenario specifications for the experiment engine.

Every run the repository performs — CLI commands, figure benchmarks,
ablations, examples — is described by a :class:`ScenarioSpec`: a frozen,
validated, JSON-round-trippable value object.  The runner
(:mod:`repro.experiments.runner`) turns a spec into the concrete
grid → decomposition → partition → cluster → solver stack; nothing else
in the repository hand-assembles that stack anymore.

Design rules:

* specs are **data**: frozen dataclasses of plain ints/floats/strings/
  tuples, so they hash, compare, pickle, and cross process boundaries
  for the parallel sweep runner;
* every spec validates eagerly in ``__post_init__`` (``ValueError`` with
  a actionable message) so a bad sweep point fails at construction, not
  three layers deep inside the solver;
* ``to_dict``/``from_dict`` round-trip exactly:
  ``Spec.from_dict(spec.to_dict()) == spec`` — the contract the sweep
  runner and the JSON result files rely on.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Dict, Optional, Tuple, Union

import numpy as np

# the fault layer is pure data (frozen dataclasses, no heavy deps), so
# reusing its event type keeps one schema for churn schedules instead of
# a spec-side mirror — the same kind of names-only exception to the
# spec→library layering as the backend/strategy name validation
from ..amt.faults import DEFAULT_RECOVERY_PENALTY, ChurnEvent, FaultSchedule

__all__ = ["MeshSpec", "ClusterSpec", "DriftSpec", "FaultSpec",
           "InterferenceSpec", "MemoryLevelSpec", "MemorySpec",
           "PartitionSpec", "PolicySpec", "ScenarioSpec",
           "TopologySpec", "ChurnEvent"]


def _require(cond: bool, msg: str) -> None:
    if not cond:
        raise ValueError(msg)


def _set(obj: Any, name: str, value: Any) -> None:
    """Assign a normalized field on a frozen dataclass."""
    object.__setattr__(obj, name, value)


@dataclass(frozen=True)
class MeshSpec:
    """Discretization geometry: DP mesh, SD coarsening, horizon ratio.

    ``ny``/``sd_ny`` default to their x-counterparts (square meshes are
    the paper's standard configuration).  ``eps_factor`` is the horizon
    in units of the mesh spacing (``eps = eps_factor * h``, the paper
    uses 8).
    """

    nx: int
    ny: Optional[int] = None
    sd_nx: int = 1
    sd_ny: Optional[int] = None
    eps_factor: float = 8.0

    def __post_init__(self) -> None:
        _set(self, "nx", int(self.nx))
        _set(self, "ny", int(self.nx if self.ny is None else self.ny))
        _set(self, "sd_nx", int(self.sd_nx))
        _set(self, "sd_ny", int(self.sd_nx if self.sd_ny is None
                                else self.sd_ny))
        _set(self, "eps_factor", float(self.eps_factor))
        _require(self.nx >= 1 and self.ny >= 1,
                 f"mesh must be at least 1x1, got {self.nx}x{self.ny}")
        _require(self.sd_nx >= 1 and self.sd_ny >= 1,
                 f"SD grid must be at least 1x1, got {self.sd_nx}x{self.sd_ny}")
        _require(self.nx % self.sd_nx == 0 and self.ny % self.sd_ny == 0,
                 f"SDs must tile the mesh evenly: {self.nx}x{self.ny} DPs "
                 f"over {self.sd_nx}x{self.sd_ny} SDs")
        _require(self.eps_factor > 0,
                 f"eps_factor must be positive, got {self.eps_factor}")

    @property
    def num_subdomains(self) -> int:
        return self.sd_nx * self.sd_ny

    def build_sd_grid(self):
        """The :class:`SubdomainGrid` this mesh spec describes."""
        from ..mesh.subdomain import SubdomainGrid
        return SubdomainGrid(self.nx, self.ny, self.sd_nx, self.sd_ny)

    def to_dict(self) -> Dict[str, Any]:
        return {"nx": self.nx, "ny": self.ny, "sd_nx": self.sd_nx,
                "sd_ny": self.sd_ny, "eps_factor": self.eps_factor}

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "MeshSpec":
        return cls(**d)


@dataclass(frozen=True)
class InterferenceSpec:
    """A competing job on ``node`` during ``[start, stop)`` of virtual
    time, scaling its rate by ``slowdown`` (paper Sec. 4, challenge 4)."""

    node: int
    start: float
    stop: float
    slowdown: float = 0.5

    def __post_init__(self) -> None:
        _set(self, "node", int(self.node))
        _set(self, "start", float(self.start))
        _set(self, "stop", float(self.stop))
        _set(self, "slowdown", float(self.slowdown))
        _require(self.node >= 0, f"node must be >= 0, got {self.node}")
        _require(self.start < self.stop,
                 f"need start < stop, got [{self.start}, {self.stop})")
        _require(0 < self.slowdown <= 1,
                 f"slowdown must be in (0, 1], got {self.slowdown}")

    def to_dict(self) -> Dict[str, Any]:
        return {"node": self.node, "start": self.start, "stop": self.stop,
                "slowdown": self.slowdown}

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "InterferenceSpec":
        return cls(**d)


@dataclass(frozen=True)
class DriftSpec:
    """Linear per-node capacity drift over a virtual-time window.

    Node ``i`` ramps from its base rate (``ClusterSpec.speed_rates[i]``,
    or the solver default) to ``rates_end[i]`` over ``[start, stop]``
    and holds ``rates_end[i]`` afterwards — the ``hetero_drift``
    workload: the load distribution shifts *mid-run*, so one-shot
    balancing decisions age badly and adaptive strategies win.
    """

    rates_end: Tuple[float, ...] = ()
    start: float = 0.0
    stop: float = 1.0

    def __post_init__(self) -> None:
        _set(self, "rates_end", tuple(float(r) for r in self.rates_end))
        _set(self, "start", float(self.start))
        _set(self, "stop", float(self.stop))
        _require(len(self.rates_end) >= 1,
                 "drift needs at least one end rate")
        _require(all(r > 0 for r in self.rates_end),
                 "drift end rates must all be positive")
        _require(0 <= self.start < self.stop,
                 f"need 0 <= start < stop, got [{self.start}, {self.stop}]")

    def to_dict(self) -> Dict[str, Any]:
        return {"rates_end": list(self.rates_end), "start": self.start,
                "stop": self.stop}

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "DriftSpec":
        d = dict(d)
        d["rates_end"] = tuple(d.get("rates_end", ()))
        return cls(**d)


@dataclass(frozen=True)
class FaultSpec:
    """A declarative churn schedule (elastic cluster, DESIGN.md
    substitution 4): node failures, joins, and transient straggle
    windows at fixed virtual times, plus the recovery penalty charged
    to tasks requeued off a failed node.

    Validation against the cluster size happens in
    :meth:`ClusterSpec.__post_init__` (which builds the runtime
    :class:`repro.amt.faults.FaultSchedule` eagerly), so an impossible
    schedule — failing an unknown node, leaving the cluster empty,
    non-sequential join ids — fails at spec construction, not
    mid-sweep.
    """

    events: Tuple[ChurnEvent, ...] = ()
    recovery_penalty: float = DEFAULT_RECOVERY_PENALTY

    def __post_init__(self) -> None:
        events = tuple(e if isinstance(e, ChurnEvent)
                       else ChurnEvent.from_dict(e) for e in self.events)
        _set(self, "events", events)
        _set(self, "recovery_penalty", float(self.recovery_penalty))
        _require(self.recovery_penalty >= 0,
                 f"recovery_penalty must be >= 0, "
                 f"got {self.recovery_penalty}")

    def build(self, num_nodes: int) -> FaultSchedule:
        """The validated runtime schedule for an ``num_nodes`` cluster."""
        return FaultSchedule(num_nodes, self.events, self.recovery_penalty)

    def to_dict(self) -> Dict[str, Any]:
        return {"events": [e.to_dict() for e in self.events],
                "recovery_penalty": self.recovery_penalty}

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "FaultSpec":
        d = dict(d)
        d["events"] = tuple(ChurnEvent.from_dict(e)
                            for e in d.get("events", ()))
        return cls(**d)


@dataclass(frozen=True)
class TopologySpec:
    """Declarative network topology (DESIGN.md substitution 5).

    ``kind`` selects the model from :mod:`repro.amt.topology`:

    ``flat``
        The legacy single-tier model: one egress link per node,
        bit-for-bit equivalent to :class:`repro.amt.cluster.Network`.
    ``switched``
        Two-level racks (``rack = node // rack_size``) with
        oversubscribed uplinks: inter-rack messages additionally
        traverse the source rack's uplink and the destination rack's
        downlink, FIFO links of bandwidth ``bandwidth * rack_size /
        oversubscription``.
    ``hierarchical``
        Intra-node / intra-rack / inter-rack tiers with per-tier
        latency and bandwidth, explicit ``racks`` assignment,
        ``join_rack`` for elastic joiners, and ``wan_racks`` reached
        over a far-slower WAN tier.

    ``latency``/``bandwidth`` of ``None`` inherit the enclosing
    :class:`ClusterSpec`'s values (falling back to the flat network's
    defaults), so ``ClusterSpec(latency=..., bandwidth=...,
    topology=TopologySpec(kind="switched"))`` keeps one source of truth
    for the NIC tier.
    """

    KINDS = ("flat", "switched", "hierarchical")

    kind: str = "flat"
    rack_size: int = 4
    latency: Optional[float] = None
    bandwidth: Optional[float] = None
    oversubscription: Optional[float] = None
    uplink_latency: Optional[float] = None
    uplink_bandwidth: Optional[float] = None
    rack_latency: Optional[float] = None
    rack_bandwidth: Optional[float] = None
    wan_latency: Optional[float] = None
    wan_bandwidth: Optional[float] = None
    wan_racks: Tuple[int, ...] = ()
    racks: Optional[Tuple[int, ...]] = None
    join_rack: Optional[int] = None

    def __post_init__(self) -> None:
        _require(self.kind in self.KINDS,
                 f"unknown topology kind {self.kind!r}; "
                 f"expected one of {self.KINDS}")
        _set(self, "rack_size", int(self.rack_size))
        _require(self.rack_size >= 1,
                 f"rack_size must be >= 1, got {self.rack_size}")
        for name in ("latency", "uplink_latency", "rack_latency",
                     "wan_latency"):
            if getattr(self, name) is not None:
                _set(self, name, float(getattr(self, name)))
                value = getattr(self, name)
                _require(value >= 0, f"{name} must be >= 0, got {value}")
        for name in ("bandwidth", "uplink_bandwidth", "rack_bandwidth",
                     "wan_bandwidth"):
            if getattr(self, name) is not None:
                _set(self, name, float(getattr(self, name)))
                value = getattr(self, name)
                _require(value > 0, f"{name} must be > 0, got {value}")
        if self.oversubscription is not None:
            _set(self, "oversubscription", float(self.oversubscription))
            _require(self.oversubscription > 0,
                     f"oversubscription must be > 0, "
                     f"got {self.oversubscription}")
        _set(self, "wan_racks", tuple(int(r) for r in self.wan_racks))
        _require(all(r >= 0 for r in self.wan_racks),
                 "wan_racks entries must be >= 0")
        if self.racks is not None:
            _set(self, "racks", tuple(int(r) for r in self.racks))
            _require(all(r >= 0 for r in self.racks),
                     "racks entries must be >= 0")
        if self.join_rack is not None:
            _set(self, "join_rack", int(self.join_rack))
            _require(self.join_rack >= 0,
                     f"join_rack must be >= 0, got {self.join_rack}")
            _require(self.racks is not None,
                     "join_rack requires an explicit racks assignment "
                     "for the initial nodes (otherwise every node would "
                     "land in the join rack)")
        if self.kind != "hierarchical":
            for name in ("rack_latency", "rack_bandwidth", "wan_latency",
                         "wan_bandwidth"):
                _require(getattr(self, name) is None,
                         f"{name} is only valid for kind 'hierarchical'")
            _require(not self.wan_racks and self.racks is None
                     and self.join_rack is None,
                     "wan_racks/racks/join_rack are only valid for "
                     "kind 'hierarchical'")
        _require(self.oversubscription is None or self.kind == "switched",
                 "oversubscription is only valid for kind 'switched' "
                 "(hierarchical pins uplink/rack bandwidths directly)")
        _require(self.oversubscription is None
                 or self.uplink_bandwidth is None,
                 "oversubscription and uplink_bandwidth both size the "
                 "uplink — set one or the other")
        if self.kind == "flat":
            for name in ("uplink_latency", "uplink_bandwidth"):
                _require(getattr(self, name) is None,
                         f"{name} is not valid for kind 'flat'")

    def build(self, num_nodes: int, default_latency: Optional[float] = None,
              default_bandwidth: Optional[float] = None):
        """The runtime :class:`repro.amt.topology.Topology`.

        ``default_latency``/``default_bandwidth`` are the enclosing
        cluster spec's NIC-tier values, used when this spec leaves its
        own unset.
        """
        from ..amt.topology import (DEFAULT_BANDWIDTH, DEFAULT_LATENCY,
                                    FlatTopology, HierarchicalTopology,
                                    SwitchedTopology)
        latency = next(v for v in (self.latency, default_latency,
                                   DEFAULT_LATENCY) if v is not None)
        bandwidth = next(v for v in (self.bandwidth, default_bandwidth,
                                     DEFAULT_BANDWIDTH) if v is not None)
        if self.racks is not None and len(self.racks) != num_nodes:
            # exact length: a longer tuple would silently override
            # join_rack for elastic joiners (sequential ids land inside
            # the list), a shorter one leaves initial nodes unplaced
            raise ValueError(
                f"topology pins {len(self.racks)} rack ids for "
                f"{num_nodes} initial nodes")
        if self.kind == "flat":
            return FlatTopology(latency=latency, bandwidth=bandwidth)
        if self.kind == "switched":
            kwargs = {}
            if self.oversubscription is not None:
                kwargs["oversubscription"] = self.oversubscription
            return SwitchedTopology(
                rack_size=self.rack_size, latency=latency,
                bandwidth=bandwidth,
                uplink_latency=self.uplink_latency,
                uplink_bandwidth=self.uplink_bandwidth, **kwargs)
        kwargs = {}
        if self.wan_latency is not None:
            kwargs["wan_latency"] = self.wan_latency
        if self.wan_bandwidth is not None:
            kwargs["wan_bandwidth"] = self.wan_bandwidth
        return HierarchicalTopology(
            rack_size=self.rack_size, racks=self.racks,
            join_rack=self.join_rack, latency=latency, bandwidth=bandwidth,
            rack_latency=(self.uplink_latency if self.rack_latency is None
                          else self.rack_latency),
            rack_bandwidth=(self.uplink_bandwidth
                            if self.rack_bandwidth is None
                            else self.rack_bandwidth),
            wan_racks=self.wan_racks, **kwargs)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind, "rack_size": self.rack_size,
            "latency": self.latency, "bandwidth": self.bandwidth,
            "oversubscription": self.oversubscription,
            "uplink_latency": self.uplink_latency,
            "uplink_bandwidth": self.uplink_bandwidth,
            "rack_latency": self.rack_latency,
            "rack_bandwidth": self.rack_bandwidth,
            "wan_latency": self.wan_latency,
            "wan_bandwidth": self.wan_bandwidth,
            "wan_racks": list(self.wan_racks),
            "racks": None if self.racks is None else list(self.racks),
            "join_rack": self.join_rack,
        }

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "TopologySpec":
        d = dict(d)
        d["wan_racks"] = tuple(d.get("wan_racks", ()))
        if d.get("racks") is not None:
            d["racks"] = tuple(d["racks"])
        return cls(**d)


@dataclass(frozen=True)
class MemoryLevelSpec:
    """One cache level of a node's memory hierarchy (see
    :class:`repro.costmodel.MemoryLevel`): byte capacity, streaming
    bandwidth, and per-access latency."""

    name: str
    capacity: float
    bandwidth: float
    latency: float

    def __post_init__(self) -> None:
        _require(isinstance(self.name, str) and bool(self.name),
                 "memory level name must be a non-empty string")
        _set(self, "capacity", float(self.capacity))
        _set(self, "bandwidth", float(self.bandwidth))
        _set(self, "latency", float(self.latency))
        _require(self.capacity > 0,
                 f"capacity must be > 0, got {self.capacity}")
        _require(self.bandwidth > 0,
                 f"bandwidth must be > 0, got {self.bandwidth}")
        _require(self.latency >= 0,
                 f"latency must be >= 0, got {self.latency}")

    def to_dict(self) -> Dict[str, Any]:
        return {"name": self.name, "capacity": self.capacity,
                "bandwidth": self.bandwidth, "latency": self.latency}

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "MemoryLevelSpec":
        return cls(**d)


#: The defaults mirror :data:`repro.costmodel.DEFAULT_HIERARCHY`.
_DEFAULT_MEMORY_LEVELS = (
    MemoryLevelSpec("L1", 32 * 1024, 4e11, 1e-9),
    MemoryLevelSpec("L2", 256 * 1024, 2e11, 4e-9),
    MemoryLevelSpec("L3", 8 * 1024 * 1024, 1e11, 1.2e-8),
)


@dataclass(frozen=True)
class MemorySpec:
    """A node memory hierarchy for shape-aware cost models.

    Declares the cache ladder the ``hierarchy`` cost model prices
    tasks against (capacities ordered smallest to largest, with DRAM
    as the fallthrough tier).  The defaults mirror
    :data:`repro.costmodel.DEFAULT_HIERARCHY` — 32 KiB L1, 256 KiB L2,
    8 MiB L3 — so ``MemorySpec()`` is the contemporary-looking node the
    ablations use.  Flat cost models ignore it entirely.
    """

    levels: Tuple[MemoryLevelSpec, ...] = _DEFAULT_MEMORY_LEVELS
    dram_bandwidth: float = 2e10
    dram_latency: float = 8e-8

    def __post_init__(self) -> None:
        levels = []
        for entry in self.levels:
            if isinstance(entry, dict):
                entry = MemoryLevelSpec.from_dict(entry)
            levels.append(entry)
        _set(self, "levels", tuple(levels))
        _set(self, "dram_bandwidth", float(self.dram_bandwidth))
        _set(self, "dram_latency", float(self.dram_latency))
        # eager validation: level ordering and DRAM parameters fail at
        # spec construction, not when the cost model first prices a task
        self.build()

    def build(self):
        """The runtime :class:`repro.costmodel.MemoryHierarchy`."""
        from ..costmodel import MemoryHierarchy, MemoryLevel
        return MemoryHierarchy(
            levels=tuple(MemoryLevel(lv.name, lv.capacity, lv.bandwidth,
                                     lv.latency) for lv in self.levels),
            dram_bandwidth=self.dram_bandwidth,
            dram_latency=self.dram_latency)

    def to_dict(self) -> Dict[str, Any]:
        return {"levels": [lv.to_dict() for lv in self.levels],
                "dram_bandwidth": self.dram_bandwidth,
                "dram_latency": self.dram_latency}

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "MemorySpec":
        d = dict(d)
        if "levels" in d:
            d["levels"] = tuple(MemoryLevelSpec.from_dict(lv)
                                if isinstance(lv, dict) else lv
                                for lv in d["levels"])
        return cls(**d)


@dataclass(frozen=True)
class ClusterSpec:
    """Simulated cluster shape: nodes, cores, speeds, network, overheads.

    ``speed_rates`` are per-node constant rates in work units per virtual
    second (``None`` → the solver default of 1 GF/s per core);
    ``interference`` entries overlay time-varying slowdowns on top, and
    ``drift`` ramps every node linearly to new rates over a window
    (mutually exclusive with ``interference`` — both rewrite the trace).
    ``latency``/``bandwidth`` of ``None`` use the :class:`repro.amt
    .cluster.Network` defaults.  ``faults`` overlays a deterministic
    churn schedule (failures/joins/straggles — see :class:`FaultSpec`);
    straggle windows compose onto whatever speed trace the other fields
    produce, so faults combine freely with static heterogeneity, drift,
    and interference.  ``topology`` replaces the flat network with a
    rack-aware model (see :class:`TopologySpec`); ``None`` keeps the
    legacy flat network, and ``latency``/``bandwidth`` then feed the
    topology's NIC tier when it leaves its own unset.  ``memory``
    declares the per-node cache ladder shape-aware cost models price
    tasks against (see :class:`MemorySpec`); ``None`` leaves the
    hierarchy model on :data:`repro.costmodel.DEFAULT_HIERARCHY` and
    is invisible to the flat model.
    """

    num_nodes: int = 1
    cores_per_node: int = 1
    speed_rates: Optional[Tuple[float, ...]] = None
    interference: Tuple[InterferenceSpec, ...] = ()
    drift: Optional[DriftSpec] = None
    latency: Optional[float] = None
    bandwidth: Optional[float] = None
    spawn_overhead: float = 0.0
    faults: Optional[FaultSpec] = None
    topology: Optional[TopologySpec] = None
    memory: Optional[MemorySpec] = None

    def __post_init__(self) -> None:
        _set(self, "num_nodes", int(self.num_nodes))
        _set(self, "cores_per_node", int(self.cores_per_node))
        _require(self.num_nodes >= 1,
                 f"num_nodes must be >= 1, got {self.num_nodes}")
        _require(self.cores_per_node >= 1,
                 f"cores_per_node must be >= 1, got {self.cores_per_node}")
        if self.speed_rates is not None:
            _set(self, "speed_rates",
                 tuple(float(r) for r in self.speed_rates))
            _require(len(self.speed_rates) == self.num_nodes,
                     f"speed_rates has {len(self.speed_rates)} entries "
                     f"for {self.num_nodes} nodes")
            _require(all(r > 0 for r in self.speed_rates),
                     "speed_rates must all be positive")
        items = []
        for entry in self.interference:
            if isinstance(entry, dict):
                entry = InterferenceSpec.from_dict(entry)
            items.append(entry)
        _set(self, "interference", tuple(items))
        _require(all(i.node < self.num_nodes for i in self.interference),
                 "interference entries must target existing nodes")
        if isinstance(self.drift, dict):
            _set(self, "drift", DriftSpec.from_dict(self.drift))
        if self.drift is not None:
            _require(len(self.drift.rates_end) == self.num_nodes,
                     f"drift has {len(self.drift.rates_end)} end rates "
                     f"for {self.num_nodes} nodes")
            _require(not self.interference,
                     "drift and interference cannot be combined "
                     "(both rewrite the per-node speed traces)")
        if self.latency is not None:
            _set(self, "latency", float(self.latency))
            _require(self.latency >= 0,
                     f"latency must be >= 0, got {self.latency}")
        if self.bandwidth is not None:
            _set(self, "bandwidth", float(self.bandwidth))
            _require(self.bandwidth > 0,
                     f"bandwidth must be > 0, got {self.bandwidth}")
        _set(self, "spawn_overhead", float(self.spawn_overhead))
        _require(self.spawn_overhead >= 0,
                 f"spawn_overhead must be >= 0, got {self.spawn_overhead}")
        if isinstance(self.faults, dict):
            _set(self, "faults", FaultSpec.from_dict(self.faults))
        if self.faults is not None:
            # eager membership validation: a bad schedule fails here
            self.faults.build(self.num_nodes)
        if isinstance(self.topology, dict):
            _set(self, "topology", TopologySpec.from_dict(self.topology))
        if self.topology is not None:
            # eager validation: a rack list shorter than the cluster
            # (or any bad link parameter) fails here, not mid-sweep
            self.topology.build(self.num_nodes, self.latency,
                                self.bandwidth)
        if isinstance(self.memory, dict):
            _set(self, "memory", MemorySpec.from_dict(self.memory))

    # -- builders (data -> runtime objects) -------------------------------
    def build_faults(self):
        """The runtime :class:`FaultSchedule`, or ``None``."""
        if self.faults is None:
            return None
        return self.faults.build(self.num_nodes)

    def build_speeds(self, default_rate: float = 1e9):
        """Per-node :class:`SpeedTrace` list, or ``None`` for defaults."""
        from ..models.workload import drift_ramp, step_interference
        from ..amt.cluster import ConstantSpeed
        if (self.speed_rates is None and not self.interference
                and self.drift is None):
            return None
        rates = (self.speed_rates if self.speed_rates is not None
                 else (default_rate,) * self.num_nodes)
        if self.drift is not None:
            return drift_ramp(rates, self.drift.rates_end,
                              self.drift.start, self.drift.stop)
        traces = [ConstantSpeed(r) for r in rates]
        for i in self.interference:
            traces[i.node] = step_interference(
                rates[i.node], i.start, i.stop, slowdown=i.slowdown)
        return traces

    def build_network(self):
        """A fresh network model (egress/link state must not leak).

        The legacy flat :class:`Network` when no topology is declared;
        otherwise the :class:`repro.amt.topology.Topology` this spec's
        :class:`TopologySpec` describes, with the cluster's
        ``latency``/``bandwidth`` as the NIC-tier defaults.
        """
        if self.topology is not None:
            return self.topology.build(self.num_nodes, self.latency,
                                       self.bandwidth)
        from ..amt.cluster import Network
        kwargs = {}
        if self.latency is not None:
            kwargs["latency"] = self.latency
        if self.bandwidth is not None:
            kwargs["bandwidth"] = self.bandwidth
        return Network(**kwargs)

    def build_memory(self):
        """The runtime :class:`repro.costmodel.MemoryHierarchy`, or
        ``None`` when no hierarchy is declared (shape-aware cost models
        then use their own default)."""
        if self.memory is None:
            return None
        return self.memory.build()

    def to_dict(self) -> Dict[str, Any]:
        return {
            "num_nodes": self.num_nodes,
            "cores_per_node": self.cores_per_node,
            "speed_rates": (None if self.speed_rates is None
                            else list(self.speed_rates)),
            "interference": [i.to_dict() for i in self.interference],
            "drift": None if self.drift is None else self.drift.to_dict(),
            "latency": self.latency,
            "bandwidth": self.bandwidth,
            "spawn_overhead": self.spawn_overhead,
            "faults": None if self.faults is None else self.faults.to_dict(),
            "topology": (None if self.topology is None
                         else self.topology.to_dict()),
            "memory": (None if self.memory is None
                       else self.memory.to_dict()),
        }

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "ClusterSpec":
        d = dict(d)
        rates = d.get("speed_rates")
        if rates is not None:
            d["speed_rates"] = tuple(rates)
        d["interference"] = tuple(
            InterferenceSpec.from_dict(i) for i in d.get("interference", ()))
        if d.get("drift") is not None:
            d["drift"] = DriftSpec.from_dict(d["drift"])
        if d.get("faults") is not None:
            d["faults"] = FaultSpec.from_dict(d["faults"])
        if d.get("topology") is not None:
            d["topology"] = TopologySpec.from_dict(d["topology"])
        if d.get("memory") is not None:
            d["memory"] = MemorySpec.from_dict(d["memory"])
        return cls(**d)


@dataclass(frozen=True)
class PartitionSpec:
    """How the initial SD → node assignment is produced.

    Methods
    -------
    ``metis``
        The from-scratch multilevel partitioner (the paper's METIS
        substitute), seeded by ``seed``.
    ``blocks`` / ``strips`` / ``rcb`` / ``spectral``
        The geometric and spectral baselines (``axis`` selects strip
        orientation: 0 = vertical strips, 1 = horizontal).
    ``single``
        Everything on node 0 — the shared-memory configuration.
    ``corner_imbalanced``
        Node 0 owns all SDs except one corner SD per other node — the
        paper's Fig. 14 starting distribution.
    ``explicit``
        The literal ``parts`` tuple.

    ``placement`` post-processes the part → node assignment against the
    cluster's network topology (see :mod:`repro.partition.placement`):
    ``"none"`` keeps the partitioner's own labels, ``"rack"`` permutes
    part labels so strongly-adjacent parts land on nodes in the same
    rack (ghost traffic stays off the oversubscribed uplinks), and
    ``"scatter"`` deals parts round-robin across racks — the
    adversarial baseline the topology ablation measures against.  On a
    single-rack (flat) topology every placement is the identity.
    """

    METHODS = ("metis", "blocks", "strips", "rcb", "spectral", "single",
               "corner_imbalanced", "explicit")
    PLACEMENTS = ("none", "rack", "scatter")

    method: str = "metis"
    seed: int = 0
    axis: int = 0
    parts: Optional[Tuple[int, ...]] = None
    placement: str = "none"

    def __post_init__(self) -> None:
        _require(self.method in self.METHODS,
                 f"unknown partition method {self.method!r}; "
                 f"expected one of {self.METHODS}")
        _require(self.placement in self.PLACEMENTS,
                 f"unknown placement {self.placement!r}; "
                 f"expected one of {self.PLACEMENTS}")
        _set(self, "seed", int(self.seed))
        _set(self, "axis", int(self.axis))
        _require(self.axis in (0, 1), f"axis must be 0 or 1, got {self.axis}")
        if self.method == "explicit":
            _require(self.parts is not None,
                     "method 'explicit' requires a parts tuple")
            _set(self, "parts", tuple(int(p) for p in self.parts))
            _require(all(p >= 0 for p in self.parts),
                     "explicit parts must be non-negative node ids")
        else:
            _require(self.parts is None,
                     f"parts is only valid with method 'explicit', "
                     f"not {self.method!r}")

    def build(self, sd_nx: int, sd_ny: int, num_nodes: int) -> np.ndarray:
        """The initial ownership array for an ``sd_nx x sd_ny`` SD grid."""
        n = sd_nx * sd_ny
        if self.method == "single":
            return np.zeros(n, dtype=np.int64)
        if self.method == "corner_imbalanced":
            # the paper's Fig. 14 left grid: node 0 owns almost
            # everything; each other node starts on one distinct corner
            # SD (top-right, bottom-left, bottom-right — node 0 holds
            # the top-left corner with the bulk)
            if num_nodes > n:
                raise ValueError(
                    f"{num_nodes} nodes need >= {num_nodes} SDs (have {n})")
            parts = np.zeros(n, dtype=np.int64)
            corners = []
            for sd in (sd_nx - 1, (sd_ny - 1) * sd_nx, n - 1):
                # 1-wide grids collapse corners onto each other (and
                # onto node 0's top-left corner): keep each SD once
                if sd != 0 and sd not in corners:
                    corners.append(sd)
            candidates = corners + [sd for sd in range(n - 1, 0, -1)
                                    if sd not in corners]
            for i in range(1, num_nodes):
                parts[candidates[i - 1]] = i
            return parts
        if self.method == "explicit":
            if len(self.parts) != n:
                raise ValueError(
                    f"explicit parts has {len(self.parts)} entries "
                    f"for {n} SDs")
            return np.asarray(self.parts, dtype=np.int64)
        if self.method == "metis":
            from ..partition.kway import partition_sd_grid
            return partition_sd_grid(sd_nx, sd_ny, num_nodes, seed=self.seed)
        if self.method == "blocks":
            from ..partition.geometric import block_partition
            return block_partition(sd_nx, sd_ny, num_nodes)
        if self.method == "strips":
            from ..partition.geometric import strip_partition
            return strip_partition(sd_nx, sd_ny, num_nodes, axis=self.axis)
        from ..partition.graph import grid_dual_graph
        graph = grid_dual_graph(sd_nx, sd_ny)
        if self.method == "rcb":
            from ..partition.geometric import recursive_coordinate_bisection
            return recursive_coordinate_bisection(graph, num_nodes)
        from ..partition.spectral import spectral_partition
        return spectral_partition(graph, num_nodes)

    def to_dict(self) -> Dict[str, Any]:
        return {"method": self.method, "seed": self.seed, "axis": self.axis,
                "parts": None if self.parts is None else list(self.parts),
                "placement": self.placement}

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "PartitionSpec":
        d = dict(d)
        if d.get("parts") is not None:
            d["parts"] = tuple(d["parts"])
        return cls(**d)


@dataclass(frozen=True)
class PolicySpec:
    """When (and with which strategy) the balancer runs after a timestep.

    ``balancer`` names the balancing strategy (``"auto"``, ``"tree"``,
    ``"diffusion"``, ``"greedy"``, ``"repartition"`` — see
    :mod:`repro.core.strategies`).  ``"auto"`` honors the
    ``REPRO_BALANCER`` environment override and defaults to the paper's
    Algorithm 1; validation is eager, like ``kernel_backend``, so an
    unknown name fails at spec construction rather than mid-sweep.
    """

    KINDS = ("never", "interval", "threshold")

    kind: str = "never"
    interval: int = 1
    ratio: float = 1.1
    min_interval: int = 1
    balancer: str = "auto"

    def __post_init__(self) -> None:
        _require(self.kind in self.KINDS,
                 f"unknown policy kind {self.kind!r}; "
                 f"expected one of {self.KINDS}")
        _set(self, "interval", int(self.interval))
        _set(self, "ratio", float(self.ratio))
        _set(self, "min_interval", int(self.min_interval))
        _require(self.interval >= 1,
                 f"interval must be >= 1, got {self.interval}")
        _require(self.ratio >= 1.0,
                 f"ratio must be >= 1.0, got {self.ratio}")
        _require(self.min_interval >= 1,
                 f"min_interval must be >= 1, got {self.min_interval}")
        from ..core.strategies import strategy_names
        _require(self.balancer == "auto"
                 or self.balancer in strategy_names(),
                 f"unknown balancing strategy {self.balancer!r}; "
                 f"expected 'auto' or one of {tuple(strategy_names())}")

    @property
    def enabled(self) -> bool:
        return self.kind != "never"

    def build(self):
        """The :class:`BalancePolicy`, or ``None`` when balancing is off."""
        from ..core.policy import IntervalPolicy, ThresholdPolicy
        if self.kind == "interval":
            return IntervalPolicy(self.interval)
        if self.kind == "threshold":
            return ThresholdPolicy(ratio=self.ratio,
                                   min_interval=self.min_interval)
        return None

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "interval": self.interval,
                "ratio": self.ratio, "min_interval": self.min_interval,
                "balancer": self.balancer}

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "PolicySpec":
        # dicts written before the strategy field existed default to auto
        return cls(**d)


@dataclass(frozen=True)
class ScenarioSpec:
    """One complete, runnable experiment point.

    ``solver`` selects the serial reference integrator or the simulated
    distributed solver.  ``cracks`` is a tuple of polylines (each a tuple
    of ``(x, y)`` points in the unit square) inducing per-SD work factors
    via :func:`repro.models.crack.crack_work_factors`.

    ``kernel_backend`` names the kernel backend executing the operator
    applies (``"auto"``, ``"direct"``, ``"fft"``, ``"sparse"`` — see
    :mod:`repro.solver.backends`).  ``"auto"`` resolves by the radius
    heuristic and honors the ``REPRO_KERNEL_BACKEND`` environment
    override; under the default flat cost model the backend changes
    numerics execution speed only, never the simulated schedule.

    ``cost_model`` names the task-cost model pricing simulated task
    times (``"auto"``, ``"flat"``, ``"hierarchy"`` — see
    :mod:`repro.costmodel`).  ``"auto"`` honors the
    ``REPRO_COST_MODEL`` environment override and defaults to
    ``flat``, the seed arithmetic; ``hierarchy`` makes block shape and
    kernel backend matter to the schedule via the cluster's
    ``memory`` hierarchy.

    ``work_factors`` pins explicit per-SD work multipliers (one per
    SD, non-negative) instead of deriving them from ``cracks`` — the
    two are mutually exclusive; both validate eagerly at construction.

    The balancing-strategy choice lives on the policy
    (``spec.policy.balancer``, surfaced here as the read-only
    :attr:`balancer` property): ``"auto"`` honors ``REPRO_BALANCER``
    and defaults to the paper's Algorithm 1.
    """

    name: str
    mesh: MeshSpec
    cluster: ClusterSpec = ClusterSpec()
    partition: PartitionSpec = PartitionSpec()
    policy: PolicySpec = PolicySpec()
    num_steps: int = 20
    solver: str = "distributed"
    compute_numerics: bool = False
    overlap: bool = True
    source_mode: str = "continuum"
    dt: Optional[float] = None
    track_error: bool = False
    cracks: Tuple[Tuple[Tuple[float, float], ...], ...] = ()
    crack_floor: float = 0.25
    crack_horizon_factor: float = 2.0
    kernel_backend: str = "auto"
    cost_model: str = "auto"
    work_factors: Optional[Tuple[float, ...]] = None

    def __post_init__(self) -> None:
        _require(isinstance(self.name, str) and bool(self.name),
                 "scenario name must be a non-empty string")
        _require(self.solver in ("serial", "distributed"),
                 f"solver must be 'serial' or 'distributed', "
                 f"got {self.solver!r}")
        _set(self, "num_steps", int(self.num_steps))
        _require(self.num_steps >= 0,
                 f"num_steps must be >= 0, got {self.num_steps}")
        _require(self.source_mode in ("continuum", "discrete"),
                 f"unknown source mode {self.source_mode!r}")
        if self.dt is not None:
            _set(self, "dt", float(self.dt))
            _require(self.dt > 0, f"dt must be positive, got {self.dt}")
        if self.solver == "serial":
            _set(self, "compute_numerics", True)
        elif self.track_error:
            _require(self.compute_numerics,
                     "track_error requires compute_numerics on the "
                     "distributed solver")
        if self.solver == "distributed":
            _require(self.cluster.num_nodes <= self.mesh.num_subdomains,
                     f"{self.cluster.num_nodes} nodes need >= "
                     f"{self.cluster.num_nodes} SDs "
                     f"(have {self.mesh.num_subdomains})")
        cracks = tuple(
            tuple((float(x), float(y)) for x, y in polyline)
            for polyline in self.cracks)
        _set(self, "cracks", cracks)
        _require(all(len(p) >= 2 for p in cracks),
                 "every crack polyline needs at least two points")
        _set(self, "crack_floor", float(self.crack_floor))
        _set(self, "crack_horizon_factor", float(self.crack_horizon_factor))
        _require(0 < self.crack_floor <= 1,
                 f"crack_floor must be in (0, 1], got {self.crack_floor}")
        _require(self.crack_horizon_factor > 0,
                 "crack_horizon_factor must be positive, "
                 f"got {self.crack_horizon_factor}")
        from ..solver.backends import backend_names
        _require(self.kernel_backend == "auto"
                 or self.kernel_backend in backend_names(),
                 f"unknown kernel backend {self.kernel_backend!r}; "
                 f"expected 'auto' or one of {tuple(backend_names())}")
        from ..costmodel import cost_model_names
        _require(self.cost_model == "auto"
                 or self.cost_model in cost_model_names(),
                 f"unknown cost model {self.cost_model!r}; "
                 f"expected 'auto' or one of {tuple(cost_model_names())}")
        if self.work_factors is not None:
            _require(not self.cracks,
                     "work_factors and cracks are mutually exclusive "
                     "(both define the per-SD work multipliers)")
            _set(self, "work_factors",
                 tuple(float(w) for w in self.work_factors))
            _require(len(self.work_factors) == self.mesh.num_subdomains,
                     f"work_factors has {len(self.work_factors)} entries "
                     f"for {self.mesh.num_subdomains} SDs")
            _require(all(w >= 0 for w in self.work_factors),
                     "work_factors must all be non-negative")

    @property
    def balancer(self) -> str:
        """The policy's balancing-strategy name (``spec.policy.balancer``)."""
        return self.policy.balancer

    def replace(self, **changes: Any) -> "ScenarioSpec":
        """A copy with ``changes`` applied (re-validated)."""
        return replace(self, **changes)

    def with_balancer(self, balancer: str) -> "ScenarioSpec":
        """A copy whose policy pins the named balancing strategy."""
        return self.replace(policy=replace(self.policy, balancer=balancer))

    def with_topology(self, topology: Union[str, TopologySpec,
                                            None]) -> "ScenarioSpec":
        """A copy whose cluster uses the given network topology.

        ``topology`` may be a :class:`TopologySpec`, a kind name
        (``"flat"``, ``"switched"``, ``"hierarchical"`` — built with
        default rack parameters), or ``None`` to restore the legacy
        flat network.
        """
        if isinstance(topology, str):
            topology = TopologySpec(kind=topology)
        return self.replace(cluster=replace(self.cluster,
                                            topology=topology))

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "mesh": self.mesh.to_dict(),
            "cluster": self.cluster.to_dict(),
            "partition": self.partition.to_dict(),
            "policy": self.policy.to_dict(),
            "num_steps": self.num_steps,
            "solver": self.solver,
            "compute_numerics": self.compute_numerics,
            "overlap": self.overlap,
            "source_mode": self.source_mode,
            "dt": self.dt,
            "track_error": self.track_error,
            "cracks": [[[x, y] for x, y in polyline]
                       for polyline in self.cracks],
            "crack_floor": self.crack_floor,
            "crack_horizon_factor": self.crack_horizon_factor,
            "kernel_backend": self.kernel_backend,
            "cost_model": self.cost_model,
            "work_factors": (None if self.work_factors is None
                             else list(self.work_factors)),
        }

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "ScenarioSpec":
        d = dict(d)
        d["mesh"] = MeshSpec.from_dict(d["mesh"])
        d["cluster"] = ClusterSpec.from_dict(d.get("cluster", {}))
        d["partition"] = PartitionSpec.from_dict(d.get("partition", {}))
        d["policy"] = PolicySpec.from_dict(d.get("policy", {}))
        d["cracks"] = tuple(
            tuple((x, y) for x, y in polyline)
            for polyline in d.get("cracks", ()))
        # dicts written before v7 carry neither key: flat-by-default
        if d.get("work_factors") is not None:
            d["work_factors"] = tuple(d["work_factors"])
        return cls(**d)
