"""Structured run results: the one record every entry point emits.

A :class:`RunRecord` captures everything the paper's evaluation (and the
CLI's ``--json`` flag) reads off a run: the virtual makespan, per-step
durations, the busy-time imbalance history, ghost/migration traffic,
balancing events, and — for numeric runs — the per-step errors against
the manufactured exact solution.

Records hold only plain JSON types (ints, floats, strings, lists,
``None``) so that

* ``RunRecord.from_dict(rec.to_dict()) == rec`` exactly (no ndarray or
  tuple/list ambiguity), which is what lets the parallel sweep runner
  guarantee bit-identical results to serial execution, and
* files written by ``--json`` round-trip losslessly (Python's float
  repr is shortest-exact).
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional

__all__ = ["RunRecord", "SCHEMA", "write_json", "write_records",
           "read_records"]

#: Schema tag stamped into every JSON file this module writes.
#: v2: per-event ``balance_events`` telemetry replaced the aggregate
#: ``sds_moved``/``migration_bytes`` counters (now derived properties),
#: and ``balancer_resolved`` records the strategy that ran.
#: v3: elastic-cluster churn — ``recovery_events`` (one dict per node
#: failure/join the run handled), a ``recovery`` flag on every balance
#: event, and ``ClusterSpec.faults`` in the embedded spec.
#: v4: network topology — per-route-class byte telemetry
#: (``bytes_by_class``: ``remote`` on the flat model, ``intra_rack`` /
#: ``inter_rack`` / ``wan`` on the rack hierarchies), plus
#: ``ClusterSpec.topology`` and ``PartitionSpec.placement`` in the
#: embedded spec.
#: v5: the multi-tenant solve service — ``service_events`` (the raw
#: arrival/shed/start/finish stream of a ``solver == "service"`` run;
#: empty on solver records) and ``"service"`` as a third ``solver``
#: value with a :class:`repro.service.ServiceSpec` dict in ``spec``.
#: v6: closed-loop autoscaling — ``scale_events`` (one dict per
#: autoscale decision/transition of a service run: ``scale_out`` /
#: ``join`` / ``drain`` / ``retire`` rows from
#: :class:`repro.amt.autoscale.AutoscaleController`; empty when
#: autoscaling is off) and ``ServiceSpec.autoscale`` in the embedded
#: spec.
#: v7: pluggable task-cost models — ``cost_model_resolved`` records the
#: model that priced the run's tasks (``flat`` reproduces the pre-v7
#: arithmetic bit for bit), plus ``ScenarioSpec.cost_model`` /
#: ``ScenarioSpec.work_factors``, ``ServiceSpec.cost_model``, and
#: ``ClusterSpec.memory`` (the node cache hierarchy shape-aware models
#: price against) in the embedded spec.
SCHEMA = "repro.experiments/v7"


@dataclass
class RunRecord:
    """Diagnostics of one scenario run (serial or distributed).

    Serial runs leave the cluster-only fields at their empty defaults
    (``makespan`` 0.0, no step durations, no traffic).
    """

    #: registry name (or ad-hoc label) of the scenario that ran
    scenario: str = ""
    #: "serial", "distributed", or "service"
    solver: str = "distributed"
    #: the spec that produced this run, as ``ScenarioSpec.to_dict()``
    spec: Dict[str, Any] = field(default_factory=dict)
    #: timesteps integrated
    num_steps: int = 0
    #: timestep used (virtual-time runs still integrate real dt)
    dt: Optional[float] = None
    #: virtual seconds from first task to last barrier
    makespan: float = 0.0
    #: virtual duration of each timestep
    step_durations: List[float] = field(default_factory=list)
    #: max/mean busy-time ratio measured at the end of each step
    imbalance_history: List[float] = field(default_factory=list)
    #: ghost bytes sent over the run
    ghost_bytes: int = 0
    #: bytes per network route class (``remote`` on the flat model;
    #: ``intra_rack``/``inter_rack``/``wan`` on topology models — see
    #: :mod:`repro.amt.topology`); classes partition the traffic, so
    #: the values sum to the run's total network bytes
    bytes_by_class: Dict[str, int] = field(default_factory=dict)
    #: one dict per balancer invocation (including no-op decisions):
    #: ``{step, strategy, sds_moved, migration_bytes, imbalance_before,
    #: imbalance_after}`` — see :class:`repro.core.strategies
    #: .BalanceEvent`; the aggregate ``sds_moved``/``migration_bytes``
    #: are derived properties summing these events
    balance_events: List[Dict[str, Any]] = field(default_factory=list)
    #: one dict per churn event the run handled, in virtual-time order:
    #: ``{time, kind, node, sds_evacuated, tasks_requeued,
    #: recovery_bytes}`` — see :class:`repro.amt.faults.RecoveryEvent`
    recovery_events: List[Dict[str, Any]] = field(default_factory=list)
    #: raw event stream of a multi-tenant service run, in virtual-time
    #: order: ``{kind: arrival|shed|start|finish, t, tenant, job, ...}``
    #: dicts (see :mod:`repro.service.manager`); empty for solver runs.
    #: Live service runs store the columnar
    #: :class:`repro.service.telemetry.EventLog` here (it indexes,
    #: iterates, and compares as the same list of dicts);
    #: :meth:`to_dict` renders it to plain dicts, so JSON round-trips
    #: are unchanged.  Reduce with
    #: :func:`repro.service.summarize_service`
    service_events: List[Dict[str, Any]] = field(default_factory=list)
    #: autoscale decision/transition log of a service run with a
    #: closed-loop policy, in virtual-time order: ``{t, action, node,
    #: nodes, ...}`` dicts (``action`` one of ``scale_out`` / ``join``
    #: / ``drain`` / ``retire``; decision rows carry the observation's
    #: ``utilization`` / ``p99_wait`` / ``shed_rate`` /
    #: ``queue_depth``) — see :mod:`repro.amt.autoscale`.  Empty when
    #: autoscaling is off; cost it with
    #: :func:`repro.amt.autoscale.node_seconds`
    scale_events: List[Dict[str, Any]] = field(default_factory=list)
    #: ``[step, parts_after]`` per balancing event that moved SDs
    parts_events: List[List[Any]] = field(default_factory=list)
    #: SD ownership at the end of the run
    final_parts: List[int] = field(default_factory=list)
    #: per-node busy time accumulated over the whole run
    busy_total: List[float] = field(default_factory=list)
    #: per-step errors vs the exact solution (eq. 7), if tracked
    errors: Optional[List[float]] = None
    #: summed eq.-(7) error (None when errors were not tracked)
    total_error: Optional[float] = None
    #: kernel backend that executed the numerics: the spec's request
    #: after the env override and the radius heuristic resolved it
    #: (deterministic, so sweep parity is unaffected; "" in records
    #: written before the backend field existed)
    backend_resolved: str = ""
    #: balancing strategy the run was wired with: the policy's request
    #: after the ``REPRO_BALANCER`` override and the ``auto`` default
    #: resolved it ("" for serial runs and pre-strategy records)
    balancer_resolved: str = ""
    #: task-cost model that priced the run's simulated tasks: the
    #: spec's request after the ``REPRO_COST_MODEL`` override and the
    #: ``auto`` → ``flat`` default resolved it ("" for serial runs and
    #: records written before the cost-model layer existed)
    cost_model_resolved: str = ""

    @property
    def sds_moved(self) -> int:
        """Total SDs moved by balancing (sum over ``balance_events``)."""
        return sum(int(e["sds_moved"]) for e in self.balance_events)

    @property
    def migration_bytes(self) -> int:
        """Total migration bytes charged (sum over ``balance_events``)."""
        return sum(int(e["migration_bytes"]) for e in self.balance_events)

    @property
    def recovery_bytes(self) -> int:
        """Checkpoint re-fetch bytes (sum over ``recovery_events``)."""
        return sum(int(e["recovery_bytes"]) for e in self.recovery_events)

    def to_dict(self) -> Dict[str, Any]:
        d = asdict(self)
        if type(d["service_events"]) is not list:
            d["service_events"] = list(self.service_events)
        return d

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "RunRecord":
        return cls(**d)

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "RunRecord":
        return cls.from_dict(json.loads(text))


def write_json(path: str, payload: Dict[str, Any]) -> None:
    """Write ``payload`` (plus the schema tag) as pretty JSON."""
    doc = {"schema": SCHEMA}
    doc.update(payload)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")


def write_records(path: str, records: List[RunRecord]) -> None:
    """Serialize a list of run records to ``path``."""
    write_json(path, {"records": [r.to_dict() for r in records]})


def read_records(path: str) -> List[RunRecord]:
    """Load run records written by :func:`write_records`."""
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    if doc.get("schema") != SCHEMA:
        raise ValueError(f"{path}: unknown schema {doc.get('schema')!r}")
    return [RunRecord.from_dict(d) for d in doc["records"]]
