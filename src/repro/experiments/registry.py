"""Named scenario factories: every workload is reachable by name.

The registry maps a scenario name (``fig09_strong_shared``,
``crack_hetero``, …) to a factory that builds the matching
:class:`ScenarioSpec`.  Factories take keyword overrides so the same
name serves as a sweep axis (``build("fig11_strong_distributed",
nodes=2)``), a CLI target (``python -m repro run --scenario NAME``), and
a tiny smoke configuration (``build(NAME, steps=1)``) — every factory
accepts ``steps``.

The defaults reproduce the paper's captions (Sec. 8): eps = 8h, 20
timesteps, square SD layouts, 1 GF/s cores, HPX-like task spawn
overheads on the shared-memory runs.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from .spec import (ChurnEvent, ClusterSpec, DriftSpec, FaultSpec,
                   InterferenceSpec, MemorySpec, MeshSpec, PartitionSpec,
                   PolicySpec, ScenarioSpec, TopologySpec)

__all__ = ["register", "build", "scenario_names", "get_factory",
           "balancer_sweep",
           "EPS_FACTOR", "NUM_STEPS", "CORE_SPEED", "SPAWN_OVERHEAD"]

#: The paper's horizon ratio (all scaling figures): eps = 8 h.
EPS_FACTOR = 8.0
#: The paper's timestep count for scaling figures.
NUM_STEPS = 20
#: Simulated per-core speed (flops / virtual second).
CORE_SPEED = 1e9
#: Serial per-task scheduling cost (HPX task overheads are ~1 us; we
#: include ghost-buffer packing in the same knob).
SPAWN_OVERHEAD = 5e-6

_REGISTRY: Dict[str, Callable[..., ScenarioSpec]] = {}


def register(name: str):
    """Decorator: add a spec factory to the registry under ``name``."""
    def deco(fn: Callable[..., ScenarioSpec]):
        if name in _REGISTRY:
            raise ValueError(f"scenario {name!r} already registered")
        _REGISTRY[name] = fn
        return fn
    return deco


def scenario_names() -> List[str]:
    """All registered scenario names, sorted."""
    return sorted(_REGISTRY)


def get_factory(name: str) -> Callable[..., ScenarioSpec]:
    if name not in _REGISTRY:
        raise KeyError(
            f"unknown scenario {name!r}; known: {', '.join(scenario_names())}")
    return _REGISTRY[name]


def build(name: str, **overrides) -> ScenarioSpec:
    """Build the named scenario, passing ``overrides`` to its factory."""
    return get_factory(name)(**overrides)


# ---------------------------------------------------------------------------
# figure scenarios (paper Sec. 8)
# ---------------------------------------------------------------------------

@register("fig08_convergence")
def fig08_convergence(exponent: int = 4, steps: int = 10,
                      eps_factor: float = 2.0) -> ScenarioSpec:
    """One point of the Fig. 8 convergence study: serial manufactured
    solve on a ``2^exponent`` mesh with dt ~ h^2."""
    nx = 2 ** exponent
    return ScenarioSpec(
        name="fig08_convergence",
        mesh=MeshSpec(nx=nx, eps_factor=eps_factor),
        partition=PartitionSpec(method="single"),
        solver="serial", num_steps=steps, dt=0.05 / (nx * nx),
        track_error=True, compute_numerics=True,
        source_mode="continuum")


@register("fig09_strong_shared")
def fig09_strong_shared(mesh: int = 400, sd_axis: int = 8, cpus: int = 4,
                        steps: int = NUM_STEPS) -> ScenarioSpec:
    """Shared-memory strong scaling (Fig. 9): one simulated node with
    ``cpus`` cores, one task per SD per timestep, no ghost messages."""
    return ScenarioSpec(
        name="fig09_strong_shared",
        mesh=MeshSpec(nx=mesh, sd_nx=sd_axis, eps_factor=EPS_FACTOR),
        cluster=ClusterSpec(num_nodes=1, cores_per_node=cpus,
                            spawn_overhead=SPAWN_OVERHEAD),
        partition=PartitionSpec(method="single"),
        num_steps=steps)


@register("fig10_weak_shared")
def fig10_weak_shared(sd_size: int = 50, sd_axis: int = 4, cpus: int = 4,
                      steps: int = NUM_STEPS) -> ScenarioSpec:
    """Shared-memory weak scaling (Fig. 10): SD size fixed, mesh grows."""
    return ScenarioSpec(
        name="fig10_weak_shared",
        mesh=MeshSpec(nx=sd_size * sd_axis, sd_nx=sd_axis,
                      eps_factor=EPS_FACTOR),
        cluster=ClusterSpec(num_nodes=1, cores_per_node=cpus,
                            spawn_overhead=SPAWN_OVERHEAD),
        partition=PartitionSpec(method="single"),
        num_steps=steps)


def _distributed_partition(partitioner: str, seed: int) -> PartitionSpec:
    if partitioner == "blocks":
        return PartitionSpec(method="blocks")
    if partitioner == "metis":
        return PartitionSpec(method="metis", seed=seed)
    raise ValueError(f"unknown partitioner {partitioner!r}")


@register("fig11_strong_distributed")
def fig11_strong_distributed(mesh: int = 400, sd_axis: int = 8,
                             nodes: int = 4, partitioner: str = "blocks",
                             steps: int = NUM_STEPS,
                             seed: int = 0) -> ScenarioSpec:
    """Distributed strong scaling (Fig. 11): single-core nodes, ghost
    messages, the paper's manual block layouts by default."""
    return ScenarioSpec(
        name="fig11_strong_distributed",
        mesh=MeshSpec(nx=mesh, sd_nx=sd_axis, eps_factor=EPS_FACTOR),
        cluster=ClusterSpec(num_nodes=nodes, cores_per_node=1,
                            spawn_overhead=SPAWN_OVERHEAD),
        partition=_distributed_partition(partitioner, seed),
        num_steps=steps)


@register("fig12_weak_distributed")
def fig12_weak_distributed(sd_size: int = 50, sd_axis: int = 4,
                           nodes: int = 4, partitioner: str = "metis",
                           steps: int = NUM_STEPS,
                           seed: int = 0) -> ScenarioSpec:
    """Distributed weak scaling with METIS-style layouts (Fig. 12)."""
    return ScenarioSpec(
        name="fig12_weak_distributed",
        mesh=MeshSpec(nx=sd_size * sd_axis, sd_nx=sd_axis,
                      eps_factor=EPS_FACTOR),
        cluster=ClusterSpec(num_nodes=nodes, cores_per_node=1,
                            spawn_overhead=SPAWN_OVERHEAD),
        partition=_distributed_partition(partitioner, seed),
        num_steps=steps)


@register("fig13_metis_scaling")
def fig13_metis_scaling(mesh: int = 800, sd_axis: int = 16, nodes: int = 16,
                        steps: int = NUM_STEPS, seed: int = 0) -> ScenarioSpec:
    """Distributed scaling 1..16 nodes, METIS distribution (Fig. 13)."""
    return ScenarioSpec(
        name="fig13_metis_scaling",
        mesh=MeshSpec(nx=mesh, sd_nx=sd_axis, eps_factor=EPS_FACTOR),
        cluster=ClusterSpec(num_nodes=nodes, cores_per_node=1,
                            spawn_overhead=SPAWN_OVERHEAD),
        partition=PartitionSpec(method="metis", seed=seed),
        num_steps=steps)


@register("fig14_load_balance")
def fig14_load_balance(sd_axis: int = 5, nodes: int = 4,
                       steps: int = 3) -> ScenarioSpec:
    """The Fig. 14 balancing validation: 5x5 SDs on 4 symmetric nodes
    from the paper's highly imbalanced corner distribution, Algorithm 1
    running after every simulated sweep."""
    return ScenarioSpec(
        name="fig14_load_balance",
        mesh=MeshSpec(nx=4 * sd_axis, sd_nx=sd_axis, eps_factor=2.0),
        cluster=ClusterSpec(num_nodes=nodes),
        partition=PartitionSpec(method="corner_imbalanced"),
        policy=PolicySpec(kind="interval", interval=1),
        num_steps=steps)


# ---------------------------------------------------------------------------
# ablation scenarios
# ---------------------------------------------------------------------------

@register("abl_overlap")
def abl_overlap(latency: float = 1e-3, bandwidth: float = 1e6,
                overlap: bool = True, steps: int = 5) -> ScenarioSpec:
    """Ablation B: Case-1/Case-2 communication hiding on/off across
    network tiers (defaults to the slow tier)."""
    return ScenarioSpec(
        name="abl_overlap",
        mesh=MeshSpec(nx=400, sd_nx=2, eps_factor=EPS_FACTOR),
        cluster=ClusterSpec(num_nodes=4, latency=latency,
                            bandwidth=bandwidth),
        partition=PartitionSpec(method="blocks"),
        num_steps=steps, overlap=overlap)


@register("abl_partitioners")
def abl_partitioners(method: str = "metis", steps: int = 5,
                     seed: int = 0) -> ScenarioSpec:
    """Ablation A: partitioner choice under a communication-dominated
    network, where the edge cut drives the makespan."""
    return ScenarioSpec(
        name="abl_partitioners",
        mesh=MeshSpec(nx=800, sd_nx=16, eps_factor=EPS_FACTOR),
        cluster=ClusterSpec(num_nodes=8, latency=2e-5, bandwidth=1e6),
        partition=PartitionSpec(method=method, seed=seed),
        num_steps=steps)


@register("abl_balancing_gain")
def abl_balancing_gain(source: str = "hetero", balanced: bool = True,
                       steps: int = 15, seed: int = 0) -> ScenarioSpec:
    """Ablation D: balancing gain under static heterogeneity and/or a
    crack network lightening part of the domain.

    Crack sources use SD-row strips so the cracked rows concentrate in
    specific nodes (a count-balanced METIS layout hides crack work
    imbalance below the balancer's one-SD trigger threshold — the
    balancer then correctly declines to move anything and the ablation
    measures nothing).
    """
    if source not in ("hetero", "crack", "both"):
        raise ValueError(f"unknown imbalance source {source!r}")
    speeds = None
    if source in ("hetero", "both"):
        speeds = (0.5e9, 1e9, 1.5e9, 2e9)
    cracks = ()
    if source in ("crack", "both"):
        cracks = (((0.05, 0.18), (0.95, 0.18)),
                  ((0.05, 0.3), (0.95, 0.3)),
                  ((0.05, 0.42), (0.95, 0.42)))
    partition = (PartitionSpec(method="strips", axis=1) if cracks
                 else PartitionSpec(method="metis", seed=seed))
    return ScenarioSpec(
        name="abl_balancing_gain",
        mesh=MeshSpec(nx=256, sd_nx=8, eps_factor=EPS_FACTOR),
        cluster=ClusterSpec(num_nodes=4, speed_rates=speeds),
        partition=partition,
        policy=(PolicySpec(kind="interval", interval=1) if balanced
                else PolicySpec()),
        num_steps=steps, cracks=cracks)


@register("abl_backends")
def abl_backends(backend: str = "auto", mesh: int = 256, sd_axis: int = 8,
                 nodes: int = 4, steps: int = 3, seed: int = 0) -> ScenarioSpec:
    """Ablation E: kernel backend choice on the numerics-on hot path.

    A numerics-on distributed run at the paper's horizon (eps = 8h, so
    17x17 masks) whose wall-clock cost is dominated by the per-SD
    operator applies; sweep ``backend`` over
    ``repro.solver.backend_names()`` (plus ``auto``) to compare apply
    throughput.  The virtual makespan is backend-independent by design
    — only real execution time changes.
    """
    return ScenarioSpec(
        name="abl_backends",
        mesh=MeshSpec(nx=mesh, sd_nx=sd_axis, eps_factor=EPS_FACTOR),
        cluster=ClusterSpec(num_nodes=nodes),
        partition=PartitionSpec(method="metis", seed=seed),
        num_steps=steps, compute_numerics=True,
        kernel_backend=backend)


@register("abl_balancers")
def abl_balancers(balancer: str = "auto", mesh: int = 128, sd_axis: int = 8,
                  nodes: int = 4, steps: int = 12,
                  seed: int = 0) -> ScenarioSpec:
    """Ablation F: balancing-strategy choice under drifting node speeds.

    The ``hetero_drift`` workload with the balancer running every step;
    sweep ``balancer`` over ``repro.core.strategy_names()`` (see
    :func:`balancer_sweep`) to compare the paper's Algorithm 1 against
    diffusion, greedy settlement, and scratch-remap repartitioning on
    makespan *and* migration cost (``balance_events`` telemetry).
    """
    return hetero_drift(mesh=mesh, sd_axis=sd_axis, nodes=nodes,
                        steps=steps, seed=seed, balancer=balancer,
                        balanced=True).replace(name="abl_balancers")


def balancer_sweep(**overrides) -> List[ScenarioSpec]:
    """One ``abl_balancers`` spec per registered balancing strategy.

    This is the sweep ``repro run --scenario abl_balancers`` executes
    when no ``--balancer`` is pinned; ``overrides`` are forwarded to
    the factory (``steps``, ``nodes``, ``seed``, ...).
    """
    from ..core.strategies import strategy_names
    return [build("abl_balancers", balancer=name, **overrides)
            for name in strategy_names()]


# ---------------------------------------------------------------------------
# application scenarios (examples / CLI workloads)
# ---------------------------------------------------------------------------

@register("crack_hetero")
def crack_hetero(mesh: int = 128, sd_axis: int = 8, nodes: int = 4,
                 steps: int = NUM_STEPS, balanced: bool = True) -> ScenarioSpec:
    """Crack-induced work heterogeneity (Sec. 7 motivation): a crack
    network through the lower-middle of the domain, SD rows assigned to
    equal-speed nodes, Algorithm 1 on busy-time counters."""
    cracks = (((0.05, 0.4375), (0.95, 0.4375)),
              ((0.05, 0.5625), (0.95, 0.5625)),
              ((0.3, 0.35), (0.7, 0.65)))
    return ScenarioSpec(
        name="crack_hetero",
        mesh=MeshSpec(nx=mesh, sd_nx=sd_axis, eps_factor=EPS_FACTOR),
        cluster=ClusterSpec(num_nodes=nodes),
        partition=PartitionSpec(method="strips", axis=1),
        policy=(PolicySpec(kind="interval", interval=1) if balanced
                else PolicySpec()),
        num_steps=steps, cracks=cracks)


@register("hetero_interference")
def hetero_interference(mesh: int = 128, sd_axis: int = 8, nodes: int = 4,
                        steps: int = NUM_STEPS, seed: int = 0,
                        balanced: bool = True) -> ScenarioSpec:
    """Time-varying capacity (Sec. 4 challenge 4): node 0 suffers a
    competing job for a mid-run window; the threshold policy notices the
    busy-time spread and redistributes."""
    # place the interference window in steps 5..12 of the run
    step_time_guess = _step_guess(mesh, sd_axis, nodes)
    window = (5 * step_time_guess, 12 * step_time_guess)
    return ScenarioSpec(
        name="hetero_interference",
        mesh=MeshSpec(nx=mesh, sd_nx=sd_axis, eps_factor=EPS_FACTOR),
        cluster=ClusterSpec(
            num_nodes=nodes,
            interference=(InterferenceSpec(node=0, start=window[0],
                                           stop=window[1], slowdown=0.4),)),
        partition=PartitionSpec(method="metis", seed=seed),
        policy=(PolicySpec(kind="threshold", ratio=1.15) if balanced
                else PolicySpec()),
        num_steps=steps)


@register("hetero_drift")
def hetero_drift(mesh: int = 128, sd_axis: int = 8, nodes: int = 4,
                 steps: int = 16, seed: int = 0, balancer: str = "auto",
                 balanced: bool = True) -> ScenarioSpec:
    """Drifting node capacity: the workload where one-shot balancing loses.

    Node speeds start spread over ``0.4x .. 1.6x`` the base core speed
    and ramp *linearly to the reversed assignment* over the middle of
    the run (fast nodes become slow and vice versa), so any fixed SD
    distribution — the initial partition, or a single early balancing
    decision — is wrong for most of the run.  Adaptive per-step
    balancing tracks the drift; ``balanced=False`` is the
    ``NeverBalance`` baseline the drift ablation beats by >= 10%.
    """
    if nodes == 1:
        start_rates = (CORE_SPEED,)
    else:
        lo, hi = 0.4 * CORE_SPEED, 1.6 * CORE_SPEED
        start_rates = tuple(hi - (hi - lo) * i / (nodes - 1)
                            for i in range(nodes))
    # drift across the heart of the run
    step_guess = _step_guess(mesh, sd_axis, nodes)
    drift = DriftSpec(rates_end=start_rates[::-1],
                      start=2 * step_guess, stop=12 * step_guess)
    return ScenarioSpec(
        name="hetero_drift",
        mesh=MeshSpec(nx=mesh, sd_nx=sd_axis, eps_factor=EPS_FACTOR),
        cluster=ClusterSpec(num_nodes=nodes, speed_rates=start_rates,
                            drift=drift),
        partition=PartitionSpec(method="metis", seed=seed),
        policy=(PolicySpec(kind="interval", interval=1, balancer=balancer)
                if balanced else PolicySpec(balancer=balancer)),
        num_steps=steps)


def _step_guess(mesh: int, sd_axis: int, nodes: int,
                flops_per_dp: float = 400.0) -> float:
    """Rough virtual seconds per timestep: (#SDs x DPs/SD x flops/DP)
    / (base rate x nodes).  Used to place churn/drift/interference
    events relative to the run, not to predict exact makespans."""
    dps_per_sd = (mesh // sd_axis) ** 2
    return (sd_axis * sd_axis) * dps_per_sd * flops_per_dp / CORE_SPEED / nodes


@register("hetero_churn")
def hetero_churn(mesh: int = 128, sd_axis: int = 8, nodes: int = 4,
                 steps: int = 16, seed: int = 0, balancer: str = "auto",
                 balanced: bool = True) -> ScenarioSpec:
    """Elastic cluster churn (DESIGN.md substitution 4): membership
    changes mid-run.

    Node 1 straggles through the early steps, node 0 *fails* near the
    middle of the run (its SDs are evacuated and its in-flight tasks
    requeued with the recovery penalty), and a faster replacement joins
    for the tail.  Adaptive balancing re-spreads load after each
    change; ``balanced=False`` is the baseline that pays for every SD
    stranded on the wrong survivor — the churn ablation's comparison.
    """
    sg = _step_guess(mesh, sd_axis, nodes)
    faults = FaultSpec(events=(
        ChurnEvent("straggle", 1.5 * sg, node=1, stop=4.5 * sg, factor=0.5),
        ChurnEvent("fail", 5.5 * sg, node=0),
        ChurnEvent("join", 9.5 * sg, node=nodes, cores=1,
                    rate=1.25 * CORE_SPEED),
    ))
    return ScenarioSpec(
        name="hetero_churn",
        mesh=MeshSpec(nx=mesh, sd_nx=sd_axis, eps_factor=EPS_FACTOR),
        cluster=ClusterSpec(num_nodes=nodes, faults=faults),
        partition=PartitionSpec(method="metis", seed=seed),
        policy=(PolicySpec(kind="interval", interval=1, balancer=balancer)
                if balanced else PolicySpec(balancer=balancer)),
        num_steps=steps)


@register("fault_recovery")
def fault_recovery(nx: int = 32, sd_axis: int = 4, nodes: int = 3,
                   steps: int = 6, balancer: str = "tree") -> ScenarioSpec:
    """The small numerics-on recovery validation (golden fixture).

    One node fails mid-run on a 3-node cluster integrating the
    manufactured problem; the run must recover — requeued kernels,
    evacuated SDs, recovery-tagged balance events — with final
    temperatures still bit-near the serial solver.  Everything is
    pinned (``tree`` strategy, ``direct`` backend, ``flat`` cost
    model, block partition) so the committed
    ``tests/golden/fault_recovery.json`` record is invariant under the
    CI's REPRO_BALANCER / REPRO_KERNEL_BACKEND / REPRO_COST_MODEL
    matrices and across machines.
    """
    # eps = 2h -> radius 2, ~13 stencil neighbors, ~26 flops per DP.
    # 3.8 guessed steps lands mid-step-2 while node 1 has kernels in
    # flight, so the fixture pins the requeue path, not just evacuation
    sg = _step_guess(nx, sd_axis, nodes, flops_per_dp=26.0)
    faults = FaultSpec(events=(
        ChurnEvent("fail", 3.8 * sg, node=1),))
    return ScenarioSpec(
        name="fault_recovery",
        mesh=MeshSpec(nx=nx, sd_nx=sd_axis, eps_factor=2.0),
        cluster=ClusterSpec(num_nodes=nodes, faults=faults),
        partition=PartitionSpec(method="blocks"),
        policy=PolicySpec(kind="interval", interval=1, balancer=balancer),
        num_steps=steps, compute_numerics=True, track_error=True,
        kernel_backend="direct", cost_model="flat")


@register("straggler_tail")
def straggler_tail(mesh: int = 128, sd_axis: int = 8, nodes: int = 4,
                   steps: int = 12, seed: int = 0,
                   balanced: bool = True) -> ScenarioSpec:
    """Transient stragglers (tail latency): two nodes take turns running
    far below their nominal rate for a few-step window while membership
    stays fixed.  The threshold policy notices the busy-time spread and
    shifts SDs away from the straggler — then back once the window
    passes; ``balanced=False`` rides the tail at full price.
    """
    sg = _step_guess(mesh, sd_axis, nodes)
    faults = FaultSpec(events=(
        ChurnEvent("straggle", 2.0 * sg, node=0, stop=5.0 * sg, factor=0.35),
        ChurnEvent("straggle", 7.0 * sg, node=2, stop=10.0 * sg, factor=0.4),
    ))
    return ScenarioSpec(
        name="straggler_tail",
        mesh=MeshSpec(nx=mesh, sd_nx=sd_axis, eps_factor=EPS_FACTOR),
        cluster=ClusterSpec(num_nodes=nodes, faults=faults),
        partition=PartitionSpec(method="metis", seed=seed),
        policy=(PolicySpec(kind="threshold", ratio=1.15) if balanced
                else PolicySpec()),
        num_steps=steps)


# ---------------------------------------------------------------------------
# topology scenarios (DESIGN.md substitution 5)
# ---------------------------------------------------------------------------

@register("rack_locality")
def rack_locality(mesh: int = 256, sd_axis: int = 8, nodes: int = 8,
                  steps: int = 5, seed: int = 0,
                  placement: str = "rack") -> ScenarioSpec:
    """Rack locality on a switched two-rack cluster.

    Eight nodes in two racks of four behind moderately oversubscribed
    uplinks, on a communication-dominated network (the Abl. A tier).
    ``placement`` selects how the METIS-style parts land on nodes:
    ``rack`` packs adjacent parts into the same rack so ghost traffic
    stays off the uplinks, ``scatter`` deals them round-robin across
    racks (the placement-oblivious baseline), ``none`` keeps the
    partitioner's labels.
    """
    return ScenarioSpec(
        name="rack_locality",
        mesh=MeshSpec(nx=mesh, sd_nx=sd_axis, eps_factor=EPS_FACTOR),
        cluster=ClusterSpec(
            num_nodes=nodes, latency=2e-5, bandwidth=1e6,
            topology=TopologySpec(kind="switched", rack_size=4,
                                  oversubscription=8.0)),
        partition=PartitionSpec(method="metis", seed=seed,
                                placement=placement),
        num_steps=steps)


@register("oversubscribed_uplink")
def oversubscribed_uplink(mesh: int = 256, sd_axis: int = 8, nodes: int = 8,
                          steps: int = 5, seed: int = 0,
                          placement: str = "rack",
                          oversubscription: float = 16.0) -> ScenarioSpec:
    """Heavily oversubscribed uplinks: the placement ablation workload.

    Same two-rack layout as ``rack_locality`` but the uplinks carry
    only ``rack_size / oversubscription`` NICs' worth of bandwidth, so
    every inter-rack ghost byte queues behind the whole rack's egress
    traffic.  Rack-aware placement keeps the heavy part boundaries
    intra-rack and beats scattered placement on makespan — the
    acceptance criterion ``benchmarks/bench_abl_topology.py`` records
    in ``BENCH_topology.json``.
    """
    return ScenarioSpec(
        name="oversubscribed_uplink",
        mesh=MeshSpec(nx=mesh, sd_nx=sd_axis, eps_factor=EPS_FACTOR),
        cluster=ClusterSpec(
            num_nodes=nodes, latency=2e-5, bandwidth=1e6,
            topology=TopologySpec(kind="switched", rack_size=4,
                                  oversubscription=oversubscription)),
        partition=PartitionSpec(method="metis", seed=seed,
                                placement=placement),
        num_steps=steps)


@register("abl_costmodel")
def abl_costmodel(mesh: int = 256, sd_axis: int = 8, nodes: int = 8,
                  steps: int = 3, seed: int = 0, backend: str = "direct",
                  placement: str = "rack",
                  cost_model: str = "hierarchy") -> ScenarioSpec:
    """Cost-model co-optimization: granularity x backend x placement.

    One cell of the ``bench_costmodel`` configuration sweep: a
    two-rack switched cluster on a compute-weighted network tier (fast
    enough that task cost, not wire time, is first-order — placement
    still matters through the oversubscribed uplinks), an explicit
    per-node :class:`MemorySpec` cache ladder, and a pinned kernel
    backend.  Under the ``flat`` cost model the backend axis is
    degenerate — every backend prices a DP update at the same
    neighbor-count flops, so makespans tie across backends and the
    optimal ``(sd_axis, backend, placement)`` cell is decided by
    communication alone.  Under ``hierarchy`` the per-(backend, block
    shape) reuse-distance profiles break the tie: cache pressure moves
    the optimum to a different granularity *and* backend, which
    ``benchmarks/bench_costmodel.py`` demonstrates and
    ``BENCH_costmodel.json`` records.
    """
    return ScenarioSpec(
        name="abl_costmodel",
        mesh=MeshSpec(nx=mesh, sd_nx=sd_axis, eps_factor=EPS_FACTOR),
        cluster=ClusterSpec(
            num_nodes=nodes, latency=5e-6, bandwidth=1e8,
            topology=TopologySpec(kind="switched", rack_size=4,
                                  oversubscription=8.0),
            memory=MemorySpec()),
        partition=PartitionSpec(method="metis", seed=seed,
                                placement=placement),
        num_steps=steps,
        kernel_backend=backend,
        cost_model=cost_model)


@register("wan_joiner")
def wan_joiner(mesh: int = 128, sd_axis: int = 8, nodes: int = 4,
               steps: int = 16, seed: int = 0, balancer: str = "auto",
               balanced: bool = True) -> ScenarioSpec:
    """An elastic joiner provisioned across a WAN (churn x topology).

    The PR-4 churn machinery composed with the hierarchical topology:
    a two-rack cluster loses node 3 mid-run, and the replacement joins
    from a *WAN rack* — every byte it exchanges (absorption migrations,
    ghosts on its part boundaries) pays WAN latency and bandwidth.
    Adaptive balancing must weigh the joiner's compute against its
    placement; ``balanced=False`` leaves the joiner idle entirely.
    """
    if nodes < 2:
        raise ValueError("wan_joiner needs >= 2 nodes (one fails mid-run)")
    sg = _step_guess(mesh, sd_axis, nodes)
    faults = FaultSpec(events=(
        ChurnEvent("fail", 5.5 * sg, node=nodes - 1),
        ChurnEvent("join", 7.5 * sg, node=nodes, cores=1,
                   rate=1.5 * CORE_SPEED),
    ))
    # pairs of nodes per rack; the joiner lands in a fresh WAN rack
    racks = tuple(i // 2 for i in range(nodes))
    wan_rack = racks[-1] + 1
    return ScenarioSpec(
        name="wan_joiner",
        mesh=MeshSpec(nx=mesh, sd_nx=sd_axis, eps_factor=EPS_FACTOR),
        cluster=ClusterSpec(
            num_nodes=nodes, faults=faults,
            topology=TopologySpec(
                kind="hierarchical", rack_size=2, racks=racks,
                join_rack=wan_rack, wan_racks=(wan_rack,),
                wan_latency=2e-4, wan_bandwidth=1.25e7)),
        partition=PartitionSpec(method="metis", seed=seed),
        policy=(PolicySpec(kind="interval", interval=1, balancer=balancer)
                if balanced else PolicySpec(balancer=balancer)),
        num_steps=steps)


@register("quickstart")
def quickstart(nx: int = 64, sd_axis: int = 4, nodes: int = 4,
               steps: int = NUM_STEPS, seed: int = 0) -> ScenarioSpec:
    """The numerics-on quickstart: real temperatures on the simulated
    cluster, validated per-step against the manufactured solution."""
    return ScenarioSpec(
        name="quickstart",
        mesh=MeshSpec(nx=nx, sd_nx=sd_axis, eps_factor=EPS_FACTOR),
        cluster=ClusterSpec(num_nodes=nodes),
        partition=PartitionSpec(method="metis", seed=seed),
        num_steps=steps, compute_numerics=True, track_error=True)


@register("solve_serial")
def solve_serial(nx: int = 64, eps_factor: float = EPS_FACTOR,
                 steps: int = NUM_STEPS,
                 source_mode: str = "continuum") -> ScenarioSpec:
    """One serial manufactured-problem solve with error report (the
    CLI ``solve`` command)."""
    return ScenarioSpec(
        name="solve_serial",
        mesh=MeshSpec(nx=nx, eps_factor=eps_factor),
        solver="serial", num_steps=steps, track_error=True,
        compute_numerics=True, source_mode=source_mode)


@register("scale_extreme")
def scale_extreme(mesh: int = 2048, sd_axis: int = 64, nodes: int = 512,
                  steps: int = 3) -> ScenarioSpec:
    """DES-throughput stress tier: the event-rate benchmark workload.

    2048x2048 DPs over 64x64 = 4096 SDs on 512 single-core nodes with
    block layout, numerics off and no spawn overhead — millions of
    ghost-delivery and task-completion events per run, all schedule.
    This is the configuration ``benchmarks/bench_des_core.py`` measures
    events/sec on (queue backends x wave batching x plan cache); scale
    it down for smoke tests with ``mesh=512, sd_axis=16, nodes=32``.
    """
    return ScenarioSpec(
        name="scale_extreme",
        mesh=MeshSpec(nx=mesh, sd_nx=sd_axis, eps_factor=EPS_FACTOR),
        cluster=ClusterSpec(num_nodes=nodes, cores_per_node=1),
        partition=PartitionSpec(method="blocks"),
        num_steps=steps)


@register("scale_strong")
def scale_strong(mesh: int = 400, sd_axis: int = 8, nodes: int = 8,
                 steps: int = NUM_STEPS, seed: int = 0) -> ScenarioSpec:
    """One point of the CLI ``scale`` sweep: METIS-style layout on the
    default homogeneous cluster."""
    return ScenarioSpec(
        name="scale_strong",
        mesh=MeshSpec(nx=mesh, sd_nx=sd_axis, eps_factor=EPS_FACTOR),
        cluster=ClusterSpec(num_nodes=nodes),
        partition=PartitionSpec(method="metis", seed=seed),
        num_steps=steps)


# ---------------------------------------------------------------------------
# service scenarios (multi-tenant open-loop serving)
# ---------------------------------------------------------------------------
#
# Capacity yardstick for the default fleet (4 nodes x 1e9 flops/s, the
# default tenant mix below): one job costs ~5.3e-5 node-seconds of
# compute, so the cluster saturates around ~7.5e4 jobs/s.  The poisson
# and bursty scenarios offer ~25% of that; ``service_overload`` offers
# ~2x capacity so goodput must flatten at the service rate while shed
# load absorbs the rest — the saturation curve BENCH_service.json pins.

def _default_tenants():
    from ..service import TenantSpec
    # alpha and beta share the 32x32/eps-2h cached operator; gamma's
    # 48x48 mesh forces a second assembly — one of each reuse case
    return (TenantSpec(name="alpha", weight=1.0, nx=32, steps=2),
            TenantSpec(name="beta", weight=1.0, nx=32, steps=2),
            TenantSpec(name="gamma", weight=2.0, nx=48, steps=2))


@register("service_poisson")
def service_poisson(rate: float = 20000.0, horizon: float = 5e-3,
                    nodes: int = 4, seed: int = 0, depth: int = 16,
                    concurrent: int = 8):
    """Steady multi-tenant load: Poisson arrivals at ~25% of capacity.

    The baseline serving scenario — no shedding expected, queue waits
    dominated by the round-robin dispatch granularity."""
    from ..service import ArrivalSpec, ServiceSpec
    return ServiceSpec(
        name="service_poisson",
        tenants=_default_tenants(),
        cluster=ClusterSpec(num_nodes=nodes),
        arrival=ArrivalSpec(process="poisson", rate=rate, seed=seed),
        horizon=horizon, max_queue_depth=depth, max_concurrent=concurrent)


@register("service_bursty")
def service_bursty(rate: float = 20000.0, horizon: float = 5e-3,
                   nodes: int = 4, seed: int = 0, depth: int = 16,
                   concurrent: int = 8, burst_on: float = 5e-4,
                   burst_off: float = 1.5e-3):
    """On/off bursts at the same average load as ``service_poisson``:
    within a burst the instantaneous rate is 4x, so queues (and p99
    waits) grow during bursts and drain in the gaps."""
    from ..service import ArrivalSpec, ServiceSpec
    return ServiceSpec(
        name="service_bursty",
        tenants=_default_tenants(),
        cluster=ClusterSpec(num_nodes=nodes),
        arrival=ArrivalSpec(process="bursty", rate=rate, seed=seed,
                            burst_on=burst_on, burst_off=burst_off),
        horizon=horizon, max_queue_depth=depth, max_concurrent=concurrent)


@register("service_overload")
def service_overload(rate: float = 150000.0, horizon: float = 2e-3,
                     nodes: int = 4, seed: int = 0, depth: int = 8,
                     concurrent: int = 8):
    """Offered load ~2x capacity: admission control must shed the
    excess so goodput saturates below the offered rate while the p99
    queue wait of *admitted* jobs stays bounded by the finite queues
    (depth x service time, not horizon) — the overload acceptance
    criterion."""
    from ..service import ArrivalSpec, ServiceSpec
    return ServiceSpec(
        name="service_overload",
        tenants=_default_tenants(),
        cluster=ClusterSpec(num_nodes=nodes),
        arrival=ArrivalSpec(process="poisson", rate=rate, seed=seed),
        horizon=horizon, max_queue_depth=depth, max_concurrent=concurrent)


@register("flash_crowd")
def flash_crowd(rate: float = 40000.0, horizon: float = 1.2e-2,
                seed: int = 0, min_nodes: int = 2, max_nodes: int = 8,
                depth: int = 16, concurrent: int = 8,
                burst_on: float = 4e-3, burst_off: float = 8e-3):
    """One flash crowd against a closed-loop autoscaled fleet.

    A single on/off burst (one ``burst_on + burst_off`` cycle fills
    the horizon) offers ~3x the *minimum* fleet's capacity while it
    lasts: a static ``min_nodes`` fleet sheds heavily and queues to
    the depth limit, a static ``max_nodes`` fleet coasts at a fraction
    of utilization, and the autoscaler rides the frontier between them
    — grow through the burst on sustained utilization/shed pressure,
    drain back to the floor once the backlog clears.  This is the
    scenario ``benchmarks/bench_autoscale.py`` runs three ways to pin
    the node-hours-vs-p99 frontier (BENCH_autoscale.json).
    """
    from ..service import ArrivalSpec, AutoscaleSpec, ServiceSpec
    return ServiceSpec(
        name="flash_crowd",
        tenants=_default_tenants(),
        cluster=ClusterSpec(num_nodes=min_nodes),
        arrival=ArrivalSpec(process="bursty", rate=rate, seed=seed,
                            burst_on=burst_on, burst_off=burst_off),
        horizon=horizon, max_queue_depth=depth, max_concurrent=concurrent,
        autoscale=AutoscaleSpec(
            min_nodes=min_nodes, max_nodes=max_nodes,
            poll_interval=2e-4, cooldown=4e-4, provision_delay=4e-4,
            warmup=4e-4, warmup_factor=0.5,
            scale_out_utilization=0.85, scale_in_utilization=0.3,
            max_shed_rate=0.0,  # any shedding is scale-out pressure
            breach_polls=2, low_polls=4))


@register("diurnal_autoscale")
def diurnal_autoscale(rate: float = 40000.0, horizon: float = 2e-2,
                      seed: int = 0, min_nodes: int = 2,
                      max_nodes: int = 6, depth: int = 16,
                      concurrent: int = 8, amplitude: float = 0.8):
    """A full diurnal cycle tracked by the autoscaler.

    Sinusoidally modulated arrivals (one period = the horizon) swing
    the offered load from ~0.2x to ~1.8x the average; the policy
    should grow the fleet through the peak and drain it through the
    trough, so provisioned node-seconds track the load curve instead
    of the peak — the paper-style elasticity argument, closed-loop.
    """
    from ..service import ArrivalSpec, AutoscaleSpec, ServiceSpec
    return ServiceSpec(
        name="diurnal_autoscale",
        tenants=_default_tenants(),
        cluster=ClusterSpec(num_nodes=min_nodes),
        arrival=ArrivalSpec(process="diurnal", rate=rate, seed=seed,
                            period=horizon, amplitude=amplitude),
        horizon=horizon, max_queue_depth=depth, max_concurrent=concurrent,
        autoscale=AutoscaleSpec(
            min_nodes=min_nodes, max_nodes=max_nodes,
            poll_interval=2.5e-4, cooldown=5e-4, provision_delay=5e-4,
            warmup=5e-4, warmup_factor=0.5,
            scale_out_utilization=0.85, scale_in_utilization=0.3,
            max_shed_rate=0.0,
            breach_polls=2, low_polls=4))


@register("service_extreme")
def service_extreme(rate: float = 2e7, horizon: float = 5e-2,
                    nodes: int = 64, tenants: int = 64, seed: int = 0,
                    depth: int = 4, concurrent: int = 16):
    """Service-throughput stress tier: the arrival-pump benchmark
    workload (the service-path analogue of ``scale_extreme``).

    64 tenants offer ~10^6 jobs over the horizon onto a 64-node fleet
    that can complete only a tiny fraction — deep overload, so almost
    every arrival is consumed by admission control (queue full → shed)
    while the admitted jobs keep all 64 nodes busy with interleaved
    step-DAGs.  Numerics-free: the per-job flops come from the two
    shared cached operators (every 8th tenant runs a 96x96 mesh, the
    rest 64x64), no temperatures move.  This is the configuration
    ``benchmarks/bench_service.py`` measures wall-clock DES throughput
    on; scale it down for smoke tests by shrinking ``horizon``.
    """
    from ..service import ArrivalSpec, ServiceSpec, TenantSpec
    mix = tuple(
        TenantSpec(name=f"t{i:02d}",
                   weight=2.0 if i % 4 == 0 else 1.0,
                   nx=96 if i % 8 == 0 else 64,
                   steps=2)
        for i in range(tenants))
    return ServiceSpec(
        name="service_extreme",
        tenants=mix,
        cluster=ClusterSpec(num_nodes=nodes),
        arrival=ArrivalSpec(process="poisson", rate=rate, seed=seed),
        horizon=horizon, max_queue_depth=depth, max_concurrent=concurrent)
