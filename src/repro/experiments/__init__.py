"""Unified scenario/experiment engine.

Declarative experiment layer over the whole repository: frozen scenario
specs (:mod:`spec`), named scenario factories (:mod:`registry`), the
spec → solver construction path with an operator cache and a
process-parallel sweep runner (:mod:`runner`), and structured
JSON-serializable results (:mod:`results`).

>>> from repro.experiments import build, run_scenario
>>> rec = run_scenario(build("fig14_load_balance", steps=3))
>>> rec.final_parts  # doctest: +SKIP
[0, 0, 1, ...]
"""

from .registry import (CORE_SPEED, EPS_FACTOR, NUM_STEPS, SPAWN_OVERHEAD,
                       balancer_sweep, build, get_factory, register,
                       scenario_names)
from .results import (SCHEMA, RunRecord, read_records, write_json,
                      write_records)
from .runner import (build_parts, build_problem, build_solver,
                     build_work_factors, cached_operator,
                     clear_operator_cache, operator_cache_info,
                     ownership_timeline, run_scenario, run_sweep)
from .spec import (ChurnEvent, ClusterSpec, DriftSpec, FaultSpec,
                   InterferenceSpec, MemoryLevelSpec, MemorySpec, MeshSpec,
                   PartitionSpec, PolicySpec, ScenarioSpec, TopologySpec)

#: Alias for re-export at the package root, where bare ``build`` would
#: be ambiguous.
build_scenario = build

__all__ = [
    "MeshSpec", "ClusterSpec", "DriftSpec", "FaultSpec", "ChurnEvent",
    "InterferenceSpec", "MemoryLevelSpec", "MemorySpec", "PartitionSpec",
    "PolicySpec", "ScenarioSpec", "TopologySpec",
    "register", "build", "build_scenario", "get_factory", "scenario_names",
    "balancer_sweep",
    "EPS_FACTOR", "NUM_STEPS", "CORE_SPEED", "SPAWN_OVERHEAD",
    "RunRecord", "SCHEMA", "write_json", "write_records", "read_records",
    "cached_operator", "operator_cache_info", "clear_operator_cache",
    "build_problem", "build_work_factors", "build_parts", "build_solver",
    "ownership_timeline", "run_scenario", "run_sweep",
]
