"""Time-varying node capacity traces (paper Sec. 4, challenge 4).

"Compute capacity of the individual computational nodes may vary with
time, either due to scheduling of some other task or due to the
intrinsic behaviour of the nonlocal model."  These factories build
:class:`repro.amt.cluster.PiecewiseSpeed` traces modelling the external
interference case:

* :func:`step_interference` — a competing job lands on the node for a
  window, halving (configurably) its rate;
* :func:`staircase_degradation` — capacity decays in steps (e.g. thermal
  throttling);
* :func:`random_interference` — seeded random on/off interference
  windows, for stress tests.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..amt.cluster import ConstantSpeed, PiecewiseSpeed, RampSpeed, SpeedTrace

__all__ = ["step_interference", "staircase_degradation",
           "random_interference", "heterogeneous_constant", "drift_ramp"]


def heterogeneous_constant(rates: Sequence[float]) -> List[SpeedTrace]:
    """Constant-but-unequal node speeds (static heterogeneity)."""
    return [ConstantSpeed(r) for r in rates]


def drift_ramp(rates_start: Sequence[float], rates_end: Sequence[float],
               start: float, stop: float) -> List[SpeedTrace]:
    """Per-node capacity that drifts linearly from start to end rates.

    Every node ramps from ``rates_start[i]`` to ``rates_end[i]`` over
    the virtual-time window ``[start, stop]`` (constant outside it) —
    the ``hetero_drift`` workload where the load distribution shifts
    *mid-run* and one-shot balancing decisions age badly.  Nodes whose
    two rates coincide get a plain :class:`ConstantSpeed`.
    """
    if len(rates_start) != len(rates_end):
        raise ValueError(f"need matching rate vectors, got "
                         f"{len(rates_start)} vs {len(rates_end)}")
    return [ConstantSpeed(r0) if r0 == r1
            else RampSpeed(r0, r1, start, stop)
            for r0, r1 in zip(rates_start, rates_end)]


def step_interference(base_rate: float, start: float, stop: float,
                      slowdown: float = 0.5) -> SpeedTrace:
    """A node that runs at ``base_rate`` except during ``[start, stop)``,
    where a competing job scales it by ``slowdown``.
    """
    if not 0 < slowdown <= 1:
        raise ValueError(f"slowdown must be in (0,1], got {slowdown}")
    if stop <= start:
        raise ValueError(f"need start < stop, got [{start},{stop})")
    if start <= 0:
        return PiecewiseSpeed([stop], [base_rate * slowdown, base_rate])
    return PiecewiseSpeed([start, stop],
                          [base_rate, base_rate * slowdown, base_rate])


def staircase_degradation(base_rate: float, step_times: Sequence[float],
                          decay: float = 0.8) -> SpeedTrace:
    """Rate multiplies by ``decay`` at each time in ``step_times``."""
    if not 0 < decay < 1:
        raise ValueError(f"decay must be in (0,1), got {decay}")
    times = sorted(float(t) for t in step_times)
    if not times:
        return ConstantSpeed(base_rate)
    rates = [base_rate * decay ** i for i in range(len(times) + 1)]
    return PiecewiseSpeed(times, rates)


def random_interference(base_rate: float, horizon: float,
                        num_windows: int, slowdown: float = 0.5,
                        seed: Optional[int] = 0) -> SpeedTrace:
    """Seeded random interference windows over ``[0, horizon]``.

    ``num_windows`` disjoint slowdown windows with random positions and
    widths; deterministic for a fixed seed so simulated schedules remain
    reproducible.
    """
    if num_windows < 1:
        return ConstantSpeed(base_rate)
    if not 0 < slowdown <= 1:
        raise ValueError(f"slowdown must be in (0,1], got {slowdown}")
    rng = np.random.default_rng(seed)
    # draw 2*num_windows distinct breakpoints, sorted: [on, off, on, off..]
    cuts = np.sort(rng.uniform(0.0, horizon, size=2 * num_windows))
    # enforce strict monotonicity (PiecewiseSpeed requirement)
    for i in range(1, len(cuts)):
        if cuts[i] <= cuts[i - 1]:
            cuts[i] = np.nextafter(cuts[i - 1], np.inf)
    rates = []
    for i in range(len(cuts) + 1):
        inside_window = i % 2 == 1
        rates.append(base_rate * (slowdown if inside_window else 1.0))
    return PiecewiseSpeed(list(cuts), rates)
