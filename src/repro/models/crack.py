"""Crack-induced workload heterogeneity (paper Sec. 7 motivation).

In nonlocal fracture models, bonds crossing a crack are broken: material
points on either side of the crack line stop interacting, so SDs
containing crack segments perform *less* work per timestep than intact
SDs.  The paper cites this as the primary source of intrinsic load
imbalance its balancer must handle.

We model a crack as a polyline in the unit square.  For each SD we count
the fraction of its stencil bonds severed by the crack and derive a work
factor in ``(0, 1]``:

    work_factor(SD) = 1 - severed_bond_fraction(SD) * (1 - floor)

computed by Monte-Carlo-free deterministic sampling: DP pairs within the
horizon are sampled on a coarse lattice inside the SD and a bond is
severed iff its segment crosses a crack segment.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from ..mesh.subdomain import SubdomainGrid

__all__ = ["Crack", "crack_work_factors"]

Point = Tuple[float, float]


def _segments_intersect(p1: Point, p2: Point, q1: Point, q2: Point) -> bool:
    """Proper/improper segment intersection via orientation tests."""
    def orient(a: Point, b: Point, c: Point) -> float:
        return (b[0] - a[0]) * (c[1] - a[1]) - (b[1] - a[1]) * (c[0] - a[0])

    d1 = orient(q1, q2, p1)
    d2 = orient(q1, q2, p2)
    d3 = orient(p1, p2, q1)
    d4 = orient(p1, p2, q2)
    if ((d1 > 0) != (d2 > 0)) and ((d3 > 0) != (d4 > 0)):
        return True

    def on_seg(a: Point, b: Point, c: Point) -> bool:
        return (min(a[0], b[0]) <= c[0] <= max(a[0], b[0])
                and min(a[1], b[1]) <= c[1] <= max(a[1], b[1]))

    if d1 == 0 and on_seg(q1, q2, p1):
        return True
    if d2 == 0 and on_seg(q1, q2, p2):
        return True
    if d3 == 0 and on_seg(p1, p2, q1):
        return True
    if d4 == 0 and on_seg(p1, p2, q2):
        return True
    return False


class Crack:
    """A polyline crack in unit-square coordinates.

    Parameters
    ----------
    points:
        Vertices of the polyline (at least two).
    """

    def __init__(self, points: Sequence[Point]) -> None:
        if len(points) < 2:
            raise ValueError("a crack needs at least two points")
        self.points = [(float(x), float(y)) for x, y in points]

    @property
    def segments(self) -> List[Tuple[Point, Point]]:
        """Consecutive vertex pairs."""
        return list(zip(self.points[:-1], self.points[1:]))

    def severs(self, a: Point, b: Point) -> bool:
        """Whether the bond ``a-b`` crosses the crack."""
        return any(_segments_intersect(a, b, q1, q2)
                   for q1, q2 in self.segments)

    @classmethod
    def horizontal(cls, y: float, x0: float = 0.0, x1: float = 1.0) -> "Crack":
        """A horizontal crack at height ``y`` spanning ``[x0, x1]``."""
        return cls([(x0, y), (x1, y)])

    @classmethod
    def diagonal(cls) -> "Crack":
        """The unit-square diagonal (a worst-case asymmetric crack)."""
        return cls([(0.0, 0.0), (1.0, 1.0)])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Crack {len(self.points)} pts>"


def crack_work_factors(sd_grid: SubdomainGrid, crack,
                       horizon: float, floor: float = 0.3,
                       samples_per_sd: int = 5) -> np.ndarray:
    """Per-SD work multipliers induced by one or more cracks.

    Parameters
    ----------
    sd_grid:
        SD geometry; factors are indexed by SD id.
    crack:
        A :class:`Crack` or a sequence of them (a crack network); a bond
        is severed if *any* crack crosses it.
    horizon:
        Nonlocal horizon ``eps`` in unit-square units (bond length
        scale).
    floor:
        Work factor of a fully severed SD: even with every sampled bond
        broken, an SD still iterates its DPs and evaluates the (short)
        neighbour lists, so the factor never reaches zero.
    samples_per_sd:
        Lattice resolution for bond sampling within each SD (the number
        of sample points per axis).  5x5 points with 4 bond directions is
        enough to resolve "crack passes through" vs "misses" at SD
        granularity.

    Returns
    -------
    float64 array in ``[floor, 1]`` of length ``sd_grid.num_subdomains``.
    """
    if not 0.0 < floor <= 1.0:
        raise ValueError(f"floor must be in (0,1], got {floor}")
    if samples_per_sd < 2:
        raise ValueError(f"samples_per_sd must be >= 2, got {samples_per_sd}")
    cracks: List[Crack] = [crack] if isinstance(crack, Crack) else list(crack)
    if not cracks:
        raise ValueError("need at least one crack")
    factors = np.ones(sd_grid.num_subdomains)
    # bond directions: axis-aligned and diagonal, at the horizon scale
    dirs = np.array([(1.0, 0.0), (0.0, 1.0),
                     (0.7071, 0.7071), (-0.7071, 0.7071)]) * horizon
    for sd in range(sd_grid.num_subdomains):
        rect = sd_grid.rect(sd)
        # sample points in unit-square coordinates
        xs = np.linspace(rect.x0, rect.x1, samples_per_sd) / sd_grid.mesh_nx
        ys = np.linspace(rect.y0, rect.y1, samples_per_sd) / sd_grid.mesh_ny
        severed = 0
        total = 0
        for y in ys:
            for x in xs:
                for dx, dy in dirs:
                    total += 1
                    a = (x - dx / 2, y - dy / 2)
                    b = (x + dx / 2, y + dy / 2)
                    if any(c.severs(a, b) for c in cracks):
                        severed += 1
        frac = severed / total if total else 0.0
        factors[sd] = 1.0 - frac * (1.0 - floor)
    return factors
