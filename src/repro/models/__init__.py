"""Workload-heterogeneity models that create the load imbalance the
paper's balancer corrects: crack geometry (:mod:`repro.models.crack`) and
time-varying node capacity (:mod:`repro.models.workload`)."""

from .crack import Crack, crack_work_factors
from .workload import (drift_ramp, heterogeneous_constant,
                       random_interference, staircase_degradation,
                       step_interference)

__all__ = [
    "Crack", "crack_work_factors",
    "drift_ramp", "heterogeneous_constant", "random_interference",
    "staircase_degradation", "step_interference",
]
