"""The load-balancer facade over the pluggable strategy subsystem.

Algorithm 1 itself now lives in :mod:`repro.core.strategies.tree`; its
classic alternatives (``diffusion``, ``greedy``, ``repartition``) sit
beside it behind the shared :class:`repro.core.strategies.base
.BalanceStrategy` interface and name registry.  :class:`LoadBalancer`
is the stable entry point the solvers and tests use: it resolves a
strategy *name* (``"auto"`` honors the ``REPRO_BALANCER`` environment
override and defaults to the paper's algorithm) and delegates
``balance_step`` to it.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

from ..mesh.subdomain import SubdomainGrid
from .strategies import BalanceResult, BalanceStrategy, make_strategy

__all__ = ["BalanceResult", "LoadBalancer"]


class LoadBalancer:
    """A balancing strategy bound to an SD grid.

    Parameters
    ----------
    sd_grid:
        SD geometry (for adjacency and transfer selection).
    trigger_threshold:
        Minimum ``max |target - current|`` (in average-SD work units)
        required to act; below it the step is a no-op.
    preserve_connectivity:
        Forwarded to the transfer policy.
    strategy:
        A registered strategy name (``"tree"``, ``"diffusion"``,
        ``"greedy"``, ``"repartition"``), ``"auto"`` (the
        ``REPRO_BALANCER`` override, else the paper's algorithm), or a
        prebuilt :class:`BalanceStrategy` instance.  Resolution happens
        here, at construction, so a run's strategy is fixed up front.
    """

    def __init__(self, sd_grid: SubdomainGrid,
                 trigger_threshold: float = 1.0,
                 preserve_connectivity: bool = True,
                 strategy: Union[str, BalanceStrategy] = "auto") -> None:
        if isinstance(strategy, BalanceStrategy):
            self._strategy = strategy
        else:
            self._strategy = make_strategy(
                strategy, sd_grid, trigger_threshold=trigger_threshold,
                preserve_connectivity=preserve_connectivity)
        self.sd_grid = sd_grid
        self.trigger_threshold = trigger_threshold
        self.preserve_connectivity = preserve_connectivity

    @property
    def name(self) -> str:
        """The resolved strategy name (telemetry records this)."""
        return self._strategy.name

    def balance_step(self, parts: Sequence[int], num_nodes: int,
                     busy_times: Sequence[float],
                     work_per_sd: Optional[Sequence[float]] = None,
                     active: Optional[Sequence[bool]] = None) -> BalanceResult:
        """Run one balancing step; returns the new ownership and diagnostics.

        See :meth:`repro.core.strategies.base.BalanceStrategy
        .balance_step` for the parameters (``active`` is the elastic
        cluster's per-node liveness mask).
        """
        return self._strategy.balance_step(parts, num_nodes, busy_times,
                                           work_per_sd=work_per_sd,
                                           active=active)

    def __repr__(self) -> str:
        return f"LoadBalancer(strategy={self.name!r})"
