"""Algorithm 1: the paper's load balancing algorithm.

One balancing step:

1. read the per-node busy-time counters accumulated since the last reset;
2. compute Power / ExpectedSDs / LoadImbalance (eqs. 8-10), rounding the
   fractional expected shares to integer **targets** with
   largest-remainder apportionment (SDs are indivisible; naive rounding
   makes the algorithm oscillate between configurations that are equally
   close to ideal);
3. root a BFS dependency tree at ``argmin(LoadImbalance)`` over the node
   adjacency induced by the current SD ownership (lines 13-18);
4. settle every tree edge with its **subtree flow**: the amount crossing
   edge (child, parent) is the summed residual of the child's subtree.
   On the paper's star example (Fig. 7) this reduces exactly to the
   published walk — every leaf settles its own imbalance against the
   hub (``XchngNum = imbalance / L`` with ``L = 1``) and the hub is
   balanced by conservation.  On general trees the aggregated form is
   required for termination: per-node uniform splitting can strand
   residual on tree leaves and drain intermediate nodes that later
   transfers need as relays.  Surplus flows run bottom-up first, deficit
   flows top-down second, so every transfer is physically realizable
   when it executes;
5. each individual exchange moves concrete SDs chosen by the
   direction-uniform, contiguity-preserving policy in
   :mod:`repro.core.transfer` (geometry can cap a transfer below the
   requested amount; the shortfall stays as residual and is retried at
   the next balancing step);
6. reset all busy-time counters (line 35, done by the caller that owns
   the counters).

With heterogeneous per-SD work (the crack model), all quantities are in
work units rather than SD counts and transfers move SDs one at a time
until the settled work is within half an average SD of the share.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..mesh.decomposition import Decomposition
from ..mesh.subdomain import SubdomainGrid
from .power import compute_power, expected_sds, integer_targets
from .transfer import TransferPlan, select_transfers
from .tree import build_dependency_tree, topological_order

__all__ = ["BalanceResult", "LoadBalancer"]


class BalanceResult:
    """Diagnostics of one balancing step."""

    def __init__(self, parts_before: np.ndarray, parts_after: np.ndarray,
                 imbalance_before: np.ndarray, plans: List[TransferPlan],
                 triggered: bool) -> None:
        self.parts_before = parts_before
        self.parts_after = parts_after
        #: eq. (9) per node at decision time (work units)
        self.imbalance_before = imbalance_before
        self.plans = plans
        self.triggered = triggered

    @property
    def sds_moved(self) -> int:
        """Total SDs that changed owner."""
        return int(np.count_nonzero(self.parts_before != self.parts_after))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<BalanceResult moved={self.sds_moved} "
                f"triggered={self.triggered}>")


class LoadBalancer:
    """The paper's load balancer bound to an SD grid.

    Parameters
    ----------
    sd_grid:
        SD geometry (for adjacency and transfer selection).
    trigger_threshold:
        Minimum ``max |target - current|`` (in average-SD work units)
        required to act; below it the step is a no-op.
    preserve_connectivity:
        Forwarded to the transfer policy.
    """

    def __init__(self, sd_grid: SubdomainGrid,
                 trigger_threshold: float = 1.0,
                 preserve_connectivity: bool = True) -> None:
        self.sd_grid = sd_grid
        self.trigger_threshold = trigger_threshold
        self.preserve_connectivity = preserve_connectivity

    # -- the algorithm ----------------------------------------------------
    def balance_step(self, parts: Sequence[int], num_nodes: int,
                     busy_times: Sequence[float],
                     work_per_sd: Optional[Sequence[float]] = None) -> BalanceResult:
        """Run Algorithm 1 once; returns the new ownership and diagnostics.

        Parameters
        ----------
        parts:
            Current SD ownership (node id per SD).
        num_nodes:
            Cluster size.
        busy_times:
            Per-node busy time since the last counter reset.
        work_per_sd:
            Optional per-SD work weights; when provided, node power and
            shares are computed in work units so heterogeneous SDs
            balance by actual load.
        """
        parts = np.asarray(parts, dtype=np.int64)
        decomp = Decomposition(self.sd_grid, parts, num_nodes)
        busy = np.asarray(busy_times, dtype=np.float64)
        if len(busy) != num_nodes:
            raise ValueError(f"need {num_nodes} busy times, got {len(busy)}")

        uniform = work_per_sd is None or np.allclose(
            work_per_sd, np.asarray(work_per_sd)[0] if len(np.atleast_1d(work_per_sd)) else 1.0)
        if work_per_sd is None:
            sd_work = np.ones(self.sd_grid.num_subdomains)
        else:
            sd_work = np.asarray(work_per_sd, dtype=np.float64)
            if len(sd_work) != self.sd_grid.num_subdomains:
                raise ValueError("work_per_sd must have one entry per SD")

        # lines 2-12: counts, power, expected, imbalance
        node_load = np.zeros(num_nodes)
        np.add.at(node_load, parts, sd_work)
        total = float(node_load.sum())
        mean_sd_work = total / max(1, self.sd_grid.num_subdomains)
        power = compute_power(node_load, busy)
        expected = expected_sds(total, power)
        imbalance = expected - node_load

        if uniform:
            # integer targets (in SDs scaled by the common work factor)
            scale = mean_sd_work if mean_sd_work > 0 else 1.0
            targets = integer_targets(expected / scale).astype(np.float64) * scale
            residual = targets - node_load
        else:
            residual = imbalance.copy()

        threshold = self.trigger_threshold * mean_sd_work
        if np.abs(residual).max() < max(threshold, 1e-12):
            return BalanceResult(parts, parts.copy(), imbalance, [], False)

        # lines 13-19: dependency tree + processing order
        root = int(np.argmin(imbalance))
        adjacency = decomp.node_adjacency()
        tree = build_dependency_tree(num_nodes, adjacency, root)
        order = topological_order(tree, num_nodes, leaves_first=False)

        # lines 21-34: settle every tree edge with its subtree flow.
        # The flow on edge (child, parent) is the summed residual of the
        # child's subtree: positive = the subtree as a whole needs SDs
        # (parent sends down), negative = it has surplus (child sends
        # up).  This is the exact-aggregation form of line 29's
        # "XchngNum = LoadImbalance / L" — on the paper's star topology
        # the two coincide.  Two passes keep every transfer physically
        # realizable: surplus flows first, bottom-up (a child has its
        # surplus in hand before its parent forwards it), then deficit
        # flows top-down (a parent receives from above before feeding
        # its children).
        subtree = residual.copy()
        for n in reversed(order):
            p = tree.parent[n]
            if p >= 0:
                subtree[p] += subtree[n]

        new_parts = parts.copy()
        all_plans: List[TransferPlan] = []
        half_sd = 0.5 * mean_sd_work
        # pass 1 (bottom-up): children push surplus to their parents
        for n in reversed(order):
            p = tree.parent[n]
            if p >= 0 and subtree[n] < -half_sd:
                plans = self._settle(new_parts, donor=n, receiver=p,
                                     amount=-subtree[n], sd_work=sd_work,
                                     half_sd=half_sd)
                all_plans.extend(plans)
        # pass 2 (top-down): parents feed deficit subtrees
        for n in order:
            for c in tree.children.get(n, []):
                if subtree[c] > half_sd:
                    plans = self._settle(new_parts, donor=n, receiver=c,
                                         amount=subtree[c], sd_work=sd_work,
                                         half_sd=half_sd)
                    all_plans.extend(plans)
        return BalanceResult(parts, new_parts, imbalance, all_plans, True)

    # -- one edge settlement -----------------------------------------------
    def _settle(self, parts: np.ndarray, donor: int, receiver: int,
                amount: float, sd_work: np.ndarray,
                half_sd: float) -> List[TransferPlan]:
        """Move ~``amount`` work units of SDs from ``donor`` to ``receiver``.

        SDs move one at a time (re-evaluating the frontier after each) so
        heterogeneous work weights settle as closely as the SD
        granularity allows.  Stops early when the donor/receiver frontier
        is exhausted — the shortfall simply remains as residual imbalance
        and is retried at the next balancing step.
        """
        remaining = amount
        plans: List[TransferPlan] = []
        while remaining > half_sd:
            plan = select_transfers(
                self.sd_grid, parts, donor=donor, receiver=receiver, count=1,
                preserve_donor_connectivity=self.preserve_connectivity)
            if not plan.sds:
                break
            sd = plan.sds[0]
            parts[sd] = receiver
            remaining -= float(sd_work[sd])
            plans.append(plan)
        return plans
