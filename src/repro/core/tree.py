"""Dependency tree and processing order (Algorithm 1, lines 13-19).

The balancer models data dependencies between nodes as a tree: vertices
are compute nodes, and an edge may exist only where one node owns an SD
adjacent to the SP of the other (so SD transfers between them do not
create new dependencies).  The tree is a BFS spanning tree of that node
adjacency graph rooted at the most-imbalanced node
(``argmin LoadImbalance``), and nodes are processed in BFS preorder — the
"topological ordering" of the paper: every node settles its imbalance
with its not-yet-visited tree neighbours, so already-processed nodes are
never unbalanced again.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Sequence, Tuple

__all__ = ["DependencyTree", "build_dependency_tree", "topological_order"]


class DependencyTree:
    """BFS spanning tree over the node-adjacency graph.

    Attributes
    ----------
    root:
        The tree root (most imbalanced node).
    parent:
        ``parent[n]`` is ``n``'s tree parent (-1 for the root and for
        nodes unreachable from the root, which can only happen if the
        node adjacency graph is disconnected).
    children:
        Adjacency lists of the tree, sorted for determinism.
    """

    def __init__(self, root: int, parent: List[int],
                 children: Dict[int, List[int]]) -> None:
        self.root = root
        self.parent = parent
        self.children = children

    def neighbors(self, n: int) -> List[int]:
        """Tree neighbours of ``n`` (parent + children)."""
        out = list(self.children.get(n, []))
        if self.parent[n] >= 0:
            out.append(self.parent[n])
        return sorted(out)

    def contains(self, n: int) -> bool:
        """Whether ``n`` is reachable from the root."""
        return n == self.root or self.parent[n] >= 0


def build_dependency_tree(num_nodes: int,
                          adjacency: Sequence[Tuple[int, int]],
                          root: int) -> DependencyTree:
    """Build the BFS spanning tree from undirected node ``adjacency`` pairs.

    ``adjacency`` is typically
    :meth:`repro.mesh.decomposition.Decomposition.node_adjacency`.
    Neighbour lists are visited in sorted order so the tree (and hence
    the whole balancing step) is deterministic.
    """
    if not 0 <= root < num_nodes:
        raise ValueError(f"root {root} outside [0,{num_nodes})")
    nbrs: Dict[int, List[int]] = {n: [] for n in range(num_nodes)}
    for a, b in adjacency:
        if a == b:
            raise ValueError(f"self-adjacency for node {a}")
        if not (0 <= a < num_nodes and 0 <= b < num_nodes):
            raise ValueError(f"adjacency pair ({a},{b}) out of range")
        nbrs[a].append(b)
        nbrs[b].append(a)
    parent = [-1] * num_nodes
    children: Dict[int, List[int]] = {n: [] for n in range(num_nodes)}
    seen = {root}
    queue = deque([root])
    while queue:
        n = queue.popleft()
        for m in sorted(nbrs[n]):
            if m not in seen:
                seen.add(m)
                parent[m] = n
                children[n].append(m)
                queue.append(m)
    return DependencyTree(root, parent, children)


def topological_order(tree: DependencyTree, num_nodes: int,
                      leaves_first: bool = True) -> List[int]:
    """Processing order of Algorithm 1 lines 19-34.

    With ``leaves_first=True`` (the default) the order is the reverse of
    the BFS preorder: children always precede their parent.  That gives
    the walk its key guarantee — when a node is processed, its tree
    parent is still unvisited, so the node can always settle its entire
    residual imbalance (the root goes last and is balanced by
    conservation).  This reproduces the paper's example ordering
    1 -> 4 -> 3 -> 2 for the star tree of Fig. 7 (leaves 1, 4, 3 first,
    hub 2 last) and is the "least data-dependency first" rule stated in
    the text.

    ``leaves_first=False`` yields the plain BFS preorder (root first);
    it is kept for the ablation that shows why the leaves-first order is
    needed (BFS-first strands residuals on tree leaves).

    Nodes disconnected from the root (possible only with a disconnected
    node-adjacency graph) are appended at the end in id order; they have
    no one to exchange with, so their position is immaterial.
    """
    preorder: List[int] = []
    queue = deque([tree.root])
    while queue:
        n = queue.popleft()
        preorder.append(n)
        for c in tree.children.get(n, []):
            queue.append(c)
    order = list(reversed(preorder)) if leaves_first else preorder
    leftover = [n for n in range(num_nodes) if n not in set(order)]
    return order + sorted(leftover)
