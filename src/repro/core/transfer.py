"""Direction-uniform, contiguity-preserving SD transfer selection.

When the balancer decides node ``r`` borrows ``count`` SDs from node
``d``, *which* SDs move matters: the paper requires borrowing "uniformly
in all the spatial directions" so the receiver's SP stays compact and the
donor's SP is not hollowed out — preserving the contiguous, low-edge-cut
shape METIS produced (Sec. 7, Fig. 6).

Selection is greedy, one SD at a time, over the donor SDs on the current
donor/receiver frontier:

1. smallest distance to the receiver's SP centroid — the region grows
   as a compact disc, which is what "borrowing uniformly in all the
   spatial directions" produces in the paper's Fig. 6;
2. among distance ties, round-robin over angular bins around the
   centroid (explicit direction uniformity);
3. among remaining ties, maximise face-adjacency to the receiver's SP,
   then smallest SD id (determinism).

A candidate whose removal would disconnect the donor's SP is skipped
while connected alternatives exist, keeping both SPs contiguous whenever
geometry allows.
"""

from __future__ import annotations

import math
from typing import List, Sequence

import numpy as np

from ..mesh.subdomain import SubdomainGrid

__all__ = ["TransferPlan", "select_transfers", "apply_transfers",
           "naive_select_transfers"]

#: Number of angular bins used for direction-uniform spreading.
NUM_ANGLE_BINS = 8


class TransferPlan:
    """The outcome of one donor->receiver selection.

    ``sds`` lists the SD ids to move (in selection order); ``requested``
    records how many were asked for — fewer may be geometrically
    possible (no shared frontier left).
    """

    def __init__(self, donor: int, receiver: int, requested: int,
                 sds: List[int]) -> None:
        self.donor = donor
        self.receiver = receiver
        self.requested = requested
        self.sds = sds

    @property
    def moved(self) -> int:
        """Number of SDs actually selected."""
        return len(self.sds)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<TransferPlan n{self.donor}->n{self.receiver} "
                f"{self.moved}/{self.requested} SDs>")


def _sp_centroid(sd_grid: SubdomainGrid, parts: np.ndarray, node: int) -> np.ndarray:
    members = np.nonzero(parts == node)[0]
    if len(members) == 0:
        return np.array([0.5, 0.5])
    pts = np.array([sd_grid.sd_center(int(s)) for s in members])
    return pts.mean(axis=0)


def _donor_stays_connected(sd_grid: SubdomainGrid, parts: np.ndarray,
                           donor: int, candidate: int) -> bool:
    """Whether removing ``candidate`` keeps the donor's SP face-connected."""
    members = [s for s in np.nonzero(parts == donor)[0] if s != candidate]
    if len(members) <= 1:
        return True
    member_set = set(int(s) for s in members)
    seed = members[0]
    seen = {int(seed)}
    stack = [int(seed)]
    while stack:
        s = stack.pop()
        for nb in sd_grid.face_neighbors(s):
            if nb in member_set and nb not in seen:
                seen.add(nb)
                stack.append(nb)
    return len(seen) == len(member_set)


def select_transfers(sd_grid: SubdomainGrid, parts: np.ndarray,
                     donor: int, receiver: int, count: int,
                     preserve_donor_connectivity: bool = True) -> TransferPlan:
    """Select up to ``count`` donor SDs to hand to ``receiver``.

    ``parts`` is *not* modified; apply the plan with
    :func:`apply_transfers`.  Selection re-evaluates the frontier after
    each pick, so the chosen set grows the receiver's region organically
    instead of peeling a single row.
    """
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    if donor == receiver:
        raise ValueError("donor and receiver must differ")
    work = np.array(parts, dtype=np.int64, copy=True)
    centroid = _sp_centroid(sd_grid, work, receiver)
    bin_usage = [0] * NUM_ANGLE_BINS
    chosen: List[int] = []

    for _ in range(count):
        frontier = _frontier(sd_grid, work, donor, receiver)
        if not frontier:
            break
        pick = _pick(sd_grid, work, donor, receiver, frontier, centroid,
                     bin_usage, preserve_donor_connectivity)
        if pick is None:
            break
        chosen.append(pick)
        work[pick] = receiver
        bin_usage[_angle_bin(sd_grid, pick, centroid)] += 1
    return TransferPlan(donor, receiver, count, chosen)


def _frontier(sd_grid: SubdomainGrid, parts: np.ndarray,
              donor: int, receiver: int) -> List[int]:
    """Donor SDs face-adjacent to the receiver's SP."""
    out = []
    for sd in np.nonzero(parts == donor)[0]:
        if any(parts[nb] == receiver for nb in sd_grid.face_neighbors(int(sd))):
            out.append(int(sd))
    return out


def _angle_bin(sd_grid: SubdomainGrid, sd: int, centroid: np.ndarray) -> int:
    cx, cy = sd_grid.sd_center(sd)
    angle = math.atan2(cy - centroid[1], cx - centroid[0])
    b = int((angle + math.pi) / (2 * math.pi) * NUM_ANGLE_BINS)
    return min(b, NUM_ANGLE_BINS - 1)


def _pick(sd_grid: SubdomainGrid, parts: np.ndarray, donor: int,
          receiver: int, frontier: List[int], centroid: np.ndarray,
          bin_usage: List[int], preserve_connectivity: bool):
    """Rank the frontier by the selection criteria; return the best SD."""
    scored = []
    for sd in frontier:
        adj = sum(1 for nb in sd_grid.face_neighbors(sd)
                  if parts[nb] == receiver)
        cx, cy = sd_grid.sd_center(sd)
        dist = math.hypot(cx - centroid[0], cy - centroid[1])
        usage = bin_usage[_angle_bin(sd_grid, sd, centroid)]
        scored.append((round(dist, 9), usage, -adj, sd))
    scored.sort()
    if preserve_connectivity:
        for _, _, _, sd in scored:
            if _donor_stays_connected(sd_grid, parts, donor, sd):
                return sd
        # every candidate disconnects the donor; fall through and accept
        # the best-ranked one — balance beats contiguity as a last resort
    return scored[0][3] if scored else None


def naive_select_transfers(sd_grid: SubdomainGrid, parts: np.ndarray,
                           donor: int, receiver: int, count: int) -> TransferPlan:
    """Baseline for the transfer ablation: take the lowest-id frontier SDs.

    Ignores direction uniformity and donor connectivity; used by
    ``bench_abl_transfer`` to quantify what the paper's policy buys.
    """
    work = np.array(parts, dtype=np.int64, copy=True)
    chosen: List[int] = []
    for _ in range(max(0, count)):
        frontier = _frontier(sd_grid, work, donor, receiver)
        if not frontier:
            break
        pick = min(frontier)
        chosen.append(pick)
        work[pick] = receiver
    return TransferPlan(donor, receiver, count, chosen)


def apply_transfers(parts: np.ndarray, plans: Sequence[TransferPlan]) -> np.ndarray:
    """Apply transfer plans to a copy of ``parts``; returns the new array."""
    out = np.array(parts, dtype=np.int64, copy=True)
    for plan in plans:
        for sd in plan.sds:
            if out[sd] != plan.donor:
                raise ValueError(
                    f"SD {sd} no longer owned by donor {plan.donor}")
            out[sd] = plan.receiver
    return out
