"""Balance-triggering policies: when should the balancer run?

The paper runs the balancing step "at the end of the timestep" (Fig. 4);
in practice one balances on an interval, or only when the busy-time
spread exceeds a threshold (running Algorithm 1 on a balanced cluster
wastes migration bandwidth).  These small strategy objects let the
distributed solver and the ablation benches swap policies.

Policies are **stateless**: ``should_balance`` is a pure function of
its arguments, with the step of the last balancing event passed *in*
by the caller (the solver tracks it per run).  A policy object can
therefore be shared between runs — and between sweep points built from
one spec — without one run's rate-limiting history silently leaking
into the next.
"""

from __future__ import annotations

from typing import Optional, Sequence

from .power import imbalance_ratio

__all__ = ["BalancePolicy", "NeverBalance", "IntervalPolicy",
           "ThresholdPolicy"]


class BalancePolicy:
    """Decides, after each timestep, whether to run a balancing step."""

    def should_balance(self, step: int, busy_times: Sequence[float],
                       last_balance: Optional[int] = None) -> bool:
        """``step`` is the 0-based index of the step that just finished.

        ``last_balance`` is the step at which this run last balanced
        (``None`` if it has not yet); the caller owns that bookkeeping
        so the policy object itself stays stateless.
        """
        raise NotImplementedError


class NeverBalance(BalancePolicy):
    """Baseline: load balancing disabled."""

    def should_balance(self, step: int, busy_times: Sequence[float],
                       last_balance: Optional[int] = None) -> bool:
        return False


class IntervalPolicy(BalancePolicy):
    """Balance every ``interval`` timesteps (the paper's per-step check
    generalized; ``interval=1`` reproduces Fig. 4's flow)."""

    def __init__(self, interval: int = 1) -> None:
        if interval < 1:
            raise ValueError(f"interval must be >= 1, got {interval}")
        self.interval = interval

    def should_balance(self, step: int, busy_times: Sequence[float],
                       last_balance: Optional[int] = None) -> bool:
        return (step + 1) % self.interval == 0


class ThresholdPolicy(BalancePolicy):
    """Balance when the busy-time spread exceeds a ratio threshold.

    ``ratio`` is max/mean busy time; 1.0 is perfectly balanced.  A
    threshold of 1.1 triggers once some node is 10% busier than average.
    An optional minimum interval rate-limits consecutive balancing steps
    (migration has a cost) — enforced against the caller-supplied
    ``last_balance`` step, not internal state, so reusing the policy
    object across runs cannot rate-limit a fresh run.
    """

    def __init__(self, ratio: float = 1.1, min_interval: int = 1) -> None:
        if ratio < 1.0:
            raise ValueError(f"ratio must be >= 1.0, got {ratio}")
        if min_interval < 1:
            raise ValueError(f"min_interval must be >= 1, got {min_interval}")
        self.ratio = ratio
        self.min_interval = min_interval

    def should_balance(self, step: int, busy_times: Sequence[float],
                       last_balance: Optional[int] = None) -> bool:
        if last_balance is not None and step - last_balance < self.min_interval:
            return False
        return imbalance_ratio(busy_times) >= self.ratio
