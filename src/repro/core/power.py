"""Compute-capacity estimation and load imbalance — eqs. (8)-(10).

The paper measures each node's capacity from the busy-time performance
counter:

    Power(N_i)         = SD(N_i) / BusyTime(N_i)                  (8)
    E(N_i)             = TotalSDs * Power(N_i) / sum_j Power(N_j) (10)
    LoadImbalance(N_i) = E(N_i) - SD(N_i)                         (9)

Positive imbalance means the node is faster than its current share and
should *borrow* SDs; negative means it should *lend*.

Edge cases the paper leaves implicit are made explicit here: a node with
zero SDs (or zero busy time) has no power measurement, so it is assigned
the mean of the measured powers — optimistic enough that an idle node
re-enters the distribution rather than being starved forever.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

__all__ = ["compute_power", "expected_sds", "load_imbalance",
           "imbalance_ratio", "integer_targets"]


def compute_power(sd_counts: Sequence[float], busy_times: Sequence[float],
                  work_per_sd: Optional[Sequence[float]] = None) -> np.ndarray:
    """Eq. (8): ``Power(N_i) = SD(N_i) / BusyTime(N_i)``.

    Parameters
    ----------
    sd_counts:
        SDs per node over the measurement window.
    busy_times:
        Window busy time per node (same window for all nodes — the
        counters are reset together, Algorithm 1 line 35).
    work_per_sd:
        Optional per-node average work weight of its SDs; when SDs carry
        heterogeneous work (crack model), power is computed from
        *work* processed per busy second instead of raw SD count, which
        keeps eq. (8) meaningful.  Default treats SDs as uniform.

    Returns
    -------
    Positive float array; unmeasurable nodes get the mean measured power
    (or 1.0 if nothing is measurable).
    """
    sds = np.asarray(sd_counts, dtype=np.float64)
    busy = np.asarray(busy_times, dtype=np.float64)
    if sds.shape != busy.shape:
        raise ValueError(f"shape mismatch {sds.shape} vs {busy.shape}")
    if np.any(sds < 0) or np.any(busy < 0):
        raise ValueError("sd counts and busy times must be non-negative")
    load = sds if work_per_sd is None else sds * np.asarray(work_per_sd)
    measurable = (load > 0) & (busy > 0)
    power = np.empty_like(busy)
    power[measurable] = load[measurable] / busy[measurable]
    if measurable.any():
        fallback = float(power[measurable].mean())
    else:
        fallback = 1.0
    power[~measurable] = fallback
    return power


def expected_sds(total_sds: float, power: Sequence[float]) -> np.ndarray:
    """Eq. (10): the SD share proportional to node power."""
    power = np.asarray(power, dtype=np.float64)
    if np.any(power <= 0):
        raise ValueError("power values must be positive")
    return total_sds * power / power.sum()


def load_imbalance(sd_counts: Sequence[float],
                   busy_times: Sequence[float],
                   work_per_sd: Optional[Sequence[float]] = None) -> np.ndarray:
    """Eq. (9): ``E(N_i) - SD(N_i)`` for every node.

    The array sums to ~0 by construction (up to float rounding): SDs are
    only moved, never created.
    """
    sds = np.asarray(sd_counts, dtype=np.float64)
    power = compute_power(sds, busy_times, work_per_sd=work_per_sd)
    return expected_sds(float(sds.sum()), power) - sds


def integer_targets(expected: Sequence[float]) -> np.ndarray:
    """Round real-valued expected SD shares to integers, conserving the sum.

    Largest-remainder apportionment: floor everything, then hand the
    leftover units to the nodes with the largest fractional parts (ties
    broken by node id for determinism).  Needed because eq. (10) yields
    fractional shares while SDs are indivisible; naive per-node rounding
    can change the total and makes Algorithm 1 oscillate between
    configurations that are both within one SD of ideal.
    """
    exp = np.asarray(expected, dtype=np.float64)
    if np.any(exp < 0):
        raise ValueError("expected shares must be non-negative")
    total = int(round(exp.sum()))
    base = np.floor(exp).astype(np.int64)
    leftover = total - int(base.sum())
    if leftover > 0:
        frac = exp - base
        # argsort ascending on (-frac, id): largest remainders first
        order = np.lexsort((np.arange(len(exp)), -frac))
        base[order[:leftover]] += 1
    elif leftover < 0:  # only possible through float round-off
        frac = exp - base
        order = np.lexsort((np.arange(len(exp)), frac))
        for i in order:
            if leftover == 0:
                break
            if base[i] > 0:
                base[i] -= 1
                leftover += 1
    return base


def imbalance_ratio(busy_times: Sequence[float]) -> float:
    """Max/mean busy time — the scalar "are we imbalanced?" indicator.

    1.0 means perfectly balanced ("in an ideal case, the busy time should
    be the same for all nodes"); used by the triggering policies.
    """
    busy = np.asarray(busy_times, dtype=np.float64)
    if len(busy) == 0:
        raise ValueError("need at least one node")
    mean = busy.mean()
    if mean <= 0:
        return 1.0
    return float(busy.max() / mean)
