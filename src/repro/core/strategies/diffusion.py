"""``diffusion`` — first-order diffusive exchange over node adjacency.

The classic alternative to the paper's tree walk (Cybenko-style
first-order diffusion): every node settles a fraction of its load
*gradient* with each neighbor in the node-adjacency graph, no global
coordination.  One balancing step is one Jacobi sweep — flows are
computed from the pre-sweep deviations, so the edge processing order
does not change the requested amounts and the step stays deterministic.

The diffusion coefficient is the safe uniform choice
``alpha = 1 / (1 + max_degree)``: a node never promises more than its
whole surplus across all of its edges in a single sweep.  Compared with
``tree`` the per-step movement is local and conservative — several
sweeps are needed to drain a concentrated hotspot (the Fig. 14 corner
start), but under smoothly drifting load the local exchanges track the
gradient without re-routing SDs across the whole cluster.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..transfer import TransferPlan
from .base import BalanceStrategy, _StepContext
from .registry import register_strategy

__all__ = ["DiffusionStrategy"]


@register_strategy("diffusion")
class DiffusionStrategy(BalanceStrategy):
    """Neighbor-pairwise first-order diffusive exchange."""

    def _rebalance(self, ctx: _StepContext) -> Tuple[np.ndarray, List[TransferPlan]]:
        adjacency = ctx.decomp.node_adjacency()
        new_parts = ctx.parts.copy()
        if not adjacency:
            return new_parts, []
        degree = np.zeros(ctx.num_nodes)
        for a, b in adjacency:
            degree[a] += 1
            degree[b] += 1
        alpha = 1.0 / (1.0 + float(degree.max()))

        # deviation from target: positive = overloaded (wants to shed)
        deviation = -ctx.residual
        plans: List[TransferPlan] = []
        for a, b in adjacency:  # sorted pairs — deterministic sweep
            flow = alpha * (deviation[a] - deviation[b])
            if flow > ctx.half_sd:
                plans.extend(self._settle(
                    new_parts, donor=a, receiver=b, amount=flow,
                    sd_work=ctx.sd_work, half_sd=ctx.half_sd))
            elif flow < -ctx.half_sd:
                plans.extend(self._settle(
                    new_parts, donor=b, receiver=a, amount=-flow,
                    sd_work=ctx.sd_work, half_sd=ctx.half_sd))
        return new_parts, plans
