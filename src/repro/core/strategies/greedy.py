"""``greedy`` — repeated max->min donor/receiver settlement, no tree.

The simplest global strategy: while some node is more than half an
average SD above its target and another is below, hand one frontier SD
from the most-overloaded donor to the most-underloaded receiver.  When
the top pair shares no donor/receiver frontier the ranked fallback in
:meth:`BalanceStrategy._greedy_settle` tries the next-best pairs, so
imbalance still drains through intermediate neighbors — just one hop
per step instead of the tree strategy's routed relays.

Strengths: no tree construction, robust to any adjacency shape, and
each move is individually the steepest-descent choice.  Weakness: with
separated hot and cold regions the per-step movement can stall at the
geometric frontier where ``tree`` would relay through the middle.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..transfer import TransferPlan
from .base import BalanceStrategy, _StepContext
from .registry import register_strategy

__all__ = ["GreedyStrategy"]


@register_strategy("greedy")
class GreedyStrategy(BalanceStrategy):
    """Steepest-descent single-SD moves until within half an SD."""

    def _rebalance(self, ctx: _StepContext) -> Tuple[np.ndarray, List[TransferPlan]]:
        new_parts = ctx.parts.copy()
        plans = self._greedy_settle(new_parts, ctx.residual.copy(),
                                    ctx.sd_work, ctx.half_sd)
        return new_parts, plans
