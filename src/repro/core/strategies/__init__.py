"""Pluggable load-balancing strategies.

The paper's Algorithm 1 is one point in a design space; this package
makes the balancing layer a first-class strategy subsystem mirroring
the kernel-backend registry (:mod:`repro.solver.backends`): a shared
:class:`BalanceStrategy` interface with the measurement preamble
(eqs. 8-10, integer targets, trigger threshold), a name registry with
an ``"auto"`` default and the ``REPRO_BALANCER`` environment override,
and four implementations — ``tree`` (Algorithm 1), ``diffusion``,
``greedy``, and ``repartition``.  See DESIGN.md, *Balancing
strategies*.
"""

from .base import (BalanceEvent, BalanceResult, BalanceStrategy,
                   evacuate_assignments, is_uniform_work)
from .registry import (AUTO, ENV_VAR, auto_strategy_name, get_strategy_class,
                       make_strategy, register_strategy, requested_strategy,
                       strategy_names)

# importing the implementation modules registers them
from .diffusion import DiffusionStrategy
from .greedy import GreedyStrategy
from .repartition import RepartitionStrategy
from .tree import TreeStrategy

__all__ = [
    "BalanceEvent", "BalanceResult", "BalanceStrategy", "is_uniform_work",
    "evacuate_assignments",
    "AUTO", "ENV_VAR", "auto_strategy_name", "get_strategy_class",
    "make_strategy", "register_strategy", "requested_strategy",
    "strategy_names",
    "DiffusionStrategy", "GreedyStrategy", "RepartitionStrategy",
    "TreeStrategy",
]
