"""Strategy registry, default resolution, and environment override.

Mirrors :mod:`repro.solver.backends.registry`.  Selection order for a
requested strategy name:

1. an explicit registered name (``"tree"``, ``"diffusion"``,
   ``"greedy"``, ``"repartition"``) is honored as-is — unit tests and
   ablations that name a strategy get exactly that strategy;
2. ``"auto"`` consults the ``REPRO_BALANCER`` environment variable
   (the CI matrix forces each strategy over the whole suite this way);
3. otherwise ``"auto"`` resolves to the paper's algorithm
   (:func:`auto_strategy_name` returns ``"tree"``).
"""

from __future__ import annotations

import os
from typing import Dict, List, Type

from ...mesh.subdomain import SubdomainGrid
from .base import BalanceStrategy

__all__ = ["AUTO", "ENV_VAR", "register_strategy", "strategy_names",
           "get_strategy_class", "requested_strategy", "auto_strategy_name",
           "make_strategy"]

#: The selection sentinel: resolve by env var, then the paper default.
AUTO = "auto"
#: Environment variable forcing the resolution of ``"auto"`` requests.
ENV_VAR = "REPRO_BALANCER"

_STRATEGIES: Dict[str, Type[BalanceStrategy]] = {}


def register_strategy(name: str):
    """Class decorator: register a :class:`BalanceStrategy` under ``name``."""
    def deco(cls: Type[BalanceStrategy]) -> Type[BalanceStrategy]:
        if name == AUTO:
            raise ValueError(f"{AUTO!r} is reserved for the default")
        if name in _STRATEGIES:
            raise ValueError(f"strategy {name!r} already registered")
        cls.name = name
        _STRATEGIES[name] = cls
        return cls
    return deco


def strategy_names() -> List[str]:
    """All registered strategy names, sorted (``auto`` excluded)."""
    return sorted(_STRATEGIES)


def get_strategy_class(name: str) -> Type[BalanceStrategy]:
    if name not in _STRATEGIES:
        raise KeyError(f"unknown balancing strategy {name!r}; "
                       f"known: {', '.join(strategy_names())}")
    return _STRATEGIES[name]


def requested_strategy(name: str = AUTO) -> str:
    """Validate ``name`` and apply the env override to ``auto`` requests.

    Returns either a registered strategy name or ``"auto"`` (still to
    be resolved by :func:`auto_strategy_name`).  Explicit names win
    over the environment: forcing via ``REPRO_BALANCER`` reroutes every
    default-configured run without silently rewriting tests and
    ablations that pin a specific strategy.
    """
    if name == AUTO:
        forced = os.environ.get(ENV_VAR, "").strip()
        if forced and forced != AUTO:  # =auto means "no override"
            if forced not in _STRATEGIES:
                raise ValueError(
                    f"{ENV_VAR}={forced!r} names an unknown balancing "
                    f"strategy; known: {', '.join(strategy_names())} "
                    f"(or {AUTO!r})")
            return forced
        return AUTO
    if name not in _STRATEGIES:
        raise ValueError(f"unknown balancing strategy {name!r}; "
                         f"known: {', '.join(strategy_names())} "
                         f"(or {AUTO!r})")
    return name


def auto_strategy_name() -> str:
    """What ``"auto"`` falls back to: the paper's Algorithm 1."""
    return "tree"


def make_strategy(name: str, sd_grid: SubdomainGrid,
                  trigger_threshold: float = 1.0,
                  preserve_connectivity: bool = True) -> BalanceStrategy:
    """Instantiate the strategy ``name`` resolves to for this SD grid."""
    resolved = requested_strategy(name)
    if resolved == AUTO:
        resolved = auto_strategy_name()
    return get_strategy_class(resolved)(
        sd_grid, trigger_threshold=trigger_threshold,
        preserve_connectivity=preserve_connectivity)
