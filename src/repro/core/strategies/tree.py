"""``tree`` — Algorithm 1, the paper's load balancing algorithm.

One balancing step (the measurement preamble — eqs. 8-10, integer
targets, trigger threshold — lives in the shared
:class:`repro.core.strategies.base.BalanceStrategy`):

1. root a BFS dependency tree at ``argmin(LoadImbalance)`` over the node
   adjacency induced by the current SD ownership (lines 13-18);
2. settle every tree edge with its **subtree flow**: the amount crossing
   edge (child, parent) is the summed residual of the child's subtree.
   On the paper's star example (Fig. 7) this reduces exactly to the
   published walk — every leaf settles its own imbalance against the
   hub (``XchngNum = imbalance / L`` with ``L = 1``) and the hub is
   balanced by conservation.  On general trees the aggregated form is
   required for termination: per-node uniform splitting can strand
   residual on tree leaves and drain intermediate nodes that later
   transfers need as relays.  Surplus flows run bottom-up first, deficit
   flows top-down second, so every transfer is physically realizable
   when it executes;
3. each individual exchange moves concrete SDs chosen by the
   direction-uniform, contiguity-preserving policy in
   :mod:`repro.core.transfer` (geometry can cap a transfer below the
   requested amount; the shortfall stays as residual and is retried at
   the next balancing step);
4. the caller that owns the busy-time counters resets them (line 35).

With heterogeneous per-SD work (the crack model), all quantities are in
work units rather than SD counts and transfers move SDs one at a time
until the settled work is within half an average SD of the share.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..transfer import TransferPlan
from ..tree import build_dependency_tree, topological_order
from .base import BalanceStrategy, _StepContext
from .registry import register_strategy

__all__ = ["TreeStrategy"]


@register_strategy("tree")
class TreeStrategy(BalanceStrategy):
    """The paper's Algorithm 1: dependency-tree subtree flows."""

    def _rebalance(self, ctx: _StepContext) -> Tuple[np.ndarray, List[TransferPlan]]:
        # lines 13-19: dependency tree + processing order.  With an
        # elastic cluster the root must be a live node (a dead node has
        # no adjacency — rooting there would yield an edgeless tree and
        # stall every transfer).
        if ctx.active is None:
            root = int(np.argmin(ctx.imbalance))
        else:
            root = int(np.argmin(
                np.where(ctx.active, ctx.imbalance, np.inf)))
        adjacency = ctx.decomp.node_adjacency()
        tree = build_dependency_tree(ctx.num_nodes, adjacency, root)
        order = topological_order(tree, ctx.num_nodes, leaves_first=False)

        # lines 21-34: settle every tree edge with its subtree flow.
        # The flow on edge (child, parent) is the summed residual of the
        # child's subtree: positive = the subtree as a whole needs SDs
        # (parent sends down), negative = it has surplus (child sends
        # up).  This is the exact-aggregation form of line 29's
        # "XchngNum = LoadImbalance / L" — on the paper's star topology
        # the two coincide.  Two passes keep every transfer physically
        # realizable: surplus flows first, bottom-up (a child has its
        # surplus in hand before its parent forwards it), then deficit
        # flows top-down (a parent receives from above before feeding
        # its children).
        subtree = ctx.residual.copy()
        for n in reversed(order):
            p = tree.parent[n]
            if p >= 0:
                subtree[p] += subtree[n]

        new_parts = ctx.parts.copy()
        all_plans: List[TransferPlan] = []
        half_sd = ctx.half_sd
        # pass 1 (bottom-up): children push surplus to their parents
        for n in reversed(order):
            p = tree.parent[n]
            if p >= 0 and subtree[n] < -half_sd:
                all_plans.extend(self._settle(
                    new_parts, donor=n, receiver=p, amount=-subtree[n],
                    sd_work=ctx.sd_work, half_sd=half_sd))
        # pass 2 (top-down): parents feed deficit subtrees
        for n in order:
            for c in tree.children.get(n, []):
                if subtree[c] > half_sd:
                    all_plans.extend(self._settle(
                        new_parts, donor=n, receiver=c, amount=subtree[c],
                        sd_work=ctx.sd_work, half_sd=half_sd))
        return new_parts, all_plans
