"""The balancing-strategy interface and its shared machinery.

A :class:`BalanceStrategy` answers one question: given the current SD
ownership and the busy-time counters of the measurement window, which
SDs should move where?  Every strategy shares the paper's measurement
preamble (eqs. 8-10: node power from busy time, expected shares, load
imbalance, integer targets) and the transfer mechanics of
:mod:`repro.core.transfer`; they differ only in *how* the residual
imbalance is routed:

* ``tree`` — the paper's Algorithm 1 (dependency-tree subtree flows);
* ``diffusion`` — first-order neighbor-pairwise diffusive exchange;
* ``greedy`` — repeated max->min donor/receiver settlement;
* ``repartition`` — re-run the multilevel partitioner and remap labels.

All strategies preserve the balancing invariants — every SD stays
owned by a valid node, SDs are moved (never created or relabeled
wholesale), and the step is a no-op below the trigger threshold — and
are deterministic: identical inputs give identical plans, which is
what keeps the simulated schedules bit-identical across sweep workers.
"""

from __future__ import annotations

from dataclasses import InitVar, dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ...mesh.decomposition import Decomposition
from ...mesh.subdomain import SubdomainGrid
from ..power import compute_power, expected_sds, imbalance_ratio, integer_targets
from ..transfer import TransferPlan, select_transfers

__all__ = ["BalanceResult", "BalanceEvent", "BalanceStrategy",
           "is_uniform_work"]


def is_uniform_work(work_per_sd: Optional[Sequence[float]]) -> bool:
    """Whether per-SD work weights are effectively uniform.

    ``None`` (no weights), an empty sequence, a scalar, and a
    single-entry vector are all uniform by definition; otherwise every
    entry must equal the first.  Uniform work lets the balancer snap
    expected shares to integer SD targets (largest-remainder
    apportionment), which is what stops Algorithm 1 oscillating between
    configurations that are equally close to the fractional ideal.
    """
    if work_per_sd is None:
        return True
    work = np.atleast_1d(np.asarray(work_per_sd, dtype=np.float64))
    if work.size <= 1:
        return True
    return bool(np.allclose(work, work.flat[0]))


@dataclass(frozen=True, eq=False)
class BalanceResult:
    """Diagnostics of one balancing step (immutable).

    ``imbalance_before``/``imbalance_after`` are eq. (9) per node —
    ``expected - load`` in work units — evaluated at decision time and
    after the planned transfers; ``imbalance_after`` is derived in
    ``__post_init__`` from the ownership delta (the expected shares are
    fixed within a step, so only the realized loads change).

    ``imbalance_ratio_before``/``imbalance_ratio_after`` are the scalar
    max/mean indicators the telemetry records: the measured busy-time
    ratio at decision time, and the ratio *predicted* for the new
    ownership from the measured node powers.
    """

    strategy: str
    parts_before: np.ndarray
    parts_after: np.ndarray
    imbalance_before: np.ndarray
    plans: Tuple[TransferPlan, ...]
    triggered: bool
    imbalance_ratio_before: float
    imbalance_ratio_after: float
    sd_work: InitVar[Optional[np.ndarray]] = None
    imbalance_after: np.ndarray = field(init=False)

    def __post_init__(self, sd_work: Optional[np.ndarray]) -> None:
        def _freeze(name: str, arr, dtype) -> np.ndarray:
            arr = np.array(arr, dtype=dtype, copy=True)
            arr.flags.writeable = False
            object.__setattr__(self, name, arr)
            return arr

        before = _freeze("parts_before", self.parts_before, np.int64)
        after = _freeze("parts_after", self.parts_after, np.int64)
        imb = _freeze("imbalance_before", self.imbalance_before, np.float64)
        object.__setattr__(self, "plans", tuple(self.plans))
        if len(before) != len(after):
            raise ValueError(
                f"ownership length changed: {len(before)} -> {len(after)}")
        work = (np.ones(len(before)) if sd_work is None
                else np.asarray(sd_work, dtype=np.float64))
        delta = np.zeros(len(imb))
        moved = np.nonzero(before != after)[0]
        np.add.at(delta, after[moved], work[moved])
        np.add.at(delta, before[moved], -work[moved])
        _freeze("imbalance_after", imb - delta, np.float64)

    @property
    def sds_moved(self) -> int:
        """Total SDs that changed owner."""
        return int(np.count_nonzero(self.parts_before != self.parts_after))

    def __repr__(self) -> str:
        # stable (value-only, no addresses) so logs diff cleanly
        return (f"BalanceResult(strategy={self.strategy!r}, "
                f"triggered={self.triggered}, sds_moved={self.sds_moved}, "
                f"imbalance_ratio={self.imbalance_ratio_before:.4f}"
                f"->{self.imbalance_ratio_after:.4f})")


@dataclass(frozen=True)
class BalanceEvent:
    """One balancer invocation as the run telemetry records it.

    Emitted every time the policy fires (including no-op decisions, so
    the migration-cost accounting shows *when* the balancer looked, not
    just when it moved).  ``imbalance_before`` is the measured max/mean
    busy-time ratio at decision time; ``imbalance_after`` the ratio
    predicted for the new ownership from the measured node powers.
    """

    step: int
    strategy: str
    sds_moved: int
    migration_bytes: int
    imbalance_before: float
    imbalance_after: float

    def to_dict(self) -> Dict[str, Any]:
        return {"step": self.step, "strategy": self.strategy,
                "sds_moved": self.sds_moved,
                "migration_bytes": self.migration_bytes,
                "imbalance_before": self.imbalance_before,
                "imbalance_after": self.imbalance_after}

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "BalanceEvent":
        return cls(**d)


class _StepContext:
    """Everything the preamble measured, handed to ``_rebalance``."""

    __slots__ = ("parts", "decomp", "num_nodes", "busy", "sd_work",
                 "node_load", "power", "expected", "imbalance", "residual",
                 "mean_sd_work", "half_sd", "uniform")

    def __init__(self, **kw: Any) -> None:
        for name in self.__slots__:
            setattr(self, name, kw[name])


class BalanceStrategy:
    """Base class: the measurement preamble all strategies share.

    Parameters
    ----------
    sd_grid:
        SD geometry (adjacency and transfer selection).
    trigger_threshold:
        Minimum ``max |target - current|`` (in average-SD work units)
        required to act; below it the step is a no-op.
    preserve_connectivity:
        Forwarded to the transfer policy.
    """

    #: Registry name, set by :func:`repro.core.strategies.registry
    #: .register_strategy`.
    name: str = "?"

    def __init__(self, sd_grid: SubdomainGrid,
                 trigger_threshold: float = 1.0,
                 preserve_connectivity: bool = True) -> None:
        self.sd_grid = sd_grid
        self.trigger_threshold = trigger_threshold
        self.preserve_connectivity = preserve_connectivity

    # -- the shared driver -------------------------------------------------
    def balance_step(self, parts: Sequence[int], num_nodes: int,
                     busy_times: Sequence[float],
                     work_per_sd: Optional[Sequence[float]] = None) -> BalanceResult:
        """Measure (eqs. 8-10), check the trigger, delegate to the strategy.

        Parameters
        ----------
        parts:
            Current SD ownership (node id per SD).
        num_nodes:
            Cluster size.
        busy_times:
            Per-node busy time since the last counter reset.
        work_per_sd:
            Optional per-SD work weights; when provided, node power and
            shares are computed in work units so heterogeneous SDs
            balance by actual load.
        """
        parts = np.asarray(parts, dtype=np.int64)
        decomp = Decomposition(self.sd_grid, parts, num_nodes)
        busy = np.asarray(busy_times, dtype=np.float64)
        if len(busy) != num_nodes:
            raise ValueError(f"need {num_nodes} busy times, got {len(busy)}")

        uniform = is_uniform_work(work_per_sd)
        if work_per_sd is None:
            sd_work = np.ones(self.sd_grid.num_subdomains)
        else:
            sd_work = np.asarray(work_per_sd, dtype=np.float64)
            if len(sd_work) != self.sd_grid.num_subdomains:
                raise ValueError("work_per_sd must have one entry per SD")

        # Algorithm 1 lines 2-12: loads, power, expected, imbalance
        node_load = np.zeros(num_nodes)
        np.add.at(node_load, parts, sd_work)
        total = float(node_load.sum())
        mean_sd_work = total / max(1, self.sd_grid.num_subdomains)
        power = compute_power(node_load, busy)
        expected = expected_sds(total, power)
        imbalance = expected - node_load
        ratio_before = imbalance_ratio(busy)

        if uniform:
            # integer targets (in SDs scaled by the common work factor)
            scale = mean_sd_work if mean_sd_work > 0 else 1.0
            targets = integer_targets(expected / scale).astype(np.float64) * scale
            residual = targets - node_load
        else:
            residual = imbalance.copy()

        threshold = self.trigger_threshold * mean_sd_work
        if np.abs(residual).max() < max(threshold, 1e-12):
            return BalanceResult(
                strategy=self.name, parts_before=parts,
                parts_after=parts.copy(), imbalance_before=imbalance,
                plans=(), triggered=False,
                imbalance_ratio_before=ratio_before,
                imbalance_ratio_after=ratio_before, sd_work=sd_work)

        ctx = _StepContext(parts=parts, decomp=decomp, num_nodes=num_nodes,
                           busy=busy, sd_work=sd_work, node_load=node_load,
                           power=power, expected=expected,
                           imbalance=imbalance, residual=residual,
                           mean_sd_work=mean_sd_work,
                           half_sd=0.5 * mean_sd_work, uniform=uniform)
        new_parts, plans = self._rebalance(ctx)
        load_after = np.zeros(num_nodes)
        np.add.at(load_after, new_parts, sd_work)
        return BalanceResult(
            strategy=self.name, parts_before=parts, parts_after=new_parts,
            imbalance_before=imbalance, plans=tuple(plans), triggered=True,
            imbalance_ratio_before=ratio_before,
            imbalance_ratio_after=imbalance_ratio(load_after / power),
            sd_work=sd_work)

    def _rebalance(self, ctx: _StepContext) -> Tuple[np.ndarray, List[TransferPlan]]:
        """Route the residual imbalance; returns ``(new_parts, plans)``.

        ``ctx.parts`` must not be mutated — strategies work on a copy.
        """
        raise NotImplementedError

    # -- shared movers -----------------------------------------------------
    def _settle(self, parts: np.ndarray, donor: int, receiver: int,
                amount: float, sd_work: np.ndarray,
                half_sd: float) -> List[TransferPlan]:
        """Move ~``amount`` work units of SDs from ``donor`` to ``receiver``.

        SDs move one at a time (re-evaluating the frontier after each)
        so heterogeneous work weights settle as closely as the SD
        granularity allows.  Stops early when the donor/receiver
        frontier is exhausted — the shortfall simply remains as residual
        imbalance and is retried at the next balancing step.
        """
        remaining = amount
        plans: List[TransferPlan] = []
        while remaining > half_sd:
            plan = select_transfers(
                self.sd_grid, parts, donor=donor, receiver=receiver, count=1,
                preserve_donor_connectivity=self.preserve_connectivity)
            if not plan.sds:
                break
            sd = plan.sds[0]
            parts[sd] = receiver
            remaining -= float(sd_work[sd])
            plans.append(plan)
        return plans

    def _greedy_settle(self, parts: np.ndarray, residual: np.ndarray,
                       sd_work: np.ndarray,
                       half_sd: float) -> List[TransferPlan]:
        """Repeated max->min settlement: one SD per move, no tree.

        Each move hands one frontier SD from the most-overloaded donor
        reachable by the most-underloaded receiver (falling back through
        the ranked pairs when geometry offers no shared frontier; when
        *no* surplus/deficit pair touches, one SD is relayed hop-by-hop
        along the node-adjacency path between the extreme pair).
        ``parts`` and ``residual`` are updated in place; terminates when
        every node is within half an average SD of its target or no
        realizable move remains (bounded by a hard move cap so degenerate
        zero-work weights cannot loop).
        """
        plans: List[TransferPlan] = []
        num_nodes = len(residual)
        budget = 4 * len(parts) + 8
        while budget > 0:
            # most surplus first / most deficit first, ties by node id
            order = np.argsort(residual, kind="stable")
            moves: List[TransferPlan] = []
            for r in order[::-1]:
                if residual[r] <= half_sd:
                    break
                for d in order:
                    if residual[d] >= -half_sd:
                        break
                    if d == r:
                        continue
                    plan = select_transfers(
                        self.sd_grid, parts, donor=int(d), receiver=int(r),
                        count=1,
                        preserve_donor_connectivity=self.preserve_connectivity)
                    if plan.sds:
                        moves = [plan]
                        break
                if moves:
                    break
            if not moves:
                moves = self._relay_moves(parts, residual, half_sd, num_nodes)
            if not moves:
                break
            for plan in moves:
                sd = plan.sds[0]
                parts[sd] = plan.receiver
                residual[plan.donor] += sd_work[sd]
                residual[plan.receiver] -= sd_work[sd]
                plans.append(plan)
                budget -= 1
        return plans

    def _relay_moves(self, parts: np.ndarray, residual: np.ndarray,
                     half_sd: float, num_nodes: int) -> List[TransferPlan]:
        """One SD relayed along the adjacency path from the most-
        overloaded to the most-underloaded node.

        Used when no surplus node shares a frontier with any deficit
        node (hot and cold regions separated by near-balanced ones):
        each hop moves one frontier SD to the next node on the BFS
        path, so the intermediate nodes stay net-neutral while one SD's
        worth of load crosses the gap.  Returns ``[]`` when the extreme
        pair is within threshold, disconnected, or geometry blocks a
        hop — the caller treats that as settled.
        """
        donor = int(np.argmin(residual))
        receiver = int(np.argmax(residual))
        if (residual[receiver] <= half_sd or residual[donor] >= -half_sd
                or donor == receiver):
            return []
        nbrs: Dict[int, List[int]] = {n: [] for n in range(num_nodes)}
        decomp = Decomposition(self.sd_grid, parts, num_nodes)
        for a, b in decomp.node_adjacency():
            nbrs[a].append(b)
            nbrs[b].append(a)
        # BFS (sorted neighbors: deterministic shortest path)
        prev = {donor: donor}
        queue = [donor]
        while queue and receiver not in prev:
            nxt: List[int] = []
            for n in queue:
                for m in sorted(nbrs[n]):
                    if m not in prev:
                        prev[m] = n
                        nxt.append(m)
            queue = nxt
        if receiver not in prev:
            return []
        path = [receiver]
        while path[-1] != donor:
            path.append(prev[path[-1]])
        path.reverse()
        moves: List[TransferPlan] = []
        staged = parts.copy()
        for a, b in zip(path, path[1:]):
            plan = select_transfers(
                self.sd_grid, staged, donor=a, receiver=b, count=1,
                preserve_donor_connectivity=self.preserve_connectivity)
            if not plan.sds:
                return []
            staged[plan.sds[0]] = b
            moves.append(plan)
        return moves
